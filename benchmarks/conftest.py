"""Shared infrastructure for the paper-reproduction benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md section 4 for the index).  Each test

* runs the experiment over the simulated RMA substrate, collecting
  *simulated-time* metrics (the quantities the paper's figures plot),
* prints the resulting table and appends it to
  ``benchmarks/results/<name>.txt`` so the output survives pytest's
  capture, and
* wraps one representative wall-clock measurement in pytest-benchmark so
  ``pytest benchmarks/ --benchmark-only`` also reports real execution
  times of the Python implementation.

Environment knobs:

* ``REPRO_BENCH_RANKS`` — comma-separated rank counts for the scaling
  sweeps (default ``1,2,4,8``).
* ``REPRO_BENCH_OPS`` — OLTP operations per rank (default 120).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_ranks() -> list[int]:
    raw = os.environ.get("REPRO_BENCH_RANKS", "1,2,4,8")
    return [int(x) for x in raw.split(",") if x.strip()]


def bench_ops() -> int:
    return int(os.environ.get("REPRO_BENCH_OPS", "120"))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def report(results_dir, request):
    """Callable writing a named report section to disk and stdout."""
    written: list[pathlib.Path] = []

    def _report(name: str, text: str) -> pathlib.Path:
        path = results_dir / f"{name}.txt"
        with path.open("a") as fh:
            fh.write(text.rstrip() + "\n\n")
        print(f"\n===== {name} =====\n{text}")
        written.append(path)
        return path

    return _report


@pytest.fixture()
def metrics(results_dir):
    """Callable writing a named machine-readable result to disk.

    The payload must be JSON-serializable; it lands in
    ``results/<name>.json`` and is folded into the committed
    ``BENCH_*.json`` files by the ``test_zz_*`` report step, so the perf
    trajectory stays diffable across PRs.
    """

    def _metrics(name: str, payload: dict) -> pathlib.Path:
        path = results_dir / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    return _metrics


@pytest.fixture(scope="session", autouse=True)
def _fresh_results():
    """Start each benchmark session with empty report files."""
    RESULTS_DIR.mkdir(exist_ok=True)
    for f in RESULTS_DIR.glob("*.txt"):
        f.unlink()
    for f in RESULTS_DIR.glob("*.json"):
        f.unlink()
    yield
