"""Ablation — the BGDL block-size tradeoff (paper Section 5.5).

"The block size is specified by the user, enabling a tunable tradeoff
between communication amount and memory consumption": larger blocks mean
fewer remote fetches per vertex but more internal fragmentation.  This
ablation sweeps the block size and reports (a) the one-sided operation
count and simulated latency of the LB mix and (b) the number of blocks
and total bytes reserved — making the tradeoff measurable.
"""

from repro.analysis.scaling import format_table
from repro.gda import GdaConfig, GdaDatabase
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import XC40, run_spmd
from repro.workloads import MIXES, aggregate_oltp, run_oltp_rank

from conftest import bench_ops

PARAMS = KroneckerParams(scale=8, edge_factor=8, seed=14)
NRANKS = 4
# 64 B is below the single-level-indirection capacity needed by the
# heavy-tail hub vertices of a scale-8 graph (see plan_layout), so the
# sweep starts at 128 B.
BLOCK_SIZES = [128, 256, 512, 2048]


def _run_block_size(block_size, n_ops):
    def prog(ctx):
        db = GdaDatabase.create(
            ctx,
            GdaConfig(
                block_size=block_size,
                blocks_per_rank=max(
                    16384, 64 * PARAMS.n_edges // (ctx.nranks * block_size) * 64
                ),
            ),
        )
        g = build_lpg(ctx, db, PARAMS, default_schema())
        blocks_used = sum(
            db.blocks.allocated_count(ctx, r) for r in range(ctx.nranks)
        )
        snap = ctx.rt.trace.counters[ctx.rank].snapshot()
        ctx.barrier()
        # read-mostly mix: the block-size effect on data movement is not
        # drowned out by contention-retry atomics
        oltp = run_oltp_rank(ctx, g, MIXES["RM"], n_ops, seed=15)
        ops = ctx.rt.trace.counters[ctx.rank].diff(snap)
        return oltp, blocks_used, ops

    _, res = run_spmd(NRANKS, prog, profile=XC40)
    agg = aggregate_oltp(MIXES["RM"], [r[0] for r in res])
    blocks_used = res[0][1]
    # puts+gets only: block fetches, the quantity the block size governs
    total_ops = sum(r[2]["puts"] + r[2]["gets"] for r in res)
    total_bytes = sum(r[2]["bytes_put"] + r[2]["bytes_got"] for r in res)
    return agg, blocks_used, total_ops, total_bytes


def test_blocksize_ablation(benchmark, report):
    n_ops = bench_ops()

    def run_all():
        return {bs: _run_block_size(bs, n_ops) for bs in BLOCK_SIZES}

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for bs, (agg, blocks_used, total_ops, total_bytes) in data.items():
        rows.append(
            [
                bs,
                f"{agg.throughput:,.0f}",
                total_ops,
                f"{total_bytes / 1e6:.2f}",
                blocks_used,
                f"{blocks_used * bs / 1e6:.2f}",
            ]
        )
    report(
        "ablation_blocksize",
        "BGDL block-size ablation (RM mix, scale 8, 4 ranks)\n"
        + format_table(
            [
                "block B",
                "RM ops/s",
                "1-sided ops",
                "MB moved",
                "blocks",
                "MB reserved",
            ],
            rows,
        ),
    )
    small, large = BLOCK_SIZES[0], BLOCK_SIZES[-1]
    # the tradeoff: larger blocks -> fewer one-sided operations...
    assert data[large][2] < data[small][2]
    # ...but more memory reserved for the same data
    assert data[large][1] * large > data[small][1] * small
