"""Feature ablations: transaction batching and dynamic rebalancing.

Two design-choice studies beyond the paper's figures:

* **transaction batching** — amortizing transaction start/commit overhead
  over several operations (LinkBench-style multi-op transactions);
* **dynamic rebalancing** — the Section 3.4 motivation for volatile IDs:
  redistribute a skewed graph between collective transactions and measure
  the OLTP effect.
"""

from repro.analysis.scaling import format_table
from repro.gda import GdaConfig, GdaDatabase, rebalance
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import XC40, run_spmd
from repro.workloads import MIXES, aggregate_oltp, run_oltp_rank
from repro.workloads.oltp import OpType, WorkloadMix

from conftest import bench_ops

PARAMS = KroneckerParams(scale=8, edge_factor=8, seed=71)
NRANKS = 4

#: Pure-read mix for the batching measurement: read locks never conflict,
#: so the comparison isolates start/commit amortization from the
#: lock-hold-time side effect of longer transactions (which the RM rows
#: in the report display as growing failure counts).
READS = WorkloadMix(
    "READS",
    {OpType.GET_PROPS: 0.3, OpType.COUNT_EDGES: 0.2, OpType.GET_EDGES: 0.5},
)


def test_txn_batching_ablation(benchmark, report):
    n_ops = bench_ops()

    def run_all():
        def prog(ctx):
            db = GdaDatabase.create(
                ctx,
                GdaConfig(blocks_per_rank=65536, lock_max_retries=256),
            )
            g = build_lpg(ctx, db, PARAMS, default_schema())
            out = {}
            for k in (1, 4, 16):
                ctx.barrier()
                out[("READS", k)] = run_oltp_rank(
                    ctx, g, READS, n_ops, seed=6, ops_per_txn=k
                )
                ctx.barrier()
                out[("RM", k)] = run_oltp_rank(
                    ctx, g, MIXES["RM"], n_ops, seed=6, ops_per_txn=k
                )
            return out

        _, res = run_spmd(NRANKS, prog, profile=XC40)
        return {
            key: aggregate_oltp(
                READS if key[0] == "READS" else MIXES["RM"],
                [r[key] for r in res],
            )
            for key in res[0]
        }

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [mix, k, f"{agg.throughput:,.0f}", f"{agg.failed_fraction * 100:.2f}%"]
        for (mix, k), agg in data.items()
    ]
    report(
        "ablation_features",
        "Transaction batching (4 ranks): ops per transaction\n"
        + format_table(["mix", "ops/txn", "ops/s (sim)", "failed"], rows),
    )
    # pure reads never conflict: batching must not slow them down (it
    # amortizes start/commit); with writes in the mix (RM rows), longer
    # batches hold locks longer — the blast-radius/contention tradeoff
    # is reported, not asserted.
    assert data[("READS", 16)].throughput > 0.9 * data[("READS", 1)].throughput
    assert data[("READS", 16)].n_failed == 0


def test_rebalance_ablation(benchmark, report):
    n_ops = bench_ops()

    def run_all():
        def prog(ctx):
            from repro.gdi import Datatype

            db = GdaDatabase.create(ctx, GdaConfig(blocks_per_rank=131072))
            if ctx.rank == 0:
                db.create_property_type(ctx, "payload", dtype=Datatype.BYTES)
            ctx.barrier()
            db.replica(ctx).sync()
            payload = db.property_type(ctx, "payload")
            # skewed placement: every (fat) vertex homed on rank 0, so all
            # holder reads hammer rank 0's NIC
            tx = db.start_collective_transaction(ctx, write=True)
            if ctx.rank == 0:
                for i in range(256):
                    tx.create_vertex(
                        i * ctx.nranks, properties=[(payload, b"x" * 2048)]
                    )
            tx.commit()
            from repro.generator.lpg import GeneratedGraph
            from repro.generator.schema import LpgSchema

            g = GeneratedGraph(
                db=db, params=PARAMS, schema=LpgSchema(n_edge_labels=0),
                labels={}, ptypes={}, vid_map={}, directed=True,
                n_vertices=256 * ctx.nranks, n_edges_requested=0,
                n_edges_loaded=0,
            )
            ctx.barrier()
            skewed = run_oltp_rank(ctx, g, MIXES["RM"], n_ops, seed=8)
            sizes_before = ctx.allgather(
                len(db.directory.local_vertices(ctx))
            )
            rebalance(ctx, db)
            sizes_after = ctx.allgather(len(db.directory.local_vertices(ctx)))
            ctx.barrier()
            balanced = run_oltp_rank(ctx, g, MIXES["RM"], n_ops, seed=8)
            return skewed, balanced, sizes_before, sizes_after

        _, res = run_spmd(NRANKS, prog, profile=XC40)
        skewed = aggregate_oltp(MIXES["RM"], [r[0] for r in res])
        balanced = aggregate_oltp(MIXES["RM"], [r[1] for r in res])
        return skewed, balanced, res[0][2], res[0][3]

    skewed, balanced, before, after = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    report(
        "ablation_features",
        "Dynamic rebalancing (RM mix on a rank-0-skewed graph)\n"
        + format_table(
            ["state", "shard sizes", "ops/s (sim)"],
            [
                ["skewed", str(before), f"{skewed.throughput:,.0f}"],
                ["rebalanced", str(after), f"{balanced.throughput:,.0f}"],
            ],
        ),
    )
    assert max(after) - min(after) < max(before) - min(before)
    # receiver-side NIC congestion makes the skew measurable: flattening
    # the shards improves throughput (Section 3.4's load-balancing payoff)
    assert balanced.throughput > skewed.throughput
