"""Validation of the simulated network model against its own formulas.

The scaling shapes of Figures 4 and 6 are only as trustworthy as the cost
model that produces them.  This benchmark measures simulated costs of the
substrate's primitives end-to-end (through the runtime, not the formulas)
and checks the analytic properties the model promises: collectives scale
as log2(P), alltoall as (P-1), one-sided latency is size-affine, and
remote atomics cost alpha + gamma.
"""

import pytest

from repro.analysis.scaling import format_table
from repro.rma import UNIFORM, RmaRuntime, run_spmd
from repro.rma.costmodel import log2ceil


def _barrier_cost(nranks):
    def prog(ctx):
        t0 = ctx.clock
        ctx.barrier()
        return ctx.clock - t0

    _, res = run_spmd(nranks, prog, profile=UNIFORM)
    return res[0]


def _alltoall_cost(nranks, nbytes):
    def prog(ctx):
        payload = [b"x" * nbytes for _ in range(ctx.nranks)]
        ctx.barrier()
        t0 = ctx.clock
        ctx.alltoall(payload)
        return ctx.clock - t0

    _, res = run_spmd(nranks, prog, profile=UNIFORM)
    return res[0]


def test_costmodel_validation(benchmark, report):
    def run_all():
        barrier = {p: _barrier_cost(p) for p in (2, 4, 8, 16, 32)}
        alltoall = {p: _alltoall_cost(p, 64) for p in (2, 4, 8, 16)}
        rt = RmaRuntime(2, profile=UNIFORM)
        win = rt.allocate_window("w", 1 << 20)
        c = rt.context(0)
        onesided = {}
        for nbytes in (8, 1024, 65536):
            t0 = c.clock
            c.put(win, 1, 0, b"x" * nbytes)
            onesided[nbytes] = c.clock - t0
        t0 = c.clock
        c.cas(win, 1, 0, 0, 1)
        atomic = c.clock - t0
        t0 = c.clock
        c.put(win, 0, 0, b"x" * 1024)
        local = c.clock - t0
        return barrier, alltoall, onesided, atomic, local

    barrier, alltoall, onesided, atomic, local = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    rows = [["barrier", p, f"{t * 1e6:.3f}"] for p, t in barrier.items()]
    rows += [["alltoall(64B)", p, f"{t * 1e6:.3f}"] for p, t in alltoall.items()]
    rows += [
        [f"put({n}B remote)", 2, f"{t * 1e6:.3f}"] for n, t in onesided.items()
    ]
    rows += [["cas remote", 2, f"{atomic * 1e6:.3f}"]]
    rows += [["put(1KiB local)", 1, f"{local * 1e6:.3f}"]]
    report(
        "costmodel_validation",
        "Simulated primitive costs (us) measured through the runtime\n"
        + format_table(["primitive", "ranks", "us"], rows),
    )

    # barrier ~ log2(P) * alpha
    for p, t in barrier.items():
        assert t == pytest.approx(log2ceil(p) * UNIFORM.alpha, rel=1e-9)
    # alltoall ~ (P-1) * (alpha + n*beta)
    for p, t in alltoall.items():
        expect = (p - 1) * (UNIFORM.alpha + 64 * UNIFORM.beta)
        assert t == pytest.approx(expect, rel=1e-9)
    # one-sided: affine in size
    assert onesided[1024] == pytest.approx(
        UNIFORM.alpha + 1024 * UNIFORM.beta, rel=1e-9
    )
    assert onesided[65536] > onesided[1024] > onesided[8]
    # atomics: alpha + gamma
    assert atomic == pytest.approx(UNIFORM.alpha + UNIFORM.gamma, rel=1e-9)
    # local ops are much cheaper than remote
    assert local < onesided[1024] / 5
