"""Figure 4 — OLTP throughput, weak & strong scaling, GDA vs JanusGraph.

Weak scaling: the Kronecker scale grows with the rank count (fixed
vertices per rank).  Strong scaling: a fixed graph processed by more
ranks.  Both on the XC40 and XC50 machine profiles, for all four Table 3
mixes, with the failed-transaction percentages annotated — and the
JanusGraph-class baseline where it fits (its missing rows reproduce the
paper's "missing baselines indicate inability to scale").

Expected shapes (paper Section 6.4): throughput rises with ranks in both
scalings; RM/RI gain most (fewer updates, less synchronization); XC50
beats XC40 on read-mostly mixes (more network bandwidth per core); GDA
exceeds JanusGraph by orders of magnitude.
"""

import pytest

from repro.analysis.scaling import format_table
from repro.baselines import JanusGraphSim, JanusScaleError, run_janus_oltp_rank
from repro.gda import GdaConfig, GdaDatabase, RetryPolicy
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import XC40, XC50, run_spmd
from repro.workloads import MIXES, aggregate_oltp, run_oltp_rank

from conftest import bench_ops, bench_ranks

BASE_SCALE = 7  # weak scaling: vertices per rank = 2^BASE_SCALE
STRONG_SCALE = 9  # strong scaling: fixed graph of 2^9 vertices
EDGE_FACTOR = 8
MIX_ORDER = ("RM", "RI", "LB", "WI")


def _params_for(mode: str, nranks: int) -> KroneckerParams:
    if mode == "weak":
        scale = BASE_SCALE + max(0, (nranks - 1).bit_length())
    else:
        scale = STRONG_SCALE
    return KroneckerParams(scale=scale, edge_factor=EDGE_FACTOR, seed=2)


def _run_gda_cell(mode, nranks, profile, n_ops):
    params = _params_for(mode, nranks)

    def prog(ctx):
        db = GdaDatabase.create(
            ctx,
            GdaConfig(
                blocks_per_rank=max(16384, 8 * params.n_edges // ctx.nranks),
                dht_entries_per_rank=max(4096, 4 * params.n_vertices),
            ),
        )
        g = build_lpg(ctx, db, params, default_schema())
        out = {}
        for name in MIX_ORDER:
            ctx.barrier()
            out[name] = run_oltp_rank(
                ctx,
                g,
                MIXES[name],
                n_ops,
                seed=5,
                retry=RetryPolicy(max_attempts=3),
            )
        return out

    _, res = run_spmd(nranks, prog, profile=profile)
    return {
        name: aggregate_oltp(MIXES[name], [r[name] for r in res])
        for name in MIX_ORDER
    }, params


def _run_replication_twin(mode, nranks, profile, n_ops):
    """WI-mix twin with primary-backup block replication enabled.

    Measures the availability layer's cost for the replication-overhead
    columns: the relative commit-latency delta against the
    replication-off WI cell, and the bytes mirrored to backup ranks.
    Only the write-heaviest mix is twinned — the overhead is a property
    of the commit path, so read-dominated cells would only dilute it.
    """
    params = _params_for(mode, nranks)

    def prog(ctx):
        db = GdaDatabase.create(
            ctx,
            GdaConfig(
                blocks_per_rank=max(16384, 8 * params.n_edges // ctx.nranks),
                dht_entries_per_rank=max(4096, 4 * params.n_vertices),
                replication=True,
            ),
        )
        g = build_lpg(ctx, db, params, default_schema())
        ctx.barrier()
        return run_oltp_rank(
            ctx,
            g,
            MIXES["WI"],
            n_ops,
            seed=5,
            retry=RetryPolicy(max_attempts=3),
        )

    rt, res = run_spmd(nranks, prog, profile=profile)
    agg = aggregate_oltp(MIXES["WI"], res)
    mirrored = sum(
        rt.trace.counters[r].snapshot()["mirrored_bytes"]
        for r in range(nranks)
    )
    return agg, mirrored


def _mean_latency(agg):
    lats = [x for xs in agg.latencies.values() for x in xs]
    return sum(lats) / len(lats) if lats else 0.0


def _run_janus_cell(mode, nranks, profile, n_ops):
    params = _params_for(mode, nranks)

    def prog(ctx):
        sim = JanusGraphSim.create(ctx)
        sim.load_graph(ctx, params, default_schema())
        out = {}
        for name in MIX_ORDER:
            ctx.barrier()
            out[name] = run_janus_oltp_rank(
                ctx, sim, params, MIXES[name], n_ops, seed=5
            )
        return out

    _, res = run_spmd(nranks, prog, profile=profile)
    return {
        name: aggregate_oltp(MIXES[name], [r[name] for r in res])
        for name in MIX_ORDER
    }


@pytest.mark.parametrize("mode", ["weak", "strong"])
def test_fig4(mode, benchmark, report):
    ranks = bench_ranks()
    n_ops = bench_ops()

    def run_all():
        table = {}
        repl = {}
        for profile in (XC40, XC50):
            for nranks in ranks:
                table[(profile.name, nranks)] = _run_gda_cell(
                    mode, nranks, profile, n_ops
                )
                repl[(profile.name, nranks)] = _run_replication_twin(
                    mode, nranks, profile, n_ops
                )
        janus = {}
        for nranks in ranks:
            try:
                janus[nranks] = _run_janus_cell(mode, nranks, XC40, n_ops)
            except JanusScaleError:
                janus[nranks] = None
        return table, repl, janus

    table, repl, janus = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for (profile_name, nranks), (aggs, params) in table.items():
        for name in MIX_ORDER:
            agg = aggs[name]
            repl_delta = mirrored = "-"
            if name == "WI":
                twin, nbytes = repl[(profile_name, nranks)]
                base = _mean_latency(agg)
                if base > 0:
                    delta = (_mean_latency(twin) / base - 1.0) * 100.0
                    repl_delta = f"{delta:+.1f}%"
                mirrored = f"{nbytes:,}"
            rows.append(
                [
                    "GDA",
                    profile_name,
                    nranks,
                    f"2^{params.scale}",
                    name,
                    f"{agg.throughput:,.0f}",
                    f"{agg.failed_fraction * 100:.2f}%",
                    f"{agg.retries_per_commit:.2f}",
                    repl_delta,
                    mirrored,
                ]
            )
    for nranks, aggs in janus.items():
        params = _params_for(mode, nranks)
        for name in MIX_ORDER:
            if aggs is None:
                rows.append(
                    [
                        "JanusGraph",
                        "-",
                        nranks,
                        f"2^{params.scale}",
                        name,
                        "DNS",
                        "-",
                        "-",
                        "-",
                        "-",
                    ]
                )
            else:
                rows.append(
                    [
                        "JanusGraph",
                        "-",
                        nranks,
                        f"2^{params.scale}",
                        name,
                        f"{aggs[name].throughput:,.0f}",
                        f"{aggs[name].failed_fraction * 100:.2f}%",
                        "-",
                        "-",
                        "-",
                    ]
                )
    report(
        f"fig4_oltp_{mode}_scaling",
        f"Figure 4 ({mode} scaling): OLTP throughput [ops/s, simulated]\n"
        + format_table(
            [
                "system",
                "profile",
                "ranks",
                "|V|",
                "mix",
                "ops/s",
                "failed",
                "ret/cmt",
                "repl lat",
                "mirrored B",
            ],
            rows,
        ),
    )

    # the replication twin really mirrored: the commit write-back pushed
    # dirty blocks to the backup ranks in every twinned cell
    for (profile_name, nranks), (_twin, nbytes) in repl.items():
        assert nbytes > 0, (profile_name, nranks)

    # --- shape assertions from Section 6.4 -----------------------------
    # The single-rank point is excluded: with one rank every access is a
    # local memory operation (no network), which inflates throughput the
    # same way a single fat node would in the paper's setup.
    multi = [r for r in ranks if r >= 2]
    for profile in (XC40, XC50):
        rm = {
            nranks: table[(profile.name, nranks)][0]["RM"].throughput
            for nranks in multi
        }
        if len(multi) >= 2:
            assert rm[multi[-1]] > rm[multi[0]], (profile.name, rm)
    if len(ranks) > 1:
        p = ranks[-1]
        # XC50 >= XC40 on the read-mostly mix at the largest scale point
        xc40_rm = table[("XC40", p)][0]["RM"].throughput
        xc50_rm = table[("XC50", p)][0]["RM"].throughput
        assert xc50_rm > 0.9 * xc40_rm
        # GDA beats JanusGraph by orders of magnitude where Janus runs
        if janus.get(p):
            assert (
                table[("XC40", p)][0]["RM"].throughput
                > 10 * janus[p]["RM"].throughput
            )
