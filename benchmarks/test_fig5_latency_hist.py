"""Figure 5 — per-operation latency histograms of the LinkBench mix.

Runs the LB workload at S1..S8 (1, 2, 4, 8 ranks) for GDA and the
JanusGraph-class baseline and prints log-spaced latency histograms per
operation class, as in the paper's Figure 5.

Expected shapes (Section 6.4): GDA operations mostly below ~1 us on one
server and in the 10-100 us range on multiple servers, with vertex
deletions the most expensive class; JanusGraph never below 200 us, most
operations >= 500 us, deletions starting around 2000 us.
"""

import numpy as np

from repro.analysis import log_histogram, summarize
from repro.analysis.scaling import format_table
from repro.baselines import JanusGraphSim, run_janus_oltp_rank
from repro.gda import GdaConfig, GdaDatabase
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import XC40, run_spmd
from repro.workloads import MIXES, OpType, aggregate_oltp, run_oltp_rank

from conftest import bench_ops, bench_ranks

PARAMS = KroneckerParams(scale=9, edge_factor=8, seed=4)


def _collect(nranks, n_ops):
    def prog(ctx):
        db = GdaDatabase.create(
            ctx,
            GdaConfig(
                blocks_per_rank=max(16384, 8 * PARAMS.n_edges // ctx.nranks),
                dht_entries_per_rank=4 * PARAMS.n_vertices,
            ),
        )
        g = build_lpg(ctx, db, PARAMS, default_schema())
        sim = JanusGraphSim.create(ctx)
        sim.load_graph(ctx, PARAMS, default_schema())
        ctx.barrier()
        gda = run_oltp_rank(ctx, g, MIXES["LB"], n_ops, seed=11)
        janus = run_janus_oltp_rank(ctx, sim, PARAMS, MIXES["LB"], n_ops, seed=11)
        return gda, janus

    _, res = run_spmd(nranks, prog, profile=XC40)
    return (
        aggregate_oltp(MIXES["LB"], [r[0] for r in res]),
        aggregate_oltp(MIXES["LB"], [r[1] for r in res]),
    )


def _ascii_hist(latencies_us, width=40) -> str:
    hist = log_histogram(latencies_us, n_buckets=12)
    if not hist:
        return "(no samples)"
    peak = max(c for _, _, c in hist) or 1
    lines = []
    for lo, hi, count in hist:
        bar = "#" * max(0, round(width * count / peak))
        lines.append(f"  {lo:10.2f}-{hi:10.2f} us |{bar} {count}")
    return "\n".join(lines)


def test_fig5(benchmark, report):
    ranks = [r for r in bench_ranks() if r <= 8] or [1, 2]
    n_ops = max(bench_ops(), 150)

    def run_all():
        return {nranks: _collect(nranks, n_ops) for nranks in ranks}

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # summary table: mean latency per op class, per server count, per system
    rows = []
    for nranks, (gda, janus) in data.items():
        for op in MIXES["LB"].fractions:
            for system, agg in (("GDA", gda), ("JanusGraph", janus)):
                vals = agg.latencies.get(op)
                if not vals:
                    continue
                s = summarize(np.array(vals) * 1e6, warmup_fraction=0.0)
                rows.append(
                    [f"S{nranks}", system, op.value, s.n,
                     f"{s.mean:.2f}", f"{s.p95:.2f}"]
                )
    report(
        "fig5_latency_histograms",
        "Figure 5 summary: LB operation latencies (us, simulated)\n"
        + format_table(
            ["servers", "system", "operation", "n", "mean", "p95"], rows
        ),
    )

    # full histograms for the largest configuration
    largest = ranks[-1]
    gda, janus = data[largest]
    for system, agg in (("GDA", gda), ("JanusGraph", janus)):
        sections = []
        for op in MIXES["LB"].fractions:
            vals = agg.latencies.get(op)
            if not vals:
                continue
            sections.append(
                f"{op.value}:\n" + _ascii_hist(np.array(vals) * 1e6)
            )
        report(
            "fig5_latency_histograms",
            f"Histograms at S{largest} — {system}\n" + "\n".join(sections),
        )

    # --- shape assertions from Section 6.4 / Figure 5 -------------------
    single = data.get(1)
    if single:
        gda1, janus1 = single
        gda_all = [l for ls in gda1.latencies.values() for l in ls]
        # most GDA single-server operations are ~1 us scale
        assert np.median(gda_all) < 5e-6
        janus_all = [l for ls in janus1.latencies.values() for l in ls]
        assert min(janus_all) >= 200e-6  # JanusGraph floor
        dels = janus1.latencies.get(OpType.DEL_VERTEX)
        if dels:
            assert min(dels) >= 2000e-6
    gda_l, janus_l = data[largest]
    gda_all = [l for ls in gda_l.latencies.values() for l in ls]
    # multi-server GDA: 10-100 us regime, still far below JanusGraph
    assert np.median(gda_all) < 200e-6
    del_lat = gda_l.latencies.get(OpType.DEL_VERTEX)
    read_lat = gda_l.latencies.get(OpType.GET_PROPS)
    if del_lat and read_lat:
        assert np.mean(del_lat) > np.mean(read_lat)
