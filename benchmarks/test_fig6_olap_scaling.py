"""Figure 6 — OLAP/OLSP runtime, weak & strong scaling, vs baselines.

Kernels: BFS, PageRank (PR), CDLP, WCC, LCC, k-hop, the BI2-style OLSP
query, and GNN (graph convolution) — all through GDA collective
transactions — plus the Graph500-class raw-CSR BFS and the
JanusGraph-class RPC BFS on the same simulated network.

Expected shapes (Section 6.5): mild runtime growth in weak scaling (BFS,
k-hop, GNN) vs sharper slopes for WCC/CDLP/PR/LCC (more cumulative
communication); runtime drops in strong scaling; GDA BFS within 2-4x of
Graph500, JanusGraph orders of magnitude slower.
"""

import pytest

from repro.analysis.scaling import format_table
from repro.baselines import (
    JanusGraphSim,
    build_csr_shard,
    graph500_bfs,
    janus_bfs,
)
from repro.gda import GdaConfig, GdaDatabase
from repro.gdi import EdgeOrientation
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import XC40, run_spmd
from repro.workloads import (
    bfs,
    bi2_style_query,
    cdlp,
    gcn_forward,
    khop_count,
    lcc,
    load_local_adjacency,
    pagerank,
    random_gcn_weights,
    sssp,
    triangle_count,
    wcc,
)

from conftest import bench_ranks

BASE_SCALE = 6  # weak: vertices per rank = 2^BASE_SCALE
STRONG_SCALE = 9
EDGE_FACTOR = 8
FEATURE_DIM = 4
PR_ITERS = 10
CDLP_ITERS = 5
GNN_LAYERS = 2


def _params_for(mode, nranks):
    if mode == "weak":
        scale = BASE_SCALE + max(0, (nranks - 1).bit_length())
    else:
        scale = STRONG_SCALE
    return KroneckerParams(scale=scale, edge_factor=EDGE_FACTOR, seed=6)


def _run_cell(mode, nranks):
    params = _params_for(mode, nranks)
    schema = default_schema(feature_dim=FEATURE_DIM)

    def prog(ctx):
        db = GdaDatabase.create(
            ctx,
            GdaConfig(
                blocks_per_rank=max(16384, 8 * params.n_edges // ctx.nranks),
                dht_entries_per_rank=max(4096, 4 * params.n_vertices),
            ),
        )
        g = build_lpg(ctx, db, params, schema)
        times = {}

        def timed(name, fn):
            ctx.barrier()
            t0 = ctx.clock
            out = fn()
            ctx.barrier()
            times[name] = ctx.clock - t0
            return out

        adj = timed(
            "adjacency",
            lambda: load_local_adjacency(ctx, g, EdgeOrientation.ANY),
        )
        timed("BFS", lambda: bfs(ctx, g, 0, adj=adj))
        timed("k-hop(3)", lambda: khop_count(ctx, g, 0, 3, adj=adj))
        timed("PR", lambda: pagerank(ctx, g, PR_ITERS))
        timed("WCC", lambda: wcc(ctx, g, adj=adj))
        timed("CDLP", lambda: cdlp(ctx, g, CDLP_ITERS, adj=adj))
        timed("LCC", lambda: lcc(ctx, g))
        timed("SSSP", lambda: sssp(ctx, g, 0))
        timed("Triangles", lambda: triangle_count(ctx, g))
        timed("BI2", lambda: bi2_style_query(ctx, g))
        timed(
            "GNN",
            lambda: gcn_forward(
                ctx, g, random_gcn_weights(GNN_LAYERS, FEATURE_DIM, seed=1)
            ),
        )
        # baselines on the same network
        shard = timed("g500 build", lambda: build_csr_shard(ctx, params))
        timed("Graph500-BFS", lambda: graph500_bfs(ctx, shard, 0))
        sim = JanusGraphSim.create(ctx)
        sim.load_graph(ctx, params, schema)
        timed("Janus-BFS", lambda: janus_bfs(ctx, sim, 0))
        # BFS including the GDI adjacency fetch: the fair one-shot
        # comparison against Graph500 (whose CSR is its native format).
        times["BFS+fetch"] = times["adjacency"] + times["BFS"]
        return times

    rt, res = run_spmd(nranks, prog, profile=XC40)
    snaps = [rt.trace.counters[r].snapshot() for r in range(nranks)]
    coal = {
        k: sum(s[k] for s in snaps)
        for k in ("batches", "batched_ops", "msgs_saved", "bytes_batched")
    }
    return res[0], params, coal


KERNELS = [
    "BFS",
    "BFS+fetch",
    "k-hop(3)",
    "PR",
    "WCC",
    "CDLP",
    "LCC",
    "SSSP",
    "Triangles",
    "BI2",
    "GNN",
    "Graph500-BFS",
    "Janus-BFS",
]


@pytest.mark.parametrize("mode", ["weak", "strong"])
def test_fig6(mode, benchmark, report, metrics):
    ranks = [r for r in bench_ranks() if r >= 2] or [2, 4]

    def run_all():
        return {nranks: _run_cell(mode, nranks) for nranks in ranks}

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for kernel in KERNELS:
        row = [kernel]
        for nranks in ranks:
            times, params, _ = data[nranks]
            row.append(f"{times[kernel] * 1e3:.3f}")
        rows.append(row)
    headers = ["kernel"] + [
        f"{r} ranks (2^{data[r][1].scale}V)" for r in ranks
    ]
    coal_lines = "\n".join(
        f"  {r} ranks: batches={data[r][2]['batches']}"
        f" batched_ops={data[r][2]['batched_ops']}"
        f" msgs_saved={data[r][2]['msgs_saved']}"
        f" bytes_batched={data[r][2]['bytes_batched']}"
        for r in ranks
    )
    report(
        f"fig6_olap_{mode}_scaling",
        f"Figure 6 ({mode} scaling): OLAP/OLSP runtimes [ms, simulated]\n"
        + format_table(headers, rows)
        + "\nRMA doorbell coalescing (summed over ranks):\n"
        + coal_lines,
    )
    metrics(
        f"fig6_olap_{mode}_scaling",
        {
            "mode": mode,
            "ranks": ranks,
            "edge_factor": EDGE_FACTOR,
            "scales": {str(r): data[r][1].scale for r in ranks},
            "times_ms": {
                str(r): {
                    k: round(v * 1e3, 6) for k, v in data[r][0].items()
                }
                for r in ranks
            },
            "coalescing": {str(r): data[r][2] for r in ranks},
        },
    )

    # --- shape assertions from Section 6.5 ------------------------------
    first, last = ranks[0], ranks[-1]
    t_first = data[first][0]
    t_last = data[last][0]
    # GDA BFS within the paper's 2-4x envelope of Graph500 (we allow 6x)
    for nranks in ranks:
        times = data[nranks][0]
        assert times["BFS"] <= 6 * times["Graph500-BFS"] + 1e-4, nranks
    # JanusGraph BFS is orders of magnitude slower than GDA BFS
    assert t_last["Janus-BFS"] > 10 * t_last["BFS"]
    if mode == "strong" and len(ranks) >= 2:
        # strong scaling: heavy bandwidth-bound kernels get faster with
        # more ranks.  PR is excluded here: combiner pre-aggregation cut
        # its absolute runtime ~2-4x, leaving it alltoall-latency-bound
        # at this toy scale, where the (P-1)*alpha term grows with P.
        for kernel in ("CDLP", "WCC", "LCC"):
            assert t_last[kernel] < t_first[kernel] * 1.2, kernel
    if mode == "weak" and len(ranks) >= 2:
        # weak scaling: PR/WCC/CDLP slopes are steeper than BFS/k-hop
        bfs_growth = t_last["BFS"] / max(t_first["BFS"], 1e-12)
        pr_growth = t_last["PR"] / max(t_first["PR"], 1e-12)
        assert pr_growth > 0.5 * bfs_growth
