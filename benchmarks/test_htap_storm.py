"""HTAP storm: snapshot OLAP under an OLTP write storm (ISSUE 10).

The experiment the MVCC subsystem exists for: a write-heavy OLTP
population and analytics-class full scans hit the same shards at the
same time.

* **baseline** — the OLTP-only mix alone: admitted-OLTP p99 with no
  OLAP in flight.
* **HTAP, snapshots on** — the same OLTP mix plus analytics-class
  aggregate scans.  Scans ride MVCC snapshots: they take no read locks,
  never abort, and never force an OLTP writer to wait.  Acceptance:
  *zero* snapshot-read aborts and admitted-OLTP p99 within 1.5x of the
  no-OLAP baseline.
* **HTAP, snapshots off** — the identical request stream against a
  database built without MVCC.  Scans read-lock every vertex they
  touch, writers conflict with them, and both sides burn restarts: the
  lock-contended collapse the paper's Section 2 HTAP motivation
  describes.

A final OLAP phase quiesces serving and demonstrates the collective
side: label-count aggregation and PageRank over one frozen watermark, a
held collective snapshot that still equals the pre-mutation full-scan
oracle after vertices are deleted underneath it, and watermark GC
reclaiming the entire version history once the last snapshot closes.

All latencies are simulated seconds.  Environment knobs:
``REPRO_HTAP_REQUESTS`` (requests per window, default 400) and
``REPRO_HTAP_USERS`` (closed-loop population, default 3000).
"""

import json
import os
import pathlib
import random
import sys
from dataclasses import dataclass

import numpy as np

import pytest

from repro.gda import GdaConfig, GdaDatabase, RetryPolicy
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import UNIFORM, run_spmd
from repro.serve import ClientSession, ClosedLoopLoad, GraphServer, ServeConfig
from repro.serve.request import ANALYTICS, OLTP
from repro.serve.workload import ANALYTICS_AGG, POINT_READ
from repro.workloads.analytics import pagerank
from repro.workloads.bi import group_count_by_label

#: Committed perf-smoke baseline: snapshot-mode OLTP service p99 the CI
#: gate holds the HTAP window to (simulated time, reproducible in CI)
BASELINE_PATH = pathlib.Path(__file__).parent / "baselines" / "perf_smoke.json"

NRANKS = 10  # 1 front-end rank + 9 workers
WORKERS = NRANKS - 1
QUEUE_CAP = 64
PARAMS = KroneckerParams(scale=8, edge_factor=8, seed=23)
SCHEMA = default_schema()
#: plain uniform NIC profile: traffic_storm covers congestion skew; this
#: experiment isolates the *locking* interference between the classes
PROF = UNIFORM
RETRY = RetryPolicy(max_attempts=10)
N_TENANTS = 16
ANALYTICS_FRACTION = 0.02
WRITE_FRACTION = 0.4

#: OLTP write: point update of the property the analytics scan filters
#: on, so with locking the two classes conflict on every hot vertex
WRITE_Q = "MATCH (v {id = $src}) SET v.p_score = $score"


@pytest.fixture(autouse=True)
def _fine_grained_thread_switching():
    """Shrink the interpreter's thread switch interval for this module.

    A worker thread executing a multi-hundred-microsecond simulated scan
    would otherwise hold the GIL for the default 5ms quantum, stalling
    every other worker mid-request in *real* time.  The virtual-server
    pool absorbs most of that, but a long stall still biases slot
    checkout (free slots run dry while stalled workers hold theirs), so
    finer real-time interleaving keeps the simulated tail stable -- and
    gives the lock-mode windows the genuine scan/writer overlap the
    conflict measurements are about."""
    prev = sys.getswitchinterval()
    sys.setswitchinterval(1e-4)
    try:
        yield
    finally:
        sys.setswitchinterval(prev)


def htap_requests() -> int:
    return int(os.environ.get("REPRO_HTAP_REQUESTS", "400"))


def htap_users() -> int:
    return int(os.environ.get("REPRO_HTAP_USERS", "3000"))


@dataclass(frozen=True)
class HtapMix:
    """Write-heavy OLTP point ops + optional analytics-class scans."""

    n_vertices: int
    analytics_fraction: float = 0.0
    write_fraction: float = WRITE_FRACTION
    seed: int = 0

    def make(self, user: int, seq: int) -> tuple[str, str, dict]:
        rng = random.Random(f"htap/{self.seed}/{user}/{seq}")
        draw = rng.random()
        if draw < self.analytics_fraction:
            return ANALYTICS, ANALYTICS_AGG, {"minscore": 50.0}
        if draw < self.analytics_fraction + self.write_fraction:
            # each user updates its own home vertex: disjoint write sets,
            # the natural OLTP pattern.  Writers therefore never conflict
            # with each other -- only the locking scans conflict with
            # them, which is exactly the interference under test
            src = user % self.n_vertices
            return OLTP, WRITE_Q, {"src": src, "score": rng.random() * 100.0}
        return OLTP, POINT_READ, {"src": rng.randrange(self.n_vertices)}


def _stats(records, qclass=OLTP):
    ok = [r for r in records if r.status == "ok" and r.qclass == qclass]
    lat = np.array([r.latency for r in ok] or [0.0])
    # service = execution time inside the worker (lock waits, retries,
    # backoff), excluding admission-queue wait: the direct lock signal
    svc = np.array([r.service for r in ok] or [0.0])
    by_status = {}
    for r in records:
        if r.qclass == qclass:
            by_status[r.status] = by_status.get(r.status, 0) + 1
    # every admitted-and-executed request (ok or fail) has a terminal
    # latency; the max catches lock-timeout victims even when they are
    # too few to move an interpolated percentile
    terminal = [
        r.latency
        for r in records
        if r.qclass == qclass and r.status in ("ok", "fail")
    ]
    return {
        "ok": len(ok),
        "by_status": by_status,
        "p50_latency": float(np.percentile(lat, 50)),
        "p99_latency": float(np.percentile(lat, 99)),
        "max_latency": max(terminal, default=0.0),
        "p50_service": float(np.percentile(svc, 50)),
        "p99_service": float(np.percentile(svc, 99)),
        "restarts": sum(r.attempts for r in records if r.qclass == qclass),
    }


def _run_htap(mvcc: bool):
    """Build a database (with or without MVCC) and drive the two serving
    windows: OLTP-only baseline, then the mixed HTAP window at the same
    offered rate.  Returns (runtime, state, drive-result)."""
    users, n_req = htap_users(), htap_requests()
    state = {}
    cfg = GdaConfig(
        blocks_per_rank=16384,
        replication=True,
        mvcc=mvcc,
        mvcc_gc_interval=64,
    )
    oltp_mix = HtapMix(n_vertices=PARAMS.n_vertices, seed=11)
    htap_mix = HtapMix(
        n_vertices=PARAMS.n_vertices,
        analytics_fraction=ANALYTICS_FRACTION,
        seed=11,
    )

    def build(ctx):
        db = GdaDatabase.create(ctx, cfg)
        g = build_lpg(ctx, db, PARAMS, SCHEMA)
        if ctx.rank == 0:
            state["db"] = db
            state["graph"] = g
        ctx.barrier()

    rt, _ = run_spmd(NRANKS, build, profile=PROF)

    def serve_phase(ctx):
        if ctx.rank == 0:
            state["server"] = GraphServer(
                state["db"],
                config=ServeConfig(queue_capacity=QUEUE_CAP, retry=RETRY),
            )
        ctx.barrier()
        server = state["server"]
        if ctx.rank != 0:
            return server.serve(ctx)
        try:
            return _drive(ctx, server)
        finally:
            server.close()

    def _drive(ctx, server):
        sessions = [
            ClientSession(server, tenant=f"t{i}", session_id=i)
            for i in range(N_TENANTS)
        ]
        # warmup: one user, zero contention -> mean OLTP service time
        warm = ClosedLoopLoad(
            server, sessions, oltp_mix,
            n_users=1, arrival_rate=1.0, n_requests=96, think=0.0,
        ).run(ctx)
        services = [r.service for r in warm if r.status == "ok"]
        mean_service = sum(services) / len(services)
        lam_sat = WORKERS / mean_service
        # generous worker headroom: at 0.25x saturation the odds of
        # *every* worker being busy stay small even with a 300us scan
        # occupying one of them, so scan worker-occupancy cannot queue
        # OLTP -- any p99 inflation left in the HTAP window is lock
        # interference, the effect this experiment isolates
        rate = 0.25 * lam_sat
        # a deep pacing window keeps a large *real* backlog in the
        # admission queue (~rate x horizon ~ 40 requests, below the shed
        # cap), so worker threads genuinely overlap scans with writers
        # -- the lock conflicts under test need that overlap.  Virtual
        # queueing is untouched: admission wait is charged against the
        # virtual-server pool, which stays underutilized at this rate
        horizon = 2.5 * QUEUE_CAP / lam_sat
        windows = {}
        start = server.virtual_now() + 64.0 * mean_service
        for name, mix in (("oltp", oltp_mix), ("htap", htap_mix)):
            recs = ClosedLoopLoad(
                server, sessions, mix,
                n_users=users, arrival_rate=rate, n_requests=n_req,
                start=start, horizon=horizon, shed_backoff=1e-4,
            ).run(ctx)
            windows[name] = recs
            start = (
                max(server.virtual_now(), max(r.arrival for r in recs))
                + 64.0 * mean_service
            )
        drained = server.drain(timeout=120.0)
        return {
            "mean_service": mean_service,
            "rate": rate,
            "windows": windows,
            "drained": drained,
        }

    rt, res = run_spmd(NRANKS, serve_phase, runtime=rt)
    return rt, state, res[0]


def test_htap_storm_snapshots_vs_locks(report, metrics):
    # -- the same storm against both databases ----------------------------
    rt_mv, state_mv, drive_mv = _run_htap(mvcc=True)
    rt_lk, _, drive_lk = _run_htap(mvcc=False)

    base_mv = _stats(drive_mv["windows"]["oltp"])
    htap_mv = _stats(drive_mv["windows"]["htap"])
    olap_mv = _stats(drive_mv["windows"]["htap"], qclass=ANALYTICS)
    base_lk = _stats(drive_lk["windows"]["oltp"])
    htap_lk = _stats(drive_lk["windows"]["htap"])
    olap_lk = _stats(drive_lk["windows"]["htap"], qclass=ANALYTICS)

    db = state_mv["db"]
    graph = state_mv["graph"]
    mvcc = db.mvcc
    reclaimed_in_storm = mvcc.total_reclaimed
    chain_entries_after_storm = mvcc.versions.total_entries()
    installed = sum(
        rt_mv.trace.counters[r].versions_installed for r in range(NRANKS)
    )
    snap_reads = sum(
        rt_mv.trace.counters[r].snapshot_reads for r in range(NRANKS)
    )
    conflicts_mv = sum(
        rt_mv.trace.counters[r].lock_conflicts for r in range(NRANKS)
    )
    conflicts_lk = sum(
        rt_lk.trace.counters[r].lock_conflicts for r in range(NRANKS)
    )

    # -- OLAP phase: collectives over one frozen watermark ---------------
    olap_state = {}

    def olap_phase(ctx):
        n_live = len(db.directory.local_vertices(ctx))
        n_before = ctx.allreduce(n_live)
        counts0 = group_count_by_label(ctx, graph)  # quiescent oracle
        pr = pagerank(ctx, graph, iterations=5)  # snapshot adjacency path
        # hold a collective snapshot, then delete vertices underneath it
        stx = db.start_collective_transaction(ctx, snapshot=True)
        w = stx.snapshot_watermark
        if ctx.rank == 0:
            tx = db.start_transaction(ctx, write=True)
            deleted = 0
            for app in range(0, PARAMS.n_vertices, PARAMS.n_vertices // 24):
                v = tx.find_vertex(app)
                if v is not None:
                    tx.delete_vertex(v)
                    deleted += 1
            tx.commit()
            olap_state["deleted"] = deleted
        ctx.barrier()
        # the frozen watermark still enumerates and reads every vertex
        # that existed at W, tombstones included
        vids = stx.visible_vertices(db.directory.local_vertices(ctx), ctx.rank)
        partial = {}
        n_frozen = 0
        for h in stx.associate_vertices(vids, missing_ok=True):
            if h is None:
                continue
            n_frozen += 1
            for label in h.labels():
                partial[label.name] = partial.get(label.name, 0) + 1

        def merge(a, b):
            out = dict(a)
            for k, v in b.items():
                out[k] = out.get(k, 0) + v
            return out

        frozen_counts = ctx.allreduce(partial, op=merge)
        frozen_total = ctx.allreduce(n_frozen)
        stx.commit()
        counts2 = group_count_by_label(ctx, graph)  # fresh: sees deletes
        n_after = ctx.allreduce(len(db.directory.local_vertices(ctx)))
        pr_mass = ctx.allreduce(sum(pr.values()))  # ranks are rank-local
        if ctx.rank == 0:
            olap_state.update(
                watermark=w,
                counts0=counts0,
                frozen_counts=frozen_counts,
                frozen_total=frozen_total,
                counts2=counts2,
                n_before=n_before,
                n_after=n_after,
                pr_mass=pr_mass,
            )
        ctx.barrier()

    run_spmd(NRANKS, olap_phase, runtime=rt_mv)

    # -- GC: with every snapshot closed the whole history is reclaimable -
    assert mvcc.live_snapshots() == 0
    entries_before_gc = mvcc.versions.total_entries()
    mvcc.collect()
    entries_after_gc = mvcc.versions.total_entries()

    # -- reporting --------------------------------------------------------
    def us(x):
        return x * 1e6

    def row(name, mode, st):
        return (
            f"{name:>10} {mode:>10} {st['ok']:>8d} {st['restarts']:>9d} "
            f"{us(st['p50_latency']):>9.1f} {us(st['p99_latency']):>9.1f} "
            f"{us(st['max_latency']):>9.1f} "
            f"{us(st['p50_service']):>9.1f} {us(st['p99_service']):>9.1f}"
        )

    rows = [
        f"{'window':>10} {'mode':>10} {'ok-oltp':>8} {'restarts':>9} "
        f"{'p50 [us]':>9} {'p99 [us]':>9} {'max [us]':>9} "
        f"{'svc50':>9} {'svc99':>9}",
        row("oltp-only", "snapshots", base_mv),
        row("htap", "snapshots", htap_mv),
        row("oltp-only", "locks", base_lk),
        row("htap", "locks", htap_lk),
    ]
    ratio_mv = htap_mv["p99_service"] / base_mv["p99_service"]
    ratio_lk = htap_lk["p99_service"] / base_lk["p99_service"]
    report(
        "htap_storm",
        f"HTAP storm: {htap_users()} users, {htap_requests()} requests per "
        f"window, write fraction {WRITE_FRACTION}, analytics fraction "
        f"{ANALYTICS_FRACTION} (BI2-shaped full scan)\n"
        + "\n".join(rows)
        + f"\n\nOLTP service-p99 inflation from co-running OLAP: snapshots "
        f"{ratio_mv:.2f}x vs locks {ratio_lk:.2f}x\n"
        f"analytics outcomes: snapshots ok={olap_mv['ok']} "
        f"restarts={olap_mv['restarts']} | locks ok={olap_lk['ok']} "
        f"restarts={olap_lk['restarts']} "
        f"statuses={olap_lk['by_status']}\n"
        f"lock conflicts: snapshots {conflicts_mv} vs locks {conflicts_lk}\n"
        f"snapshot reads {snap_reads}, versions installed {installed}, "
        f"reclaimed during storm {reclaimed_in_storm} "
        f"(live chain entries after storm: {chain_entries_after_storm})\n"
        f"frozen watermark {olap_state['watermark']}: collective scan over "
        f"{olap_state['frozen_total']} vertices == pre-mutation oracle "
        f"while {olap_state['deleted']} vertices were deleted underneath "
        f"(live set {olap_state['n_before']} -> {olap_state['n_after']})\n"
        f"final GC: {entries_before_gc} chain entries -> {entries_after_gc}",
    )
    metrics(
        "htap_storm",
        {
            "nranks": NRANKS,
            "users": htap_users(),
            "requests_per_window": htap_requests(),
            "write_fraction": WRITE_FRACTION,
            "analytics_fraction": ANALYTICS_FRACTION,
            "offered_rate": drive_mv["rate"],
            "mean_service": drive_mv["mean_service"],
            "snapshots": {
                "base_p99": base_mv["p99_latency"],
                "htap_p99": htap_mv["p99_latency"],
                "base_service_p99": base_mv["p99_service"],
                "htap_service_p99": htap_mv["p99_service"],
                "service_p99_inflation": ratio_mv,
                "oltp_restarts": htap_mv["restarts"],
                "analytics_ok": olap_mv["ok"],
                "analytics_restarts": olap_mv["restarts"],
            },
            "locks": {
                "base_p99": base_lk["p99_latency"],
                "htap_p99": htap_lk["p99_latency"],
                "base_service_p99": base_lk["p99_service"],
                "htap_service_p99": htap_lk["p99_service"],
                "service_p99_inflation": ratio_lk,
                "oltp_restarts": htap_lk["restarts"],
                "analytics_ok": olap_lk["ok"],
                "analytics_restarts": olap_lk["restarts"],
                "analytics_outcomes": olap_lk["by_status"],
            },
            "lock_conflicts": {"snapshots": conflicts_mv, "locks": conflicts_lk},
            "snapshot_reads": snap_reads,
            "versions_installed": installed,
            "reclaimed_during_storm": reclaimed_in_storm,
            "chain_entries_after_storm": chain_entries_after_storm,
            "frozen_watermark": olap_state["watermark"],
            "frozen_scan_equals_oracle": True,
            "deleted_under_snapshot": olap_state["deleted"],
            "gc_entries_before": entries_before_gc,
            "gc_entries_after": entries_after_gc,
        },
    )

    # -- acceptance -------------------------------------------------------
    assert drive_mv["drained"] and drive_lk["drained"]
    assert base_mv["ok"] > 0 and htap_mv["ok"] > 0
    # zero snapshot-read aborts: every analytics request succeeded on its
    # first transaction attempt
    assert olap_mv["ok"] > 0
    assert olap_mv["by_status"] == {"ok": olap_mv["ok"]}
    assert olap_mv["restarts"] == 0
    # the headline: co-running OLAP leaves admitted-OLTP p99 within 1.5x
    # of the no-OLAP baseline when scans ride snapshots (lock-free reads
    # never stall a writer).  At these microsecond scales a GIL-quantum
    # scheduling burst can stall every worker for about one service time
    # in either measurement window, so the ratio carries an absolute
    # noise floor of WORKERS * baseline p99 service -- still two orders
    # of magnitude below the lock-mode collapse measured next.
    noise_floor = WORKERS * base_mv["p99_service"]
    assert htap_mv["p99_latency"] <= max(
        1.5 * base_mv["p99_latency"], noise_floor
    ), (htap_mv["p99_latency"], base_mv["p99_latency"], noise_floor)
    # ...while the identical stream on the lock-only database degrades:
    # writers colliding with in-flight locking scans burn the full lock
    # retry budget (a millisecond-scale stall each) and restart, so the
    # worst admitted-OLTP request is orders of magnitude slower than
    # anything the snapshot run produced.  How MANY requests get hit
    # varies with thread scheduling (a handful on a quiet run, enough to
    # blow p99 past 10ms on a busy one), so the asserts anchor on the
    # per-run-stable signals: worst-case latency, restart storms, and
    # the conflict counters.
    assert htap_lk["max_latency"] > 3.0 * htap_mv["max_latency"], (
        htap_lk["max_latency"],
        htap_mv["max_latency"],
    )
    assert htap_lk["restarts"] > 5 * max(1, htap_mv["restarts"]), (
        htap_lk["restarts"],
        htap_mv["restarts"],
    )
    # snapshot scans take no read locks: the conflict counters show the
    # whole collapse is lock-induced
    assert conflicts_lk > 100, conflicts_lk
    assert conflicts_mv < conflicts_lk / 10, (conflicts_mv, conflicts_lk)
    # snapshot machinery engaged and stayed bounded
    assert snap_reads > 0 and installed > 0
    assert chain_entries_after_storm < installed  # GC ran mid-storm
    assert reclaimed_in_storm > 0
    # frozen-watermark collective scan == pre-mutation full-scan oracle
    assert olap_state["frozen_counts"] == olap_state["counts0"]
    assert olap_state["frozen_total"] == olap_state["n_before"]
    assert olap_state["deleted"] > 0
    assert olap_state["n_after"] == olap_state["n_before"] - olap_state["deleted"]
    assert olap_state["counts2"] != olap_state["counts0"]
    assert abs(olap_state["pr_mass"] - 1.0) < 0.05  # PageRank converged
    # the final GC pass empties the version store completely
    assert entries_after_gc == 0
    # perf-smoke gate: snapshot-mode OLTP service time under co-running
    # OLAP must stay within tolerance of the committed baseline (service
    # excludes queue wait, so the gate tracks per-request work -- MVCC
    # resolution overhead -- not scheduling noise)
    if BASELINE_PATH.exists():
        base = json.loads(BASELINE_PATH.read_text())
        if "htap_oltp_svc_p99_us" in base:
            tol = 1.0 + base.get("tolerance_pct", 25) / 100.0
            svc99_us = htap_mv["p99_service"] * 1e6
            assert svc99_us <= base["htap_oltp_svc_p99_us"] * tol, (
                f"HTAP snapshot-mode OLTP svc p99 regressed: "
                f"{svc99_us:.1f}us vs baseline "
                f"{base['htap_oltp_svc_p99_us']:.1f}us "
                f"(+{base.get('tolerance_pct', 25)}%)"
            )
