"""Interactive *complex* read queries (Table 2 row 2): FOF and paths.

Complements the Table 3 short-read mixes: measures the latency of
two-hop friends-of-friends neighborhoods and transactional shortest-path
searches as single-process transactions, for GDA and the JanusGraph-class
baseline.  Expected shape: multi-hop queries cost tens of microseconds on
GDA (a handful of one-sided fetches per hop) versus milliseconds over RPC.
"""

import random

from repro.analysis import summarize
from repro.analysis.scaling import format_table
from repro.baselines import JanusGraphSim
from repro.gda import GdaConfig, GdaDatabase
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import XC40, run_spmd
from repro.workloads import friends_of_friends, transactional_path_search

from conftest import bench_ops

PARAMS = KroneckerParams(scale=9, edge_factor=8, seed=61)
NRANKS = 4


def _janus_fof(ctx, sim, app_id, hops, rng):
    seen = {app_id}
    frontier = [app_id]
    for _ in range(hops):
        nxt = []
        for u in frontier:
            for v in sim.get_edges(ctx, u, rng):
                if v not in seen:
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
    return seen - {app_id}


def test_interactive_complex(benchmark, report):
    n_queries = max(20, bench_ops() // 4)

    def run_all():
        def prog(ctx):
            db = GdaDatabase.create(
                ctx,
                GdaConfig(
                    blocks_per_rank=max(16384, 8 * PARAMS.n_edges // ctx.nranks),
                    dht_entries_per_rank=4 * PARAMS.n_vertices,
                ),
            )
            g = build_lpg(ctx, db, PARAMS, default_schema())
            sim = JanusGraphSim.create(ctx)
            sim.load_graph(ctx, PARAMS, default_schema())
            ctx.barrier()
            rng = random.Random(f"ic/{ctx.rank}")
            gda_fof, janus_fof, gda_path = [], [], []
            for _ in range(n_queries):
                src = rng.randrange(PARAMS.n_vertices)
                dst = rng.randrange(PARAMS.n_vertices)
                t0 = ctx.clock
                friends_of_friends(ctx, g, src, hops=2)
                gda_fof.append(ctx.clock - t0)
                t0 = ctx.clock
                _janus_fof(ctx, sim, src, 2, rng)
                janus_fof.append(ctx.clock - t0)
                t0 = ctx.clock
                transactional_path_search(ctx, g, src, dst, max_depth=4)
                gda_path.append(ctx.clock - t0)
            return gda_fof, janus_fof, gda_path

        _, res = run_spmd(NRANKS, prog, profile=XC40)
        gda_fof = [x for r in res for x in r[0]]
        janus_fof = [x for r in res for x in r[1]]
        gda_path = [x for r in res for x in r[2]]
        return gda_fof, janus_fof, gda_path

    gda_fof, janus_fof, gda_path = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    rows = []
    for name, vals in (
        ("GDA 2-hop FOF", gda_fof),
        ("JanusGraph 2-hop FOF", janus_fof),
        ("GDA path search (<=4)", gda_path),
    ):
        s = summarize([v * 1e6 for v in vals], warmup_fraction=0.0)
        rows.append([name, s.n, f"{s.mean:.1f}", f"{s.p95:.1f}"])
    report(
        "interactive_complex",
        f"Interactive complex queries ({NRANKS} ranks, scale {PARAMS.scale})"
        " — latencies in us (simulated)\n"
        + format_table(["query", "n", "mean", "p95"], rows),
    )
    # Whole-neighborhood queries are bandwidth-bound on both systems
    # (hundreds of 2-hop vertices on a scale-9 Kronecker graph), so the
    # gap narrows from the orders-of-magnitude of Figure 5's point reads
    # to a constant factor — GDA still wins in aggregate, and its
    # bounded path searches stay in the tens of microseconds.
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(gda_fof) < mean(janus_fof)
    assert mean(gda_path) * 10 < mean(janus_fof)
