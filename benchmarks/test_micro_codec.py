"""Microbenchmark — holder edge-slot decode: struct loop vs numpy view.

Measures the real (wall-clock) cost of turning a raw edge-slot region
into usable topology, the hot inner decode of every vertex fetch:

* **struct loop** — ``_SLOT.iter_unpack`` into per-edge ``EdgeSlot``
  objects (the slot-granular mutation path),
* **numpy view** — ``np.frombuffer`` with :data:`SLOT_DTYPE` giving
  zero-copy column arrays (the bulk read path used by ``targets()`` /
  ``edges_as_arrays()``).

This is the one benchmark in the suite where wall-clock, not simulated
time, is the quantity of interest: both decodes cost zero simulated
network time, but the numpy view is what makes large-degree vertices
cheap for the Python implementation.
"""

import time

import numpy as np

from repro.analysis.scaling import format_table
from repro.gda.holder import DIR_OUT, SLOT_DTYPE, _SLOT, EdgeSlot

SIZES = [1, 64, 4096]
MIN_TIME = 0.02  # seconds of measurement per cell


def _slot_buf(n: int) -> bytes:
    arr = np.zeros(n, dtype=SLOT_DTYPE)
    arr["dptr"] = np.arange(n, dtype="<i8") * 16
    arr["label"] = np.arange(n, dtype="<i4") % 7
    arr["flags"] = DIR_OUT
    return arr.tobytes()


def _decode_struct(buf: bytes) -> list[EdgeSlot]:
    # mirrors VertexHolder.edges materialization
    return [
        EdgeSlot(dptr, label_id, flags)
        for dptr, label_id, flags in _SLOT.iter_unpack(buf)
    ]


def _decode_numpy(buf: bytes):
    # mirrors VertexHolder.edges_as_arrays on a wire buffer
    view = np.frombuffer(buf, dtype=SLOT_DTYPE)
    return view["dptr"], view["label"], view["flags"]


def _time_per_call(fn, buf) -> float:
    """Seconds per call, repetitions auto-scaled to MIN_TIME."""
    fn(buf)  # warm up
    reps = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(reps):
            fn(buf)
        dt = time.perf_counter() - t0
        if dt >= MIN_TIME:
            return dt / reps
        reps *= 4


def test_micro_codec(benchmark, report, metrics):
    # both decodes must agree before their speed is worth comparing
    for n in SIZES:
        buf = _slot_buf(n)
        slots = _decode_struct(buf)
        dptr, label, flags = _decode_numpy(buf)
        assert [s.dptr for s in slots] == dptr.tolist()
        assert [s.label_id for s in slots] == label.tolist()
        assert [s.flags for s in slots] == flags.tolist()

    def run_all():
        out = {}
        for n in SIZES:
            buf = _slot_buf(n)
            out[n] = (
                _time_per_call(_decode_struct, buf),
                _time_per_call(_decode_numpy, buf),
            )
        return out

    cells = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    per_size = {}
    for n in SIZES:
        t_struct, t_numpy = cells[n]
        speedup = t_struct / max(t_numpy, 1e-12)
        rows.append(
            [n, f"{t_struct * 1e6:.2f}", f"{t_numpy * 1e6:.2f}",
             f"{speedup:.1f}x"]
        )
        per_size[str(n)] = {
            "struct_us": round(t_struct * 1e6, 3),
            "numpy_us": round(t_numpy * 1e6, 3),
            "speedup": round(speedup, 2),
        }
    report(
        "micro_codec",
        "Edge-slot decode: struct loop vs zero-copy numpy view "
        "(wall-clock us per decode)\n"
        + format_table(["edges", "struct us", "numpy us", "speedup"], rows),
    )
    metrics("micro_codec", {"sizes": per_size, "slot_bytes": SLOT_DTYPE.itemsize})

    # the zero-copy view must win decisively at bulk sizes; at one edge
    # the struct loop may win (numpy has fixed overhead), which is why
    # the transaction layer keeps the struct path for tiny holders
    t_struct, t_numpy = cells[4096]
    assert t_numpy < t_struct / 4, (t_struct, t_numpy)
