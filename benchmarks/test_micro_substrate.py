"""Microbenchmarks of the substrate and GDA primitives (wall clock).

These measure the real Python execution speed of the building blocks —
one-sided ops, remote atomics, collectives, the BGDL allocator, the
lock-free DHT, RW locks, holder (de)serialization, and OLTP transactions —
via pytest-benchmark.  They are the "is the implementation itself fast
enough to run the experiments" check, complementary to the simulated-time
figures.
"""

import pytest

from repro.gda import GdaConfig, GdaDatabase
from repro.gda.blocks import BlockManager
from repro.gda.dht import DistributedHashTable
from repro.gda.holder import EdgeSlot, HolderStorage, VertexHolder
from repro.gda.locks import RWLock
from repro.gda.dptr import pack_dptr
from repro.rma import RmaRuntime, ZERO_COST


@pytest.fixture(scope="module")
def rt():
    return RmaRuntime(4, profile=ZERO_COST)


@pytest.fixture(scope="module")
def ctx(rt):
    return rt.context(0)


def test_put_get_roundtrip(benchmark, rt, ctx):
    win = rt.allocate_window("micro.putget", 4096)
    payload = b"x" * 256

    def op():
        ctx.put(win, 1, 0, payload)
        return ctx.get(win, 1, 0, 256)

    assert benchmark(op) == payload


def test_remote_cas(benchmark, rt, ctx):
    win = rt.allocate_window("micro.cas", 64)

    def op():
        old = ctx.aget(win, 1, 0)
        ctx.cas(win, 1, 0, old, old + 1)

    benchmark(op)


def test_allreduce_4_ranks(benchmark, rt):
    from repro.rma import ThreadExecutor

    def run_round():
        def prog(c):
            return c.allreduce(c.rank)

        return ThreadExecutor().run(rt, prog)

    assert benchmark(run_round) == [6, 6, 6, 6]


def test_block_acquire_release(benchmark, rt, ctx):
    mgr = BlockManager.create_local = None  # avoid accidental reuse
    mgr = _make_blocks(rt)

    def op():
        d = mgr.acquire_block(ctx, 1)
        mgr.release_block(ctx, d)

    benchmark(op)


def _make_blocks(rt, name="micro.bgdl"):
    # build directly against the runtime (no collective needed here)
    import itertools

    suffix = next(_make_blocks._counter)
    data = rt.allocate_window(f"{name}.data{suffix}", 512 * 256)
    usage = rt.allocate_window(f"{name}.usage{suffix}", 8 * 256)
    system = rt.allocate_window(f"{name}.system{suffix}", 16 + 8 * 256)
    mgr = BlockManager(data, usage, system, 512, 256)
    for r in range(rt.nranks):
        c = rt.context(r)
        mgr._init_local_segment(c)
    return mgr


_make_blocks._counter = __import__("itertools").count()


def test_dht_insert_lookup_delete(benchmark, rt, ctx):
    heap = _make_blocks(rt, name="micro.dhtheap")
    # hand-build a DHT against this runtime
    import threading

    from repro.gda.dht import ENTRY_BYTES
    from repro.gda.dptr import DPTR_NULL

    table = rt.allocate_window("micro.dht.table", 8 * 64)
    heap2 = BlockManager(
        rt.allocate_window("micro.dht.heapdata", ENTRY_BYTES * 512),
        rt.allocate_window("micro.dht.heapusage", 8 * 512),
        rt.allocate_window("micro.dht.heapsys", 16 + 8 * 512),
        ENTRY_BYTES,
        512,
    )
    for r in range(rt.nranks):
        heap2._init_local_segment(rt.context(r))
    dht = DistributedHashTable(
        table_win=table,
        heap=heap2,
        buckets_per_rank=16,
        nranks=rt.nranks,
        _limbo=[[] for _ in range(rt.nranks)],
        _limbo_locks=[threading.Lock() for _ in range(rt.nranks)],
    )
    for b in range(16):
        for r in range(rt.nranks):
            table.write_i64(r, 8 * b, DPTR_NULL)
    key = iter(range(10**9))

    def drain_limbo():
        # non-collective stand-in for quiesce: safe here because this
        # microbenchmark is the only DHT user
        for r in range(rt.nranks):
            with dht._limbo_locks[r]:
                parked, dht._limbo[r] = dht._limbo[r], []
            for ptr in parked:
                dht.heap.release_block(ctx, ptr)

    def op():
        k = next(key)
        dht.insert(ctx, k, k)
        assert dht.lookup(ctx, k) == k
        assert dht.delete(ctx, k)
        drain_limbo()

    benchmark(op)
    del heap


def test_rw_lock_cycle(benchmark, rt, ctx):
    win = rt.allocate_window("micro.lock", 64)
    lock = RWLock(win, rank=1, offset=0)

    def op():
        lock.acquire_read(ctx)
        lock.release_read(ctx)
        lock.acquire_write(ctx)
        lock.release_write(ctx)

    benchmark(op)


def test_holder_roundtrip(benchmark, rt, ctx):
    mgr = _make_blocks(rt, name="micro.holder")
    hs = HolderStorage(mgr)
    holder = VertexHolder(
        app_id=1,
        labels=[1, 2],
        properties=[(3, b"payload" * 4)],
        edges=[EdgeSlot(pack_dptr(1, 512 * i), 1, 1) for i in range(10)],
    )
    stored = hs.write_new(ctx, holder, home_rank=1)

    def op():
        hs.rewrite(ctx, stored)
        return hs.read(ctx, stored.primary)

    out = benchmark(op)
    assert out.holder.app_id == 1


def test_oltp_transaction_wall_time(benchmark):
    """End-to-end wall time of one read transaction on a loaded DB."""
    from repro.generator import KroneckerParams, build_lpg, default_schema
    from repro.rma import run_spmd

    params = KroneckerParams(scale=7, edge_factor=4, seed=3)
    holder = {}

    def prog(c):
        db = GdaDatabase.create(c, GdaConfig(blocks_per_rank=16384))
        g = build_lpg(c, db, params, default_schema())
        if c.rank == 0:
            holder["g"] = g
            holder["ctx"] = c
        c.barrier()
        # park non-zero ranks? no: return and keep runtime alive
        return True

    rt2, _ = run_spmd(2, prog, profile=ZERO_COST)
    g = holder["g"]
    ctx0 = rt2.context(0)
    ts = g.ptypes["p_ts"]

    def op():
        tx = g.db.start_transaction(ctx0)
        v = tx.find_vertex(5)
        out = v.property(ts) if v is not None else None
        tx.commit()
        return out

    benchmark(op)


def test_batched_vs_scalar_remote_reads(benchmark, report):
    """Doorbell coalescing: one ``get_batch`` vs a scalar ``get`` loop.

    Measured in *simulated* time on the UNIFORM profile (the ZERO_COST
    module fixture would hide the effect): a batch of k same-target reads
    pays one latency term instead of k, so the speedup approaches
    alpha/(nbytes*beta) for large k.  The acceptance bar is >= 2x at
    batch size 64.
    """
    from repro.analysis.scaling import format_table
    from repro.rma import UNIFORM

    nbytes = 64
    sizes = [1, 8, 64, 512]
    rt2 = RmaRuntime(2, profile=UNIFORM)
    win = rt2.allocate_window("micro.batch", max(sizes) * nbytes)
    c = rt2.context(0)

    rows = []
    speedups = {}
    for k in sizes:
        ops = [(1, i * nbytes, nbytes) for i in range(k)]
        t0 = c.clock
        scalar_out = [c.get(win, t, o, n) for t, o, n in ops]
        scalar = c.clock - t0
        t0 = c.clock
        batched_out = c.get_batch(win, ops)
        batched = c.clock - t0
        assert batched_out == scalar_out
        speedups[k] = scalar / batched
        rows.append(
            [k, f"{scalar * 1e6:.3f}", f"{batched * 1e6:.3f}",
             f"{speedups[k]:.2f}x"]
        )

    snap = rt2.trace.counters[0].snapshot()
    report(
        "micro_batch_coalescing",
        "Scalar vs batched remote reads (64 B each, 1 target)"
        " [us, simulated]\n"
        + format_table(
            ["batch size", "scalar", "batched", "speedup"], rows
        )
        + (
            f"\ncoalescing counters (rank 0): batches={snap['batches']}"
            f" batched_ops={snap['batched_ops']}"
            f" msgs_saved={snap['msgs_saved']}"
            f" bytes_batched={snap['bytes_batched']}"
        ),
    )
    assert speedups[64] >= 2.0
    assert speedups[512] >= speedups[64]

    ops64 = [(1, i * nbytes, nbytes) for i in range(64)]
    benchmark(lambda: c.get_batch(win, ops64))
