"""Declarative query engine vs hand-coded workloads (ISSUE 5).

Runs the same interactive and BI workload shapes twice — once through the
hand-coded GDI traversals and once through the Cypher-lite engine — and
compares simulated latencies.  The engine's plans ride the same batched
one-sided read paths, so the expectation is parity within a small
constant factor, with identical results.  Also demonstrates that cached
plan re-execution skips parse+plan (plan-cache hit counters) and that
point-lookup queries are planned index-backed, never as full scans.
"""

import json
import pathlib
import random

from repro.analysis import summarize
from repro.analysis.scaling import format_table
from repro.gda import GdaConfig, GdaDatabase
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.query import QueryEngine
from repro.rma import XC40, run_spmd
from repro.workloads import friends_of_friends
from repro.workloads.bi import bi2_style_query, group_count_by_label

from conftest import bench_ops

PARAMS = KroneckerParams(scale=8, edge_factor=8, seed=67)
NRANKS = 4


#: Committed perf-smoke baseline: engine FOF latency the CI gate holds
#: the tree to (simulated time is deterministic, so a tight bound works).
BASELINE_PATH = pathlib.Path(__file__).parent / "baselines" / "perf_smoke.json"


def test_query_engine_vs_handcoded(benchmark, report, metrics):
    n_queries = max(10, bench_ops() // 8)

    def run_all():
        def prog(ctx):
            db = GdaDatabase.create(ctx, GdaConfig(blocks_per_rank=16384))
            g = build_lpg(ctx, db, PARAMS, default_schema())
            engine = QueryEngine(db)
            rng = random.Random(f"qe/{ctx.rank}")
            hand_fof, eng_fof = [], []
            cache = None
            if ctx.rank == 0:
                for _ in range(n_queries):
                    src = rng.randrange(PARAMS.n_vertices)
                    t0 = ctx.clock
                    a = friends_of_friends(ctx, g, src, hops=2)
                    hand_fof.append(ctx.clock - t0)
                    t0 = ctx.clock
                    b = friends_of_friends(
                        ctx, g, src, hops=2, use_engine=True, engine=engine
                    )
                    eng_fof.append(ctx.clock - t0)
                    assert a == b
                # the loop reuses one query text: all but the first run hit
                cache = dict(engine.cache_info(ctx))
            ctx.barrier()
            t0 = ctx.clock
            bi_hand = bi2_style_query(ctx, g, min_score=50.0)
            dt_bi_hand = ctx.clock - t0
            t0 = ctx.clock
            bi_eng = bi2_style_query(
                ctx, g, min_score=50.0, use_engine=True, engine=engine
            )
            dt_bi_eng = ctx.clock - t0
            assert bi_hand == bi_eng
            t0 = ctx.clock
            gc_hand = group_count_by_label(ctx, g)
            dt_gc_hand = ctx.clock - t0
            t0 = ctx.clock
            gc_eng = group_count_by_label(
                ctx, g, use_engine=True, engine=engine
            )
            dt_gc_eng = ctx.clock - t0
            assert gc_hand == gc_eng
            # every point lookup plans index-backed (DHT seek, no scans)
            if ctx.rank == 0:
                plan = engine.explain(ctx, "MATCH (v {id = 0}) RETURN v.id")
                assert "NodeByIdSeek" in plan
                assert "AllNodeScan" not in plan and "LabelScan" not in plan
            return (
                hand_fof,
                eng_fof,
                (dt_bi_hand, dt_bi_eng, dt_gc_hand, dt_gc_eng),
                cache,
            )

        _, res = run_spmd(NRANKS, prog, profile=XC40)
        return res

    res = benchmark.pedantic(run_all, rounds=1, iterations=1)
    hand_fof, eng_fof, bi_times, cache = res[0]
    dt_bi_hand, dt_bi_eng, dt_gc_hand, dt_gc_eng = bi_times

    rows = []
    fof_us = {}
    for name, key, vals in (
        ("hand-coded 2-hop FOF", "hand_fof_us", hand_fof),
        ("engine 2-hop FOF", "eng_fof_us", eng_fof),
    ):
        s = summarize([v * 1e6 for v in vals], warmup_fraction=0.0)
        fof_us[key] = {"mean": round(s.mean, 3), "p95": round(s.p95, 3)}
        rows.append([name, s.n, f"{s.mean:.1f}", f"{s.p95:.1f}"])
    for name, dt in (
        ("hand-coded BI2 aggregate", dt_bi_hand),
        ("engine BI2 aggregate", dt_bi_eng),
        ("hand-coded group-by-label", dt_gc_hand),
        ("engine group-by-label", dt_gc_eng),
    ):
        rows.append([name, 1, f"{dt * 1e6:.1f}", "-"])
    report(
        "query_engine",
        f"Declarative engine vs hand-coded ({NRANKS} ranks, scale "
        f"{PARAMS.scale}) — latencies in us (simulated)\n"
        + format_table(["workload", "n", "mean", "p95"], rows)
        + f"\nplan cache: {cache['hits']} hits / {cache['misses']} misses "
        f"({cache['entries']} cached plans)",
    )
    metrics(
        "query_engine",
        {
            "nranks": NRANKS,
            "scale": PARAMS.scale,
            "edge_factor": PARAMS.edge_factor,
            "n_queries": n_queries,
            "hand_fof_us": fof_us["hand_fof_us"],
            "eng_fof_us": fof_us["eng_fof_us"],
            "bi2_us": {
                "hand": round(dt_bi_hand * 1e6, 3),
                "engine": round(dt_bi_eng * 1e6, 3),
            },
            "group_by_label_us": {
                "hand": round(dt_gc_hand * 1e6, 3),
                "engine": round(dt_gc_eng * 1e6, 3),
            },
            "plan_cache": cache,
        },
    )

    # cached-plan re-execution skips parse+plan entirely
    assert cache["misses"] == 1
    assert cache["hits"] == n_queries - 1
    # declarative execution rides the same batched read paths: parity
    # within a small constant factor of the hand-coded traversals.  The
    # hand-coded BI2 is a collective scan (every rank sweeps its local
    # shards in parallel) while the engine runs the whole query on rank
    # 0 over remote reads, so its bound is ~nranks times looser.
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(eng_fof) < 6 * mean(hand_fof)
    assert dt_bi_eng < 12 * NRANKS * dt_bi_hand

    # perf-smoke gate: engine latencies must stay within tolerance of the
    # committed baseline (simulated time, so fully reproducible in CI)
    if BASELINE_PATH.exists():
        base = json.loads(BASELINE_PATH.read_text())
        tol = 1.0 + base.get("tolerance_pct", 25) / 100.0
        eng_fof_us = mean(eng_fof) * 1e6
        assert eng_fof_us <= base["eng_fof_us_mean"] * tol, (
            f"engine FOF regressed: {eng_fof_us:.1f}us vs baseline "
            f"{base['eng_fof_us_mean']:.1f}us (+{base.get('tolerance_pct', 25)}%)"
        )
        if "bi2_eng_us" in base:
            assert dt_bi_eng * 1e6 <= base["bi2_eng_us"] * tol, (
                f"engine BI2 regressed: {dt_bi_eng * 1e6:.1f}us vs baseline "
                f"{base['bi2_eng_us']:.1f}us (+{base.get('tolerance_pct', 25)}%)"
            )
