"""Section 6.6 — varying labels, properties, and edge factors.

Sweeps the number of labels (0..20), property types (0..13), and the
Kronecker edge factor (8/16/32), running the LB mix and BFS on each
configuration.

Expected shapes: GDA's advantages hold across the sweep; fewer
labels/properties mean single-block vertices (fast irregular reads);
more rich data means multi-block holders (more communication per access)
and thus lower OLTP throughput; a larger edge factor increases per-vertex
work for traversals.
"""

from repro.analysis.scaling import format_table
from repro.gda import GdaConfig, GdaDatabase
from repro.gdi import EdgeOrientation
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import XC40, run_spmd
from repro.workloads import MIXES, aggregate_oltp, bfs, run_oltp_rank

from conftest import bench_ops

NRANKS = 4
SCALE = 8


def _run_config(n_labels, n_props, edge_factor, n_ops):
    params = KroneckerParams(scale=SCALE, edge_factor=edge_factor, seed=8)
    n_vertex_labels = max(0, n_labels - 4)
    n_edge_labels = min(4, n_labels)
    schema = default_schema(
        n_vertex_labels=n_vertex_labels,
        n_edge_labels=n_edge_labels,
        n_properties=n_props,
    )

    def prog(ctx):
        db = GdaDatabase.create(
            ctx,
            GdaConfig(
                blocks_per_rank=max(16384, 8 * params.n_edges // ctx.nranks)
            ),
        )
        g = build_lpg(ctx, db, params, schema)
        ctx.barrier()
        oltp = run_oltp_rank(ctx, g, MIXES["LB"], n_ops, seed=9)
        ctx.barrier()
        t0 = ctx.clock
        bfs(ctx, g, 0, EdgeOrientation.ANY)
        ctx.barrier()
        t_bfs = ctx.clock - t0
        blocks_used = sum(
            db.blocks.allocated_count(ctx, r) for r in range(ctx.nranks)
        )
        return oltp, t_bfs, blocks_used

    _, res = run_spmd(NRANKS, prog, profile=XC40)
    agg = aggregate_oltp(MIXES["LB"], [r[0] for r in res])
    return agg, res[0][1], res[0][2]


def test_sec66_label_property_sweep(benchmark, report):
    n_ops = bench_ops()
    configs = [(0, 0), (8, 4), (20, 13)]  # (labels, p-types)

    def run_all():
        return {
            cfg: _run_config(cfg[0], cfg[1], 16, n_ops) for cfg in configs
        }

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for (n_labels, n_props), (agg, t_bfs, blocks) in data.items():
        rows.append(
            [
                n_labels,
                n_props,
                f"{agg.throughput:,.0f}",
                f"{agg.failed_fraction * 100:.2f}%",
                f"{t_bfs * 1e3:.3f}",
                blocks,
            ]
        )
    report(
        "sec66_sweeps",
        "Section 6.6: varying labels & property types "
        f"(scale {SCALE}, e=16, {NRANKS} ranks)\n"
        + format_table(
            ["labels", "p-types", "LB ops/s", "failed", "BFS ms", "blocks"],
            rows,
        ),
    )
    # richer data -> more storage; throughput advantage preserved
    blocks_plain = data[(0, 0)][2]
    blocks_rich = data[(20, 13)][2]
    assert blocks_rich > blocks_plain
    for cfg, (agg, _, _) in data.items():
        assert agg.throughput > 10_000, cfg  # far above the RPC baseline


def test_sec66_edge_factor_sweep(benchmark, report):
    n_ops = bench_ops()
    factors = [8, 16, 32]

    def run_all():
        return {e: _run_config(8, 4, e, n_ops) for e in factors}

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for e, (agg, t_bfs, blocks) in data.items():
        rows.append(
            [e, f"{agg.throughput:,.0f}", f"{t_bfs * 1e3:.3f}", blocks]
        )
    report(
        "sec66_sweeps",
        "Section 6.6: varying the edge factor (default e=16)\n"
        + format_table(["edge factor", "LB ops/s", "BFS ms", "blocks"], rows),
    )
    # denser graphs need more storage ...
    assert data[32][2] > data[8][2]
    # ... but since the BFS frontiers are deduplicated per destination
    # before the alltoall, runtime tracks *distinct* frontier vertices
    # rather than edges: quadrupling the edge factor must no longer
    # quadruple the BFS time (it stays within a small factor).
    assert data[32][1] < data[8][1] * 2.0
