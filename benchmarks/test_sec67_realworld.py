"""Section 6.7 — real-world graphs behave like Kronecker graphs.

The paper loads Web Data Commons and other KONECT/WebGraph datasets and
finds the same performance patterns as for Kronecker graphs, because both
share heavy-tail degree distributions and similar sparsity.  Those
datasets cannot be downloaded in this offline environment (DESIGN.md
substitution), so we use:

* Zachary's karate club — a genuine real-world graph shipped with
  networkx, and
* a Barabasi-Albert preferential-attachment graph — the standard
  heavy-tail stand-in for web-crawl degree distributions,

load them through the same bulk path (``build_lpg_from_edges``), run BFS
and PageRank, and check the patterns match a Kronecker graph of the same
size within a small factor.
"""

import networkx as nx

from repro.analysis.scaling import format_table
from repro.gda import GdaConfig, GdaDatabase
from repro.generator import (
    KroneckerParams,
    build_lpg,
    build_lpg_from_edges,
    default_schema,
    edge_slice,
)
from repro.gdi import EdgeOrientation
from repro.rma import XC40, run_spmd
from repro.workloads import bfs, load_local_adjacency, pagerank

NRANKS = 4
SCHEMA = default_schema(n_properties=4)


def _shard(edges, rank, nranks):
    start, stop = edge_slice(len(edges), rank, nranks)
    return edges[start:stop]


def _run_graph(name, edges, n_vertices):
    def prog(ctx):
        db = GdaDatabase.create(
            ctx, GdaConfig(blocks_per_rank=max(16384, 16 * len(edges)))
        )
        g = build_lpg_from_edges(
            ctx,
            db,
            n_vertices=n_vertices,
            edges_local=_shard(edges, ctx.rank, ctx.nranks),
            schema=SCHEMA,
            directed=False,
        )
        adj = load_local_adjacency(ctx, g, EdgeOrientation.ANY, dedup=True)
        ctx.barrier()
        t0 = ctx.clock
        depths = bfs(ctx, g, 0, adj=adj)
        ctx.barrier()
        t_bfs = ctx.clock - t0
        t0 = ctx.clock
        pagerank(ctx, g, iterations=10, adj=adj)
        ctx.barrier()
        t_pr = ctx.clock - t0
        reached = ctx.allreduce(len(depths))
        return t_bfs, t_pr, reached

    _, res = run_spmd(NRANKS, prog, profile=XC40)
    return res[0]


def test_sec67(benchmark, report):
    karate = nx.karate_club_graph()
    ba = nx.barabasi_albert_graph(512, 4, seed=7)
    kron = KroneckerParams(scale=9, edge_factor=4, seed=10)

    def run_all():
        out = {}
        out["karate (real)"] = (
            _run_graph("karate", list(karate.edges), karate.number_of_nodes())
            + (karate.number_of_nodes(), karate.number_of_edges())
        )
        out["barabasi-albert"] = (
            _run_graph("ba", list(ba.edges), ba.number_of_nodes())
            + (ba.number_of_nodes(), ba.number_of_edges())
        )

        def kron_prog(ctx):
            db = GdaDatabase.create(ctx, GdaConfig(blocks_per_rank=32768))
            g = build_lpg(ctx, db, kron, SCHEMA, directed=False)
            adj = load_local_adjacency(ctx, g, EdgeOrientation.ANY, dedup=True)
            ctx.barrier()
            t0 = ctx.clock
            depths = bfs(ctx, g, 0, adj=adj)
            ctx.barrier()
            t_bfs = ctx.clock - t0
            t0 = ctx.clock
            pagerank(ctx, g, iterations=10, adj=adj)
            ctx.barrier()
            return t_bfs, ctx.clock - t0, ctx.allreduce(len(depths))

        _, res = run_spmd(NRANKS, kron_prog, profile=XC40)
        out["kronecker s=9"] = res[0] + (kron.n_vertices, kron.n_edges)
        return out

    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, v, e, f"{tb * 1e3:.3f}", f"{tp * 1e3:.3f}", reached]
        for name, (tb, tp, reached, v, e) in data.items()
    ]
    report(
        "sec67_realworld",
        "Section 6.7: real-world vs Kronecker graphs "
        f"({NRANKS} ranks, BFS + PageRank(10))\n"
        + format_table(
            ["graph", "|V|", "|E|", "BFS ms", "PR ms", "BFS reached"], rows
        ),
    )
    # pattern similarity: per-edge PR time of the heavy-tail real-world
    # stand-in is within a small factor of the Kronecker graph's
    t_ba = data["barabasi-albert"][1] / data["barabasi-albert"][4]
    t_kr = data["kronecker s=9"][1] / data["kronecker s=9"][4]
    assert 0.2 < t_ba / t_kr < 5.0
    # BFS reaches the whole (connected) BA graph
    assert data["barabasi-albert"][2] == 512
