"""Section 6.8 / Table 1 — extreme scales by measured-curve extrapolation.

The paper's largest runs use the full Piz Daint machine: 7,142 servers /
121,680 cores, 549.8B edges for OLTP and 274.9B for OLAP.  Those scales
cannot be instantiated here (DESIGN.md substitution), so this benchmark

1. measures OLTP (RM) throughput at every instantiable rank count,
2. fits the ``T(P) = aP / (1 + b log2 P)`` scaling curve,
3. extrapolates to the paper's core counts, and
4. checks the paper's Section 6.8 quantitative claim: increasing servers
   by 3.49x increases throughput by roughly 3x (mild sublinearity).
"""

from repro.analysis.scaling import (
    PIZ_DAINT_FULL_CORES,
    PIZ_DAINT_FULL_SERVERS,
    fit_throughput_curve,
    format_table,
)
from repro.gda import GdaConfig, GdaDatabase
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import XC40, run_spmd
from repro.workloads import MIXES, aggregate_oltp, run_oltp_rank

from conftest import bench_ops, bench_ranks

BASE_SCALE = 6


def _throughput_at(nranks, n_ops):
    params = KroneckerParams(
        scale=BASE_SCALE + max(0, (nranks - 1).bit_length()),
        edge_factor=8,
        seed=12,
    )

    def prog(ctx):
        db = GdaDatabase.create(
            ctx,
            GdaConfig(
                blocks_per_rank=max(16384, 8 * params.n_edges // ctx.nranks)
            ),
        )
        g = build_lpg(ctx, db, params, default_schema())
        ctx.barrier()
        return run_oltp_rank(ctx, g, MIXES["RM"], n_ops, seed=13)

    _, res = run_spmd(nranks, prog, profile=XC40)
    return aggregate_oltp(MIXES["RM"], res).throughput


def test_sec68(benchmark, report):
    ranks = sorted({r for r in bench_ranks() if r >= 2} | {2, 4, 8, 16})
    n_ops = bench_ops()

    def run_all():
        return {r: _throughput_at(r, n_ops) for r in ranks}

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)
    curve = fit_throughput_curve(list(measured), list(measured.values()))

    rows = [[r, f"{t:,.0f}", "measured"] for r, t in measured.items()]
    for cores in (1024, 16384, PIZ_DAINT_FULL_CORES // 2, PIZ_DAINT_FULL_CORES):
        rows.append([cores, f"{curve.throughput(cores):,.0f}", "extrapolated"])
    report(
        "sec68_extreme_scale",
        "Section 6.8: RM throughput (ops/s, simulated) and extrapolation\n"
        f"fitted curve: T(P) = {curve.a:,.0f} * P / (1 + {curve.b:.4f} log2 P)\n"
        + format_table(["cores", "ops/s", "kind"], rows),
    )

    # paper's headline configuration remains beneficial
    t_full = curve.throughput(PIZ_DAINT_FULL_CORES)
    t_half = curve.throughput(PIZ_DAINT_FULL_CORES // 2)
    assert t_full > t_half > 0

    # Section 6.8 ratio: 3.49x servers -> ~3x throughput.
    ratio = curve.speedup_ratio(
        PIZ_DAINT_FULL_SERVERS / 3.49, PIZ_DAINT_FULL_SERVERS
    )
    report(
        "sec68_extreme_scale",
        f"3.49x server increase at full scale -> throughput ratio "
        f"{ratio:.2f}x (paper: ~3x)",
    )
    assert 1.8 < ratio <= 3.49
