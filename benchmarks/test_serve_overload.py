"""Serving under overload: the admission-control knee (ISSUE 7).

A closed-loop population of simulated users submits the OLTP/analytics
mix through the serving front-end at escalating arrival rates — half,
one, and two times the measured saturation rate of the worker pool.  The
experiment reports p50/p99/p999 latency and goodput of the admitted OLTP
traffic through the knee, demonstrating the robustness contract:

* the bounded admission queue never grows past its capacity — excess
  arrivals are shed explicitly instead of buffering without bound,
* p99 latency of *admitted* OLTP requests stays bounded (by queue
  capacity x worst-case service) even at 2x saturation,
* the circuit breaker opens under backlog and sheds analytics-class
  queries at the front door while OLTP keeps completing,
* with the fault injector killing a worker rank mid-storm, every client
  session still reaches a terminal state (zero hung sessions) and the
  survivors keep serving in degraded mode.

All latencies are simulated seconds (virtual-time queueing, see
``repro.serve.server``); wall-clock only bounds how fast the storm runs.

Environment knobs: ``REPRO_SERVE_USERS`` (simulated user population,
default 10000) and ``REPRO_SERVE_REQUESTS`` (requests per phase,
default 1200).
"""

import os
import threading

import numpy as np

from repro.gda import GdaConfig, GdaDatabase, RetryPolicy
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import run_spmd
from repro.rma.faults import FaultPlan
from repro.serve import (
    ClientSession,
    ClosedLoopLoad,
    GraphServer,
    ServeConfig,
    ServeMix,
)
from repro.serve.request import OLTP, TERMINAL_STATUSES

NRANKS = 4  # 1 front-end rank + 3 workers
WORKERS = NRANKS - 1
VICTIM = NRANKS - 1
QUEUE_CAP = 64
PARAMS = KroneckerParams(scale=8, edge_factor=8, seed=23)
SCHEMA = default_schema()
CFG = GdaConfig(blocks_per_rank=16384, replication=True)
RETRY = RetryPolicy(max_attempts=10)
N_TENANTS = 16


def serve_users() -> int:
    return int(os.environ.get("REPRO_SERVE_USERS", "10000"))


def serve_requests() -> int:
    return int(os.environ.get("REPRO_SERVE_REQUESTS", "1200"))


def _sessions(server):
    return [
        ClientSession(server, tenant=f"t{i}", session_id=i)
        for i in range(N_TENANTS)
    ]


def _by_status(records):
    out = {}
    for r in records:
        out[r.status] = out.get(r.status, 0) + 1
    return out


def _phase_stats(records, offered_rate):
    """Latency/goodput summary of one load phase (simulated seconds)."""
    ok_oltp = [r for r in records if r.status == "ok" and r.qclass == OLTP]
    lat = np.array([r.latency for r in ok_oltp] or [0.0])
    waits = np.array([r.queue_wait for r in ok_oltp] or [0.0])
    span = max(r.completion for r in records) - min(r.arrival for r in records)
    return {
        "offered_rate": offered_rate,
        "n_requests": len(records),
        "by_status": _by_status(records),
        "ok_oltp": len(ok_oltp),
        "goodput": len(ok_oltp) / span if span > 0 else 0.0,
        "p50_latency": float(np.percentile(lat, 50)),
        "p99_latency": float(np.percentile(lat, 99)),
        "p999_latency": float(np.percentile(lat, 99.9)),
        "p99_wait": float(np.percentile(waits, 99)),
        "max_service": max(
            (r.service for r in records if r.service), default=0.0
        ),
    }


def test_serve_overload_knee(report, metrics):
    users, n_req = serve_users(), serve_requests()
    state = {}
    mix = ServeMix(PARAMS.n_vertices, analytics_fraction=0.03, seed=9)

    def prog(ctx):
        db = GdaDatabase.create(ctx, CFG)
        build_lpg(ctx, db, PARAMS, SCHEMA)
        if ctx.rank == 0:
            state["db"] = db
            state["warm_server"] = GraphServer(
                db, config=ServeConfig(queue_capacity=QUEUE_CAP)
            )
            state["storm_ready"] = threading.Event()
        ctx.barrier()
        if ctx.rank != 0:
            served = state["warm_server"].serve(ctx)
            state["storm_ready"].wait(timeout=300)
            storm = state.get("storm_server")
            return served + (storm.serve(ctx) if storm is not None else 0)
        try:
            return _drive(ctx)
        finally:
            state["storm_ready"].set()  # never strand the workers

    def _drive(ctx):
        db = state["db"]
        # -- warmup: one closed-loop user, zero contention -> mean service
        warm = state["warm_server"]
        warm_load = ClosedLoopLoad(
            warm,
            _sessions(warm),
            mix,
            n_users=1,
            arrival_rate=1.0,
            n_requests=96,
            think=0.0,
        )
        try:
            warm_recs = warm_load.run(ctx)
        finally:
            warm.close()
        services = [r.service for r in warm_recs if r.status == "ok"]
        mean_service = sum(services) / len(services)
        lam_sat = WORKERS / mean_service  # total service rate of the pool
        # pacing window: the driver runs at most 3/4 of a queue's worth of
        # saturation-rate arrivals ahead of the workers' virtual clocks
        horizon = 0.75 * QUEUE_CAP / lam_sat
        # breaker: open when p99 admission wait reaches half a full
        # queue's worth of work per worker
        storm = GraphServer(
            db,
            config=ServeConfig(
                queue_capacity=QUEUE_CAP,
                breaker_p99_threshold=0.5 * QUEUE_CAP * mean_service / WORKERS,
                breaker_cooldown=QUEUE_CAP * mean_service,
                retry=RETRY,
            ),
        )
        state["storm_server"] = storm
        state["mean_service"] = mean_service
        state["lam_sat"] = lam_sat
        state["storm_ready"].set()
        sessions = _sessions(storm)
        phases = []
        start = 0.0
        try:
            for factor in (0.5, 1.0, 2.0):
                rate = factor * lam_sat
                load = ClosedLoopLoad(
                    storm,
                    sessions,
                    mix,
                    n_users=users,
                    arrival_rate=rate,
                    n_requests=n_req,
                    start=start,
                    horizon=horizon,
                )
                recs = load.run(ctx)
                phases.append((factor, rate, recs, storm.breaker.trips))
                # next phase starts after the backlog fully drains
                start = (
                    max(storm.virtual_now(), max(r.arrival for r in recs))
                    + 64.0 * mean_service
                )
        finally:
            storm.close()
        return phases

    rt, res = run_spmd(NRANKS, prog)
    phases = res[0]

    rows = []
    payload = {
        "nranks": NRANKS,
        "workers": WORKERS,
        "queue_capacity": QUEUE_CAP,
        "users": users,
        "requests_per_phase": n_req,
        "mean_service": state["mean_service"],
        "saturation_rate": state["lam_sat"],
        "phases": {},
    }
    prev_trips = 0
    for factor, rate, recs, trips in phases:
        st = _phase_stats(recs, rate)
        st["breaker_trips"] = trips - prev_trips
        prev_trips = trips
        payload["phases"][f"{factor:g}x"] = st
        shed = sum(
            st["by_status"].get(s, 0)
            for s in ("shed", "throttled", "shed_analytics")
        )
        rows.append(
            f"{factor:>4g}x {rate:>12.0f} {st['ok_oltp']:>8d} {shed:>6d} "
            f"{st['goodput']:>12.0f} {st['p50_latency'] * 1e6:>9.1f} "
            f"{st['p99_latency'] * 1e6:>9.1f} "
            f"{st['p999_latency'] * 1e6:>10.1f} {st['breaker_trips']:>6d}"
        )

    header = (
        f"{'load':>5} {'rate [1/s]':>12} {'ok-oltp':>8} {'shed':>6} "
        f"{'goodput':>12} {'p50 [us]':>9} {'p99 [us]':>9} {'p999 [us]':>10} "
        f"{'trips':>6}"
    )
    report(
        "serve_overload",
        f"closed-loop serving storm: {users} users, {WORKERS} workers, "
        f"queue capacity {QUEUE_CAP}\n"
        f"saturation rate {state['lam_sat']:.0f} req/s "
        f"(mean service {state['mean_service'] * 1e6:.1f} us)\n\n"
        + "\n".join([header] + rows),
    )
    metrics("serve_overload", payload)

    # -- acceptance: bounded queue, bounded admitted-OLTP p99, shedding --
    half, one, two = (payload["phases"][k] for k in ("0.5x", "1x", "2x"))
    assert half["by_status"].get("shed", 0) == 0  # no shedding below sat
    assert two["by_status"].get("shed", 0) > 0  # overload is shed, not queued
    # every phase completed its full budget: no lost or hung requests
    for ph in (half, one, two):
        assert ph["n_requests"] == n_req
    # queue depth never exceeded its bound on any rank
    for r in range(NRANKS):
        assert rt.trace.counters[r].snapshot()["queue_depth_peak"] <= QUEUE_CAP
    # admitted OLTP latency is bounded by construction: at most a full
    # queue of worst-case services ahead of you, plus your own
    bound = (QUEUE_CAP + WORKERS) * max(
        ph["max_service"] for ph in (half, one, two)
    )
    assert two["p99_latency"] <= bound
    # the breaker opened during the overload phase
    assert two["breaker_trips"] >= 1
    # goodput holds through the knee instead of collapsing
    assert two["goodput"] >= 0.5 * one["goodput"]


def test_serve_overload_with_rank_crash(report, metrics):
    """The storm again at full worker saturation, now with the fault
    injector killing a worker mid-flight: graceful degradation — every
    session terminates, survivors keep serving."""
    users, n_req = serve_users(), serve_requests()
    state = {}
    mix = ServeMix(PARAMS.n_vertices, analytics_fraction=0.03, seed=10)

    def build(ctx):
        db = GdaDatabase.create(ctx, CFG)
        build_lpg(ctx, db, PARAMS, SCHEMA)
        if ctx.rank == 0:
            state["db"] = db
        ctx.barrier()

    rt, _ = run_spmd(NRANKS, build)

    # a closed loop of 3/4-queue-capacity users with zero think time keeps
    # the pool saturated without overflowing the admission queue
    n_loop_users = min(users, 3 * QUEUE_CAP // 4)

    def storm(ctx):
        if ctx.rank == 0:
            state["server"] = GraphServer(
                state["db"],
                config=ServeConfig(queue_capacity=QUEUE_CAP, retry=RETRY),
            )
        ctx.barrier()
        server = state["server"]
        if ctx.rank != 0:
            return server.serve(ctx)
        load = ClosedLoopLoad(
            server,
            _sessions(server),
            mix,
            n_users=n_loop_users,
            arrival_rate=1e6,  # stagger the loop entries 1us apart
            n_requests=n_req,
            think=0.0,
            shed_backoff=1e-4,
        )
        try:
            return load.run(ctx)
        finally:
            server.close()

    # crash the victim roughly a third of the way into the storm's ops
    res = run_spmd(
        NRANKS,
        storm,
        runtime=rt,
        faults=FaultPlan(seed=2, crash_rank=VICTIM, crash_at_op=2 * n_req),
    )[1]
    assert res[VICTIM] is None  # silent death; no SpmdError escaped
    records = res[0]
    assert len(records) == n_req  # the driver's budget fully completed
    hung = [r for r in records if r.status not in TERMINAL_STATUSES]
    assert not hung  # zero hung sessions
    ok = [r for r in records if r.status == "ok"]
    assert [r for r in ok if r.rank != VICTIM]  # survivors kept serving
    assert rt.membership.degraded()

    by_rank = {}
    for r in ok:
        by_rank[r.rank] = by_rank.get(r.rank, 0) + 1
    fences = sum(
        rt.trace.counters[r].snapshot()["epoch_fences"]
        for r in range(NRANKS)
    )
    report(
        "serve_overload",
        f"crash storm: rank {VICTIM} killed mid-storm "
        f"({n_req} requests, {n_loop_users} concurrent closed-loop users)\n"
        f"outcomes: {_by_status(records)}\n"
        f"ok-by-rank: {by_rank} (victim died mid-flight; its queued work "
        f"was re-served)\nepoch fences: {fences}, "
        f"degraded membership: {rt.membership.degraded()}",
    )
    metrics(
        "serve_overload_crash",
        {
            "victim": VICTIM,
            "n_requests": n_req,
            "outcomes": _by_status(records),
            "ok_by_rank": {str(k): v for k, v in by_rank.items()},
            "hung_sessions": len(hung),
            "epoch_fences": fences,
            "degraded": bool(rt.membership.degraded()),
        },
    )
