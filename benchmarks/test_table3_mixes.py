"""Table 3 — OLTP workload mixes: definition check + per-mix throughput.

Regenerates the Table 3 operation-fraction matrix from the implementation
and runs each mix once at a fixed configuration, reporting throughput,
failure fraction, and the per-operation mean latencies.
"""

from repro.analysis import summarize
from repro.analysis.scaling import format_table
from repro.gda import GdaConfig, GdaDatabase
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import XC40, run_spmd
from repro.workloads import MIXES, OpType, aggregate_oltp, run_oltp_rank

from conftest import bench_ops

PARAMS = KroneckerParams(scale=8, edge_factor=8, seed=1)
NRANKS = 4


def _run_all_mixes(n_ops):
    def prog(ctx):
        db = GdaDatabase.create(ctx, GdaConfig(blocks_per_rank=65536))
        g = build_lpg(ctx, db, PARAMS, default_schema())
        out = {}
        for name in ("RM", "RI", "LB", "WI"):
            ctx.barrier()
            out[name] = run_oltp_rank(ctx, g, MIXES[name], n_ops, seed=3)
        return out

    _, res = run_spmd(NRANKS, prog, profile=XC40)
    return {
        name: aggregate_oltp(MIXES[name], [r[name] for r in res])
        for name in ("RM", "RI", "LB", "WI")
    }


def test_table3(benchmark, report):
    # Part 1: the mix definition matrix (the table itself).
    ops = [
        OpType.GET_PROPS,
        OpType.COUNT_EDGES,
        OpType.GET_EDGES,
        OpType.ADD_VERTEX,
        OpType.DEL_VERTEX,
        OpType.UPD_PROP,
        OpType.ADD_EDGE,
    ]
    rows = []
    for op in ops:
        rows.append(
            [op.value]
            + [f"{MIXES[m].fractions.get(op, 0) * 100:.1f}%" for m in ("RM", "RI", "WI", "LB")]
        )
    rows.append(
        ["read fraction"]
        + [f"{MIXES[m].read_fraction * 100:.1f}%" for m in ("RM", "RI", "WI", "LB")]
    )
    report(
        "table3_mixes",
        "Table 3: OLTP operation mixes\n"
        + format_table(["operation", "RM", "RI", "WI", "LB"], rows),
    )

    # Part 2: execute each mix once (wall time measured by the fixture).
    results = benchmark.pedantic(
        _run_all_mixes, args=(bench_ops(),), rounds=1, iterations=1
    )
    rows = []
    for name, agg in results.items():
        reads = [
            l
            for op, ls in agg.latencies.items()
            if not op.is_update
            for l in ls
        ]
        s = summarize([l * 1e6 for l in reads], warmup_fraction=0.0)
        rows.append(
            [
                name,
                agg.n_ops,
                f"{agg.throughput:,.0f}",
                f"{agg.failed_fraction * 100:.2f}%",
                f"{s.mean:.2f}",
            ]
        )
    report(
        "table3_mixes",
        f"Execution at {NRANKS} ranks, Kronecker scale {PARAMS.scale} "
        f"(XC40 profile)\n"
        + format_table(
            ["mix", "ops", "ops/s (sim)", "failed", "mean read lat (us)"],
            rows,
        ),
    )
    # shape checks: read-heavier mixes achieve higher throughput
    assert results["RM"].throughput > results["WI"].throughput
    assert results["RM"].failed_fraction <= results["WI"].failed_fraction + 0.02
