"""Adversarial skew storm: hot-shard detection + live rebalance (ISSUE 9).

A closed-loop population drives the serving front-end first with a
uniform key mix, then with a Zipfian celebrity mix whose hot keys are
deliberately colocated on one shard (``repro.traffic``).  Under the
congestion-feedback cost model the hot shard's NIC becomes a FIFO
bottleneck: admitted-OLTP p99 degrades even though the offered rate is
unchanged.  The experiment demonstrates the full remediation loop:

* **detect** — per-shard RMA counters (``TraceRecorder.shard_diff``)
  feed the EWMA :class:`~repro.traffic.HotShardDetector` between load
  windows; it stays silent through the uniform baseline and fires on
  the correct shard during the storm,
* **drain** — the server pauses admission and quiesces (no open
  transactions: the safe point the paper requires between collective
  transactions),
* **relocate** — :func:`~repro.gda.plan_offload` +
  :func:`~repro.gda.rebalance` spread the hot shard's vertices over the
  other ranks *while the fault injector fires transients and slows a
  straggler*,
* **fence** — the membership epoch is bumped so stale issuers are
  fenced once, and stale permanent DPTRs raise ``GdiStaleDptr``,
* **resume** — serving restarts on the rebalanced placement; the same
  skewed mix at the same rate must show >= 3x better admitted-OLTP
  median latency (and >= 1.5x better p99), and the database must equal
  the pre-storm full-scan oracle.

A second experiment kills the hot rank *mid-rebalance* and checks the
survivors complete the published move intents: the database (read
through the dead rank's mirror) still equals the oracle.

All latencies are simulated seconds.  Environment knobs:
``REPRO_TRAFFIC_REQUESTS`` (requests per detection window, default
300), ``REPRO_TRAFFIC_WINDOWS`` (storm windows, default 3) and
``REPRO_TRAFFIC_USERS`` (closed-loop population, default 4000).
"""

import os
import sys
from dataclasses import replace

import numpy as np

import pytest

from repro.gda import GdaConfig, GdaDatabase, RetryPolicy, plan_offload, rebalance
from repro.gda.checkpoint import snapshot
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import UNIFORM, run_spmd
from repro.rma.faults import FaultPlan
from repro.serve import ClientSession, ClosedLoopLoad, GraphServer, ServeConfig
from repro.serve.request import OLTP
from repro.traffic import AdversarialMix, HotShardDetector

@pytest.fixture(autouse=True)
def _fine_grained_thread_switching():
    """Shrink the interpreter's thread switch interval for this module.

    The closed loop keeps a real backlog queued, so a worker thread
    that holds the GIL for the default 5 ms quantum stalls the others
    mid-request and biases the virtual-server pool's slot checkout;
    finer real-time interleaving keeps the simulated waits about the
    *NIC congestion* under test, not scheduler bursts."""
    prev = sys.getswitchinterval()
    sys.setswitchinterval(1e-4)
    try:
        yield
    finally:
        sys.setswitchinterval(prev)


NRANKS = 4  # 1 front-end rank + 3 workers; every rank hosts a shard
WORKERS = NRANKS - 1
HOT = 0  # the front-end's shard: every worker access to it is remote RMA
QUEUE_CAP = 64
PARAMS = KroneckerParams(scale=8, edge_factor=8, seed=31)
SCHEMA = default_schema()
CFG = GdaConfig(blocks_per_rank=16384, replication=True)
#: NIC-bound receiver profile: incoming ops cost the target 4 us of
#: handler time and issuers absorb their full queueing delay at a
#: backlogged NIC — the mechanism that turns key skew into tail pain
PROF = replace(UNIFORM, congestion_feedback=1.0, o_target=4.0e-6)
RETRY = RetryPolicy(max_attempts=10)
N_TENANTS = 16
THETA = 2.0
N_HOT = 48
BASELINE_WINDOWS = 2
#: global op count at which the crash test's victim dies: probed to land
#: inside the hot rank's own commit loop (after the vote published its
#: move intents, before its last DHT re-point) for the fixed seeds below
CRASH_AT = 400


def traffic_requests() -> int:
    return int(os.environ.get("REPRO_TRAFFIC_REQUESTS", "300"))


def traffic_windows() -> int:
    return int(os.environ.get("REPRO_TRAFFIC_WINDOWS", "3"))


def traffic_users() -> int:
    return int(os.environ.get("REPRO_TRAFFIC_USERS", "4000"))


def _sessions(server):
    return [
        ClientSession(server, tenant=f"t{i}", session_id=i)
        for i in range(N_TENANTS)
    ]


def _by_status(records):
    out = {}
    for r in records:
        out[r.status] = out.get(r.status, 0) + 1
    return out


def _window_stats(records):
    ok_oltp = [r for r in records if r.status == "ok" and r.qclass == OLTP]
    lat = np.array([r.latency for r in ok_oltp] or [0.0])
    return {
        "n_requests": len(records),
        "by_status": _by_status(records),
        "ok_oltp": len(ok_oltp),
        "p50_latency": float(np.percentile(lat, 50)),
        "p99_latency": float(np.percentile(lat, 99)),
    }


def _run_storm_experiment(users, n_req, n_windows):
    """One full detect/drain/rebalance/resume pass on a fresh database.

    Returns every artifact the acceptance block inspects.  Split out of
    the test so an attempt whose latency windows were trampled by the
    host scheduler (on a single-core runner a thread parked for a whole
    quantum inflates both phases arbitrarily) can be rebuilt and retried
    without weakening the contrast thresholds.
    """
    state = {}
    # identical operation mix; only the key distribution differs, so the
    # storm-vs-baseline contrast isolates placement skew
    uniform_mix = AdversarialMix(
        n_vertices=PARAMS.n_vertices, nranks=NRANKS, theta=0.0,
        hot_shard=HOT, n_hot=0, onehop_fraction=0.0,
        analytics_fraction=0.0, seed=5,
    )
    skew_mix = AdversarialMix(
        n_vertices=PARAMS.n_vertices, nranks=NRANKS, theta=THETA,
        hot_shard=HOT, n_hot=N_HOT, onehop_fraction=0.0,
        analytics_fraction=0.0, seed=6,
    )

    # -- phase 1: build + pre-storm full-scan oracle ----------------------
    def build(ctx):
        db = GdaDatabase.create(ctx, CFG)
        build_lpg(ctx, db, PARAMS, SCHEMA)
        snap = snapshot(ctx, db)
        if ctx.rank == 0:
            state["db"] = db
            state["before"] = snap
        ctx.barrier()

    rt, _ = run_spmd(NRANKS, build, profile=PROF)

    # -- phase 2: serve — uniform baseline, then the skew storm ----------
    def storm_phase(ctx):
        if ctx.rank == 0:
            state["server"] = GraphServer(
                state["db"],
                config=ServeConfig(queue_capacity=QUEUE_CAP, retry=RETRY),
            )
        ctx.barrier()
        server = state["server"]
        if ctx.rank != 0:
            return server.serve(ctx)
        try:
            return _drive_storm(ctx, server)
        finally:
            server.close()

    def _drive_storm(ctx, server):
        # warmup: one closed-loop user, zero contention -> mean service
        sessions = _sessions(server)
        warm = ClosedLoopLoad(
            server, sessions, uniform_mix,
            n_users=1, arrival_rate=1.0, n_requests=96, think=0.0,
        ).run(ctx)
        services = [r.service for r in warm if r.status == "ok"]
        mean_service = sum(services) / len(services)
        lam_sat = WORKERS / mean_service
        # subcritical for a balanced placement, but past the hot NIC's
        # knee once the storm concentrates ~97% of the key mass (theta=2,
        # 48 celebrities) behind one shard: worker-slot time model fixes
        # moved the queueing signal from billing artifacts to genuine
        # congestion, so the offered rate must actually saturate the NIC
        rate = 0.6 * lam_sat
        horizon = 0.25 * QUEUE_CAP / lam_sat
        detector = HotShardDetector(
            NRANKS, alpha=0.5, threshold=1.8, min_window_ops=500,
        )
        windows = []
        start = server.virtual_now() + 64.0 * mean_service
        base = ctx.rt.trace.shard_snapshot()
        plan = [("uniform", uniform_mix)] * BASELINE_WINDOWS
        plan += [("skew", skew_mix)] * n_windows
        for name, mix in plan:
            recs = ClosedLoopLoad(
                server, sessions, mix,
                n_users=users, arrival_rate=rate, n_requests=n_req,
                start=start, horizon=horizon, shed_backoff=1e-4,
            ).run(ctx)
            diff = ctx.rt.trace.shard_diff(base)
            base = ctx.rt.trace.shard_snapshot()
            rep = detector.observe(diff)
            windows.append((name, recs, rep))
            start = (
                max(server.virtual_now(), max(r.arrival for r in recs))
                + 64.0 * mean_service
            )
        drained = server.drain(timeout=120.0)
        return {
            "mean_service": mean_service,
            "rate": rate,
            "horizon": horizon,
            "windows": windows,
            "drained": drained,
            "in_flight_after_drain": server.stats()["queue_in_flight"],
        }

    rt, res = run_spmd(NRANKS, storm_phase, runtime=rt)
    drive = res[0]

    # -- phase 3: relocate under transients + a straggler -----------------
    def reb(ctx):
        db = state["db"]
        t0 = ctx.rt.effective_clock(ctx.rank)
        mapping = rebalance(ctx, db, plan_offload(ctx, db, HOT))
        return {
            "moves": len(mapping),
            "elapsed": ctx.rt.effective_clock(ctx.rank) - t0,
        }

    rt, reb_res = run_spmd(
        NRANKS, reb, runtime=rt,
        faults=FaultPlan(
            seed=3, transient_rate=0.01, op_retry_limit=8,
            stragglers={1: 1.5},
        ),
    )
    moves = reb_res[0]["moves"]
    faults_injected = sum(
        rt.trace.counters[r].snapshot()["faults_injected"]
        for r in range(NRANKS)
    )

    # -- phase 4: resume — same skewed mix, same rate, new placement ------
    def post_phase(ctx):
        if ctx.rank == 0:
            state["post_server"] = GraphServer(
                state["db"],
                config=ServeConfig(queue_capacity=QUEUE_CAP, retry=RETRY),
            )
        ctx.barrier()
        server = state["post_server"]
        if ctx.rank != 0:
            return server.serve(ctx)
        try:
            return ClosedLoopLoad(
                server, _sessions(server), skew_mix,
                n_users=users, arrival_rate=drive["rate"],
                n_requests=n_windows * traffic_requests(),
                horizon=drive["horizon"], shed_backoff=1e-4,
            ).run(ctx)
        finally:
            server.close()

    rt, post_res = run_spmd(
        NRANKS, post_phase, runtime=rt, faults=FaultPlan(seed=0)
    )
    post_recs = post_res[0]

    # -- phase 5: post-storm full-scan oracle -----------------------------
    def verify(ctx):
        return snapshot(ctx, state["db"])

    _, snaps = run_spmd(NRANKS, verify, runtime=rt)
    return {
        "before": state["before"],
        "after": snaps[0],
        "drive": drive,
        "reb_res": reb_res,
        "moves": moves,
        "faults_injected": faults_injected,
        "post_recs": post_recs,
        "rt": rt,
    }


def test_traffic_storm_detect_drain_rebalance_resume(report, metrics):
    users, n_req, n_windows = traffic_users(), traffic_requests(), traffic_windows()
    # The latency contrast is physics, but on a single-core runner the
    # OS scheduler can park a worker thread for a whole quantum and
    # trample either measurement window (inflated baselines, spurious
    # sheds).  Retry the full experiment on a fresh database rather than
    # loosening the thresholds until noise passes them.
    for _attempt in range(3):
        ex = _run_storm_experiment(users, n_req, n_windows)
        drive, post_recs = ex["drive"], ex["post_recs"]
        win_stats = [
            (name, _window_stats(recs), rep)
            for name, recs, rep in drive["windows"]
        ]
        skew_recs = [
            r
            for name, recs, _ in drive["windows"]
            if name == "skew"
            for r in recs
        ]
        storm_st = _window_stats(skew_recs)
        post_st = _window_stats(post_recs)
        contrast_ok = (
            storm_st["p50_latency"] >= 3.0 * post_st["p50_latency"]
            and storm_st["p99_latency"] >= 1.5 * post_st["p99_latency"]
        )
        if contrast_ok:
            break
    reb_res, moves = ex["reb_res"], ex["moves"]
    faults_injected, after = ex["faults_injected"], ex["after"]
    rt, before = ex["rt"], ex["before"]
    fired_idx = next(
        (i for i, (_, _, rep) in enumerate(win_stats) if rep.fired), None
    )
    improvement = (
        storm_st["p99_latency"] / post_st["p99_latency"]
        if post_st["p99_latency"] > 0
        else float("inf")
    )

    rows = [
        f"{i:>3d} {name:>8} {st['ok_oltp']:>8d} "
        f"{st['by_status'].get('shed', 0):>6d} "
        f"{st['p50_latency'] * 1e6:>9.1f} {st['p99_latency'] * 1e6:>9.1f} "
        f"{rep.skew:>6.2f} {'FIRED' if rep.fired else '':>6}"
        for i, (name, st, rep) in enumerate(win_stats)
    ]
    rows.append(
        f"{'post':>3} {'skew':>8} {post_st['ok_oltp']:>8d} "
        f"{post_st['by_status'].get('shed', 0):>6d} "
        f"{post_st['p50_latency'] * 1e6:>9.1f} "
        f"{post_st['p99_latency'] * 1e6:>9.1f} {'':>6} {'':>6}"
    )
    header = (
        f"{'win':>3} {'mix':>8} {'ok-oltp':>8} {'shed':>6} "
        f"{'p50 [us]':>9} {'p99 [us]':>9} {'skew':>6} {'det':>6}"
    )
    report(
        "traffic_storm",
        f"skew storm: {users} users, rate {drive['rate']:.0f} req/s, "
        f"theta={THETA}, {N_HOT} celebrities on shard {HOT}, "
        f"congestion feedback {PROF.congestion_feedback}\n"
        + "\n".join([header] + rows)
        + f"\n\ndetector fired at window {fired_idx} on shard "
        f"{win_stats[fired_idx][2].hot if fired_idx is not None else '-'}; "
        f"drain quiesced: {drive['drained']}\n"
        f"rebalance moved {moves} vertices off shard {HOT} under "
        f"{faults_injected} injected faults (transients + straggler)\n"
        f"admitted-OLTP p99: storm {storm_st['p99_latency'] * 1e6:.1f} us "
        f"-> post-rebalance {post_st['p99_latency'] * 1e6:.1f} us "
        f"({improvement:.1f}x)\npost-storm snapshot == pre-storm oracle: "
        f"{after['vertices'] == before['vertices']}",
    )
    metrics(
        "traffic_storm",
        {
            "nranks": NRANKS,
            "hot_shard": HOT,
            "theta": THETA,
            "n_hot": N_HOT,
            "users": users,
            "requests_per_window": n_req,
            "offered_rate": drive["rate"],
            "mean_service": drive["mean_service"],
            "congestion_feedback": PROF.congestion_feedback,
            "windows": [
                {"mix": name, "fired": rep.fired, "skew": rep.skew, **st}
                for name, st, rep in win_stats
            ],
            "detector_fired_window": fired_idx,
            "drained": drive["drained"],
            "rebalance_moves": moves,
            "rebalance_faults_injected": faults_injected,
            "storm_p99": storm_st["p99_latency"],
            "post_p99": post_st["p99_latency"],
            "p99_improvement": improvement,
            "post_outcomes": post_st["by_status"],
        },
    )

    # -- acceptance -------------------------------------------------------
    # the detector stayed silent through the uniform baseline and fired
    # on the right shard during the storm
    for name, _, rep in win_stats[:BASELINE_WINDOWS]:
        assert not rep.fired, f"false positive in {name} window"
    assert fired_idx is not None and fired_idx >= BASELINE_WINDOWS
    assert HOT in win_stats[fired_idx][2].hot
    # drain reached the quiescent point (no waiting or leased requests)
    assert drive["drained"] and drive["in_flight_after_drain"] == 0
    # the rebalance moved the hot shard off under live fault injection
    assert moves > 0 and faults_injected > 0
    assert all(r["moves"] == moves for r in reb_res)
    # participants adopted the bumped epoch: serving resumed cleanly
    assert rt.membership is not None and rt.membership.epoch >= 1
    assert post_st["ok_oltp"] > 0
    # the headline: the relocation restores admitted-OLTP latency at the
    # same offered rate and key mix.  The median is the robust congestion
    # signal — every storm request queues behind the hot NIC (p50 in the
    # hundreds of us) while the rebalanced placement serves from a short
    # queue (p50 in the tens of us).  The p99 contrast is real too but
    # carries scheduler noise in both windows (a GIL burst parks worker
    # slots for whole quanta), so it gets the wider 1.5x margin.
    assert storm_st["p50_latency"] >= 3.0 * post_st["p50_latency"], (
        storm_st["p50_latency"],
        post_st["p50_latency"],
    )
    assert storm_st["p99_latency"] >= 1.5 * post_st["p99_latency"], (
        storm_st["p99_latency"],
        post_st["p99_latency"],
    )
    # post-storm database equals the pre-storm full-scan oracle
    assert after["vertices"] == before["vertices"]
    assert sorted(after["light_edges"]) == sorted(before["light_edges"])
    assert sorted(after["heavy_edges"]) == sorted(before["heavy_edges"])


def test_traffic_rebalance_crash_consistency(report, metrics):
    """Kill the hot rank mid-rebalance: the survivors complete its voted
    move intents and the database (read through the mirror) still equals
    the pre-storm oracle."""
    CPAR = KroneckerParams(scale=6, edge_factor=4, seed=41)
    HOT_C = NRANKS - 1  # this scenario heats the last shard
    VICTIM = HOT_C
    state = {}

    def build(ctx):
        db = GdaDatabase.create(
            ctx, GdaConfig(blocks_per_rank=8192, replication=True)
        )
        build_lpg(ctx, db, CPAR, SCHEMA)
        snap = snapshot(ctx, db)
        if ctx.rank == 0:
            state["db"] = db
            state["before"] = snap
        ctx.barrier()

    rt, _ = run_spmd(NRANKS, build, seed=29)

    def reb(ctx):
        db = state["db"]
        return len(rebalance(ctx, db, plan_offload(ctx, db, HOT_C)))

    # crash the hot rank mid-commit: after the vote published its move
    # intents, before it finished re-pointing the DHT (probed op range
    # for this seed/scale; see CRASH_AT below)
    rt, res = run_spmd(
        NRANKS, reb, runtime=rt,
        faults=FaultPlan(seed=5, crash_rank=VICTIM, crash_at_op=CRASH_AT),
    )
    assert res[VICTIM] is None  # silent death, no SpmdError escaped
    survivors = [r for i, r in enumerate(res) if i != VICTIM]
    moves = survivors[0]
    assert moves > 0 and all(m == moves for m in survivors)
    assert rt.membership.degraded()

    def verify(ctx):
        if ctx.rank == VICTIM:
            return None
        return snapshot(ctx, state["db"])

    _, snaps = run_spmd(NRANKS, verify, runtime=rt)
    after = snaps[0]
    before = state["before"]
    assert after["vertices"] == before["vertices"]
    assert sorted(after["light_edges"]) == sorted(before["light_edges"])
    assert sorted(after["heavy_edges"]) == sorted(before["heavy_edges"])

    fences = sum(
        rt.trace.counters[r].snapshot()["epoch_fences"] for r in range(NRANKS)
    )
    report(
        "traffic_storm",
        f"crash rebalance: rank {VICTIM} (the hot shard) killed at op "
        f"{CRASH_AT} mid-commit; survivors completed all {moves} voted "
        f"moves\npost-crash snapshot == oracle: True; epoch fences: "
        f"{fences}; degraded membership: {rt.membership.degraded()}",
    )
    metrics(
        "traffic_storm_crash",
        {
            "victim": VICTIM,
            "crash_at_op": CRASH_AT,
            "moves_completed": moves,
            "oracle_equal": True,
            "epoch_fences": fences,
            "degraded": bool(rt.membership.degraded()),
        },
    )
