"""Final step of the harness: assemble REPORT.md from all results.

Named ``test_zz_*`` so pytest's alphabetical collection runs it after
every experiment has written its section.
"""

import json
import pathlib

from repro.analysis.report import build_report, write_bench_json, write_report


def test_zz_build_report(benchmark, results_dir):
    out = benchmark.pedantic(
        lambda: write_report(results_dir, results_dir.parent / "REPORT.md"),
        rounds=1,
        iterations=1,
    )
    text = pathlib.Path(out).read_text()
    assert text.startswith("# Regenerated evaluation")
    # fold per-experiment metrics into the committed BENCH_*.json trackers
    bench_files = write_bench_json(results_dir, results_dir.parent)
    for path in bench_files:
        payload = json.loads(path.read_text())
        assert payload, f"{path.name} folded to an empty payload"
        print(f"bench json: {path} ({', '.join(sorted(payload))})")
    # every experiment that wrote results is present
    for stem in (p.stem for p in results_dir.glob("*.txt")):
        assert stem in text or any(
            heading in text
            for s, heading in __import__(
                "repro.analysis.report", fromlist=["SECTION_ORDER"]
            ).SECTION_ORDER
            if s == stem
        )
    print(f"\nconsolidated report: {out} ({len(text.splitlines())} lines)")
