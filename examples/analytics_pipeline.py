#!/usr/bin/env python
"""OLAP analytics pipeline — the Figure 6 kernels on one graph.

Generates a labeled-property Kronecker graph, then runs BFS, PageRank,
weakly connected components, community detection, local clustering
coefficients, and a k-hop count — all through collective transactions —
and prints per-kernel simulated runtimes plus result sanity summaries.

Run:  python examples/analytics_pipeline.py
"""

from repro.analysis.scaling import format_table
from repro.gdi import EdgeOrientation, GraphDatabase
from repro.gdi.database import GdaConfig
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import run_spmd
from repro.workloads import (
    bfs,
    cdlp,
    khop_count,
    lcc,
    load_local_adjacency,
    pagerank,
    wcc,
)

PARAMS = KroneckerParams(scale=9, edge_factor=8, seed=99)


def app(ctx):
    db = GraphDatabase.create(ctx, GdaConfig(blocks_per_rank=65536))
    graph = build_lpg(ctx, db, PARAMS, default_schema(n_properties=4))
    ctx.barrier()

    timings = {}

    def timed(name, fn):
        ctx.barrier()
        t0 = ctx.clock
        out = fn()
        ctx.barrier()
        timings[name] = ctx.clock - t0
        return out

    adj_any = timed(
        "adjacency load",
        lambda: load_local_adjacency(ctx, graph, EdgeOrientation.ANY),
    )
    depths = timed("BFS", lambda: bfs(ctx, graph, 0, adj=adj_any))
    reached = ctx.allreduce(len(depths))
    pr = timed("PageRank(20)", lambda: pagerank(ctx, graph, 20))
    top_pr = ctx.allreduce(
        max(pr.items(), key=lambda kv: kv[1]), op=lambda a, b: max(a, b, key=lambda kv: kv[1])
    )
    comp = timed("WCC", lambda: wcc(ctx, graph, adj=adj_any))
    n_comp = len(ctx.allreduce(set(comp.values()), op=lambda a, b: a | b))
    labels = timed("CDLP(10)", lambda: cdlp(ctx, graph, 10, adj=adj_any))
    n_comm = len(ctx.allreduce(set(labels.values()), op=lambda a, b: a | b))
    coeffs = timed("LCC", lambda: lcc(ctx, graph))
    mean_lcc = ctx.allreduce(sum(coeffs.values())) / graph.n_vertices
    k2 = timed("2-hop count", lambda: khop_count(ctx, graph, 0, 2, adj=adj_any))
    return timings, reached, top_pr, n_comp, n_comm, mean_lcc, k2


if __name__ == "__main__":
    runtime, results = run_spmd(4, app)
    timings, reached, top_pr, n_comp, n_comm, mean_lcc, k2 = results[0]
    print(f"graph: 2^{PARAMS.scale} vertices, {PARAMS.n_edges} edges, 4 ranks\n")
    print(format_table(
        ["kernel", "simulated time (ms)"],
        [[name, t * 1e3] for name, t in timings.items()],
    ))
    print(f"\nBFS from vertex 0 reached {reached} vertices")
    print(f"highest PageRank: vertex {top_pr[0]} ({top_pr[1]:.5f})")
    print(f"connected components: {n_comp}")
    print(f"CDLP communities after 10 rounds: {n_comm}")
    print(f"mean local clustering coefficient: {mean_lcc:.4f}")
    print(f"vertices within 2 hops of vertex 0: {k2}")
    print("analytics pipeline OK")
