#!/usr/bin/env python
"""Business-intelligence (OLSP) query — the paper's Listing 3.

Implements the Cypher query the paper walks through in Section 3.1:

    MATCH (per:Person) WHERE per.age > 30
      AND per-[:OWN]->vehicle(:Car) AND vehicle.color = red
    RETURN count(per)

with the literal schema (Person/Car labels, OWN edges, age/color
properties), executed as a *collective transaction* with an explicit
index over :Person, exactly as Listing 3 prescribes.

Run:  python examples/business_intelligence.py
"""

import random

from repro.gdi import Constraint, Datatype, EdgeOrientation, GraphDatabase
from repro.gdi.database import GdaConfig
from repro.rma import run_spmd

N_PEOPLE = 300
N_CARS = 120
COLORS = ["red", "blue", "green", "black"]


def build_world(ctx, db):
    """Every rank bulk-creates its shard of people and cars."""
    if ctx.rank == 0:
        db.create_label(ctx, "Person")
        db.create_label(ctx, "Car")
        db.create_label(ctx, "OWN")
        db.create_property_type(ctx, "age", dtype=Datatype.INT64)
        db.create_property_type(ctx, "color", dtype=Datatype.STRING)
    ctx.barrier()
    db.replica(ctx).sync()
    person = db.label(ctx, "Person")
    car = db.label(ctx, "Car")
    own = db.label(ctx, "OWN")
    age = db.property_type(ctx, "age")
    color = db.property_type(ctx, "color")

    rng = random.Random(9)
    world = []  # (person_id, age, car_id or None, color)
    for pid in range(N_PEOPLE):
        a = rng.randint(16, 80)
        car_id = N_PEOPLE + rng.randrange(N_CARS) if rng.random() < 0.7 else None
        world.append((pid, a, car_id, rng.choice(COLORS)))

    tx = db.start_collective_transaction(ctx, write=True)
    car_colors = {}
    for pid, a, car_id, col in world:
        if car_id is not None and car_id not in car_colors:
            car_colors[car_id] = col
    for cid, col in car_colors.items():
        if db.home_rank(cid) == ctx.rank:
            tx.create_vertex(cid, labels=[car], properties=[(color, col)])
    for pid, a, _, _ in world:
        if db.home_rank(pid) == ctx.rank:
            tx.create_vertex(pid, labels=[person], properties=[(age, a)])
    tx.commit()

    # ownership edges (single-process txns; small writes)
    if ctx.rank == 0:
        tx = db.start_transaction(ctx, write=True)
        for pid, _, car_id, _ in world:
            if car_id is None:
                continue
            p = tx.associate_vertex(tx.translate_vertex_id(pid))
            c = tx.associate_vertex(tx.translate_vertex_id(car_id))
            tx.create_edge(p, c, label=own)
        tx.commit()
    ctx.barrier()
    return person, car, own, age, color, world, car_colors


def listing3_query(ctx, db, person, car, own, age, color, index):
    """Listing 3 verbatim: collective transaction + index + reduce."""
    tx = db.start_collective_transaction(ctx)   # GDI_StartCollectiveTransaction
    local_count = 0
    own_constraint = Constraint.has_label(own.int_id)
    for vid in index.local_vertices(ctx):        # GDI_GetLocalVerticesOfIndex
        vh = tx.associate_vertex(vid)            # GDI_AssociateVertex
        a = vh.property(age)                     # GDI_GetPropertiesOfVertex
        if a is None or a <= 30:
            continue                             # the condition is not met
        for thing_vid in vh.neighbors(           # GDI_GetNeighborVerticesOfVertex
            EdgeOrientation.OUTGOING, constraint=own_constraint
        ):
            obj = tx.associate_vertex(thing_vid)
            if not obj.has_label(car):           # GDI_GetAllLabelsOfVertex
                continue
            if obj.property(color) == "red":     # GDI_GetPropertiesOfVertex
                local_count += 1
                break
    tx.commit()                       # GDI_CloseCollectiveTransaction
    return ctx.allreduce(local_count)  # reduce(local_count)


def reference_count(world, car_colors):
    return sum(
        1
        for pid, a, car_id, _ in world
        if a > 30 and car_id is not None and car_colors[car_id] == "red"
    )


def app(ctx):
    db = GraphDatabase.create(ctx, GdaConfig(blocks_per_rank=16384))
    person, car, own, age, color, world, car_colors = build_world(ctx, db)
    index = db.create_index(ctx, "by_person", Constraint.has_label(person.int_id))
    count = listing3_query(ctx, db, person, car, own, age, color, index)
    return count, reference_count(world, car_colors)


if __name__ == "__main__":
    runtime, results = run_spmd(4, app)
    count, expected = results[0]
    print(f"people over 30 driving a red car: {count} (reference: {expected})")
    assert count == expected
    print(f"simulated query makespan: {runtime.max_clock() * 1e3:.2f} ms")
    print("business intelligence example OK")
