#!/usr/bin/env python
"""Durability: checkpoint a live database and recover it elsewhere.

Builds a labeled-property graph, runs OLTP traffic against it, snapshots
the database (a collective over all ranks), keeps mutating, and then
restores the snapshot into a brand-new database — demonstrating the D of
ACID for the in-memory engine and verifying the recovered state matches
the checkpoint exactly.

Run:  python examples/checkpoint_recovery.py
"""

from repro.gda.checkpoint import restore, snapshot
from repro.gdi import GraphDatabase
from repro.gdi.database import GdaConfig
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import run_spmd
from repro.workloads import MIXES, group_count_by_label, run_oltp_rank

PARAMS = KroneckerParams(scale=7, edge_factor=6, seed=23)


def app(ctx):
    db = GraphDatabase.create(ctx, GdaConfig(blocks_per_rank=32768))
    graph = build_lpg(ctx, db, PARAMS, default_schema(n_properties=6))
    ctx.barrier()

    # some OLTP traffic before the checkpoint
    run_oltp_rank(ctx, graph, MIXES["LB"], n_ops=40, seed=3)
    ctx.barrier()

    snap = snapshot(ctx, db)
    checkpoint_counts = group_count_by_label(ctx, graph)
    n_checkpoint = len(snap["vertices"])

    # keep mutating the source database after the checkpoint
    run_oltp_rank(ctx, graph, MIXES["WI"], n_ops=40, seed=4)
    ctx.barrier()
    n_after = db.num_vertices(ctx)

    # disaster strikes; recover into a fresh database
    db2 = GraphDatabase.create(ctx, GdaConfig(blocks_per_rank=32768))
    restore(ctx, db2, snap)
    snap2 = snapshot(ctx, db2)
    return (
        n_checkpoint,
        n_after,
        snap2["vertices"] == snap["vertices"],
        snap2["light_edges"] == snap["light_edges"],
        checkpoint_counts,
    )


if __name__ == "__main__":
    runtime, results = run_spmd(4, app)
    n_checkpoint, n_after, vertices_ok, edges_ok, counts = results[0]
    print(f"checkpointed state: {n_checkpoint} vertices")
    print(f"source database mutated on: {n_after} vertices now")
    print(f"recovered vertices match checkpoint: {vertices_ok}")
    print(f"recovered edges match checkpoint:    {edges_ok}")
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:3]
    print(f"largest label groups at checkpoint: {top}")
    assert vertices_ok and edges_ok
    print("checkpoint/recovery example OK")
