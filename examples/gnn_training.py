#!/usr/bin/env python
"""GNN over the database — the paper's Listing 2 (OLAP / graph ML).

Runs forward passes of a graph convolution network directly against GDI:
per layer, every rank aggregates neighbor feature vectors (remote reads
through vertex handles), applies an MLP + non-linearity, and writes the
updated feature property back — one collective transaction per layer.

Run:  python examples/gnn_training.py
"""

import numpy as np

from repro.gdi import GraphDatabase
from repro.gdi.database import GdaConfig
from repro.generator import KroneckerParams, build_lpg, default_schema
from repro.rma import run_spmd
from repro.workloads import gcn_forward, random_gcn_weights

DIM = 8
LAYERS = 3
PARAMS = KroneckerParams(scale=7, edge_factor=6, seed=3)
SCHEMA = default_schema(feature_dim=DIM)


def app(ctx):
    db = GraphDatabase.create(ctx, GdaConfig(blocks_per_rank=16384))
    graph = build_lpg(ctx, db, PARAMS, SCHEMA)
    ctx.barrier()
    weights = random_gcn_weights(LAYERS, DIM, seed=1)

    t0 = ctx.clock
    features = gcn_forward(ctx, graph, weights)
    elapsed = ctx.clock - t0

    # simple readout: global mean embedding (a graph-level representation)
    local_sum = np.zeros(DIM)
    for f in features.values():
        local_sum += f
    global_sum = ctx.allreduce(local_sum, op=lambda a, b: a + b)
    readout = global_sum / graph.n_vertices
    return elapsed, readout, len(features)


if __name__ == "__main__":
    runtime, results = run_spmd(4, app)
    elapsed, readout, _ = results[0]
    total_feats = sum(r[2] for r in results)
    print(f"GCN: {LAYERS} layers over {PARAMS.n_vertices} vertices "
          f"({PARAMS.n_edges} edges), feature dim {DIM}")
    print(f"vertices embedded: {total_feats}")
    print(f"graph-level readout (mean embedding): "
          f"{np.array2string(readout, precision=3)}")
    print(f"simulated time for all layers: {elapsed * 1e3:.2f} ms")
    assert total_feats == PARAMS.n_vertices
    print("gnn training example OK")
