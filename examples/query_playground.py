#!/usr/bin/env python
"""Query playground: the Cypher-lite declarative engine end to end.

Builds a small social graph, then walks through the query layer
(docs/GDI_SPEC.md §11): point lookups, filtered traversals, var-length
BFS, aggregation, parameterized plans and the plan cache, writes, and
EXPLAIN / PROFILE introspection of the generated GDI plans.

Run:  python examples/query_playground.py
"""

from repro.gdi import Datatype, GraphDatabase
from repro.query import QueryEngine
from repro.rma import run_spmd

PEOPLE = [
    (1, "Alice", 34, "zurich"),
    (2, "Bob", 27, "zurich"),
    (3, "Carol", 41, "tokyo"),
    (4, "Dave", 27, "tokyo"),
    (5, "Erin", 35, "zurich"),
]
KNOWS = [(1, 2), (2, 3), (3, 4), (4, 5), (5, 1), (1, 3)]


def app(ctx):
    db = GraphDatabase.create(ctx)
    if ctx.rank == 0:
        for lbl in ("Person", "City", "KNOWS", "LIVES_IN"):
            db.create_label(ctx, lbl)
        db.create_property_type(ctx, "name", dtype=Datatype.STRING)
        db.create_property_type(ctx, "age", dtype=Datatype.INT64)
    ctx.barrier()
    db.replica(ctx).sync()

    engine = QueryEngine(db)
    if ctx.rank != 0:
        ctx.barrier()
        return

    # -- load the graph declaratively -----------------------------------
    for app_id, name, age, _ in PEOPLE:
        engine.run(
            ctx,
            "CREATE (p:Person {id = $id, name = $name, age = $age})",
            params={"id": app_id, "name": name, "age": age},
        )
    for i, city in enumerate(sorted({c for *_, c in PEOPLE})):
        engine.run(
            ctx,
            "CREATE (c:City {id = $id, name = $name})",
            params={"id": 100 + i, "name": city},
        )
    for src, dst in KNOWS:
        engine.run(
            ctx,
            "MATCH (a {id = $s}), (b {id = $t}) CREATE (a)-[:KNOWS]->(b)",
            params={"s": src, "t": dst},
        )
    for app_id, _, _, city in PEOPLE:
        engine.run(
            ctx,
            "MATCH (p {id = $p}), (c:City {name = $c}) "
            "CREATE (p)-[:LIVES_IN]->(c)",
            params={"p": app_id, "c": city},
        )
    print("[load] graph created through CREATE statements")

    # -- reads ----------------------------------------------------------
    r = engine.run(
        ctx,
        "MATCH (a:Person {name = 'Alice'})-[:KNOWS]->(b) "
        "RETURN b.name, b.age ORDER BY b.name",
    )
    print(f"[expand] Alice knows: {r.rows}")

    r = engine.run(
        ctx,
        "MATCH (a {id = 1})-[:KNOWS*1..2]->(b) RETURN b.name ORDER BY b.name",
    )
    print(f"[var-length] within 2 hops of Alice: {[n for (n,) in r.rows]}")

    r = engine.run(
        ctx,
        "MATCH (p:Person)-[:LIVES_IN]->(c:City) "
        "RETURN c.name AS city, count(*) AS people, avg(p.age) AS mean_age "
        "ORDER BY city",
    )
    for city, n, mean_age in r.rows:
        print(f"[aggregate] {city}: {n} people, mean age {mean_age:.1f}")

    # -- parameterized plans & the plan cache ---------------------------
    q = "MATCH (p:Person) WHERE p.age > $min RETURN count(*)"
    for lo in (25, 30, 40):
        print(f"[params] people older than {lo}: "
              f"{engine.run(ctx, q, params={'min': lo}).scalar()}")
    info = engine.cache_info(ctx)
    print(f"[cache] {info['hits']} hits / {info['misses']} misses "
          f"({info['entries']} cached plans)")

    # -- introspection --------------------------------------------------
    print("[explain] point lookup plans as a DHT seek, not a scan:")
    print(engine.explain(ctx, "MATCH (p {id = 3}) RETURN p.name"))
    r = engine.run(
        ctx, "PROFILE MATCH (p:Person)-[:KNOWS]->(q) RETURN count(*)"
    )
    print(f"[profile] KNOWS edges: {r.scalar()}; per-operator counters:")
    print(r.plan_text)

    # -- writes ---------------------------------------------------------
    engine.run(ctx, "MATCH (p {id = 2}) SET p.age = 28")
    print(f"[set] Bob is now "
          f"{engine.run(ctx, 'MATCH (p {id = 2}) RETURN p.age').scalar()}")
    engine.run(ctx, "MATCH (p {id = 5}) DETACH DELETE p")
    n = engine.run(ctx, "MATCH (p:Person) RETURN count(*)").scalar()
    print(f"[delete] Erin removed; {n} people remain")
    ctx.barrier()


if __name__ == "__main__":
    runtime, _ = run_spmd(2, app)
    print(f"simulated makespan: {runtime.max_clock() * 1e6:.1f} us")
    print("query playground OK")
