#!/usr/bin/env python
"""Quickstart: create a database, a schema, some data, and query it.

Demonstrates the core GDI workflow on 4 simulated ranks:
collective database creation, metadata (labels, property types),
single-process write/read transactions, edges, and a constraint-filtered
traversal.

Run:  python examples/quickstart.py
"""

from repro.gdi import Constraint, Datatype, EdgeOrientation, GraphDatabase
from repro.rma import run_spmd


def app(ctx):
    # Database creation is collective: every rank participates.
    db = GraphDatabase.create(ctx)

    # Metadata is eventually consistent; create it on one rank and sync.
    if ctx.rank == 0:
        db.create_label(ctx, "Person")
        db.create_label(ctx, "knows")
        db.create_property_type(ctx, "name", dtype=Datatype.STRING)
        db.create_property_type(ctx, "age", dtype=Datatype.INT64)
    ctx.barrier()
    db.replica(ctx).sync()
    person = db.label(ctx, "Person")
    knows = db.label(ctx, "knows")
    name = db.property_type(ctx, "name")
    age = db.property_type(ctx, "age")

    # Rank 0 writes a tiny social graph in one local write transaction.
    if ctx.rank == 0:
        tx = db.start_transaction(ctx, write=True)
        alice = tx.create_vertex(1, labels=[person], properties=[(name, "Alice"), (age, 34)])
        bob = tx.create_vertex(2, labels=[person], properties=[(name, "Bob"), (age, 27)])
        carol = tx.create_vertex(3, labels=[person], properties=[(name, "Carol"), (age, 41)])
        tx.create_edge(alice, bob, label=knows)
        tx.create_edge(alice, carol, label=knows)
        tx.commit()
        print("[rank 0] created 3 vertices and 2 edges")
    ctx.barrier()

    # Any rank can read — storage is distributed, access is one-sided.
    tx = db.start_transaction(ctx)
    alice = tx.associate_vertex(tx.translate_vertex_id(1))
    friends = []
    for nvid in alice.neighbors(
        EdgeOrientation.OUTGOING, constraint=Constraint.has_label(knows.int_id)
    ):
        n = tx.associate_vertex(nvid)
        friends.append((n.property(name), n.property(age)))
    tx.commit()
    print(f"[rank {ctx.rank}] Alice knows: {sorted(friends)}")

    # Global aggregate with a collective transaction + reduce.
    tx = db.start_collective_transaction(ctx)
    local_sum = 0
    for vid in db.directory.local_vertices(ctx):
        v = tx.associate_vertex(vid)
        local_sum += v.property(age) or 0
    total = ctx.allreduce(local_sum)
    tx.commit()
    if ctx.rank == 0:
        print(f"[rank 0] sum of all ages (collective query): {total}")
    return total


if __name__ == "__main__":
    runtime, results = run_spmd(4, app)
    assert all(r == 34 + 27 + 41 for r in results)
    print(f"simulated makespan: {runtime.max_clock() * 1e6:.1f} us")
    print(f"one-sided ops issued: {runtime.trace.summary()['puts'] + runtime.trace.summary()['gets'] + runtime.trace.summary()['atomics']}")
    print("quickstart OK")
