#!/usr/bin/env python
"""Interactive OLTP on a social network — the paper's Listing 1.

Builds a Kronecker social graph, then runs the Listing 1 query ("retrieve
the first and last name of all persons that a given person is friends
with") as a single-process read transaction, followed by a burst of the
LinkBench (LB) operation mix from Table 3 with latency statistics.

Run:  python examples/social_network.py
"""

from repro.analysis import summarize
from repro.gdi import Datatype, EdgeOrientation, GraphDatabase
from repro.gdi.database import GdaConfig
from repro.generator import KroneckerParams, LpgSchema, PropertySpec, build_lpg
from repro.rma import run_spmd
from repro.workloads import MIXES, aggregate_oltp, run_oltp_rank

PARAMS = KroneckerParams(scale=8, edge_factor=8, seed=42)

# A social-network-flavoured schema: one Person label, FRIENDOF edges,
# first/last names — the exact shape Listing 1 assumes.
SCHEMA = LpgSchema(
    n_vertex_labels=1,
    n_edge_labels=1,
    properties=[
        PropertySpec("fname", Datatype.STRING, length=6),
        PropertySpec("lname", Datatype.STRING, length=8),
        PropertySpec("p_ts", Datatype.INT64),
    ],
    secondary_label_density=0.0,
)


def listing1_friends_query(ctx, graph, person_app_id):
    """Listing 1, line by line (GDI_* calls as handle methods)."""
    db = graph.db
    fname = graph.ptype("fname")
    lname = graph.ptype("lname")
    friendof = graph.edge_label(0)

    tx = db.start_transaction(ctx)                      # GDI_StartTransaction
    vid = tx.translate_vertex_id(person_app_id)         # GDI_TranslateVertexID
    vh = tx.associate_vertex(vid)                       # GDI_AssociateVertex
    neighbor_ids = []
    for eh in vh.edges(EdgeOrientation.OUTGOING):       # GDI_GetEdgesOfVertex
        labels = eh.labels()                            # GDI_GetAllLabelsOfEdge
        if any(l.int_id == friendof.int_id for l in labels):
            _, target = eh.endpoints()                  # GDI_GetVerticesOfEdge
            neighbor_ids.append(target)
    names = []
    for nid in neighbor_ids:
        nh = tx.associate_vertex(nid)                   # GDI_AssociateVertex
        names.append((nh.property(fname), nh.property(lname)))
    tx.commit()                                         # GDI_CloseTransaction
    return names


def app(ctx):
    db = GraphDatabase.create(ctx, GdaConfig(blocks_per_rank=32768))
    graph = build_lpg(ctx, db, PARAMS, SCHEMA)
    ctx.barrier()

    if ctx.rank == 0:
        names = listing1_friends_query(ctx, graph, person_app_id=5)
        print(f"[Listing 1] person 5 has {len(names)} friends; first few: "
              f"{sorted(names)[:3]}")
    ctx.barrier()

    # LinkBench mix (Table 3, LB column), concurrently from all ranks.
    result = run_oltp_rank(ctx, graph, MIXES["LB"], n_ops=150, seed=7)
    return result


if __name__ == "__main__":
    runtime, results = run_spmd(4, app)
    agg = aggregate_oltp(MIXES["LB"], results)
    print(f"\nLinkBench mix on 4 ranks: {agg.n_ops} ops, "
          f"{agg.failed_fraction * 100:.2f}% failed transactions")
    print(f"throughput: {agg.throughput:,.0f} ops/s (simulated)")
    for op, lat in sorted(agg.latencies.items(), key=lambda kv: kv[0].value):
        s = summarize([l * 1e6 for l in lat], warmup_fraction=0.0)
        print(f"  {op.value:24s} n={s.n:4d}  mean={s.mean:8.2f} us  "
              f"95% CI of median=[{s.ci_low:.2f}, {s.ci_high:.2f}] us")
