"""Reproduction of "The Graph Database Interface" (Besta et al., SC 2023).

Subpackages
-----------
``repro.rma``
    Simulated distributed-memory RMA substrate (windows, one-sided ops,
    atomics, collectives, LogGP-style cost model) standing in for
    foMPI/MPI-3 RMA on Cray hardware.
``repro.gdi``
    The Graph Database Interface specification layer: databases, labels,
    property types, vertices, edges, constraints, indexes, transactions.
``repro.gda``
    GDI-RMA ("GDA"): the paper's distributed-memory implementation —
    BGDL block layout, distributed pointers, lock-free DHT, scalable
    reader-writer locks, replicated metadata, transactions.
``repro.generator``
    Distributed in-memory LPG Kronecker graph generator (paper Section 6.3).
``repro.workloads``
    OLTP mixes (Table 3), OLAP analytics (BFS/PR/CDLP/WCC/LCC/k-hop),
    GNN, and OLSP/BI workloads from Section 4.
``repro.baselines``
    JanusGraph-class RPC baseline and Graph500-style raw BFS baseline.
``repro.analysis``
    Statistics (Section 6.1 methodology) and scaling-harness helpers.
"""

__version__ = "1.0.0"
