"""Measurement methodology (Section 6.1) and scaling-harness helpers."""

from .stats import Summary, log_histogram, median_ci, summarize, trim_warmup

__all__ = ["Summary", "log_histogram", "median_ci", "summarize", "trim_warmup"]
