"""Consolidated evaluation report builder.

Assembles the per-experiment text reports written by the benchmark
harness (``benchmarks/results/*.txt``) into one ``REPORT.md`` ordered by
the paper's evaluation structure, so a single file shows the whole
regenerated evaluation.
"""

from __future__ import annotations

import json
import pathlib

__all__ = [
    "SECTION_ORDER",
    "BENCH_JSON_GROUPS",
    "build_report",
    "write_report",
    "write_bench_json",
]

#: (results file stem, section heading) in the paper's presentation order.
SECTION_ORDER: list[tuple[str, str]] = [
    ("table3_mixes", "Table 3 — OLTP workload mixes"),
    ("fig4_oltp_weak_scaling", "Figure 4 — OLTP weak scaling"),
    ("fig4_oltp_strong_scaling", "Figure 4 — OLTP strong scaling"),
    ("fig5_latency_histograms", "Figure 5 — operation latency histograms"),
    ("fig6_olap_weak_scaling", "Figure 6 — OLAP/OLSP weak scaling"),
    ("fig6_olap_strong_scaling", "Figure 6 — OLAP/OLSP strong scaling"),
    ("sec66_sweeps", "Section 6.6 — labels, properties, edge factors"),
    ("sec67_realworld", "Section 6.7 — real-world graphs"),
    ("sec68_extreme_scale", "Section 6.8 — extreme scales"),
    ("interactive_complex", "Extension — interactive complex queries"),
    ("query_engine", "Extension — declarative query engine vs hand-coded"),
    ("serve_overload", "Extension — serving under overload"),
    ("traffic_storm", "Extension — adversarial skew storm & live rebalance"),
    ("htap_storm", "Extension — HTAP: snapshot OLAP under OLTP storm"),
    ("micro_batch_coalescing", "Microbenchmark — RMA doorbell coalescing"),
    ("micro_codec", "Microbenchmark — holder codec: struct vs numpy view"),
    ("ablation_blocksize", "Ablation — BGDL block size"),
    ("ablation_features", "Ablations — batching & rebalancing"),
    ("costmodel_validation", "Appendix — cost-model validation"),
]


def build_report(results_dir: pathlib.Path | str) -> str:
    """Concatenate the experiment reports into one markdown document."""
    results_dir = pathlib.Path(results_dir)
    parts = [
        "# Regenerated evaluation — The Graph Database Interface (SC 2023)",
        "",
        "All tables below were produced by `pytest benchmarks/"
        " --benchmark-only` on the simulated RMA substrate; see"
        " EXPERIMENTS.md for the paper-vs-measured discussion and DESIGN.md"
        " for the substitution rules.",
        "",
    ]
    seen = set()
    for stem, heading in SECTION_ORDER:
        path = results_dir / f"{stem}.txt"
        if not path.exists():
            continue
        seen.add(path.name)
        parts.append(f"## {heading}")
        parts.append("")
        parts.append("```")
        parts.append(path.read_text().rstrip())
        parts.append("```")
        parts.append("")
    # anything not in the canonical order still gets included
    for path in sorted(results_dir.glob("*.txt")):
        if path.name in seen:
            continue
        parts.append(f"## {path.stem}")
        parts.append("")
        parts.append("```")
        parts.append(path.read_text().rstrip())
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def write_report(
    results_dir: pathlib.Path | str, out_path: pathlib.Path | str
) -> pathlib.Path:
    out_path = pathlib.Path(out_path)
    out_path.write_text(build_report(results_dir))
    return out_path


#: Committed tracking file -> the per-experiment JSON stems folded into it.
BENCH_JSON_GROUPS: dict[str, tuple[str, ...]] = {
    "BENCH_fig6.json": (
        "fig6_olap_weak_scaling",
        "fig6_olap_strong_scaling",
    ),
    "BENCH_query.json": (
        "query_engine",
        "micro_codec",
    ),
    "BENCH_serve.json": (
        "serve_overload",
        "serve_overload_crash",
    ),
    "BENCH_traffic.json": (
        "traffic_storm",
        "traffic_storm_crash",
    ),
    "BENCH_htap.json": ("htap_storm",),
}


def write_bench_json(
    results_dir: pathlib.Path | str, out_dir: pathlib.Path | str
) -> list[pathlib.Path]:
    """Fold per-experiment metrics JSON into the committed BENCH_* files.

    Each group file maps experiment stem -> that experiment's metrics
    payload.  Stems whose ``results/<stem>.json`` is absent (experiment
    not run this session) are skipped, and a group with no present stems
    writes nothing — a partial benchmark run never clobbers tracked
    history with an empty file.
    """
    results_dir = pathlib.Path(results_dir)
    out_dir = pathlib.Path(out_dir)
    written: list[pathlib.Path] = []
    for out_name, stems in BENCH_JSON_GROUPS.items():
        merged = {}
        for stem in stems:
            path = results_dir / f"{stem}.json"
            if path.exists():
                merged[stem] = json.loads(path.read_text())
        if not merged:
            continue
        out_path = out_dir / out_name
        out_path.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n"
        )
        written.append(out_path)
    return written
