"""Weak/strong scaling harness and extreme-scale extrapolation (§6.8).

The paper's largest runs use 7,142 servers / 121,680 cores — far beyond
what an in-process simulation can instantiate.  Following the DESIGN.md
substitution rule, the extreme-scale experiments are reproduced by

1. *measuring* simulated throughput/runtime at instantiable rank counts
   (2..32), and
2. *fitting* the throughput model ``T(P) = a * P / (1 + b * log2(P))`` —
   linear per-rank service rate damped by the logarithmic collective /
   synchronization share, which is the asymptotic behaviour of GDA's
   communication structure — and extrapolating to the paper's scales.

Section 6.8's quantitative check ("moving from 275B to 550B edges
increases OLTP throughput by ~3x while #servers increases 3.49x") is a
statement about this curve's mild sublinearity; the fitted model
reproduces it when ``b > 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "ScalingCurve",
    "fit_throughput_curve",
    "format_table",
    "PIZ_DAINT_FULL_CORES",
    "PIZ_DAINT_FULL_SERVERS",
]

#: The paper's largest configuration (Table 1 / Section 6.8).
PIZ_DAINT_FULL_CORES = 121_680
PIZ_DAINT_FULL_SERVERS = 7_142


@dataclass(frozen=True)
class ScalingCurve:
    """Fitted ``T(P) = a * P / (1 + b * log2(P))`` throughput curve."""

    a: float
    b: float

    def throughput(self, nranks: float) -> float:
        if nranks <= 1:
            return self.a * nranks
        return self.a * nranks / (1.0 + self.b * math.log2(nranks))

    def speedup_ratio(self, p_from: float, p_to: float) -> float:
        """Throughput ratio when scaling from ``p_from`` to ``p_to`` ranks."""
        return self.throughput(p_to) / self.throughput(p_from)


def fit_throughput_curve(
    rank_counts: Sequence[int], throughputs: Sequence[float]
) -> ScalingCurve:
    """Least-squares fit of the two-parameter scaling model.

    Linearised: ``P / T = (1 + b log2 P) / a`` is linear in ``log2 P``,
    so an ordinary least-squares solve recovers ``(a, b)``.  ``b`` is
    clamped to be non-negative (super-linear scaling would be a
    measurement artifact at these sizes).
    """
    p = np.asarray(rank_counts, dtype=np.float64)
    t = np.asarray(throughputs, dtype=np.float64)
    if len(p) < 2 or np.any(t <= 0):
        raise ValueError("need >= 2 positive throughput samples")
    y = p / t  # = 1/a + (b/a) log2 P
    x = np.log2(np.maximum(p, 1.0))
    design = np.stack([np.ones_like(x), x], axis=1)
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    inv_a, b_over_a = coef
    inv_a = max(inv_a, 1e-30)
    a = 1.0 / inv_a
    b = max(0.0, float(b_over_a * a))
    return ScalingCurve(a=float(a), b=b)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width ASCII table used by the benchmark harness output."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(v) for v in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for ri, row in enumerate(cells):
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3e}"
        return f"{v:.3f}"
    return str(v)
