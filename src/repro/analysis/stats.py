"""Measurement methodology of the paper's Section 6.1.

"For measurements, we omit the first 1% of performance data as warmup.
We derive enough data for the mean and 95% non-parametric confidence
intervals.  We use arithmetic means as summaries."

This module implements exactly that: warmup trimming, arithmetic means,
and non-parametric (order-statistics / bootstrap-free) confidence
intervals for the median and percentile-based intervals for the
distribution, plus the log-spaced histogram buckets used by Figure 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "trim_warmup", "median_ci", "log_histogram"]


def trim_warmup(samples, fraction: float = 0.01) -> np.ndarray:
    """Drop the first ``fraction`` of samples (paper: first 1% as warmup)."""
    arr = np.asarray(samples, dtype=np.float64)
    k = int(math.floor(len(arr) * fraction))
    return arr[k:]


def median_ci(samples, confidence: float = 0.95) -> tuple[float, float]:
    """Non-parametric CI for the median via binomial order statistics.

    Distribution-free: if X(1) <= ... <= X(n) are the order statistics,
    P(X(l) < median < X(u)) follows Binomial(n, 1/2).
    """
    arr = np.sort(np.asarray(samples, dtype=np.float64))
    n = len(arr)
    if n == 0:
        return (math.nan, math.nan)
    if n == 1:
        return (arr[0], arr[0])
    # normal approximation to the binomial quantiles (standard practice)
    z = 1.959963984540054 if confidence == 0.95 else _z_of(confidence)
    half = z * math.sqrt(n) / 2.0
    lo = max(0, int(math.floor(n / 2.0 - half)))
    hi = min(n - 1, int(math.ceil(n / 2.0 + half)))
    return (float(arr[lo]), float(arr[hi]))


def _z_of(confidence: float) -> float:
    # inverse error function via Newton iterations; avoids a scipy import
    p = (1 + confidence) / 2
    x = 0.0
    for _ in range(60):
        c = 0.5 * (1 + math.erf(x / math.sqrt(2))) - p
        d = math.exp(-x * x / 2) / math.sqrt(2 * math.pi)
        x -= c / d
    return x


@dataclass(frozen=True)
class Summary:
    """Arithmetic-mean summary with a 95% non-parametric median CI."""

    n: int
    mean: float
    median: float
    ci_low: float
    ci_high: float
    p5: float
    p95: float
    minimum: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - formatting only
        return (
            f"n={self.n} mean={self.mean:.3g} median={self.median:.3g} "
            f"95%CI=[{self.ci_low:.3g}, {self.ci_high:.3g}]"
        )


def summarize(samples, warmup_fraction: float = 0.01) -> Summary:
    """Full Section 6.1 treatment of one sample series."""
    arr = trim_warmup(samples, warmup_fraction)
    if len(arr) == 0:
        nan = math.nan
        return Summary(0, nan, nan, nan, nan, nan, nan, nan, nan)
    lo, hi = median_ci(arr)
    return Summary(
        n=len(arr),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        ci_low=lo,
        ci_high=hi,
        p5=float(np.percentile(arr, 5)),
        p95=float(np.percentile(arr, 95)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


def log_histogram(
    samples,
    n_buckets: int = 24,
    lo: float | None = None,
    hi: float | None = None,
) -> list[tuple[float, float, int]]:
    """Log-spaced latency histogram as plotted in the paper's Figure 5.

    Returns ``(bucket_low, bucket_high, count)`` triples.  Bounds default
    to the sample range (zero samples are clamped to the smallest
    positive value).
    """
    arr = np.asarray(samples, dtype=np.float64)
    arr = arr[np.isfinite(arr)]
    if len(arr) == 0:
        return []
    positive = arr[arr > 0]
    floor = positive.min() if len(positive) else 1e-9
    arr = np.clip(arr, floor, None)
    lo = lo if lo is not None else float(arr.min())
    hi = hi if hi is not None else float(arr.max())
    if lo <= 0:
        lo = floor
    if hi <= lo:
        hi = lo * 10
    edges = np.logspace(math.log10(lo), math.log10(hi), n_buckets + 1)
    # guard against log/exp rounding pushing the extremes out of range
    edges[0] = min(edges[0], float(arr.min()))
    edges[-1] = max(edges[-1], float(arr.max()))
    counts, _ = np.histogram(arr, bins=edges)
    return [
        (float(edges[i]), float(edges[i + 1]), int(counts[i]))
        for i in range(n_buckets)
    ]
