"""Comparison baselines of the paper's evaluation (Sections 6.2, 6.5).

A JanusGraph-class RPC/eventual-consistency baseline calibrated to the
paper's JanusGraph measurements (:mod:`.janusgraph_sim`) and a
Graph500-class raw-CSR BFS (:mod:`.graph500_bfs`).
"""

from .graph500_bfs import CsrShard, build_csr_shard, graph500_bfs
from .janusgraph_sim import (
    JanusGraphSim,
    JanusScaleError,
    janus_bfs,
    run_janus_oltp_rank,
)

__all__ = [
    "CsrShard",
    "build_csr_shard",
    "graph500_bfs",
    "JanusGraphSim",
    "JanusScaleError",
    "janus_bfs",
    "run_janus_oltp_rank",
]
