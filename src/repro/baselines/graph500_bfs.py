"""Graph500-class BFS baseline (paper Section 6.5).

The paper compares GDA's transactional BFS against the Graph500 reference
implementation — "a highly tuned BFS code" operating on static simple
graphs with no labels, properties, or transactions.  This module is the
equivalent for our substrate: a level-synchronous distributed BFS over a
raw CSR shard built directly from the Kronecker generator, running on the
*same* simulated network (so the GDA-vs-Graph500 gap isolates exactly what
the paper's comparison isolates: the overhead of the LPG data model and
the transactional storage engine).

The expected shape (paper): GDA is at most 2-4x slower, occasionally
comparable — because both codes have the same communication structure and
GDA adds per-vertex holder fetches and transaction bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..generator.kronecker import KroneckerParams, generate_edges
from ..rma.runtime import RankContext

__all__ = ["CsrShard", "build_csr_shard", "graph500_bfs"]


@dataclass
class CsrShard:
    """This rank's CSR shard: vertices ``app % nranks == rank``.

    ``index[u]`` gives the row of local vertex ``u`` in ``offsets``.
    """

    nranks: int
    local_vertices: np.ndarray  # app ids, sorted
    offsets: np.ndarray  # len = n_local + 1
    targets: np.ndarray  # concatenated neighbor app ids
    index: dict[int, int]

    def neighbors(self, app_id: int) -> np.ndarray:
        row = self.index[app_id]
        return self.targets[self.offsets[row] : self.offsets[row + 1]]

    def home(self, app_id: int) -> int:
        return app_id % self.nranks


def build_csr_shard(
    ctx: RankContext,
    params: KroneckerParams,
    undirected: bool = True,
) -> CsrShard:
    """Exchange generated edges and compress this rank's shard to CSR.

    Charges the alltoall and the (vectorized) local sort to the simulated
    clock; this mirrors Graph500's timed graph-construction phase, which
    the paper's BFS comparison excludes — benchmarks therefore time
    :func:`graph500_bfs` separately.
    """
    edges = generate_edges(params, ctx.rank, ctx.nranks)
    outboxes: list[list[tuple[int, int]]] = [[] for _ in range(ctx.nranks)]
    for s, d in edges.tolist():
        outboxes[s % ctx.nranks].append((s, d))
        if undirected and s != d:
            outboxes[d % ctx.nranks].append((d, s))
    received = ctx.alltoall(outboxes)
    pairs = [p for box in received for p in box]
    local_vertices = np.arange(ctx.rank, params.n_vertices, ctx.nranks)
    index = {int(u): i for i, u in enumerate(local_vertices)}
    counts = np.zeros(len(local_vertices) + 1, dtype=np.int64)
    for s, _ in pairs:
        counts[index[s] + 1] += 1
    offsets = np.cumsum(counts)
    targets = np.zeros(len(pairs), dtype=np.int64)
    cursor = offsets[:-1].copy()
    for s, d in pairs:
        row = index[s]
        targets[cursor[row]] = d
        cursor[row] += 1
    ctx.compute(len(pairs) * 2)
    return CsrShard(
        nranks=ctx.nranks,
        local_vertices=local_vertices,
        offsets=offsets,
        targets=targets,
        index=index,
    )


def graph500_bfs(
    ctx: RankContext, shard: CsrShard, root: int
) -> dict[int, int]:
    """Level-synchronous BFS on the raw CSR shard; returns local depths.

    One local scalar op per scanned edge (the tuned-kernel cost), one
    alltoall per level — the minimal communication structure a
    distributed BFS can have.
    """
    depth: dict[int, int] = {}
    frontier: list[int] = []
    if shard.home(root) == ctx.rank and root in shard.index:
        depth[root] = 0
        frontier = [root]
    level = 0
    while True:
        if not ctx.allreduce(len(frontier)):
            break
        outboxes: list[list[int]] = [[] for _ in range(ctx.nranks)]
        scanned = 0
        for u in frontier:
            for nbr in shard.neighbors(u).tolist():
                outboxes[nbr % shard.nranks].append(nbr)
                scanned += 1
        ctx.compute(scanned)
        received = ctx.alltoall(outboxes)
        level += 1
        frontier = []
        for box in received:
            for v in box:
                if v not in depth:
                    depth[v] = level
                    frontier.append(v)
        ctx.compute(sum(len(b) for b in received))
    return depth
