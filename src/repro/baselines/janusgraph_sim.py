"""JanusGraph-class baseline (paper Sections 6.2, 6.4, 6.5).

The paper compares GDA against JanusGraph, "one of the highest-ranking
core graph databases".  We cannot deploy JanusGraph (JVM + Cassandra
cluster) inside this offline reproduction, so this module implements a
baseline of the same *architecture class*, with per-operation costs
calibrated to the paper's own measurements of JanusGraph (Figure 5):

* client-server **RPC** instead of one-sided RDMA: every operation pays a
  request/response round trip through a storage stack (JVM, serialization,
  backend store) — "at least 500 us for all the operations (in most
  cases), with no operation being faster than 200 us";
* **vertex deletions start around 2000 us**;
* **eventual consistency** by default (no distributed locking, hence no
  failed transactions — but also no serializability, as the paper notes
  when comparing fairness);
* coordination overhead that grows with the number of servers, and a
  configuration ceiling (:attr:`JanusGraphSim.MAX_SERVERS`) reflecting the
  configurations JanusGraph could not scale to (the missing bars/points
  in Figures 4 and 6).

The store itself is sharded in-memory state guarded by per-shard locks;
costs are charged to the simulated per-rank clocks of the same RMA
runtime that GDA uses, so throughput and latency numbers are directly
comparable.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from ..generator.kronecker import KroneckerParams, generate_edges
from ..generator.schema import LpgSchema
from ..rma.runtime import RankContext
from ..workloads.oltp import (
    MIXES,
    OltpRankResult,
    OpType,
    WorkloadMix,
)

__all__ = ["JanusGraphSim", "JanusScaleError", "run_janus_oltp_rank", "janus_bfs"]


class JanusScaleError(RuntimeError):
    """Raised for configurations the baseline cannot scale to."""


# Cost constants (seconds), calibrated to the paper's Figure 5.
RPC_BASE_READ = 250e-6  # no op faster than ~200 us
RPC_BASE_WRITE = 500e-6  # most ops at least ~500 us
RPC_DELETE = 2000e-6  # vertex deletions start at ~2000 us
PER_EDGE_SCAN = 2e-6  # backend row scan per adjacent edge
PER_SERVER_COORD = 3e-6  # write coordination per extra server
JITTER = 0.35  # multiplicative latency spread


@dataclass
class JanusGraphSim:
    """Sharded eventually-consistent store with RPC-cost accounting."""

    nranks: int
    MAX_SERVERS = 32
    _vertices: list[dict[int, dict]] = field(default_factory=list)
    _adj: list[dict[int, list[int]]] = field(default_factory=list)
    _locks: list[threading.Lock] = field(default_factory=list)

    @classmethod
    def create(cls, ctx: RankContext) -> "JanusGraphSim":
        if ctx.nranks > cls.MAX_SERVERS:
            raise JanusScaleError(
                f"JanusGraph baseline does not scale past "
                f"{cls.MAX_SERVERS} servers (requested {ctx.nranks})"
            )
        sim = None
        if ctx.rank == 0:
            sim = cls(
                nranks=ctx.nranks,
                _vertices=[{} for _ in range(ctx.nranks)],
                _adj=[{} for _ in range(ctx.nranks)],
                _locks=[threading.Lock() for _ in range(ctx.nranks)],
            )
        sim = ctx.bcast(sim, root=0)
        ctx.barrier()
        return sim

    # -- cost model -----------------------------------------------------------
    def _charge(
        self, ctx: RankContext, base: float, edges: int, rng, write: bool
    ) -> None:
        cost = base + edges * PER_EDGE_SCAN
        if write:
            cost += PER_SERVER_COORD * (self.nranks - 1)
        cost *= 1.0 + JITTER * rng.random()
        ctx.charge(cost)

    def home(self, app_id: int) -> int:
        return app_id % self.nranks

    # -- store operations (each is one client RPC) -------------------------------
    def load_graph(
        self, ctx: RankContext, params: KroneckerParams, schema: LpgSchema
    ) -> None:
        """Bulk-load this rank's vertex/edge shard (local fills only)."""
        me = ctx.rank
        for app_id in range(me, params.n_vertices, ctx.nranks):
            props = dict(schema.vertex_property_values(app_id))
            props["labels"] = schema.vertex_label_indices(app_id)
            self._vertices[me][app_id] = props
            self._adj[me][app_id] = []
        ctx.barrier()
        edges = generate_edges(params, ctx.rank, ctx.nranks)
        outboxes: list[list[tuple[int, int]]] = [[] for _ in range(ctx.nranks)]
        for s, d in edges.tolist():
            outboxes[self.home(s)].append((s, d))
        for box in ctx.alltoall(outboxes):
            for s, d in box:
                self._adj[me][s].append(d)
        ctx.barrier()

    def get_vertex(self, ctx: RankContext, app_id: int, rng) -> dict | None:
        target = self.home(app_id)
        with self._locks[target]:
            v = self._vertices[target].get(app_id)
        self._charge(ctx, RPC_BASE_READ, 0, rng, write=False)
        return v

    def get_edges(self, ctx: RankContext, app_id: int, rng) -> list[int]:
        target = self.home(app_id)
        with self._locks[target]:
            nbrs = list(self._adj[target].get(app_id, ()))
        self._charge(ctx, RPC_BASE_READ, len(nbrs), rng, write=False)
        return nbrs

    def count_edges(self, ctx: RankContext, app_id: int, rng) -> int:
        target = self.home(app_id)
        with self._locks[target]:
            n = len(self._adj[target].get(app_id, ()))
        self._charge(ctx, RPC_BASE_READ, n, rng, write=False)
        return n

    def add_vertex(self, ctx: RankContext, app_id: int, props: dict, rng) -> None:
        target = self.home(app_id)
        with self._locks[target]:
            self._vertices[target][app_id] = dict(props)
            self._adj[target].setdefault(app_id, [])
        self._charge(ctx, RPC_BASE_WRITE, 0, rng, write=True)

    def update_property(
        self, ctx: RankContext, app_id: int, key: str, value, rng
    ) -> bool:
        target = self.home(app_id)
        with self._locks[target]:
            v = self._vertices[target].get(app_id)
            if v is not None:
                v[key] = value
        self._charge(ctx, RPC_BASE_WRITE, 0, rng, write=True)
        return v is not None

    def add_edge(self, ctx: RankContext, src: int, dst: int, rng) -> None:
        target = self.home(src)
        with self._locks[target]:
            if src in self._adj[target]:
                self._adj[target][src].append(dst)
        self._charge(ctx, RPC_BASE_WRITE, 0, rng, write=True)

    def delete_vertex(self, ctx: RankContext, app_id: int, rng) -> bool:
        target = self.home(app_id)
        with self._locks[target]:
            existed = self._vertices[target].pop(app_id, None) is not None
            nbrs = self._adj[target].pop(app_id, [])
        # eventual consistency: dangling reverse edges are cleaned lazily;
        # the client still pays for the tombstone writes.
        self._charge(ctx, RPC_DELETE, len(nbrs), rng, write=True)
        return existed


def run_janus_oltp_rank(
    ctx: RankContext,
    sim: JanusGraphSim,
    params: KroneckerParams,
    mix: WorkloadMix,
    n_ops: int,
    seed: int = 0,
) -> OltpRankResult:
    """The Table 3 operation mix against the JanusGraph-class baseline.

    Mirrors :func:`repro.workloads.oltp.run_oltp_rank` so Figure 4/5
    compare like for like.
    """
    rng = random.Random(f"janus/{seed}/{ctx.rank}/{mix.name}")
    res = OltpRankResult(rank=ctx.rank)
    n = params.n_vertices
    next_new_id = n + ctx.rank * 10_000_000
    start = ctx.rt.effective_clock(ctx.rank)
    for _ in range(n_ops):
        op = mix.sample(rng)
        t0 = ctx.clock
        app_id = rng.randrange(n)
        if op is OpType.GET_PROPS:
            sim.get_vertex(ctx, app_id, rng)
        elif op is OpType.COUNT_EDGES:
            sim.count_edges(ctx, app_id, rng)
        elif op is OpType.GET_EDGES:
            sim.get_edges(ctx, app_id, rng)
        elif op is OpType.ADD_VERTEX:
            sim.add_vertex(ctx, next_new_id, {"p_ts": 0}, rng)
            next_new_id += 1
        elif op is OpType.DEL_VERTEX:
            sim.delete_vertex(ctx, app_id, rng)
        elif op is OpType.UPD_PROP:
            sim.update_property(ctx, app_id, "p_ts", rng.random(), rng)
        elif op is OpType.ADD_EDGE:
            sim.add_edge(ctx, app_id, rng.randrange(n), rng)
        res.record(op, ctx.clock - t0)
    res.sim_elapsed = ctx.rt.effective_clock(ctx.rank) - start
    return res


def janus_bfs(
    ctx: RankContext, sim: JanusGraphSim, root: int, seed: int = 0
) -> dict[int, int]:
    """BFS through the RPC interface (the Figure 6 OLAP comparison).

    Without collectives or one-sided access, every frontier vertex's
    adjacency is fetched with an individual RPC — which is why the paper
    observes orders-of-magnitude gaps on analytics.
    """
    rng = random.Random(f"janusbfs/{seed}/{ctx.rank}")
    depth: dict[int, int] = {}
    frontier: list[int] = []
    if sim.home(root) == ctx.rank:
        depth[root] = 0
        frontier = [root]
    level = 0
    while True:
        if not ctx.allreduce(len(frontier)):
            break
        outboxes: list[list[int]] = [[] for _ in range(ctx.nranks)]
        for u in frontier:
            for nbr in sim.get_edges(ctx, u, rng):  # one RPC per vertex
                outboxes[sim.home(nbr)].append(nbr)
        received = ctx.alltoall(outboxes)
        level += 1
        frontier = []
        for box in received:
            for v in box:
                if v not in depth:
                    depth[v] = level
                    frontier.append(v)
    return depth
