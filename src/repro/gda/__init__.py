"""GDI-RMA ("GDA"): the paper's distributed-memory GDI implementation.

Layers (paper Section 5): 64-bit distributed pointers (:mod:`.dptr`),
the BGDL block level (:mod:`.blocks`), holder objects of the Logical
Layout level (:mod:`.holder`, :mod:`.entries`), the lock-free internal
index (:mod:`.dht`), scalable RW locks (:mod:`.locks`), replicated
metadata (:mod:`.metadata`), explicit indexes (:mod:`.index_impl`),
transactions (:mod:`.transaction_impl`), and the database object
(:mod:`.database_impl`).
"""

from .blocks import BlockManager, OutOfBlocksError
from .checkpoint import restore, snapshot
from .database_impl import GdaConfig, GdaDatabase, TxStats
from .dht import DistributedHashTable
from .dptr import (
    DPTR_NULL,
    DPtr,
    is_null,
    pack_dptr,
    pack_edge_uid,
    pack_tagged,
    unpack_dptr,
    unpack_edge_uid,
    unpack_tagged,
)
from .holder import (
    EdgeHolder,
    EdgeSlot,
    HolderStorage,
    StoredHolder,
    VertexHolder,
)
from .index_impl import ExplicitEdgeIndex, ExplicitIndex, VertexDirectory
from .locks import LockRegistry, LockTimeout, RWLock
from .metadata import Label, MetadataReplica, MetadataStore, PropertyType
from .recovery import (
    Checkpoint,
    CommitLog,
    CommitRecord,
    recover,
    replay_entries_idempotent,
    take_checkpoint,
)
from .relocate import plan_balance, plan_offload, rebalance
from .replication import ReplicationLog, ReplicationManager
from .retry import RetryDeadlineExceeded, RetryPolicy, run_transaction
from .transaction_impl import (
    EdgeHandle,
    Transaction,
    VertexHandle,
    VolatileVertexId,
)

__all__ = [
    "BlockManager",
    "OutOfBlocksError",
    "snapshot",
    "restore",
    "GdaConfig",
    "GdaDatabase",
    "TxStats",
    "DistributedHashTable",
    "DPTR_NULL",
    "DPtr",
    "is_null",
    "pack_dptr",
    "pack_edge_uid",
    "pack_tagged",
    "unpack_dptr",
    "unpack_edge_uid",
    "unpack_tagged",
    "EdgeHolder",
    "EdgeSlot",
    "HolderStorage",
    "StoredHolder",
    "VertexHolder",
    "ExplicitIndex",
    "ExplicitEdgeIndex",
    "VertexDirectory",
    "LockRegistry",
    "LockTimeout",
    "RWLock",
    "ReplicationLog",
    "ReplicationManager",
    "replay_entries_idempotent",
    "Label",
    "MetadataReplica",
    "MetadataStore",
    "PropertyType",
    "EdgeHandle",
    "Transaction",
    "VertexHandle",
    "VolatileVertexId",
    "plan_balance",
    "plan_offload",
    "rebalance",
    "Checkpoint",
    "CommitLog",
    "CommitRecord",
    "recover",
    "take_checkpoint",
    "RetryPolicy",
    "run_transaction",
    "RetryDeadlineExceeded",
]
