"""Blocked Graph Data Layout (BGDL) — the block level of GDA (Section 5.5).

All graph data is mapped onto fixed-size memory blocks carved out of one
large distributed-memory pool.  The block size is a user tunable trading
communication (larger blocks → one fetch covers more of a vertex) against
memory (internal fragmentation).  Three RMA windows implement the pool:

* the **data** window — the blocks themselves,
* the **usage** window — a per-rank free list: element ``i`` holds the
  index of the next free block after block ``i``,
* the **system** window — the tagged head pointer of the free list, an
  allocation counter, and the per-block lock words used by the
  reader-writer locks of Section 5.6.

``acquire_block``/``release_block`` follow the paper's lock-free protocol:
AGET the list head, AGET the successor, CAS the head forward; the 32-bit
tag in the head word increments on every successful CAS, which defeats the
ABA problem.  On CAS failure the protocol restarts at step 2 reusing the
value the CAS returned (no extra AGET), exactly as described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..rma.runtime import RankContext
from ..rma.window import Window
from .dptr import (
    TAG_NULL_INDEX,
    pack_dptr,
    pack_tagged,
    unpack_dptr,
    unpack_tagged,
)

__all__ = ["BlockManager", "OutOfBlocksError", "SYS_HEAD_OFF", "SYS_COUNT_OFF", "SYS_LOCKS_OFF"]

#: System-window layout (per rank).
SYS_HEAD_OFF = 0  # tagged free-list head
SYS_COUNT_OFF = 8  # allocated-block counter
SYS_LOCKS_OFF = 16  # per-block RW lock words


class OutOfBlocksError(MemoryError):
    """Raised when no rank can supply a free block."""


@dataclass
class BlockManager:
    """Manages the three BGDL windows of one database.

    The manager object itself is immutable shared metadata (window handles
    and sizes); all state lives in the windows, so any rank context may
    call any method concurrently.
    """

    data_win: Window
    usage_win: Window
    system_win: Window
    block_size: int
    blocks_per_rank: int
    #: optional callbacks ``fn(ctx, dptr)`` fired after a successful
    #: acquire/release.  The replication layer uses them to keep its
    #: allocation journal and mirror metadata consistent with the free
    #: lists (a freed block must never be restored on failover).
    on_acquire: Any = field(default=None, repr=False, compare=False)
    on_release: Any = field(default=None, repr=False, compare=False)

    # -- construction -------------------------------------------------------
    @classmethod
    def create(
        cls,
        ctx: RankContext,
        block_size: int,
        blocks_per_rank: int,
        name_prefix: str = "bgdl",
    ) -> "BlockManager":
        """Collectively allocate and initialize the BGDL windows.

        Every rank initializes its own segment: blocks chained
        ``0 -> 1 -> ... -> n-1 -> NULL``, head ``(tag=0, index=0)``,
        counter zero, lock words zero.
        """
        if block_size < 16 or block_size % 8 != 0:
            raise ValueError("block_size must be >= 16 and 8-byte aligned")
        if blocks_per_rank < 1 or blocks_per_rank >= TAG_NULL_INDEX:
            raise ValueError("blocks_per_rank out of range")
        data_win = ctx.win_allocate(
            f"{name_prefix}.data", block_size * blocks_per_rank
        )
        usage_win = ctx.win_allocate(f"{name_prefix}.usage", 8 * blocks_per_rank)
        system_win = ctx.win_allocate(
            f"{name_prefix}.system", SYS_LOCKS_OFF + 8 * blocks_per_rank
        )
        mgr = cls(data_win, usage_win, system_win, block_size, blocks_per_rank)
        mgr._init_local_segment(ctx)
        ctx.barrier()
        return mgr

    def _init_local_segment(self, ctx: RankContext) -> None:
        me = ctx.rank
        # free-list chain 0 -> 1 -> ... -> NULL, materialized as one
        # vectorized array and stored with a single bulk slice write
        # instead of blocks_per_rank scalar stores
        links = np.arange(1, self.blocks_per_rank + 1, dtype="<i8")
        links[-1] = TAG_NULL_INDEX
        self.usage_win.write(me, 0, links.tobytes())
        self.system_win.write_i64(me, SYS_HEAD_OFF, pack_tagged(0, 0))
        self.system_win.write_i64(me, SYS_COUNT_OFF, 0)

    # -- address arithmetic ---------------------------------------------------
    def block_index(self, dptr: int) -> int:
        """Block index within its owner rank for a block DPtr."""
        return unpack_dptr(dptr).offset // self.block_size

    def lock_location(self, dptr: int) -> tuple[int, int]:
        """(rank, system-window offset) of the lock word guarding ``dptr``.

        Section 5.6: the lock of a vertex lives in the system window at the
        offset corresponding to the primary block of its holder.
        """
        d = unpack_dptr(dptr)
        return d.rank, SYS_LOCKS_OFF + 8 * (d.offset // self.block_size)

    # -- allocation -------------------------------------------------------------
    def acquire_block(self, ctx: RankContext, target: int) -> int | None:
        """Lock-free allocation of one block on ``target``.

        Returns the packed DPtr of the block, or ``None`` if the target
        has no free blocks (the paper's NULL-handle case).
        """
        sw, uw = self.system_win, self.usage_win
        head = ctx.aget(sw, target, SYS_HEAD_OFF)  # step 1
        while True:
            tag, idx = unpack_tagged(head)
            if idx == TAG_NULL_INDEX:
                return None
            nxt = ctx.aget(uw, target, 8 * idx)  # step 2
            new_head = pack_tagged(tag + 1, nxt)
            found = ctx.cas(sw, target, SYS_HEAD_OFF, head, new_head)  # step 3
            if found == head:
                ctx.faa(sw, target, SYS_COUNT_OFF, 1)
                dptr = pack_dptr(target, idx * self.block_size)
                if self.on_acquire is not None:
                    self.on_acquire(ctx, dptr)
                return dptr
            head = found  # restart at step 2 with the CAS result

    def acquire_block_anywhere(
        self, ctx: RankContext, preferred: int
    ) -> int:
        """Allocate on ``preferred`` if possible, else spill round-robin.

        Paper Section 5.3: blocks of one vertex need not live on one
        process; this is the policy that makes that happen under memory
        pressure.  Raises :class:`OutOfBlocksError` when the whole pool is
        exhausted.
        """
        for hop in range(ctx.nranks):
            target = (preferred + hop) % ctx.nranks
            dptr = self.acquire_block(ctx, target)
            if dptr is not None:
                return dptr
        raise OutOfBlocksError(
            f"no free blocks on any of {ctx.nranks} ranks "
            f"({self.blocks_per_rank} blocks x {self.block_size} B each)"
        )

    def release_block(self, ctx: RankContext, dptr: int) -> None:
        """Lock-free release of a block back to its owner's free list."""
        d = unpack_dptr(dptr)
        idx = d.offset // self.block_size
        sw, uw = self.system_win, self.usage_win
        head = ctx.aget(sw, d.rank, SYS_HEAD_OFF)
        while True:
            tag, hidx = unpack_tagged(head)
            ctx.aput(uw, d.rank, 8 * idx, hidx)  # our block points at old head
            ctx.flush(uw, d.rank)
            new_head = pack_tagged(tag + 1, idx)
            found = ctx.cas(sw, d.rank, SYS_HEAD_OFF, head, new_head)
            if found == head:
                ctx.faa(sw, d.rank, SYS_COUNT_OFF, -1)
                if self.on_release is not None:
                    self.on_release(ctx, dptr)
                return
            head = found

    def allocated_count(self, ctx: RankContext, target: int) -> int:
        """Number of blocks currently allocated on ``target``."""
        return ctx.aget(self.system_win, target, SYS_COUNT_OFF)

    # -- block data access ----------------------------------------------------------
    def read_block(
        self, ctx: RankContext, dptr: int, offset: int = 0, nbytes: int | None = None
    ) -> bytes:
        """One-sided read of (part of) a block."""
        d = unpack_dptr(dptr)
        if nbytes is None:
            nbytes = self.block_size - offset
        if offset < 0 or offset + nbytes > self.block_size:
            raise ValueError("read outside block bounds")
        return ctx.get(self.data_win, d.rank, d.offset + offset, nbytes)

    def write_block(
        self, ctx: RankContext, dptr: int, data: bytes, offset: int = 0
    ) -> None:
        """One-sided write of (part of) a block."""
        d = unpack_dptr(dptr)
        if offset < 0 or offset + len(data) > self.block_size:
            raise ValueError("write outside block bounds")
        ctx.put(self.data_win, d.rank, d.offset + offset, data)

    def iwrite_block(
        self, ctx: RankContext, dptr: int, data: bytes, offset: int = 0
    ):
        """Non-blocking block write; complete with a data-window flush."""
        d = unpack_dptr(dptr)
        if offset < 0 or offset + len(data) > self.block_size:
            raise ValueError("write outside block bounds")
        return ctx.iput(self.data_win, d.rank, d.offset + offset, data)

    def iread_block(
        self, ctx: RankContext, dptr: int, offset: int = 0, nbytes: int | None = None
    ):
        """Non-blocking block read; data valid after flush/wait."""
        d = unpack_dptr(dptr)
        if nbytes is None:
            nbytes = self.block_size - offset
        if offset < 0 or offset + nbytes > self.block_size:
            raise ValueError("read outside block bounds")
        return ctx.iget(self.data_win, d.rank, d.offset + offset, nbytes)

    # -- batched block data access ------------------------------------------------
    def read_blocks(
        self, ctx: RankContext, specs: list[tuple[int, int, int]]
    ) -> list[bytes]:
        """Batched blocking read of many (parts of) blocks.

        ``specs`` is ``(dptr, offset, nbytes)`` per element; the reads
        coalesce into one network message per distinct owner rank.
        """
        ops = []
        for dptr, offset, nbytes in specs:
            d = unpack_dptr(dptr)
            if offset < 0 or offset + nbytes > self.block_size:
                raise ValueError("read outside block bounds")
            ops.append((d.rank, d.offset + offset, nbytes))
        return ctx.get_batch(self.data_win, ops)

    def iwrite_blocks(
        self, ctx: RankContext, items: list[tuple[int, bytes]]
    ):
        """Batched non-blocking write of many whole-or-partial blocks.

        ``items`` is ``(dptr, data)`` per element (written at block
        offset 0); complete with a data-window flush.
        """
        ops = []
        for dptr, data in items:
            d = unpack_dptr(dptr)
            if len(data) > self.block_size:
                raise ValueError("write outside block bounds")
            ops.append((d.rank, d.offset, data))
        return ctx.iput_batch(self.data_win, ops)
