"""Database checkpointing: snapshot and restore (the D of ACID).

The paper's system is fully in-memory for performance; durability of
committed data is obtained by checkpointing the distributed state (plus
the in-memory commit log for the tail).  This module implements the
checkpoint side:

* :func:`snapshot` — a collective that walks every rank's local vertices
  through a collective read transaction and assembles a
  machine-independent description of the whole database: metadata by
  *name* (integer IDs are an implementation detail that may differ after
  restore), vertices with labels/properties, and each logical edge
  exactly once (lightweight and heavyweight, with edge properties).
* :func:`restore` — a collective that rebuilds an equivalent database:
  metadata first, vertices via a lock-free collective write transaction
  (each rank creates the vertices it owns), lightweight edges via the
  bulk half-edge exchange, heavyweight edges via ordinary transactions.

``snapshot(restore(snapshot(db)))`` is asserted equal to
``snapshot(db)`` by the test suite.
"""

from __future__ import annotations

from typing import Any

from ..gdi.errors import GdiStateError
from ..rma.runtime import RankContext
from .database_impl import GdaDatabase
from .holder import DIR_IN, DIR_OUT, DIR_UNDIR
from .metadata import PropertyType

__all__ = ["snapshot", "restore"]


def _hosted_vertices(ctx: RankContext, db: GdaDatabase) -> list[int]:
    """Vertices this rank must walk in a collective sweep.

    Normally just the rank's own shard; after a failover the membership
    view's translation table may assign a dead rank's shard to its
    backup, which then walks both (degraded-mode iteration).
    """
    mem = getattr(ctx.rt, "membership", None)
    if mem is None or not mem.degraded():
        return db.directory.local_vertices(ctx)
    vids: list[int] = []
    for shard in mem.shards_of(ctx.rank):
        vids.extend(db.directory.shard_vertices(ctx, shard))
    return vids


def snapshot(ctx: RankContext, db: GdaDatabase) -> dict[str, Any]:
    """Collectively capture the database content; every rank returns the
    same snapshot dictionary."""
    replica = db.replica(ctx)
    replica.sync()
    tx = db.start_collective_transaction(ctx)
    vertices: dict[int, dict] = {}
    light_edges: list[tuple] = []
    heavy_edges: list[tuple] = []
    for vid in _hosted_vertices(ctx, db):
        v = tx.associate_vertex(vid)
        vertices[v.app_id] = {
            "labels": [l.name for l in v.labels()],
            "props": [
                (replica.ptype_by_id(pid).name, bytes(blob))
                for pid, blob in v._txv.holder.properties
            ],
        }
        for handle in v.edges():
            slot = handle._slot
            if slot.heavy:
                if slot.direction == DIR_IN:
                    continue  # directed heavy edges: source side emits
                holder = tx._load_edge_holder(slot.dptr).holder
                if holder.src != vid:
                    continue  # undirected heavy edges: source side emits
                src_app = v.app_id
                dst_app = tx.associate_vertex(holder.dst).app_id
                heavy_edges.append(
                    (
                        src_app,
                        dst_app,
                        holder.directed,
                        [replica.label_by_id(l).name for l in holder.labels],
                        [
                            (replica.ptype_by_id(pid).name, bytes(blob))
                            for pid, blob in holder.properties
                        ],
                    )
                )
            else:
                if slot.direction == DIR_IN:
                    continue  # emitted by the OUT side
                other_app = tx.associate_vertex(slot.dptr).app_id
                if slot.direction == DIR_UNDIR:
                    # each undirected edge exists as one slot per side;
                    # emit from the smaller endpoint (self-loops once)
                    if v.app_id > other_app:
                        continue
                    directed = False
                else:
                    directed = True
                label_name = (
                    replica.label_by_id(slot.label_id).name
                    if slot.label_id
                    else None
                )
                light_edges.append(
                    (v.app_id, other_app, directed, label_name)
                )
    tx.commit()

    ptypes = [
        {
            "name": pt.name,
            "entity_type": pt.entity_type,
            "dtype": pt.dtype,
            "size_type": pt.size_type,
            "size_limit": pt.size_limit,
            "multiplicity": pt.multiplicity,
        }
        for pt in replica.ptypes
    ]
    labels = [l.name for l in replica.labels]

    # a crashed rank contributes None to collectives; its shard's data
    # arrives via the backup that now hosts it (degraded-mode iteration)
    merged_vertices: dict[int, dict] = {}
    for part in ctx.allgather(vertices):
        if part is not None:
            merged_vertices.update(part)
    merged_light: list = []
    merged_heavy: list = []
    for part in ctx.allgather(light_edges):
        if part is not None:
            merged_light.extend(part)
    for part in ctx.allgather(heavy_edges):
        if part is not None:
            merged_heavy.extend(part)
    return {
        "labels": labels,
        "ptypes": ptypes,
        "vertices": merged_vertices,
        "light_edges": sorted(merged_light, key=_edge_key),
        "heavy_edges": sorted(merged_heavy, key=_edge_key),
    }


def _edge_key(edge: tuple) -> tuple:
    return (edge[0], edge[1], str(edge[3]))


def restore(ctx: RankContext, db: GdaDatabase, snap: dict[str, Any]) -> dict[int, int]:
    """Collectively rebuild the snapshot's content into an empty ``db``.

    Returns the application-ID -> internal-ID map of the restored graph.
    """
    if db.directory.count(ctx) != 0:
        raise GdiStateError("restore target database is not empty")
    # -- metadata (names are authoritative; integer IDs are reassigned) --
    if ctx.rank == 0:
        for name in snap["labels"]:
            db.create_label(ctx, name)
        for spec in snap["ptypes"]:
            db.create_property_type(
                ctx,
                spec["name"],
                entity_type=spec["entity_type"],
                dtype=spec["dtype"],
                size_type=spec["size_type"],
                size_limit=spec["size_limit"],
                multiplicity=spec["multiplicity"],
            )
    ctx.barrier()
    replica = db.replica(ctx)
    replica.sync()
    label_by_name = {l.name: l for l in replica.labels}
    ptype_by_name: dict[str, PropertyType] = {p.name: p for p in replica.ptypes}

    # -- vertices: lock-free collective write txn, local creation ----------
    tx = db.start_collective_transaction(ctx, write=True)
    local_map: dict[int, int] = {}
    for app_id, desc in snap["vertices"].items():
        if db.home_rank(app_id) != ctx.rank:
            continue
        h = tx.create_vertex(app_id)
        for name in desc["labels"]:
            h.add_label(label_by_name[name])
        for pt_name, blob in desc["props"]:
            # payloads are stored verbatim: splice them in directly
            h._txv.holder.properties.append(
                (ptype_by_name[pt_name].int_id, blob)
            )
        local_map[app_id] = h.vid
    tx.commit()
    vid_map: dict[int, int] = {}
    for part in ctx.allgather(local_map):
        if part is not None:
            vid_map.update(part)

    # -- lightweight edges: bulk half-edge exchange -------------------------
    outboxes: list[list[tuple]] = [[] for _ in range(ctx.nranks)]
    for i, (src, dst, directed, label_name) in enumerate(snap["light_edges"]):
        if i % ctx.nranks != ctx.rank:
            continue  # shard the replay work
        lid = label_by_name[label_name].int_id if label_name else 0
        if directed:
            outboxes[db.home_rank(src)].append((src, dst, DIR_OUT, lid))
            outboxes[db.home_rank(dst)].append((src, dst, DIR_IN, lid))
        else:
            outboxes[db.home_rank(src)].append((src, dst, DIR_UNDIR, lid))
            if src != dst:
                outboxes[db.home_rank(dst)].append((dst, src, DIR_UNDIR, lid))
    received = ctx.alltoall(outboxes)
    tx = db.start_collective_transaction(ctx, write=True)
    for box in received:
        if box is None:
            continue  # part from a crashed rank
        for a, b, direction, lid in box:
            base, other = (b, a) if direction == DIR_IN else (a, b)
            tx.bulk_append_half_edge(
                vid_map[base], vid_map[other], direction, lid,
                other_app_id=other,
            )
    tx.commit()

    # -- heavyweight edges: ordinary transactions on rank 0 -------------------
    if ctx.rank == 0 and snap["heavy_edges"]:
        tx = db.start_transaction(ctx, write=True)
        for src, dst, directed, label_names, props in snap["heavy_edges"]:
            a = tx.associate_vertex(vid_map[src])
            b = tx.associate_vertex(vid_map[dst])
            e = tx.create_edge(
                a,
                b,
                directed=directed,
                labels=[label_by_name[n] for n in label_names],
                properties=[],
                force_heavy=True,
            )
            # splice the stored payloads verbatim (already encoded)
            holder = tx._load_edge_holder(e._slot.dptr).holder
            holder.properties = [
                (ptype_by_name[n].int_id, blob) for n, blob in props
            ]
        tx.commit()
    ctx.barrier()
    return vid_map
