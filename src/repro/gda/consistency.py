"""Global database consistency checker (test/diagnostic collective).

Verifies the structural invariants that GDA's design promises hold at any
quiescent point (no open transactions):

1. **Directory ↔ DHT agreement** — every vertex in the directory has a
   DHT mapping from its application ID to its primary DPtr, and every DHT
   entry names a directory vertex.
2. **Holder integrity** — every directory entry deserializes into a
   vertex holder whose ``app_id`` matches the DHT key.
3. **Edge reciprocity** — every lightweight slot has a matching
   reciprocal slot on the other endpoint (OUT↔IN with equal label,
   UNDIR↔UNDIR), and every heavyweight slot points at an edge holder
   that (a) exists, (b) names this vertex as an endpoint, and (c) is
   referenced from both endpoints.
4. **Storage accounting** — the number of allocated blocks equals the
   blocks reachable from live holders (no leaks, no double use).
5. **No leaked locks** — at quiescence every per-block RW lock word is
   zero (no reader counts or write bits left behind by aborted or
   crashed transactions).

Used by the integration tests after concurrent OLTP storms; returns a
report object whose ``ok`` flag and ``problems`` list make failures
debuggable.
"""

from __future__ import annotations

import struct
from collections import Counter
from dataclasses import dataclass, field

from ..rma.runtime import RankContext
from .blocks import SYS_LOCKS_OFF
from .checkpoint import _hosted_vertices
from .database_impl import GdaDatabase
from .holder import DIR_IN, DIR_OUT, DIR_UNDIR, KIND_EDGE, KIND_VERTEX

__all__ = ["ConsistencyReport", "check_consistency"]


@dataclass
class ConsistencyReport:
    """Outcome of one consistency sweep."""

    n_vertices: int = 0
    n_lightweight_slots: int = 0
    n_heavy_slots: int = 0
    n_edge_holders: int = 0
    blocks_allocated: int = 0
    blocks_reachable: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


def _reciprocal(direction: int) -> int:
    if direction == DIR_OUT:
        return DIR_IN
    if direction == DIR_IN:
        return DIR_OUT
    return DIR_UNDIR


def check_consistency(ctx: RankContext, db: GdaDatabase) -> ConsistencyReport:
    """Collectively verify the invariants; all ranks get the same report."""
    report = ConsistencyReport()
    mem = getattr(ctx.rt, "membership", None)
    degraded = mem is not None and mem.degraded()
    hosted = mem.shards_of(ctx.rank) if degraded else [ctx.rank]

    # ---- gather the global picture -------------------------------------
    local_vids = _hosted_vertices(ctx, db)
    local_holders = {}
    for vid in local_vids:
        try:
            stored = db.storage.read(ctx, vid)
        except Exception as exc:  # noqa: BLE001 - reported, not raised
            report.problems.append(f"vertex {vid:#x}: unreadable ({exc})")
            continue
        if stored.holder.kind != KIND_VERTEX:
            report.problems.append(f"vertex {vid:#x}: holder kind mismatch")
            continue
        local_holders[vid] = stored

    # replicate (vid -> app_id, slot summary) for reciprocity checking
    slot_summary = {}
    for vid, stored in local_holders.items():
        slots = []
        for slot in stored.holder.edges:
            slots.append((slot.dptr, slot.label_id, slot.flags))
        slot_summary[vid] = (stored.holder.app_id, slots)
    global_slots: dict[int, tuple[int, list]] = {}
    for part in ctx.allgather(slot_summary):
        if part is not None:  # crashed ranks contribute None
            global_slots.update(part)
    report.n_vertices = len(global_slots)

    # ---- invariant 1: directory <-> DHT --------------------------------
    dht_items = dict(db.dht.items(ctx)) if ctx.rank == 0 else None
    dht_items = ctx.bcast(dht_items, root=0)
    for vid, (app_id, _) in global_slots.items():
        mapped = dht_items.get(app_id)
        if mapped != vid:
            report.problems.append(
                f"app {app_id}: DHT maps to "
                f"{mapped if mapped is None else hex(mapped)}, directory "
                f"has {vid:#x}"
            )
    for app_id, vid in dht_items.items():
        if vid not in global_slots:
            report.problems.append(
                f"DHT entry app {app_id} -> {vid:#x} has no directory vertex"
            )

    # ---- invariants 3: edge reciprocity ---------------------------------
    from .holder import DIR_MASK, SLOT_HEAVY

    heavy_refs: Counter = Counter()
    lw_multiset: Counter = Counter()
    for vid, (app_id, slots) in global_slots.items():
        for dptr, label_id, flags in slots:
            if flags & SLOT_HEAVY:
                heavy_refs[dptr] += 1
                report.n_heavy_slots += 1
            else:
                report.n_lightweight_slots += 1
                lw_multiset[(vid, dptr, label_id, flags & DIR_MASK)] += 1
    for (vid, other, label_id, direction), count in lw_multiset.items():
        if other not in global_slots:
            report.problems.append(
                f"slot {vid:#x} -> {other:#x}: target vertex missing"
            )
            continue
        want = (other, vid, label_id, _reciprocal(direction))
        back = lw_multiset.get(want, 0)
        if direction == DIR_UNDIR and vid == other:
            continue  # undirected self-loop: single slot by design
        if back != count:
            report.problems.append(
                f"slot {vid:#x} -> {other:#x} (label {label_id}, "
                f"dir {direction}) x{count}: reciprocal x{back}"
            )

    # heavy holders: read each once (owner = current host of the
    # holder's shard, per the membership translation table)
    local_heavy = {}
    for dptr in heavy_refs:
        from .dptr import unpack_dptr

        owner = unpack_dptr(dptr).rank
        if degraded:
            owner = mem.host_of(owner)
        if owner != ctx.rank:
            continue
        try:
            stored = db.storage.read(ctx, dptr)
        except Exception as exc:  # noqa: BLE001
            report.problems.append(f"edge holder {dptr:#x}: unreadable ({exc})")
            continue
        if stored.holder.kind != KIND_EDGE:
            report.problems.append(f"edge holder {dptr:#x}: kind mismatch")
            continue
        local_heavy[dptr] = (
            stored.holder.src,
            stored.holder.dst,
            stored.holder.directed,
            1 + len(stored.data_blocks) + len(stored.index_blocks),
        )
    global_heavy: dict[int, tuple] = {}
    for part in ctx.allgather(local_heavy):
        if part is not None:
            global_heavy.update(part)
    report.n_edge_holders = len(global_heavy)
    for dptr, refs in heavy_refs.items():
        meta = global_heavy.get(dptr)
        if meta is None:
            report.problems.append(f"heavy slot -> {dptr:#x}: holder missing")
            continue
        src, dst, directed, _ = meta
        if src not in global_slots or dst not in global_slots:
            report.problems.append(
                f"edge holder {dptr:#x}: endpoint missing "
                f"({src:#x}, {dst:#x})"
            )
        expected_refs = 1 if src == dst and not directed else 2
        if src == dst and directed:
            expected_refs = 2
        if refs != expected_refs:
            report.problems.append(
                f"edge holder {dptr:#x}: referenced {refs}x, "
                f"expected {expected_refs}"
            )

    # ---- invariant 4: storage accounting ----------------------------------
    local_reachable = 0
    for stored in local_holders.values():
        local_reachable += 1 + len(stored.data_blocks) + len(stored.index_blocks)
    for meta in local_heavy.values():
        local_reachable += meta[3]
    report.blocks_reachable = ctx.allreduce(local_reachable)
    report.blocks_allocated = sum(
        db.blocks.allocated_count(ctx, r) for r in range(ctx.nranks)
    )
    if report.blocks_allocated != report.blocks_reachable:
        report.problems.append(
            f"storage leak: {report.blocks_allocated} blocks allocated, "
            f"{report.blocks_reachable} reachable from live holders"
        )

    # ---- invariant 5: no leaked lock words --------------------------------
    nblocks = db.blocks.blocks_per_rank
    for shard in hosted:
        raw = ctx.get(
            db.blocks.system_win, shard, SYS_LOCKS_OFF, 8 * nblocks
        )
        for i, word in enumerate(struct.unpack(f"<{nblocks}Q", raw)):
            if word != 0:
                report.problems.append(
                    f"lock word for block {i} on shard {shard} leaked: "
                    f"{word:#x}"
                )

    # every rank returns the merged problem list
    all_problems: list[str] = []
    for part in ctx.allgather(report.problems):
        if part is None:
            continue
        for p in part:
            if p not in all_problems:
                all_problems.append(p)
    report.problems = all_problems
    return report
