"""The GDA database object: window layout, sharding, metadata, indexes.

One :class:`GdaDatabase` corresponds to one ``GDI_Database``.  Creation is
collective; the object bundles

* the BGDL :class:`~repro.gda.blocks.BlockManager` and
  :class:`~repro.gda.holder.HolderStorage` (graph data, sharded),
* the internal :class:`~repro.gda.dht.DistributedHashTable` translating
  application vertex IDs to internal DPtrs (Section 5.7),
* the replicated :class:`~repro.gda.metadata.MetadataStore` with one
  :class:`~repro.gda.metadata.MetadataReplica` per rank (Section 5.8),
* the :class:`~repro.gda.index_impl.VertexDirectory` and explicit
  indexes (Section 3.6),
* per-rank transaction statistics (commits/aborts — the paper's
  failed-transaction percentages come from these counters).

GDI supports multiple parallel databases (Section 3.9): each
:class:`GdaDatabase` allocates its windows under a unique name prefix, so
several instances coexist in one runtime.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from ..gdi.constants import EntityType, Multiplicity, SizeType
from ..gdi.constraint import Constraint
from ..gdi.errors import GdiInvalidArgument, GdiNotFound
from ..gdi.types import Datatype
from ..rma.runtime import RankContext
from .blocks import BlockManager
from .dht import DistributedHashTable
from .holder import HolderStorage
from .index_impl import ExplicitEdgeIndex, ExplicitIndex, VertexDirectory
from .metadata import Label, MetadataReplica, MetadataStore, PropertyType
from .recovery import CommitLog

__all__ = ["GdaConfig", "GdaDatabase", "TxStats"]

_db_counter = itertools.count()


@dataclass(frozen=True)
class GdaConfig:
    """Tunables of one database instance.

    ``block_size`` is the paper's central communication/memory tradeoff
    (Section 5.5); benchmarks sweep it as an ablation.
    """

    block_size: int = 512
    blocks_per_rank: int = 4096
    dht_buckets_per_rank: int = 1024
    dht_entries_per_rank: int = 4096
    lock_max_retries: int = 64
    #: seeded exponential backoff between lock attempts (0 disables);
    #: charged as pure simulated time, never extra one-sided operations.
    #: The cap is ~10 lock-hold times: large enough to desynchronize
    #: contenders, small enough that even a full ``lock_max_retries``
    #: timeout costs well under a millisecond of simulated time.
    lock_backoff_base: float = 2e-6
    lock_backoff_cap: float = 20e-6
    #: primary-backup block replication + live failover (requires the
    #: runtime to carry a :class:`~repro.rma.membership.ClusterMembership`).
    #: Off by default: fault-free workloads pay no mirroring traffic.
    replication: bool = False
    #: MVCC snapshot reads (:mod:`repro.mvcc`): write commits install
    #: pre-image version chains and read-only transactions opened with
    #: ``snapshot=True`` read a frozen watermark without taking read
    #: locks.  Off by default: OLTP-only workloads pay no versioning cost.
    mvcc: bool = False
    #: applied commits between opportunistic watermark-GC passes.
    mvcc_gc_interval: int = 32


@dataclass
class TxStats:
    """Per-rank transaction outcome counters."""

    started: int = 0
    committed: int = 0
    aborted: int = 0
    failed: int = 0  # aborted due to a transaction-critical error
    restarts: int = 0  # automatic retries by repro.gda.retry.run_transaction
    by_cause: dict = field(default_factory=dict)  # failure cause -> count

    @property
    def failure_fraction(self) -> float:
        return self.failed / self.started if self.started else 0.0

    def count_failure(self, cause: str) -> None:
        self.by_cause[cause] = self.by_cause.get(cause, 0) + 1


class GdaDatabase:
    """One distributed graph database instance (shared across ranks)."""

    def __init__(
        self,
        config: GdaConfig,
        blocks: BlockManager,
        storage: HolderStorage,
        dht: DistributedHashTable,
        nranks: int,
        name: str,
    ) -> None:
        self.config = config
        self.blocks = blocks
        self.storage = storage
        self.dht = dht
        self.nranks = nranks
        self.name = name
        self.metadata = MetadataStore()
        self.replicas = [MetadataReplica(self.metadata) for _ in range(nranks)]
        self.directory = VertexDirectory(nranks)
        self.indexes: dict[str, ExplicitIndex] = {}
        self.edge_indexes: dict[str, ExplicitEdgeIndex] = {}
        self._index_lock = threading.Lock()
        self.stats = [TxStats() for _ in range(nranks)]
        self.commit_log = CommitLog()  # durability: in-memory redo log
        #: :class:`~repro.gda.replication.ReplicationManager` when the
        #: config enables replication; None keeps the seed behavior.
        self.replication = None
        #: :class:`~repro.gda.locks.LockRegistry` (failover lock cleanup);
        #: only instantiated alongside replication.
        self.lock_registry = None
        #: stale->fresh internal-ID translation published by the last
        #: rebalance (:func:`repro.gda.relocate.rebalance`): lets reads
        #: through pre-move permanent DPTRs raise a healable
        #: :class:`~repro.gdi.errors.GdiStaleDptr` instead of silently
        #: reading the vacated block.  Composed across rebalances.
        self.relocations: dict[int, int] = {}
        #: bumped once per completed rebalance (diagnostics / tests)
        self.placement_epoch = 0
        #: :class:`~repro.mvcc.SnapshotManager` when the config enables
        #: MVCC; None keeps the lock-only seed behavior.  A control-path
        #: shared structure like the commit log.
        self.mvcc = None
        if config.mvcc:
            from ..mvcc import SnapshotManager

            self.mvcc = SnapshotManager(gc_interval=config.mvcc_gc_interval)

    def note_relocations(self, mapping: dict[int, int]) -> None:
        """Publish one rebalance's ``{old_vid: new_vid}`` map.

        Earlier entries are path-compressed through the new map so a
        DPTR that is two rebalances old still resolves to the current
        location in one lookup.
        """
        if not mapping:
            return
        for old, mid in self.relocations.items():
            if mid in mapping:
                self.relocations[old] = mapping[mid]
        for fresh in mapping.values():
            # a block that is now a live location cannot be a stale key
            self.relocations.pop(fresh, None)
        self.relocations.update(mapping)
        self.placement_epoch += 1
        if self.mvcc is not None:
            # version chains and unpublish tombstones follow their
            # vertices to the new placement
            self.mvcc.rekey(mapping)

    def fresh_vid(self, vid: int) -> int | None:
        """Current internal ID of a relocated vertex (None if never moved)."""
        return self.relocations.get(vid)

    # -- construction --------------------------------------------------------
    @classmethod
    def create(
        cls, ctx: RankContext, config: GdaConfig | None = None
    ) -> "GdaDatabase":
        """Collectively create a database (``GDI_CreateDatabase``)."""
        config = config or GdaConfig()
        name = ctx.bcast(
            f"gdadb{next(_db_counter)}" if ctx.rank == 0 else None, root=0
        )
        blocks = BlockManager.create(
            ctx,
            block_size=config.block_size,
            blocks_per_rank=config.blocks_per_rank,
            name_prefix=f"{name}.bgdl",
        )
        dht = DistributedHashTable.create(
            ctx,
            buckets_per_rank=config.dht_buckets_per_rank,
            entries_per_rank=config.dht_entries_per_rank,
            name_prefix=f"{name}.index",
        )
        mirror_win = None
        if config.replication:
            # Backup image of every data block, at the block's own offset
            # in the backup rank's segment.
            mirror_win = ctx.win_allocate(
                f"{name}.mirror", config.block_size * config.blocks_per_rank
            )
        db = None
        if ctx.rank == 0:
            db = cls(
                config=config,
                blocks=blocks,
                storage=HolderStorage(blocks),
                dht=dht,
                nranks=ctx.nranks,
                name=name,
            )
            if config.replication:
                from ..rma.membership import ClusterMembership
                from .locks import LockRegistry
                from .replication import ReplicationManager

                mem = getattr(ctx.rt, "membership", None)
                if mem is None:
                    mem = ClusterMembership(ctx.nranks)
                    ctx.rt.membership = mem
                repl = ReplicationManager(mirror_win, mem, blocks, ctx.nranks)
                db.replication = repl
                db.storage.mirror = repl
                db.blocks.on_acquire = repl.note_acquire
                db.blocks.on_release = repl.note_release
                db.dht.enable_mirror()
                db.lock_registry = LockRegistry()
        db = ctx.bcast(db, root=0)
        ctx.barrier()
        return db

    # -- metadata (eventually consistent, Section 3.8) -------------------------
    def create_label(self, ctx: RankContext, name: str) -> Label:
        """Create a label; other ranks see it after their next sync."""
        label = self.metadata.create_label(name)
        self.replicas[ctx.rank].sync()
        return label

    def create_property_type(
        self,
        ctx: RankContext,
        name: str,
        *,
        entity_type: EntityType = EntityType.BOTH,
        dtype: Datatype = Datatype.BYTES,
        size_type: SizeType = SizeType.UNBOUNDED,
        size_limit: int = 0,
        multiplicity: Multiplicity = Multiplicity.SINGLE,
    ) -> PropertyType:
        ptype = self.metadata.create_property_type(
            name,
            entity_type=entity_type,
            dtype=dtype,
            size_type=size_type,
            size_limit=size_limit,
            multiplicity=multiplicity,
        )
        self.replicas[ctx.rank].sync()
        return ptype

    def label(self, ctx: RankContext, name: str) -> Label:
        item = self.replicas[ctx.rank].labels.by_name(name)
        if item is None:
            raise GdiNotFound(f"label {name!r} unknown to rank {ctx.rank}")
        return item

    def property_type(self, ctx: RankContext, name: str) -> PropertyType:
        item = self.replicas[ctx.rank].ptypes.by_name(name)
        if item is None:
            raise GdiNotFound(
                f"property type {name!r} unknown to rank {ctx.rank}"
            )
        return item

    def replica(self, ctx: RankContext) -> MetadataReplica:
        return self.replicas[ctx.rank]

    def all_labels(self, ctx: RankContext) -> list[Label]:
        """Labels known to this rank's replica, in creation order."""
        return list(self.replicas[ctx.rank].labels)

    def all_property_types(self, ctx: RankContext) -> list[PropertyType]:
        """Property types known to this rank's replica, in creation order."""
        return list(self.replicas[ctx.rank].ptypes)

    def drop_label(self, ctx: RankContext, label: Label) -> None:
        """Drop a label; propagates to other replicas eventually."""
        self.metadata.drop_label(label.int_id)
        self.replicas[ctx.rank].sync()

    def drop_property_type(self, ctx: RankContext, ptype: PropertyType) -> None:
        """Drop a property type; propagates eventually."""
        self.metadata.drop_property_type(ptype.int_id)
        self.replicas[ctx.rank].sync()

    # -- transactions -----------------------------------------------------------
    def start_transaction(
        self, ctx: RankContext, write: bool = False, snapshot: bool = False
    ):
        """``GDI_StartTransaction``: a local, single-process transaction.

        With ``snapshot=True`` (read-only databases running MVCC) the
        transaction reads a frozen watermark without taking read locks;
        on a database without :mod:`repro.mvcc` the flag degrades to a
        plain read transaction, so callers can request snapshots
        unconditionally.
        """
        from .transaction_impl import Transaction

        if snapshot and write:
            raise GdiInvalidArgument("snapshot transactions are read-only")
        self.replicas[ctx.rank].sync()
        self.stats[ctx.rank].started += 1
        return Transaction(
            self,
            ctx,
            write=write,
            collective=False,
            snapshot=snapshot and self.mvcc is not None,
        )

    def start_collective_transaction(
        self, ctx: RankContext, write: bool = False, snapshot: bool = False
    ):
        """``GDI_StartCollectiveTransaction``: all ranks participate.

        With ``snapshot=True`` rank 0 freezes one watermark and every
        rank joins it, so a collective OLAP kernel sees a single
        consistent cut while writers keep committing underneath.
        """
        from .transaction_impl import Transaction

        if snapshot and write:
            raise GdiInvalidArgument("snapshot transactions are read-only")
        ctx.barrier()
        self.replicas[ctx.rank].sync()
        self.stats[ctx.rank].started += 1
        return Transaction(
            self,
            ctx,
            write=write,
            collective=True,
            snapshot=snapshot and self.mvcc is not None,
        )

    # -- sharding policy ------------------------------------------------------------
    def home_rank(self, app_id: int) -> int:
        """Round-robin vertex distribution (paper Section 6.3)."""
        return app_id % self.nranks

    # -- explicit indexes (Section 3.6) -----------------------------------------------
    def create_index(
        self, ctx: RankContext, name: str, constraint: Constraint
    ) -> ExplicitIndex:
        """Collectively create and build an explicit vertex index."""
        with self._index_lock:
            if ctx.rank == 0 and name in self.indexes:
                raise GdiInvalidArgument(f"index {name!r} already exists")
        ctx.barrier()
        index = None
        if ctx.rank == 0:
            index = ExplicitIndex(
                name=name, constraint=constraint, nranks=self.nranks
            )
            with self._index_lock:
                self.indexes[name] = index
        index = ctx.bcast(index, root=0)
        # Build: every rank scans its local vertices inside a collective
        # read transaction and fills its own shard.
        tx = self.start_collective_transaction(ctx, write=False)
        try:
            matched = []
            dtype_of = self.replicas[ctx.rank].dtype_of
            for vid in self.directory.local_vertices(ctx):
                holder = tx.read_holder(vid).holder
                if index.matches(holder, dtype_of):
                    matched.append(vid)
            index.bulk_add_local(ctx, matched)
            tx.commit()
        except BaseException:
            tx.abort()
            raise
        return index

    def create_edge_index(
        self, ctx: RankContext, name: str, constraint: Constraint
    ) -> ExplicitEdgeIndex:
        """Collectively create and build an explicit *edge* index.

        Stores the source vertices carrying at least one matching edge
        (edge UIDs are volatile, Section 3.4); queries re-resolve the
        matching handles inside the reading transaction.
        """
        with self._index_lock:
            if ctx.rank == 0 and name in self.edge_indexes:
                raise GdiInvalidArgument(f"edge index {name!r} already exists")
        ctx.barrier()
        index = None
        if ctx.rank == 0:
            index = ExplicitEdgeIndex(
                name=name, constraint=constraint, nranks=self.nranks
            )
            with self._index_lock:
                self.edge_indexes[name] = index
        index = ctx.bcast(index, root=0)
        tx = self.start_collective_transaction(ctx, write=False)
        try:
            matched = []
            for vid in self.directory.local_vertices(ctx):
                txv = tx._load_vertex(vid, for_write=False)
                if index.source_matches(tx, txv):
                    matched.append(vid)
            index.bulk_add_local(ctx, matched)
            tx.commit()
        except BaseException:
            tx.abort()
            raise
        return index

    def edge_index(self, name: str) -> ExplicitEdgeIndex:
        with self._index_lock:
            try:
                return self.edge_indexes[name]
            except KeyError:
                raise GdiNotFound(f"no edge index named {name!r}") from None

    def index(self, name: str) -> ExplicitIndex:
        with self._index_lock:
            try:
                return self.indexes[name]
            except KeyError:
                raise GdiNotFound(f"no index named {name!r}") from None

    def drop_index(self, ctx: RankContext, name: str) -> None:
        ctx.barrier()
        if ctx.rank == 0:
            with self._index_lock:
                self.indexes.pop(name, None)
        ctx.barrier()

    # -- availability: failover healing ------------------------------------------------
    def heal(self, ctx: RankContext) -> None:
        """Repair failed shards from their block mirrors (single-flight).

        Called by the transaction retry machinery after an operation was
        fenced (:class:`~repro.rma.faults.RmaStaleEpoch`).  The first rank
        to claim a failed shard rebuilds it
        (:meth:`~repro.gda.replication.ReplicationManager.repair_shard`);
        everyone else waits (bounded) for the repair to publish, then
        adopts the current epoch so the retried transaction runs against
        the reconfigured view.  A repair that fails (e.g. a mirror CRC
        mismatch) returns the shard to FAILED and re-raises; waiters time
        out and surface the fence to their caller.
        """
        import time

        from ..rma.membership import SHARD_FAILED, SHARD_REPAIRING

        mem = getattr(ctx.rt, "membership", None)
        if mem is None or self.replication is None:
            return
        for shard in mem.failed_shards():
            if mem.begin_repair(shard, ctx.rank):
                try:
                    self.replication.repair_shard(ctx, self, shard)
                except BaseException:
                    mem.abort_repair(shard)
                    raise
                mem.finish_repair(shard)
        # Bounded real-time wait for repairs owned by other rank threads.
        for _ in range(2000):
            if not any(
                mem.shard_state(s) in (SHARD_FAILED, SHARD_REPAIRING)
                for s in range(self.nranks)
            ):
                break
            time.sleep(0.001)
        mem.adopt_epoch(ctx.rank)
        if self.mvcc is not None:
            # a commit that allocated its timestamp on a now-dead rank
            # can never call note_applied; retire those orphans so the
            # snapshot watermark is not pinned forever (replayed effects
            # re-install under fresh timestamps)
            self.mvcc.force_apply(set(range(self.nranks)) - mem.live)

    # -- durability (in-memory redo log; the paper's system is in-memory) ----------------
    def log_commit(self, rank: int, entries: tuple) -> int:
        """Append one commit record; returns its global sequence number.

        Called while the committing transaction still holds its write
        locks, so the sequence order is a valid serialization order.
        """
        return self.commit_log.append(rank, entries)

    # -- statistics ----------------------------------------------------------------------
    def total_stats(self) -> TxStats:
        agg = TxStats()
        for s in self.stats:
            agg.started += s.started
            agg.committed += s.committed
            agg.aborted += s.aborted
            agg.failed += s.failed
            agg.restarts += s.restarts
            for cause, n in s.by_cause.items():
                agg.by_cause[cause] = agg.by_cause.get(cause, 0) + n
        return agg

    def num_vertices(self, ctx: RankContext) -> int:
        return self.directory.count(ctx)

    # -- teardown --------------------------------------------------------------------------
    def destroy(self, ctx: RankContext) -> None:
        """Collectively free the database's windows (``GDI_FreeDatabase``).

        Any later access through the freed windows raises; transactions
        must not be open.
        """
        ctx.barrier()
        if ctx.rank == 0:
            for win in (
                self.blocks.data_win,
                self.blocks.usage_win,
                self.blocks.system_win,
                self.dht.table_win,
                self.dht.heap.data_win,
                self.dht.heap.usage_win,
                self.dht.heap.system_win,
            ):
                ctx.rt.free_window(win)
            if self.replication is not None:
                ctx.rt.free_window(self.replication.mirror_win)
        ctx.barrier()
