"""Lock-free, fully-offloaded distributed hash table (paper Section 5.7).

GDA resolves performance-critical mappings — above all application vertex
ID → internal DPtr — with a DHT whose every operation (including delete)
uses only one-sided communication: puts, gets, atomics, and flushes.  The
design is the paper's Listing 4:

* a sharded **table** of buckets, each an 8-byte distributed pointer to a
  chain of entries,
* a **heap** of fixed 24-byte entries ``[key | value | next]`` allocated
  from a lock-free free list (we reuse :class:`repro.gda.blocks.BlockManager`
  with a 24-byte block size — the heap allocator *is* the BGDL allocator),
* **insert**: write the entry, then CAS it onto the bucket head,
* **lookup**: chase the chain; an entry whose next pointer points to
  itself is being deleted, so the lookup restarts,
* **delete**: two CASes — first mark the victim by pointing its next
  field at itself, then swing the predecessor's pointer past it.

Memory reclamation: Listing 4 deallocates an entry immediately after the
second CAS.  With immediate reuse a concurrent chain traversal holding a
stale pointer could wander into a recycled entry, so — like production
lock-free stores — we park unlinked entries on a per-rank *limbo list* and
return them to the free list at quiescent points (:meth:`quiesce`, a
collective, called by GDA between collective transactions; this is also
when the paper's volatile IDs expire, Section 3.4).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..rma.runtime import RankContext
from ..rma.window import Window
from .blocks import BlockManager
from .dptr import (
    DPTR_NULL,
    TAG_NULL_INDEX,
    is_null,
    pack_dptr,
    pack_tagged,
    unpack_dptr,
)

__all__ = ["DistributedHashTable", "ENTRY_BYTES"]

#: Heap entry layout: key (8) | value (8) | next pointer (8).
ENTRY_BYTES = 24
_KEY_OFF = 0
_VAL_OFF = 8
_NEXT_OFF = 16


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: avalanche a key into a bucket hash."""
    x = (x + 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & ((1 << 64) - 1)
    x ^= x >> 31
    return x


@dataclass
class DistributedHashTable:
    """One sharded lock-free hash table over an RMA runtime."""

    table_win: Window
    heap: BlockManager
    buckets_per_rank: int
    nranks: int
    _limbo: list[list[int]] = field(default_factory=list, repr=False)
    _limbo_locks: list[threading.Lock] = field(default_factory=list, repr=False)
    #: optional per-bucket-shard mirror ``{key: value}`` maintained by
    #: insert/delete when replication is enabled.  The chain structure
    #: cannot be rebuilt from surviving ranks alone (chains are anchored in
    #: the dead shard's table segment), so failover re-inserts the shard's
    #: key set from this shadow — the same Python-side-with-charged-costs
    #: substitution the directory and index layers use.  ``None`` when
    #: replication is off (zero overhead on the common path).
    _mirror: list[dict[int, int]] | None = field(default=None, repr=False)
    _mirror_locks: list[threading.Lock] = field(
        default_factory=list, repr=False
    )

    @classmethod
    def create(
        cls,
        ctx: RankContext,
        buckets_per_rank: int,
        entries_per_rank: int,
        name_prefix: str = "dht",
    ) -> "DistributedHashTable":
        """Collectively allocate table and heap, init buckets to NULL."""
        table_win = ctx.win_allocate(
            f"{name_prefix}.table", 8 * buckets_per_rank
        )
        heap = BlockManager.create(
            ctx,
            block_size=ENTRY_BYTES,
            blocks_per_rank=entries_per_rank,
            name_prefix=f"{name_prefix}.heap",
        )
        # The DHT object carries shared mutable state (the limbo lists),
        # so exactly one instance exists: rank 0 builds it, everyone else
        # receives the same object via bcast (windows are shared anyway).
        dht = None
        if ctx.rank == 0:
            dht = cls(
                table_win=table_win,
                heap=heap,
                buckets_per_rank=buckets_per_rank,
                nranks=ctx.nranks,
                _limbo=[[] for _ in range(ctx.nranks)],
                _limbo_locks=[threading.Lock() for _ in range(ctx.nranks)],
            )
        dht = ctx.bcast(dht, root=0)
        for b in range(buckets_per_rank):
            table_win.write_i64(ctx.rank, 8 * b, DPTR_NULL)
        ctx.barrier()
        return dht

    # -- addressing ---------------------------------------------------------
    def bucket_of(self, key: int) -> tuple[int, int]:
        """(rank, table-window offset) of the bucket owning ``key``."""
        # int() guards against numpy integer keys, whose fixed width
        # overflows on the 64-bit mask arithmetic below.
        h = _mix64(int(key) & ((1 << 64) - 1))
        global_bucket = h % (self.nranks * self.buckets_per_rank)
        return (
            global_bucket // self.buckets_per_rank,
            8 * (global_bucket % self.buckets_per_rank),
        )

    # -- entry I/O ------------------------------------------------------------
    def _read_entry(self, ctx: RankContext, ptr: int) -> tuple[int, int, int]:
        """Fetch one 24-byte heap entry with a single one-sided get."""
        d = unpack_dptr(ptr)
        blob = ctx.get(self.heap.data_win, d.rank, d.offset, ENTRY_BYTES)
        key = int.from_bytes(blob[0:8], "little", signed=True)
        val = int.from_bytes(blob[8:16], "little", signed=True)
        nxt = int.from_bytes(blob[16:24], "little", signed=True)
        return key, val, nxt

    def _write_entry(
        self, ctx: RankContext, ptr: int, key: int, value: int, nxt: int
    ) -> None:
        d = unpack_dptr(ptr)
        blob = (
            key.to_bytes(8, "little", signed=True)
            + value.to_bytes(8, "little", signed=True)
            + nxt.to_bytes(8, "little", signed=True)
        )
        ctx.iput(self.heap.data_win, d.rank, d.offset, blob)
        ctx.flush(self.heap.data_win, d.rank)

    # -- replication support ------------------------------------------------
    def enable_mirror(self) -> None:
        """Arm the per-shard key mirror (before any inserts happen)."""
        if self._mirror is None:
            self._mirror = [dict() for _ in range(self.nranks)]
            self._mirror_locks = [
                threading.Lock() for _ in range(self.nranks)
            ]

    def _mirror_set(self, shard: int, key: int, value: int) -> None:
        if self._mirror is not None:
            with self._mirror_locks[shard]:
                self._mirror[shard][key] = value

    def _mirror_drop(self, shard: int, key: int) -> None:
        if self._mirror is not None:
            with self._mirror_locks[shard]:
                self._mirror[shard].pop(key, None)

    def rebuild_shard(self, ctx: RankContext, shard: int) -> int:
        """Reconstruct ``shard``'s table and heap segments after a crash.

        Re-initializes the bucket array and the heap free list in place,
        then re-inserts the shard's surviving ``{key: value}`` set from the
        mirror.  Entries that spilled onto other ranks' heaps before the
        crash become unreachable garbage (documented limitation: failover
        assumes the heap was provisioned to avoid spill).  Returns the
        number of re-inserted entries.
        """
        if self._mirror is None:
            raise RuntimeError("DHT mirror not enabled; cannot rebuild")
        null8 = DPTR_NULL.to_bytes(8, "little", signed=True)
        ctx.put(self.table_win, shard, 0, null8 * self.buckets_per_rank)
        n = self.heap.blocks_per_rank
        usage = b"".join(
            (i + 1).to_bytes(8, "little") for i in range(n - 1)
        ) + TAG_NULL_INDEX.to_bytes(8, "little")
        ctx.put(self.heap.usage_win, shard, 0, usage)
        sys_img = (
            pack_tagged(0, 0).to_bytes(8, "little", signed=True)
            + (0).to_bytes(8, "little")
            + b"\x00" * (8 * n)
        )
        ctx.put(self.heap.system_win, shard, 0, sys_img)
        # Parked (unlinked but unreclaimed) entries of the rebuilt heap no
        # longer exist; dropping them prevents a double free at quiesce.
        with self._limbo_locks[shard]:
            self._limbo[shard] = []
        with self._mirror_locks[shard]:
            entries = list(self._mirror[shard].items())
        for key, value in entries:
            self.insert(ctx, key, value)
        return len(entries)

    # -- operations (paper Listing 4) -------------------------------------------
    def insert(self, ctx: RankContext, key: int, value: int) -> None:
        """Prepend a (key, value) entry to the key's bucket chain."""
        rank, boff = self.bucket_of(key)
        entry_ptr = self.heap.acquire_block_anywhere(ctx, preferred=rank)
        head = ctx.aget(self.table_win, rank, boff)
        while True:
            self._write_entry(ctx, entry_ptr, key, value, head)
            found = ctx.cas(self.table_win, rank, boff, head, entry_ptr)
            if found == head:
                self._mirror_set(rank, key, value)
                return
            head = found  # concurrent insert/delete; retry with fresh head

    def lookup(self, ctx: RankContext, key: int) -> int | None:
        """Return the most recently inserted value for ``key``, else None."""
        return self.lookup_many(ctx, [key])[0]

    def lookup_many(
        self, ctx: RankContext, keys: list[int]
    ) -> list[int | None]:
        """Batched lookup: one value (or ``None``) per key, in key order.

        Wave algorithm: all bucket heads are fetched in one batched read
        (coalesced per owner rank), then each wave fetches the next chain
        entry of every still-unresolved key in one batch.  The number of
        network rounds is the longest chain walked, not the key count.  A
        key whose walk hits a deletion mark (next pointing at itself)
        restarts from its bucket, joining the next wave — the same restart
        rule as the scalar path.
        """
        n = len(keys)
        keys = [int(k) for k in keys]
        results: list[int | None] = [None] * n
        locs = [self.bucket_of(k) for k in keys]
        heads = ctx.get_batch(
            self.table_win, [(rank, boff, 8) for rank, boff in locs]
        )
        ptrs = [int.from_bytes(b, "little", signed=True) for b in heads]
        active = [i for i in range(n) if not is_null(ptrs[i])]
        while active:
            specs = []
            for i in active:
                d = unpack_dptr(ptrs[i])
                specs.append((d.rank, d.offset, ENTRY_BYTES))
            blobs = ctx.get_batch(self.heap.data_win, specs)
            nxt_active: list[int] = []
            restart: list[int] = []
            for i, blob in zip(active, blobs):
                k = int.from_bytes(blob[0:8], "little", signed=True)
                v = int.from_bytes(blob[8:16], "little", signed=True)
                nxt = int.from_bytes(blob[16:24], "little", signed=True)
                if nxt == ptrs[i]:  # entry is being deleted: restart
                    restart.append(i)
                elif k == keys[i]:
                    results[i] = v
                elif not is_null(nxt):
                    ptrs[i] = nxt
                    nxt_active.append(i)
                # else: chain exhausted — the key is absent.
            if restart:
                heads = ctx.get_batch(
                    self.table_win,
                    [(locs[i][0], locs[i][1], 8) for i in restart],
                )
                for i, b in zip(restart, heads):
                    results[i] = None
                    ptrs[i] = int.from_bytes(b, "little", signed=True)
                    if not is_null(ptrs[i]):
                        nxt_active.append(i)
            active = nxt_active
        return results

    def delete(self, ctx: RankContext, key: int) -> bool:
        """Unlink and reclaim the first entry matching ``key``.

        Returns ``True`` if an entry was deleted.  Implements the two-CAS
        protocol: CAS 1 marks the victim (next := self), CAS 2 swings the
        predecessor pointer past it.  If the predecessor changes (it was
        itself deleted or a new entry was inserted), the unlink re-walks
        the chain from the bucket, which is the restart the paper
        describes.
        """
        while True:
            outcome = self._try_delete(ctx, key)
            if outcome is not None:
                return outcome

    def _try_delete(self, ctx: RankContext, key: int) -> bool | None:
        """One delete attempt; ``None`` means restart from the bucket."""
        rank, boff = self.bucket_of(key)
        prev_is_bucket = True
        prev_ptr = 0  # entry holding the pointer to `ptr` when not bucket
        ptr = ctx.aget(self.table_win, rank, boff)
        while not is_null(ptr):
            k, _, nxt = self._read_entry(ctx, ptr)
            if nxt == ptr:
                return None  # concurrent deletion in the chain: restart
            if k == key:
                # CAS 1: mark the victim by pointing next at itself.
                d = unpack_dptr(ptr)
                found = ctx.cas(
                    self.heap.data_win, d.rank, d.offset + _NEXT_OFF, nxt, ptr
                )
                if found != nxt:
                    return None  # lost the race (or successor deleted)
                self._unlink(ctx, rank, boff, ptr, nxt)
                self._park(ptr)
                self._mirror_drop(rank, key)
                return True
            prev_is_bucket = False
            prev_ptr = ptr
            ptr = nxt
        del prev_is_bucket, prev_ptr  # walk state only; unlink re-walks
        return False

    def _unlink(
        self, ctx: RankContext, rank: int, boff: int, victim: int, nxt: int
    ) -> None:
        """CAS 2 (with helping re-walks): bypass the marked ``victim``."""
        while True:
            # Find the current predecessor location of `victim`.
            cur = ctx.aget(self.table_win, rank, boff)
            prev_loc: tuple[str, int, int] = ("bucket", rank, boff)
            found_victim = False
            while not is_null(cur):
                if cur == victim:
                    found_victim = True
                    break
                _, _, cnxt = self._read_entry(ctx, cur)
                if cnxt == cur:
                    break  # a marked entry in the path; re-walk
                d = unpack_dptr(cur)
                prev_loc = ("entry", d.rank, d.offset + _NEXT_OFF)
                cur = cnxt
            if not found_victim:
                if is_null(cur):
                    # Victim no longer reachable: already bypassed.
                    return
                continue  # re-walk past the marked entry
            kind, trank, toff = prev_loc
            win = self.table_win if kind == "bucket" else self.heap.data_win
            if ctx.cas(win, trank, toff, victim, nxt) == victim:
                return

    # -- memory reclamation -------------------------------------------------------
    def _park(self, ptr: int) -> None:
        d = unpack_dptr(ptr)
        with self._limbo_locks[d.rank]:
            self._limbo[d.rank].append(ptr)

    def quiesce(self, ctx: RankContext) -> int:
        """Collective: return limbo entries of this rank to the free list.

        Must be called when no DHT traversal is in flight (GDA calls it at
        collective-transaction boundaries).  Returns the number of entries
        this rank reclaimed.
        """
        ctx.barrier()
        with self._limbo_locks[ctx.rank]:
            parked, self._limbo[ctx.rank] = self._limbo[ctx.rank], []
        for ptr in parked:
            self.heap.release_block(ctx, ptr)
        ctx.barrier()
        return len(parked)

    # -- diagnostics ----------------------------------------------------------------
    def items(self, ctx: RankContext) -> list[tuple[int, int]]:
        """Non-atomic full scan (tests/diagnostics only)."""
        out: list[tuple[int, int]] = []
        for rank in range(self.nranks):
            for b in range(self.buckets_per_rank):
                ptr = ctx.aget(self.table_win, rank, 8 * b)
                while not is_null(ptr):
                    k, v, nxt = self._read_entry(ctx, ptr)
                    if nxt == ptr:
                        break
                    out.append((k, v))
                    ptr = nxt
        return out

    def local_count(self, ctx: RankContext) -> int:
        """Entries currently allocated on this rank's heap shard."""
        return self.heap.allocated_count(ctx, ctx.rank)
