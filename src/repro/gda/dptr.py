"""64-bit distributed pointers and tagged pointers (paper Section 5.3).

GDA implements internal IDs as 64-bit *distributed hierarchical pointers*
(DPtr): the upper 16 bits name the compute server (rank), the lower 48 bits
a local byte offset to the primary block of the object.  The 64-bit width
is deliberate — it lets every pointer live in a single atomic granule so
that hardware-accelerated remote atomics (CAS/FAA) can operate on them.

The BGDL free lists additionally use the *tagged pointer* technique against
the ABA problem (paper Section 5.5): a 32-bit monotonically increasing tag
packed next to a 32-bit block index, again inside one 64-bit word.

All values are stored in windows as *signed* 64-bit integers (that is what
the atomic granule holds), so the pack functions return Python ints wrapped
to two's complement and the unpack functions accept either signing.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = [
    "DPTR_NULL",
    "RANK_BITS",
    "OFFSET_BITS",
    "MAX_RANK",
    "MAX_OFFSET",
    "DPtr",
    "pack_dptr",
    "unpack_dptr",
    "is_null",
    "TAG_NULL_INDEX",
    "pack_tagged",
    "unpack_tagged",
    "pack_edge_uid",
    "unpack_edge_uid",
    "EDGE_UID_BYTES",
]

RANK_BITS = 16
OFFSET_BITS = 48
MAX_RANK = (1 << RANK_BITS) - 1
MAX_OFFSET = (1 << OFFSET_BITS) - 1

#: NULL pointer: all bits set.  Stored in windows as -1, which can never be
#: a valid (rank, offset) combination used by GDA (rank 0xFFFF is reserved).
DPTR_NULL = -1

_U64 = (1 << 64) - 1
_I64_MAX = (1 << 63) - 1


def _to_signed(u: int) -> int:
    u &= _U64
    return u - (1 << 64) if u > _I64_MAX else u


def _to_unsigned(s: int) -> int:
    return s & _U64


class DPtr(NamedTuple):
    """A decoded distributed pointer."""

    rank: int
    offset: int

    def pack(self) -> int:
        return pack_dptr(self.rank, self.offset)


def pack_dptr(rank: int, offset: int) -> int:
    """Encode (rank, offset) into one signed 64-bit word."""
    if not 0 <= rank < MAX_RANK:  # rank 0xFFFF reserved for NULL patterns
        raise ValueError(f"rank {rank} out of range [0, {MAX_RANK})")
    if not 0 <= offset <= MAX_OFFSET:
        raise ValueError(f"offset {offset} out of 48-bit range")
    return _to_signed((rank << OFFSET_BITS) | offset)


def unpack_dptr(value: int) -> DPtr:
    """Decode a signed or unsigned 64-bit word into a :class:`DPtr`."""
    if is_null(value):
        raise ValueError("cannot unpack DPTR_NULL")
    u = _to_unsigned(value)
    return DPtr(rank=u >> OFFSET_BITS, offset=u & MAX_OFFSET)


def is_null(value: int) -> bool:
    return _to_unsigned(value) == _U64


# -- tagged pointers for the BGDL free lists -------------------------------

#: Index value that marks an empty free list inside a tagged word.
TAG_NULL_INDEX = (1 << 32) - 1


def pack_tagged(tag: int, index: int) -> int:
    """Encode (tag, block index) into one signed 64-bit word.

    The tag is taken modulo 2**32, so callers may pass an ever-increasing
    counter without worrying about overflow.
    """
    if not 0 <= index <= TAG_NULL_INDEX:
        raise ValueError(f"index {index} out of 32-bit range")
    return _to_signed(((tag & 0xFFFFFFFF) << 32) | index)


def unpack_tagged(value: int) -> tuple[int, int]:
    """Decode a tagged word into (tag, index)."""
    u = _to_unsigned(value)
    return u >> 32, u & 0xFFFFFFFF


# -- lightweight edge UIDs (paper Section 5.4.2) ---------------------------

#: An edge UID takes 12 bytes: 8 bytes vertex UID + 4 bytes slot offset.
EDGE_UID_BYTES = 12


def pack_edge_uid(vertex_dptr: int, slot: int) -> bytes:
    """Encode a lightweight-edge UID: the source vertex UID plus the
    offset of the edge slot within that vertex's edge array."""
    if not 0 <= slot < (1 << 32):
        raise ValueError(f"slot {slot} out of 32-bit range")
    return _to_unsigned(vertex_dptr).to_bytes(8, "little") + slot.to_bytes(
        4, "little"
    )


def unpack_edge_uid(blob: bytes) -> tuple[int, int]:
    """Decode an edge UID into (vertex DPtr word, slot index)."""
    if len(blob) != EDGE_UID_BYTES:
        raise ValueError(f"edge UID must be {EDGE_UID_BYTES} bytes")
    vertex = _to_signed(int.from_bytes(blob[:8], "little"))
    slot = int.from_bytes(blob[8:], "little")
    return vertex, slot
