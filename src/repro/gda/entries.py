"""Label/property entry wire format (paper Section 5.4.3).

GDA stores the labels and properties of a vertex or edge as a stream of
*entries* inside the holder object.  Labels are treated internally as
properties.  Each entry starts with a 32-bit integer ID with the paper's
meaning:

* ``0`` — unused/empty slot,
* ``1`` — the last entry (stream terminator),
* ``2`` — a label entry (payload: the 32-bit label integer ID),
* any other value — a property entry of that property-type integer ID
  (payload: 32-bit length followed by the encoded value bytes).

Property-type integer IDs therefore start at
:data:`FIRST_PTYPE_ID` (= 3).
"""

from __future__ import annotations

import struct
from typing import Iterable

__all__ = [
    "ENTRY_EMPTY",
    "ENTRY_LAST",
    "ENTRY_LABEL",
    "FIRST_PTYPE_ID",
    "EntryFormatError",
    "encode_entries",
    "decode_entries",
    "entries_nbytes",
]

ENTRY_EMPTY = 0
ENTRY_LAST = 1
ENTRY_LABEL = 2
FIRST_PTYPE_ID = 3

_HDR = struct.Struct("<i")
_LABEL = struct.Struct("<ii")
_PROP_HDR = struct.Struct("<ii")


class EntryFormatError(ValueError):
    """Raised when an entry stream is malformed or an ID is invalid."""


def encode_entries(
    labels: Iterable[int],
    properties: Iterable[tuple[int, bytes]],
) -> bytes:
    """Serialize labels and properties into an entry stream.

    Parameters
    ----------
    labels:
        Label integer IDs (each must be positive).
    properties:
        ``(ptype_int_id, value_bytes)`` pairs; IDs must be
        >= :data:`FIRST_PTYPE_ID`.  A property type may repeat (GDI
        supports multi-entry property types, Section 3.7).
    """
    parts: list[bytes] = []
    for label_id in labels:
        if label_id <= 0:
            raise EntryFormatError(f"invalid label integer ID {label_id}")
        parts.append(_LABEL.pack(ENTRY_LABEL, label_id))
    for ptype_id, value in properties:
        if ptype_id < FIRST_PTYPE_ID:
            raise EntryFormatError(
                f"property-type integer ID {ptype_id} collides with "
                f"reserved entry IDs (must be >= {FIRST_PTYPE_ID})"
            )
        if not isinstance(value, (bytes, bytearray)):
            raise EntryFormatError("property value must be bytes")
        parts.append(_PROP_HDR.pack(ptype_id, len(value)))
        parts.append(bytes(value))
    parts.append(_HDR.pack(ENTRY_LAST))
    return b"".join(parts)


def decode_entries(blob: bytes) -> tuple[list[int], list[tuple[int, bytes]]]:
    """Parse an entry stream back into (labels, properties).

    Unused (``0``) entries are skipped — a GDA implementation may leave
    holes after in-place deletions.  Parsing stops at the terminator.
    """
    labels: list[int] = []
    properties: list[tuple[int, bytes]] = []
    pos = 0
    n = len(blob)
    while True:
        if pos + 4 > n:
            raise EntryFormatError("entry stream missing terminator")
        (eid,) = _HDR.unpack_from(blob, pos)
        if eid == ENTRY_LAST:
            return labels, properties
        if eid == ENTRY_EMPTY:
            pos += 4
            continue
        if eid == ENTRY_LABEL:
            if pos + 8 > n:
                raise EntryFormatError("truncated label entry")
            (_, label_id) = _LABEL.unpack_from(blob, pos)
            if label_id <= 0:
                raise EntryFormatError(f"corrupt label ID {label_id}")
            labels.append(label_id)
            pos += 8
            continue
        if eid < 0:
            raise EntryFormatError(f"corrupt entry ID {eid}")
        # property entry
        if pos + 8 > n:
            raise EntryFormatError("truncated property header")
        (ptype_id, length) = _PROP_HDR.unpack_from(blob, pos)
        pos += 8
        if length < 0 or pos + length > n:
            raise EntryFormatError("truncated property payload")
        properties.append((ptype_id, bytes(blob[pos : pos + length])))
        pos += length


def entries_nbytes(
    labels: Iterable[int], properties: Iterable[tuple[int, bytes]]
) -> int:
    """Exact byte size :func:`encode_entries` would produce."""
    size = 4  # terminator
    size += 8 * len(list(labels))
    size += sum(8 + len(v) for _, v in properties)
    return size
