"""Vertex and edge holder objects: the Logical Layout level (Section 5.4).

A *holder* is the variable-sized structure describing one vertex or one
heavyweight edge: selected metadata, the addresses of the blocks storing
the data, lightweight edges (stored inline in the source vertex holder,
Section 5.4.2), and the label/property entry stream (Section 5.4.3).

The holder is serialized into fixed-size BGDL blocks:

* the **primary block** starts with a 40-byte header followed by the
  block-address area and the beginning of the payload;
* the payload continues into *continuation data blocks* in order;
* for very large holders (heavy-tail vertices can have thousands of
  edges) the address area switches to **indirect addressing**: the
  primary block stores the addresses of *index blocks*, each packed with
  data-block addresses.  This keeps access depth at O(1) (two fetch
  rounds) regardless of holder size, in the spirit of the paper's
  "one remote operation per block" design.

Payload layout:

* vertex: ``edge_count`` 16-byte edge slots, then the entry stream;
* edge:   two 8-byte endpoint DPtrs, then the entry stream.

Edge slots pack ``(target DPtr, label integer ID, flags)`` where flags
carry the direction (OUT/IN/UNDIRECTED) and a HEAVY bit marking slots
whose DPtr points at an edge holder instead of a neighbor vertex.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from ..gdi.errors import GdiChecksumError, GdiNoMemory, GdiStateError
from ..rma.runtime import RankContext
from .blocks import BlockManager
from .entries import decode_entries, encode_entries, entries_nbytes
from .dptr import unpack_dptr

__all__ = [
    "HEADER_BYTES",
    "SLOT_BYTES",
    "DIR_OUT",
    "DIR_IN",
    "DIR_UNDIR",
    "DIR_MASK",
    "SLOT_HEAVY",
    "KIND_VERTEX",
    "KIND_EDGE",
    "EdgeSlot",
    "VertexHolder",
    "EdgeHolder",
    "StoredHolder",
    "HolderStorage",
    "plan_layout",
]

HEADER_BYTES = 40
SLOT_BYTES = 16

KIND_VERTEX = 1
KIND_EDGE = 2

# flags byte
FLAG_DIRECTED = 1  # edge holders: the edge is directed
FLAG_INDIRECT = 2  # address area holds index-block addresses

# edge-slot flags word
DIR_OUT = 1
DIR_IN = 2
DIR_UNDIR = 3
DIR_MASK = 3
SLOT_HEAVY = 4

_HEADER = struct.Struct("<BBHIIqIIII")  # 36 bytes, padded to 40
_SLOT = struct.Struct("<qii")
_ENDPOINTS = struct.Struct("<qq")


@dataclass
class EdgeSlot:
    """One edge slot inside a vertex holder.

    For lightweight edges ``dptr`` addresses the neighbor vertex and
    ``label_id`` is the (single, optional — 0 means none) edge label.
    For heavy slots (``flags & SLOT_HEAVY``) ``dptr`` addresses the edge
    holder and ``label_id`` is unused.
    """

    dptr: int
    label_id: int
    flags: int

    @property
    def direction(self) -> int:
        return self.flags & DIR_MASK

    @property
    def heavy(self) -> bool:
        return bool(self.flags & SLOT_HEAVY)


@dataclass
class VertexHolder:
    """Decoded vertex: application ID, labels, properties, edge slots."""

    app_id: int
    labels: list[int] = field(default_factory=list)
    properties: list[tuple[int, bytes]] = field(default_factory=list)
    edges: list[EdgeSlot] = field(default_factory=list)

    kind = KIND_VERTEX

    def payload(self) -> tuple[bytes, int]:
        slots = b"".join(
            _SLOT.pack(s.dptr, s.label_id, s.flags) for s in self.edges
        )
        stream = encode_entries(self.labels, self.properties)
        return slots + stream, 0

    def payload_nbytes(self) -> int:
        return SLOT_BYTES * len(self.edges) + entries_nbytes(
            self.labels, self.properties
        )


@dataclass
class EdgeHolder:
    """Decoded heavyweight edge: endpoints, direction, labels, properties."""

    src: int
    dst: int
    directed: bool = True
    labels: list[int] = field(default_factory=list)
    properties: list[tuple[int, bytes]] = field(default_factory=list)

    kind = KIND_EDGE
    app_id = 0
    edges: list = field(default=None, repr=False)  # type: ignore[assignment]

    def payload(self) -> tuple[bytes, int]:
        stream = encode_entries(self.labels, self.properties)
        flags = FLAG_DIRECTED if self.directed else 0
        return _ENDPOINTS.pack(self.src, self.dst) + stream, flags

    def payload_nbytes(self) -> int:
        return 16 + entries_nbytes(self.labels, self.properties)


def plan_layout(payload_len: int, block_size: int) -> tuple[int, int]:
    """Choose (nindex, ndata) for a holder of ``payload_len`` bytes.

    Returns ``nindex == 0`` for direct addressing.  Raises
    :class:`GdiNoMemory` if the holder cannot be represented even with
    full indirection (the user should raise the block size).
    """
    head_room = block_size - HEADER_BYTES
    if head_room < 8:
        raise GdiNoMemory(f"block size {block_size} below holder minimum")
    # Direct: primary holds ndata addresses + leading payload bytes.
    if payload_len <= head_room:
        return 0, 0
    # smallest ndata such that (head_room - 8*ndata) + ndata*block_size >= payload_len
    ndata = -(-(payload_len - head_room) // (block_size - 8))
    if HEADER_BYTES + 8 * ndata <= block_size:
        return 0, ndata
    # Indirect: primary holds nindex index-block addresses.
    per_index = block_size // 8
    max_index = head_room // 8
    for nindex in range(1, max_index + 1):
        cap_primary = head_room - 8 * nindex
        remaining = payload_len - cap_primary
        ndata = -(-remaining // block_size)
        if ndata <= nindex * per_index:
            return nindex, ndata
    raise GdiNoMemory(
        f"holder payload of {payload_len} B exceeds the addressing capacity "
        f"of {block_size}-byte blocks; increase the block size"
    )


@dataclass
class StoredHolder:
    """A holder together with its block placement (transaction cache unit)."""

    holder: VertexHolder | EdgeHolder
    primary: int
    data_blocks: list[int] = field(default_factory=list)
    index_blocks: list[int] = field(default_factory=list)

    @property
    def all_blocks(self) -> list[int]:
        return [self.primary, *self.index_blocks, *self.data_blocks]

    @property
    def home_rank(self) -> int:
        return unpack_dptr(self.primary).rank


class HolderStorage:
    """Reads and writes holders over a :class:`BlockManager`.

    This is the translation layer between the Logical Layout (rich,
    variable-sized holders) and BGDL (fixed-size blocks) — the core of
    Section 5.5.
    """

    def __init__(self, blocks: BlockManager) -> None:
        self.blocks = blocks
        #: optional :class:`~repro.gda.replication.ReplicationManager`; when
        #: set, every block write-back is also staged to the owner's backup.
        self.mirror = None

    # -- serialization helpers --------------------------------------------
    def _pack_header(
        self,
        holder,
        flags: int,
        nindex: int,
        ndata: int,
        payload_len: int,
        crc: int = 0,
    ) -> bytes:
        entries_len = entries_nbytes(holder.labels, holder.properties)
        edge_count = len(holder.edges) if holder.kind == KIND_VERTEX else 0
        hdr = _HEADER.pack(
            holder.kind,
            flags,
            0,
            ndata,
            nindex,
            holder.app_id,
            edge_count,
            entries_len,
            payload_len,
            crc,
        )
        return hdr + b"\x00" * (HEADER_BYTES - len(hdr))

    @staticmethod
    def _parse_payload(kind: int, flags: int, edge_count: int, payload: bytes):
        if kind == KIND_VERTEX:
            edges = []
            for i in range(edge_count):
                dptr, label_id, slot_flags = _SLOT.unpack_from(
                    payload, SLOT_BYTES * i
                )
                edges.append(EdgeSlot(dptr, label_id, slot_flags))
            labels, props = decode_entries(payload[SLOT_BYTES * edge_count :])
            # app_id is filled in by the caller from the header
            return VertexHolder(
                app_id=0, labels=labels, properties=props, edges=edges
            )
        if kind == KIND_EDGE:
            src, dst = _ENDPOINTS.unpack_from(payload, 0)
            labels, props = decode_entries(payload[16:])
            return EdgeHolder(
                src=src,
                dst=dst,
                directed=bool(flags & FLAG_DIRECTED),
                labels=labels,
                properties=props,
            )
        raise GdiStateError(f"corrupt holder kind {kind}")

    # -- write -----------------------------------------------------------------
    def write_new(
        self, ctx: RankContext, holder, home_rank: int
    ) -> StoredHolder:
        """Allocate blocks and write a fresh holder; returns its placement."""
        payload, extra_flags = holder.payload()
        nindex, ndata = plan_layout(len(payload), self.blocks.block_size)
        primary = self.blocks.acquire_block_anywhere(ctx, preferred=home_rank)
        stored = StoredHolder(holder=holder, primary=primary)
        stored.index_blocks = [
            self.blocks.acquire_block_anywhere(ctx, home_rank)
            for _ in range(nindex)
        ]
        stored.data_blocks = [
            self.blocks.acquire_block_anywhere(ctx, home_rank)
            for _ in range(ndata)
        ]
        self._write_blocks(ctx, stored, payload, extra_flags)
        return stored

    def rewrite(self, ctx: RankContext, stored: StoredHolder) -> None:
        """Write back a (mutated) holder, resizing its block set in place.

        Reuses the primary block and as many existing continuation blocks
        as possible; acquires extras or releases surplus as the holder
        grew or shrank.
        """
        payload, extra_flags = stored.holder.payload()
        nindex, ndata = plan_layout(len(payload), self.blocks.block_size)
        home = stored.home_rank
        self._resize(ctx, stored.data_blocks, ndata, home)
        self._resize(ctx, stored.index_blocks, nindex, home)
        self._write_blocks(ctx, stored, payload, extra_flags)

    def rewrite_many(
        self, ctx: RankContext, stored_list: list[StoredHolder]
    ) -> None:
        """Write back many mutated holders with one batched flush.

        Each holder's block set is resized as in :meth:`rewrite`, then all
        block writes of all holders coalesce into one non-blocking batch
        (one network message per distinct owner rank) completed by a
        single data-window flush — the transaction write pipeline.
        """
        if not stored_list:
            return
        items: list[tuple[int, bytes]] = []
        for stored in stored_list:
            payload, extra_flags = stored.holder.payload()
            nindex, ndata = plan_layout(len(payload), self.blocks.block_size)
            home = stored.home_rank
            self._resize(ctx, stored.data_blocks, ndata, home)
            self._resize(ctx, stored.index_blocks, nindex, home)
            items.extend(self._write_items(stored, payload, extra_flags))
        self.blocks.iwrite_blocks(ctx, items)
        if self.mirror is not None:
            self.mirror.stage(ctx, items)
        ctx.flush(self.blocks.data_win)

    def _resize(
        self, ctx: RankContext, blocks: list[int], want: int, home: int
    ) -> None:
        """Grow or shrink a block list in place to ``want`` entries."""
        while len(blocks) < want:
            blocks.append(self.blocks.acquire_block_anywhere(ctx, home))
        while len(blocks) > want:
            self.blocks.release_block(ctx, blocks.pop())

    def _write_items(
        self,
        stored: StoredHolder,
        payload: bytes,
        extra_flags: int,
    ) -> list[tuple[int, bytes]]:
        """Serialize a holder into ``(dptr, data)`` block-write items."""
        bs = self.blocks.block_size
        holder = stored.holder
        flags = extra_flags | (FLAG_INDIRECT if stored.index_blocks else 0)
        nindex = len(stored.index_blocks)
        ndata = len(stored.data_blocks)
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        header = self._pack_header(
            holder, flags, nindex, ndata, len(payload), crc
        )
        items: list[tuple[int, bytes]] = []
        if nindex:
            addr_area = b"".join(
                p.to_bytes(8, "little", signed=True) for p in stored.index_blocks
            )
            # index blocks hold the data-block addresses, packed.
            per_index = bs // 8
            for j, iptr in enumerate(stored.index_blocks):
                chunk = stored.data_blocks[j * per_index : (j + 1) * per_index]
                blob = b"".join(
                    p.to_bytes(8, "little", signed=True) for p in chunk
                )
                items.append((iptr, blob))
        else:
            addr_area = b"".join(
                p.to_bytes(8, "little", signed=True) for p in stored.data_blocks
            )
        cap_primary = bs - HEADER_BYTES - len(addr_area)
        head = payload[:cap_primary]
        primary_blob = header + addr_area + head
        primary_blob += b"\x00" * (bs - len(primary_blob))
        items.append((stored.primary, primary_blob))
        pos = len(head)
        for dptr in stored.data_blocks:
            chunk = payload[pos : pos + bs]
            items.append((dptr, chunk))
            pos += len(chunk)
        return items

    def _write_blocks(
        self,
        ctx: RankContext,
        stored: StoredHolder,
        payload: bytes,
        extra_flags: int,
    ) -> None:
        # All block writes are non-blocking, coalesced per owner rank, and
        # complete at one flush: the paper's overlap of one-sided
        # communication (Section 5.1).
        items = self._write_items(stored, payload, extra_flags)
        self.blocks.iwrite_blocks(ctx, items)
        if self.mirror is not None:
            self.mirror.stage(ctx, items)
        ctx.flush(self.blocks.data_win)

    # -- read -------------------------------------------------------------------
    def read(self, ctx: RankContext, primary: int) -> StoredHolder:
        """Fetch and decode the holder whose primary block is ``primary``."""
        return self.read_many(ctx, [primary])[0]  # type: ignore[return-value]

    def read_many(
        self,
        ctx: RankContext,
        primaries: list[int],
        missing_ok: bool = False,
    ) -> list[StoredHolder | None]:
        """Fetch and decode many holders with batched per-rank reads.

        Three fetch rounds regardless of holder count — primaries, then
        index blocks, then data blocks — each round one coalesced message
        per distinct owner rank.  With ``missing_ok`` a primary block that
        holds no holder yields ``None`` instead of raising
        :class:`GdiStateError`.
        """
        if not primaries:
            return []
        bs = self.blocks.block_size
        # Round 1: every primary block, coalesced per owner rank.
        blobs = self.blocks.read_blocks(
            ctx, [(p, 0, bs) for p in primaries]
        )
        infos: list[dict | None] = []
        for primary, blob in zip(primaries, blobs):
            (
                kind,
                flags,
                _,
                ndata,
                nindex,
                app_id,
                edge_count,
                _entries_len,
                payload_len,
                crc,
            ) = _HEADER.unpack_from(blob, 0)
            if kind not in (KIND_VERTEX, KIND_EDGE):
                if missing_ok:
                    infos.append(None)
                    continue
                raise GdiStateError(f"no holder at {primary:#x} (kind={kind})")
            pos = HEADER_BYTES
            index_blocks: list[int] = []
            data_blocks: list[int] = []
            if flags & FLAG_INDIRECT:
                for _ in range(nindex):
                    index_blocks.append(
                        int.from_bytes(blob[pos : pos + 8], "little", signed=True)
                    )
                    pos += 8
            else:
                for _ in range(ndata):
                    data_blocks.append(
                        int.from_bytes(blob[pos : pos + 8], "little", signed=True)
                    )
                    pos += 8
            infos.append(
                {
                    "primary": primary,
                    "kind": kind,
                    "flags": flags,
                    "ndata": ndata,
                    "app_id": app_id,
                    "edge_count": edge_count,
                    "payload_len": payload_len,
                    "crc": crc,
                    "pos": pos,
                    "blob": blob,
                    "index_blocks": index_blocks,
                    "data_blocks": data_blocks,
                }
            )
        # Round 2: index blocks of indirect holders, all in one batch.
        per_index = bs // 8
        index_specs: list[tuple[int, int, int]] = []
        index_owner: list[tuple[dict, int]] = []
        for info in infos:
            if info is None or not info["index_blocks"]:
                continue
            remaining = info["ndata"]
            for iptr in info["index_blocks"]:
                take = min(per_index, remaining)
                index_specs.append((iptr, 0, 8 * take))
                index_owner.append((info, take))
                remaining -= take
        if index_specs:
            iblobs = self.blocks.read_blocks(ctx, index_specs)
            for (info, take), iblob in zip(index_owner, iblobs):
                for k in range(take):
                    info["data_blocks"].append(
                        int.from_bytes(
                            iblob[8 * k : 8 * k + 8], "little", signed=True
                        )
                    )
        # Round 3: every continuation data block of every holder.
        data_specs: list[tuple[int, int, int]] = []
        data_owner: list[dict] = []
        for info in infos:
            if info is None:
                continue
            head = info["blob"][
                info["pos"] : info["pos"]
                + min(info["payload_len"], bs - info["pos"])
            ]
            info["parts"] = [head]
            got = len(head)
            for dptr in info["data_blocks"]:
                take = min(bs, info["payload_len"] - got)
                data_specs.append((dptr, 0, take))
                data_owner.append(info)
                got += take
        if data_specs:
            dblobs = self.blocks.read_blocks(ctx, data_specs)
            for info, dblob in zip(data_owner, dblobs):
                info["parts"].append(dblob)
        out: list[StoredHolder | None] = []
        for info in infos:
            if info is None:
                out.append(None)
                continue
            payload = b"".join(info["parts"])
            if zlib.crc32(payload) & 0xFFFFFFFF != info["crc"]:
                ctx.rt.trace.record_corruption_detected(ctx.rank)
                raise GdiChecksumError(
                    f"holder at {info['primary']:#x} failed CRC32 "
                    f"verification (payload of {len(payload)} B)"
                )
            holder = self._parse_payload(
                info["kind"], info["flags"], info["edge_count"], payload
            )
            holder.app_id = info["app_id"]
            out.append(
                StoredHolder(
                    holder=holder,
                    primary=info["primary"],
                    data_blocks=info["data_blocks"],
                    index_blocks=info["index_blocks"],
                )
            )
        return out

    # -- delete --------------------------------------------------------------------
    def delete(self, ctx: RankContext, stored: StoredHolder) -> None:
        """Release every block of the holder (primary last)."""
        for dptr in stored.data_blocks:
            self.blocks.release_block(ctx, dptr)
        for dptr in stored.index_blocks:
            self.blocks.release_block(ctx, dptr)
        # Clear the header so stale reads fail loudly, then free.
        self.blocks.write_block(ctx, stored.primary, b"\x00" * HEADER_BYTES)
        self.blocks.release_block(ctx, stored.primary)
        stored.data_blocks = []
        stored.index_blocks = []
