"""Vertex and edge holder objects: the Logical Layout level (Section 5.4).

A *holder* is the variable-sized structure describing one vertex or one
heavyweight edge: selected metadata, the addresses of the blocks storing
the data, lightweight edges (stored inline in the source vertex holder,
Section 5.4.2), and the label/property entry stream (Section 5.4.3).

The holder is serialized into fixed-size BGDL blocks:

* the **primary block** starts with a 40-byte header followed by the
  block-address area and the beginning of the payload;
* the payload continues into *continuation data blocks* in order;
* for very large holders (heavy-tail vertices can have thousands of
  edges) the address area switches to **indirect addressing**: the
  primary block stores the addresses of *index blocks*, each packed with
  data-block addresses.  This keeps access depth at O(1) (two fetch
  rounds) regardless of holder size, in the spirit of the paper's
  "one remote operation per block" design.

Payload layout:

* vertex: ``edge_count`` 16-byte edge slots, then the entry stream;
* edge:   two 8-byte endpoint DPtrs, then the entry stream.

Edge slots pack ``(target DPtr, label integer ID, flags)`` where flags
carry the direction (OUT/IN/UNDIRECTED) and a HEAVY bit marking slots
whose DPtr points at an edge holder instead of a neighbor vertex.

Zero-copy codec
---------------

The on-wire layouts are mirrored by numpy structured dtypes
(:data:`SLOT_DTYPE`, :data:`HEADER_DTYPE`) so decoded holders keep the
raw slot region as an opaque buffer instead of eagerly unpacking one
:class:`EdgeSlot` per edge.  :meth:`VertexHolder.edges_as_arrays` views
that buffer directly (no per-edge Python objects); the ``edges`` list is
materialized lazily only when slot-granular mutation is needed, at which
point the buffer is dropped so the two representations can never
diverge.

Projected reads
---------------

:meth:`HolderStorage.read_many` accepts a *needs mask* (NEED_IDENT /
NEED_TOPO / NEED_ENTRIES) describing which holder parts the caller will
touch.  Partial reads fetch the 40-byte header plus a small
address-area hint first, then only the exact payload spans covering the
requested parts — a 2-hop traversal that only follows edges never pays
for property bytes.  The CRC covers the whole payload, so it is only
verified on full-payload reads; partial reads trade that check for
bandwidth (the block headers still catch stale/freed blocks).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..gdi.errors import GdiChecksumError, GdiNoMemory, GdiStateError
from ..rma.runtime import RankContext
from .blocks import BlockManager
from .entries import decode_entries, encode_entries, entries_nbytes
from .dptr import unpack_dptr

__all__ = [
    "HEADER_BYTES",
    "VERSION_OFFSET",
    "SLOT_BYTES",
    "DIR_OUT",
    "DIR_IN",
    "DIR_UNDIR",
    "DIR_MASK",
    "SLOT_HEAVY",
    "KIND_VERTEX",
    "KIND_EDGE",
    "NEED_IDENT",
    "NEED_TOPO",
    "NEED_ENTRIES",
    "NEED_ALL",
    "SLOT_DTYPE",
    "HEADER_DTYPE",
    "EdgeSlot",
    "VertexHolder",
    "EdgeHolder",
    "StoredHolder",
    "HolderStorage",
    "plan_layout",
]

HEADER_BYTES = 40
SLOT_BYTES = 16

KIND_VERTEX = 1
KIND_EDGE = 2

# flags byte
FLAG_DIRECTED = 1  # edge holders: the edge is directed
FLAG_INDIRECT = 2  # address area holds index-block addresses

# edge-slot flags word
DIR_OUT = 1
DIR_IN = 2
DIR_UNDIR = 3
DIR_MASK = 3
SLOT_HEAVY = 4

# holder-part needs mask (projected reads)
NEED_IDENT = 1  # header only: kind, app_id, edge count
NEED_TOPO = 2  # the edge-slot region
NEED_ENTRIES = 4  # the label/property entry stream
NEED_ALL = NEED_IDENT | NEED_TOPO | NEED_ENTRIES

_HEADER = struct.Struct("<BBHIIqIIII")  # 36 bytes, padded to 40
_SLOT = struct.Struct("<qii")
_ENDPOINTS = struct.Struct("<qq")

#: numpy mirror of the 16-byte edge slot (``<qii``).
SLOT_DTYPE = np.dtype(
    [("dptr", "<i8"), ("label", "<i4"), ("flags", "<i4")]
)

#: numpy mirror of the 36-byte packed header (``<BBHIIqIIII``).
HEADER_DTYPE = np.dtype(
    [
        ("kind", "u1"),
        ("flags", "u1"),
        ("pad", "<u2"),
        ("ndata", "<u4"),
        ("nindex", "<u4"),
        ("app_id", "<i8"),
        ("edge_count", "<u4"),
        ("entries_len", "<u4"),
        ("payload_len", "<u4"),
        ("crc", "<u4"),
    ]
)

# The dtypes must mirror the struct layouts bit-for-bit, and the packed
# header must pad to exactly the documented HEADER_BYTES — the writers
# assume it, and a silent drift would corrupt every stored holder.
assert SLOT_DTYPE.itemsize == _SLOT.size == SLOT_BYTES
assert HEADER_DTYPE.itemsize == _HEADER.size == 36
assert HEADER_BYTES - _HEADER.size == 4, "header pads 36 -> 40 bytes"

#: byte offset of the MVCC commit version inside the 40-byte header: the
#: u32 occupying what used to be the trailing pad (bytes 36..40).  Holders
#: written before MVCC decode as version 0 — visible to every snapshot.
VERSION_OFFSET = _HEADER.size

#: bytes of address area fetched speculatively with every header read;
#: covers holders with up to 8 continuation/index addresses in one round.
_ADDR_HINT = 64

#: NEED_ALL batches smaller than this use the classic full-primary-block
#: read (one round fewer for small holders; CRC always verified).
_HEADER_FIRST_MIN_BATCH = 8


@dataclass
class EdgeSlot:
    """One edge slot inside a vertex holder.

    For lightweight edges ``dptr`` addresses the neighbor vertex and
    ``label_id`` is the (single, optional — 0 means none) edge label.
    For heavy slots (``flags & SLOT_HEAVY``) ``dptr`` addresses the edge
    holder and ``label_id`` is unused.
    """

    dptr: int
    label_id: int
    flags: int

    @property
    def direction(self) -> int:
        return self.flags & DIR_MASK

    @property
    def heavy(self) -> bool:
        return bool(self.flags & SLOT_HEAVY)


class VertexHolder:
    """Decoded vertex: application ID, labels, properties, edge slots.

    The edge slots live in exactly one of two representations:

    * ``_slot_buf`` — the raw 16-byte-per-slot region as read off the
      wire (zero-copy; served to bulk consumers as numpy views);
    * ``_edges`` — a materialized ``list[EdgeSlot]`` for slot-granular
      mutation.

    Reading :attr:`edges` materializes the list and *drops the buffer*,
    so a mutated list can never coexist with a stale buffer.  Holders
    from projected reads may carry neither (topology not fetched);
    touching :attr:`edges` then raises :class:`GdiStateError` — the
    transaction layer hydrates missing parts before handing out slots.
    """

    kind = KIND_VERTEX

    __slots__ = ("app_id", "labels", "properties", "_edges", "_slot_buf")

    def __init__(
        self,
        app_id: int,
        labels: list[int] | None = None,
        properties: list[tuple[int, bytes]] | None = None,
        edges: list[EdgeSlot] | None = None,
    ) -> None:
        self.app_id = app_id
        self.labels = [] if labels is None else labels
        self.properties = [] if properties is None else properties
        self._edges: list[EdgeSlot] | None = (
            [] if edges is None else edges
        )
        self._slot_buf: bytes | None = None

    @classmethod
    def _from_wire(
        cls,
        app_id: int,
        labels: list[int] | None,
        properties: list[tuple[int, bytes]] | None,
        slot_buf: bytes | None,
    ) -> "VertexHolder":
        """Build a decoded holder, possibly with unfetched parts."""
        h = cls(app_id)
        h.labels = labels  # type: ignore[assignment]  # None = not fetched
        h.properties = properties  # type: ignore[assignment]
        h._edges = None
        h._slot_buf = slot_buf
        return h

    # -- edge-slot access --------------------------------------------------
    @property
    def edges(self) -> list[EdgeSlot]:
        if self._edges is None:
            if self._slot_buf is None:
                raise GdiStateError(
                    "vertex holder topology not loaded (projected read)"
                )
            self._edges = [
                EdgeSlot(dptr, label_id, flags)
                for dptr, label_id, flags in _SLOT.iter_unpack(self._slot_buf)
            ]
            self._slot_buf = None  # single source of truth from here on
        return self._edges

    @edges.setter
    def edges(self, value: list[EdgeSlot]) -> None:
        self._edges = value
        self._slot_buf = None

    @property
    def has_topology(self) -> bool:
        return self._edges is not None or self._slot_buf is not None

    @property
    def edge_count(self) -> int:
        if self._edges is not None:
            return len(self._edges)
        if self._slot_buf is not None:
            return len(self._slot_buf) // SLOT_BYTES
        raise GdiStateError(
            "vertex holder topology not loaded (projected read)"
        )

    def edges_as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(dptr, label, flags)`` arrays over the edge slots, zero-copy.

        When the holder still carries its wire buffer the arrays are
        read-only views straight over it (no per-edge objects, no
        copies); a materialized list is packed on the fly.
        """
        if self._slot_buf is not None:
            view = np.frombuffer(self._slot_buf, dtype=SLOT_DTYPE)
            return view["dptr"], view["label"], view["flags"]
        edges = self.edges
        n = len(edges)
        arr = np.empty(n, dtype=SLOT_DTYPE)
        if n:
            arr["dptr"] = [s.dptr for s in edges]
            arr["label"] = [s.label_id for s in edges]
            arr["flags"] = [s.flags for s in edges]
        return arr["dptr"], arr["label"], arr["flags"]

    def targets(self, label_id: int | None = None) -> np.ndarray:
        """DPtrs of lightweight neighbors, optionally for one edge label.

        Heavy slots are excluded (their DPtr addresses an edge holder,
        not a neighbor); bulk analytics consumers resolve those rarely
        and separately.
        """
        dptr, label, flags = self.edges_as_arrays()
        mask = (flags & SLOT_HEAVY) == 0
        if label_id is not None:
            mask &= label == label_id
        return dptr[mask]

    # -- serialization -----------------------------------------------------
    def _slot_bytes(self) -> bytes:
        if self._edges is None and self._slot_buf is not None:
            return self._slot_buf
        edges = self.edges
        if len(edges) >= 64:
            arr = np.empty(len(edges), dtype=SLOT_DTYPE)
            arr["dptr"] = [s.dptr for s in edges]
            arr["label"] = [s.label_id for s in edges]
            arr["flags"] = [s.flags for s in edges]
            return arr.tobytes()
        return b"".join(
            _SLOT.pack(s.dptr, s.label_id, s.flags) for s in edges
        )

    def payload(self) -> tuple[bytes, int]:
        stream = encode_entries(self.labels, self.properties)
        return self._slot_bytes() + stream, 0

    def payload_nbytes(self) -> int:
        return SLOT_BYTES * self.edge_count + entries_nbytes(
            self.labels, self.properties
        )

    # -- value semantics (kept from the dataclass era) ---------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VertexHolder):
            return NotImplemented
        return (
            self.app_id == other.app_id
            and self.labels == other.labels
            and self.properties == other.properties
            and self.edges == other.edges
        )

    def __repr__(self) -> str:
        edges = (
            f"<{len(self._slot_buf) // SLOT_BYTES} packed slots>"
            if self._edges is None and self._slot_buf is not None
            else self._edges
        )
        return (
            f"VertexHolder(app_id={self.app_id!r}, labels={self.labels!r}, "
            f"properties={self.properties!r}, edges={edges!r})"
        )


@dataclass
class EdgeHolder:
    """Decoded heavyweight edge: endpoints, direction, labels, properties."""

    src: int
    dst: int
    directed: bool = True
    labels: list[int] = field(default_factory=list)
    properties: list[tuple[int, bytes]] = field(default_factory=list)

    kind = KIND_EDGE
    app_id = 0
    edges: list = field(default=None, repr=False)  # type: ignore[assignment]

    def payload(self) -> tuple[bytes, int]:
        stream = encode_entries(self.labels, self.properties)
        flags = FLAG_DIRECTED if self.directed else 0
        return _ENDPOINTS.pack(self.src, self.dst) + stream, flags

    def payload_nbytes(self) -> int:
        return 16 + entries_nbytes(self.labels, self.properties)


def plan_layout(payload_len: int, block_size: int) -> tuple[int, int]:
    """Choose (nindex, ndata) for a holder of ``payload_len`` bytes.

    Returns ``nindex == 0`` for direct addressing.  Raises
    :class:`GdiNoMemory` if the holder cannot be represented even with
    full indirection (the user should raise the block size).
    """
    head_room = block_size - HEADER_BYTES
    if head_room < 8:
        raise GdiNoMemory(f"block size {block_size} below holder minimum")
    # Direct: primary holds ndata addresses + leading payload bytes.
    if payload_len <= head_room:
        return 0, 0
    # smallest ndata such that (head_room - 8*ndata) + ndata*block_size >= payload_len
    ndata = -(-(payload_len - head_room) // (block_size - 8))
    if HEADER_BYTES + 8 * ndata <= block_size:
        return 0, ndata
    # Indirect: primary holds nindex index-block addresses.
    per_index = block_size // 8
    max_index = head_room // 8
    for nindex in range(1, max_index + 1):
        cap_primary = head_room - 8 * nindex
        remaining = payload_len - cap_primary
        ndata = -(-remaining // block_size)
        if ndata <= nindex * per_index:
            return nindex, ndata
    raise GdiNoMemory(
        f"holder payload of {payload_len} B exceeds the addressing capacity "
        f"of {block_size}-byte blocks; increase the block size"
    )


@dataclass
class StoredHolder:
    """A holder together with its block placement (transaction cache unit)."""

    holder: VertexHolder | EdgeHolder
    primary: int
    data_blocks: list[int] = field(default_factory=list)
    index_blocks: list[int] = field(default_factory=list)
    #: which holder parts were actually fetched (projected reads); holders
    #: built locally or read in full carry NEED_ALL.
    parts: int = NEED_ALL
    #: commit timestamp of the transaction that last wrote this holder
    #: (the MVCC version in the header pad bytes); 0 for pre-MVCC data
    #: and for databases running without :mod:`repro.mvcc`.
    version: int = 0

    @property
    def all_blocks(self) -> list[int]:
        return [self.primary, *self.index_blocks, *self.data_blocks]

    @property
    def home_rank(self) -> int:
        return unpack_dptr(self.primary).rank


class HolderStorage:
    """Reads and writes holders over a :class:`BlockManager`.

    This is the translation layer between the Logical Layout (rich,
    variable-sized holders) and BGDL (fixed-size blocks) — the core of
    Section 5.5.
    """

    def __init__(self, blocks: BlockManager) -> None:
        self.blocks = blocks
        #: optional :class:`~repro.gda.replication.ReplicationManager`; when
        #: set, every block write-back is also staged to the owner's backup.
        self.mirror = None

    # -- serialization helpers --------------------------------------------
    def _pack_header(
        self,
        holder,
        flags: int,
        nindex: int,
        ndata: int,
        payload_len: int,
        crc: int = 0,
        version: int = 0,
    ) -> bytes:
        entries_len = entries_nbytes(holder.labels, holder.properties)
        edge_count = (
            holder.edge_count if holder.kind == KIND_VERTEX else 0
        )
        hdr = _HEADER.pack(
            holder.kind,
            flags,
            0,
            ndata,
            nindex,
            holder.app_id,
            edge_count,
            entries_len,
            payload_len,
            crc,
        )
        assert HEADER_BYTES - len(hdr) == 4
        # the former pad bytes carry the MVCC commit version
        return hdr + (version & 0xFFFFFFFF).to_bytes(4, "little")

    @staticmethod
    def _parse_payload(kind: int, flags: int, edge_count: int, payload: bytes):
        if kind == KIND_VERTEX:
            topo_len = SLOT_BYTES * edge_count
            labels, props = decode_entries(payload[topo_len:])
            # app_id is filled in by the caller from the header; the raw
            # slot region is kept as-is (zero-copy decode).
            return VertexHolder._from_wire(
                0, labels, props, payload[:topo_len]
            )
        if kind == KIND_EDGE:
            src, dst = _ENDPOINTS.unpack_from(payload, 0)
            labels, props = decode_entries(payload[16:])
            return EdgeHolder(
                src=src,
                dst=dst,
                directed=bool(flags & FLAG_DIRECTED),
                labels=labels,
                properties=props,
            )
        raise GdiStateError(f"corrupt holder kind {kind}")

    # -- write -----------------------------------------------------------------
    def write_new(
        self, ctx: RankContext, holder, home_rank: int
    ) -> StoredHolder:
        """Allocate blocks and write a fresh holder; returns its placement."""
        payload, extra_flags = holder.payload()
        nindex, ndata = plan_layout(len(payload), self.blocks.block_size)
        primary = self.blocks.acquire_block_anywhere(ctx, preferred=home_rank)
        stored = StoredHolder(holder=holder, primary=primary)
        stored.index_blocks = [
            self.blocks.acquire_block_anywhere(ctx, home_rank)
            for _ in range(nindex)
        ]
        stored.data_blocks = [
            self.blocks.acquire_block_anywhere(ctx, home_rank)
            for _ in range(ndata)
        ]
        self._write_blocks(ctx, stored, payload, extra_flags)
        return stored

    def rewrite(self, ctx: RankContext, stored: StoredHolder) -> None:
        """Write back a (mutated) holder, resizing its block set in place.

        Reuses the primary block and as many existing continuation blocks
        as possible; acquires extras or releases surplus as the holder
        grew or shrank.
        """
        payload, extra_flags = stored.holder.payload()
        nindex, ndata = plan_layout(len(payload), self.blocks.block_size)
        home = stored.home_rank
        self._resize(ctx, stored.data_blocks, ndata, home)
        self._resize(ctx, stored.index_blocks, nindex, home)
        self._write_blocks(ctx, stored, payload, extra_flags)

    def rewrite_many(
        self, ctx: RankContext, stored_list: list[StoredHolder]
    ) -> None:
        """Write back many mutated holders with one batched flush.

        Each holder's block set is resized as in :meth:`rewrite`, then all
        block writes of all holders coalesce into one non-blocking batch
        (one network message per distinct owner rank) completed by a
        single data-window flush — the transaction write pipeline.
        """
        if not stored_list:
            return
        items: list[tuple[int, bytes]] = []
        for stored in stored_list:
            payload, extra_flags = stored.holder.payload()
            nindex, ndata = plan_layout(len(payload), self.blocks.block_size)
            home = stored.home_rank
            self._resize(ctx, stored.data_blocks, ndata, home)
            self._resize(ctx, stored.index_blocks, nindex, home)
            items.extend(self._write_items(stored, payload, extra_flags))
        self.blocks.iwrite_blocks(ctx, items)
        if self.mirror is not None:
            self.mirror.stage(ctx, items)
        ctx.flush(self.blocks.data_win)

    def _resize(
        self, ctx: RankContext, blocks: list[int], want: int, home: int
    ) -> None:
        """Grow or shrink a block list in place to ``want`` entries."""
        while len(blocks) < want:
            blocks.append(self.blocks.acquire_block_anywhere(ctx, home))
        while len(blocks) > want:
            self.blocks.release_block(ctx, blocks.pop())

    def _write_items(
        self,
        stored: StoredHolder,
        payload: bytes,
        extra_flags: int,
    ) -> list[tuple[int, bytes]]:
        """Serialize a holder into ``(dptr, data)`` block-write items."""
        bs = self.blocks.block_size
        holder = stored.holder
        flags = extra_flags | (FLAG_INDIRECT if stored.index_blocks else 0)
        nindex = len(stored.index_blocks)
        ndata = len(stored.data_blocks)
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        header = self._pack_header(
            holder, flags, nindex, ndata, len(payload), crc, stored.version
        )
        items: list[tuple[int, bytes]] = []
        if nindex:
            addr_area = b"".join(
                p.to_bytes(8, "little", signed=True) for p in stored.index_blocks
            )
            # index blocks hold the data-block addresses, packed.
            per_index = bs // 8
            for j, iptr in enumerate(stored.index_blocks):
                chunk = stored.data_blocks[j * per_index : (j + 1) * per_index]
                blob = b"".join(
                    p.to_bytes(8, "little", signed=True) for p in chunk
                )
                items.append((iptr, blob))
        else:
            addr_area = b"".join(
                p.to_bytes(8, "little", signed=True) for p in stored.data_blocks
            )
        cap_primary = bs - HEADER_BYTES - len(addr_area)
        head = payload[:cap_primary]
        primary_blob = header + addr_area + head
        primary_blob += b"\x00" * (bs - len(primary_blob))
        items.append((stored.primary, primary_blob))
        pos = len(head)
        for dptr in stored.data_blocks:
            chunk = payload[pos : pos + bs]
            items.append((dptr, chunk))
            pos += len(chunk)
        return items

    def _write_blocks(
        self,
        ctx: RankContext,
        stored: StoredHolder,
        payload: bytes,
        extra_flags: int,
    ) -> None:
        # All block writes are non-blocking, coalesced per owner rank, and
        # complete at one flush: the paper's overlap of one-sided
        # communication (Section 5.1).
        items = self._write_items(stored, payload, extra_flags)
        self.blocks.iwrite_blocks(ctx, items)
        if self.mirror is not None:
            self.mirror.stage(ctx, items)
        ctx.flush(self.blocks.data_win)

    # -- read -------------------------------------------------------------------
    def read(
        self, ctx: RankContext, primary: int, need: int = NEED_ALL
    ) -> StoredHolder:
        """Fetch and decode the holder whose primary block is ``primary``."""
        return self.read_many(ctx, [primary], need=need)[0]  # type: ignore[return-value]

    def read_many(
        self,
        ctx: RankContext,
        primaries: list[int],
        missing_ok: bool = False,
        need: int | list[int] = NEED_ALL,
    ) -> list[StoredHolder | None]:
        """Fetch and decode many holders with batched per-rank reads.

        ``need`` is a holder-parts mask (or one mask per primary):
        callers that will only follow edges pass ``NEED_TOPO``, property
        filters pass ``NEED_ENTRIES``, pure existence checks
        ``NEED_IDENT``.  Partial reads fetch the header plus only the
        exact payload spans covering the requested parts; full reads of
        small batches keep the classic full-primary-block path (and its
        CRC verification).  Edge holders are always read in full.

        A constant number of fetch rounds regardless of holder count,
        each round one coalesced message per distinct owner rank.  With
        ``missing_ok`` a primary block that holds no holder yields
        ``None`` instead of raising :class:`GdiStateError`.
        """
        if not primaries:
            return []
        needs = (
            list(need)
            if isinstance(need, (list, tuple))
            else [need] * len(primaries)
        )
        if len(needs) != len(primaries):
            raise ValueError("needs mask list must match primaries")
        if (
            all(n == NEED_ALL for n in needs)
            and len(primaries) < _HEADER_FIRST_MIN_BATCH
        ):
            return self._read_many_full(ctx, primaries, missing_ok)
        return self._read_many_projected(ctx, primaries, needs, missing_ok)

    def _decode_header(
        self, primary: int, blob: bytes, missing_ok: bool
    ) -> dict | None:
        (
            kind,
            flags,
            _,
            ndata,
            nindex,
            app_id,
            edge_count,
            entries_len,
            payload_len,
            crc,
        ) = _HEADER.unpack_from(blob, 0)
        if kind not in (KIND_VERTEX, KIND_EDGE):
            if missing_ok:
                return None
            raise GdiStateError(f"no holder at {primary:#x} (kind={kind})")
        return {
            "primary": primary,
            "kind": kind,
            "flags": flags,
            "ndata": ndata,
            "nindex": nindex,
            "app_id": app_id,
            "edge_count": edge_count,
            "entries_len": entries_len,
            "payload_len": payload_len,
            "crc": crc,
            "version": int.from_bytes(
                blob[VERSION_OFFSET : VERSION_OFFSET + 4], "little"
            ),
            "blob": blob,
            "index_blocks": [],
            "data_blocks": [],
        }

    def _read_many_full(
        self,
        ctx: RankContext,
        primaries: list[int],
        missing_ok: bool,
    ) -> list[StoredHolder | None]:
        """Classic path: full primary blocks, then index, then data."""
        bs = self.blocks.block_size
        # Round 1: every primary block, coalesced per owner rank.
        blobs = self.blocks.read_blocks(ctx, [(p, 0, bs) for p in primaries])
        infos: list[dict | None] = []
        for primary, blob in zip(primaries, blobs):
            info = self._decode_header(primary, blob, missing_ok)
            if info is None:
                infos.append(None)
                continue
            pos = HEADER_BYTES
            addrs = np.frombuffer(
                blob,
                dtype="<i8",
                count=(
                    info["nindex"]
                    if info["flags"] & FLAG_INDIRECT
                    else info["ndata"]
                ),
                offset=pos,
            )
            if info["flags"] & FLAG_INDIRECT:
                info["index_blocks"] = addrs.tolist()
            else:
                info["data_blocks"] = addrs.tolist()
            info["pos"] = pos + 8 * len(addrs)
            infos.append(info)
        # Round 2: index blocks of indirect holders, all in one batch.
        per_index = bs // 8
        index_specs: list[tuple[int, int, int]] = []
        index_owner: list[tuple[dict, int]] = []
        for info in infos:
            if info is None or not info["index_blocks"]:
                continue
            remaining = info["ndata"]
            for iptr in info["index_blocks"]:
                take = min(per_index, remaining)
                index_specs.append((iptr, 0, 8 * take))
                index_owner.append((info, take))
                remaining -= take
        if index_specs:
            iblobs = self.blocks.read_blocks(ctx, index_specs)
            for (info, take), iblob in zip(index_owner, iblobs):
                info["data_blocks"].extend(
                    np.frombuffer(iblob, dtype="<i8", count=take).tolist()
                )
        # Round 3: every continuation data block of every holder.
        data_specs: list[tuple[int, int, int]] = []
        data_owner: list[dict] = []
        for info in infos:
            if info is None:
                continue
            head = info["blob"][
                info["pos"] : info["pos"]
                + min(info["payload_len"], bs - info["pos"])
            ]
            info["pieces"] = [head]
            got = len(head)
            for dptr in info["data_blocks"]:
                take = min(bs, info["payload_len"] - got)
                data_specs.append((dptr, 0, take))
                data_owner.append(info)
                got += take
        if data_specs:
            dblobs = self.blocks.read_blocks(ctx, data_specs)
            for info, dblob in zip(data_owner, dblobs):
                info["pieces"].append(dblob)
        out: list[StoredHolder | None] = []
        for info in infos:
            if info is None:
                out.append(None)
                continue
            payload = b"".join(info["pieces"])
            self._check_crc(ctx, info, payload)
            holder = self._parse_payload(
                info["kind"], info["flags"], info["edge_count"], payload
            )
            holder.app_id = info["app_id"]
            out.append(
                StoredHolder(
                    holder=holder,
                    primary=info["primary"],
                    data_blocks=info["data_blocks"],
                    index_blocks=info["index_blocks"],
                    version=info["version"],
                )
            )
        return out

    def _check_crc(self, ctx: RankContext, info: dict, payload: bytes) -> None:
        if zlib.crc32(payload) & 0xFFFFFFFF != info["crc"]:
            ctx.rt.trace.record_corruption_detected(ctx.rank)
            raise GdiChecksumError(
                f"holder at {info['primary']:#x} failed CRC32 "
                f"verification (payload of {len(payload)} B)"
            )

    def _read_many_projected(
        self,
        ctx: RankContext,
        primaries: list[int],
        needs: list[int],
        missing_ok: bool,
    ) -> list[StoredHolder | None]:
        """Header-first path: exact payload spans for the needed parts.

        Rounds: (1) header + address hint, (2) address-area overflow +
        index blocks already addressable, (3) index blocks behind an
        overflow, (4) payload spans.  Rounds 2 and 3 are usually empty.
        """
        bs = self.blocks.block_size
        hint_len = min(bs, HEADER_BYTES + _ADDR_HINT)
        blobs = self.blocks.read_blocks(
            ctx, [(p, 0, hint_len) for p in primaries]
        )
        infos: list[dict | None] = []
        # Round 2: complete the address areas.
        over_specs: list[tuple[int, int, int]] = []
        over_owner: list[dict] = []
        for primary, blob, n in zip(primaries, blobs, needs):
            info = self._decode_header(primary, blob, missing_ok)
            infos.append(info)
            if info is None:
                continue
            if info["kind"] == KIND_EDGE:
                n = NEED_ALL  # endpoints and entries interleave: read all
            info["need"] = n
            indirect = bool(info["flags"] & FLAG_INDIRECT)
            naddr = info["nindex"] if indirect else info["ndata"]
            info["pos"] = HEADER_BYTES + 8 * naddr
            avail = min(naddr, (hint_len - HEADER_BYTES) // 8)
            addrs = np.frombuffer(
                blob, dtype="<i8", count=avail, offset=HEADER_BYTES
            ).tolist()
            if indirect:
                info["index_blocks"] = addrs
            else:
                info["data_blocks"] = addrs
            if avail < naddr:
                over_specs.append(
                    (primary, HEADER_BYTES + 8 * avail, 8 * (naddr - avail))
                )
                over_owner.append(info)
        late_index: list[dict] = []
        if over_specs:
            oblobs = self.blocks.read_blocks(ctx, over_specs)
            for info, oblob in zip(over_owner, oblobs):
                addrs = np.frombuffer(oblob, dtype="<i8").tolist()
                if info["flags"] & FLAG_INDIRECT:
                    info["index_blocks"].extend(addrs)
                    late_index.append(info)
                else:
                    info["data_blocks"].extend(addrs)
        # Rounds 2b/3: index blocks (early for hint-resolved holders).
        per_index = bs // 8
        late_ids = {id(i) for i in late_index}
        for batch in (
            [
                i
                for i in infos
                if i and i["index_blocks"] and id(i) not in late_ids
            ],
            late_index,
        ):
            index_specs = []
            index_owner = []
            for info in batch:
                remaining = info["ndata"]
                for iptr in info["index_blocks"]:
                    take = min(per_index, remaining)
                    index_specs.append((iptr, 0, 8 * take))
                    index_owner.append((info, take))
                    remaining -= take
            if index_specs:
                iblobs = self.blocks.read_blocks(ctx, index_specs)
                for (info, take), iblob in zip(index_owner, iblobs):
                    info["data_blocks"].extend(
                        np.frombuffer(iblob, dtype="<i8", count=take).tolist()
                    )
        # Round 4: exact payload spans.
        span_specs: list[tuple[int, int, int]] = []
        span_owner: list[dict] = []
        for info in infos:
            if info is None:
                continue
            start, end = self._need_span(info)
            info["span"] = (start, end)
            info["pieces"] = []
            if end <= start:
                continue
            head_len = max(0, min(info["payload_len"], bs - info["pos"]))
            if start < head_len:
                take = min(end, head_len) - start
                span_specs.append((info["primary"], info["pos"] + start, take))
                span_owner.append(info)
            if end > head_len:
                lo = max(start, head_len) - head_len
                hi = end - head_len
                first = lo // bs
                last = (hi - 1) // bs
                for j in range(first, last + 1):
                    boff = max(lo - j * bs, 0)
                    bend = min(hi - j * bs, bs)
                    span_specs.append(
                        (info["data_blocks"][j], boff, bend - boff)
                    )
                    span_owner.append(info)
        if span_specs:
            sblobs = self.blocks.read_blocks(ctx, span_specs)
            for info, sblob in zip(span_owner, sblobs):
                info["pieces"].append(sblob)
        out: list[StoredHolder | None] = []
        for info in infos:
            if info is None:
                out.append(None)
                continue
            out.append(self._assemble_projected(ctx, info))
        return out

    @staticmethod
    def _need_span(info: dict) -> tuple[int, int]:
        """Payload byte range [start, end) covering the needed parts."""
        n = info["need"]
        if info["kind"] == KIND_EDGE:
            return 0, info["payload_len"]
        topo_len = SLOT_BYTES * info["edge_count"]
        want_topo = bool(n & NEED_TOPO)
        want_entries = bool(n & NEED_ENTRIES)
        if want_topo and want_entries:
            return 0, info["payload_len"]
        if want_topo:
            return 0, topo_len
        if want_entries:
            return topo_len, info["payload_len"]
        return 0, 0

    def _assemble_projected(
        self, ctx: RankContext, info: dict
    ) -> StoredHolder:
        start, end = info["span"]
        span = b"".join(info["pieces"])
        full = start == 0 and end == info["payload_len"]
        if full:
            # the CRC covers the whole payload; only verifiable here
            self._check_crc(ctx, info, span)
        if info["kind"] == KIND_EDGE:
            holder = self._parse_payload(
                info["kind"], info["flags"], info["edge_count"], span
            )
            holder.app_id = info["app_id"]
            parts = NEED_ALL
        else:
            topo_len = SLOT_BYTES * info["edge_count"]
            n = info["need"]
            slot_buf = span[: topo_len - start] if n & NEED_TOPO else None
            if n & NEED_ENTRIES:
                labels, props = decode_entries(span[topo_len - start :])
            else:
                labels = props = None
            holder = VertexHolder._from_wire(
                info["app_id"], labels, props, slot_buf
            )
            parts = NEED_IDENT | (n & (NEED_TOPO | NEED_ENTRIES))
        return StoredHolder(
            holder=holder,
            primary=info["primary"],
            data_blocks=info["data_blocks"],
            index_blocks=info["index_blocks"],
            parts=parts,
            version=info["version"],
        )

    # -- delete --------------------------------------------------------------------
    def delete(self, ctx: RankContext, stored: StoredHolder) -> None:
        """Release every block of the holder (primary last)."""
        self.delete_many(ctx, [stored])

    def delete_many(
        self, ctx: RankContext, stored_list: list[StoredHolder]
    ) -> None:
        """Release the blocks of many holders with one batched header clear.

        The header clears (which make stale reads fail loudly) coalesce
        into one non-blocking write batch completed by a single flush;
        the free-list releases stay scalar because each is a CAS chain on
        the owner's allocator head.
        """
        if not stored_list:
            return
        self.blocks.iwrite_blocks(
            ctx,
            [(s.primary, b"\x00" * HEADER_BYTES) for s in stored_list],
        )
        ctx.flush(self.blocks.data_win)
        for stored in stored_list:
            for dptr in stored.data_blocks:
                self.blocks.release_block(ctx, dptr)
            for dptr in stored.index_blocks:
                self.blocks.release_block(ctx, dptr)
            self.blocks.release_block(ctx, stored.primary)
            stored.data_blocks = []
            stored.index_blocks = []
