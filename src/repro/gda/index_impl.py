"""Vertex directory and explicit indexes (paper Sections 3.6, 5.2 D/E).

Two structures live here:

* :class:`VertexDirectory` — the sharded per-rank enumeration of vertex
  primary DPtrs.  Collective transactions (OLAP/OLSP) iterate "their
  local vertices" through it; it is also the enumeration source when an
  explicit index is built.
* :class:`ExplicitIndex` — a GDI explicit index: a DNF
  :class:`~repro.gdi.constraint.Constraint` plus per-rank posting sets of
  the vertices currently satisfying it.  Indexes are *eventually
  consistent* (Section 3.8): they are updated at transaction commit, so
  between a data commit and the index update a reader may observe a stale
  posting — GDI transactions re-validate against the data they fetch.

Substitution note (see DESIGN.md): the paper shards these structures over
RMA windows; here the shards are per-rank Python sets guarded by locks,
and every cross-rank update/read charges the equivalent one-sided message
cost to the calling rank's simulated clock, so scaling shapes are
unaffected.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from ..gdi.constraint import Constraint
from ..rma.runtime import RankContext
from .dptr import unpack_dptr

__all__ = ["VertexDirectory", "ExplicitIndex", "ExplicitEdgeIndex"]


def _charge_shard_access(ctx: RankContext, shard_rank: int, nbytes: int = 8) -> None:
    """Charge one one-sided message to reach a (possibly remote) shard.

    Stat sweeps that pull more than one 8-byte counter from a shard (the
    per-label histogram, multi-counter summaries) pass the *proportional*
    payload via ``nbytes`` instead of the flat single-counter default.
    """
    ctx.charge(ctx.rt.cost.onesided(ctx.rank, shard_rank, nbytes))


class VertexDirectory:
    """Sharded registry of all vertex primary DPtrs, one shard per rank.

    Alongside the raw vid sets, each shard maintains a per-label vertex
    *histogram* (label id → number of shard vertices carrying it), updated
    by transaction commits.  The histogram is the query planner's cheapest
    cardinality source: reading it costs one proportional-size message per
    shard instead of a data scan.
    """

    def __init__(self, nranks: int) -> None:
        self._shards: list[set[int]] = [set() for _ in range(nranks)]
        self._label_counts: list[dict[int, int]] = [
            {} for _ in range(nranks)
        ]
        #: per-label member vid sets, shard-local (label id -> vids); the
        #: query engine's LabelScan sweeps these instead of the full shard
        self._label_members: list[dict[int, set[int]]] = [
            {} for _ in range(nranks)
        ]
        self._locks = [threading.Lock() for _ in range(nranks)]
        #: bumped on every mutation; planners cache stats against it
        self.version = 0

    def _count_labels(
        self, rank: int, vid: int, labels: Iterable[int], delta: int
    ) -> None:
        counts = self._label_counts[rank]
        members = self._label_members[rank]
        for lid in set(labels):
            n = counts.get(lid, 0) + delta
            if n > 0:
                counts[lid] = n
            else:
                counts.pop(lid, None)
            if delta > 0:
                members.setdefault(lid, set()).add(vid)
            else:
                vids = members.get(lid)
                if vids is not None:
                    vids.discard(vid)
                    if not vids:
                        del members[lid]

    def add(
        self, ctx: RankContext, vid: int, labels: Iterable[int] = ()
    ) -> None:
        rank = unpack_dptr(vid).rank
        _charge_shard_access(ctx, rank)
        with self._locks[rank]:
            self._shards[rank].add(vid)
            self._count_labels(rank, vid, labels, +1)
            self.version += 1

    def remove(
        self, ctx: RankContext, vid: int, labels: Iterable[int] = ()
    ) -> None:
        rank = unpack_dptr(vid).rank
        _charge_shard_access(ctx, rank)
        with self._locks[rank]:
            self._shards[rank].discard(vid)
            self._count_labels(rank, vid, labels, -1)
            self.version += 1

    def update_labels(
        self,
        ctx: RankContext,
        vid: int,
        before: Iterable[int],
        after: Iterable[int],
    ) -> None:
        """Adjust the histogram after a commit changed a vertex's labels."""
        before, after = set(before), set(after)
        if before == after:
            return
        rank = unpack_dptr(vid).rank
        changed = before ^ after
        _charge_shard_access(ctx, rank, 8 * max(1, len(changed)))
        with self._locks[rank]:
            self._count_labels(rank, vid, before - after, -1)
            self._count_labels(rank, vid, after - before, +1)
            self.version += 1

    def contains(self, vid: int) -> bool:
        """Is ``vid`` registered (any shard)?  Control-path only: the
        crash-safe rebalance uses this as its per-vertex replay guard."""
        rank = unpack_dptr(vid).rank
        with self._locks[rank]:
            return vid in self._shards[rank]

    def local_vertices(self, ctx: RankContext) -> list[int]:
        """Snapshot of the vertices homed on the calling rank."""
        with self._locks[ctx.rank]:
            snap = list(self._shards[ctx.rank])
        ctx.compute(len(snap))
        return snap

    def shard_vertices(
        self, ctx: RankContext, shard: int, label_id: int | None = None
    ) -> list[int]:
        """Snapshot of one shard's vertices (degraded-mode iteration).

        After a failover the backup rank hosts both its own shard and the
        dead rank's; collectives that walk "local vertices" walk every
        *hosted* shard through this accessor instead.

        With ``label_id`` only the shard's vertices carrying that label
        are returned (the LabelScan access path), fetched with one
        message proportional to the member list instead of the full
        shard sweep.  Membership reflects committed label sets — like
        the histogram and explicit indexes it is eventually consistent,
        so callers re-validate against the holders they fetch.
        """
        if label_id is not None:
            with self._locks[shard]:
                snap = list(self._label_members[shard].get(label_id, ()))
            _charge_shard_access(ctx, shard, 8 * max(1, len(snap)))
            ctx.compute(len(snap))
            return snap
        _charge_shard_access(ctx, shard)
        with self._locks[shard]:
            snap = list(self._shards[shard])
        ctx.compute(len(snap))
        return snap

    def relocate(
        self,
        ctx: RankContext,
        old_vid: int,
        new_vid: int,
        labels: Iterable[int] = (),
    ) -> None:
        """Move one vertex's directory entry (and histogram) to its new shard."""
        labels = list(labels)
        self.remove(ctx, old_vid, labels=labels)
        self.add(ctx, new_vid, labels=labels)

    def count(self, ctx: RankContext, rank: int | None = None) -> int:
        """Vertex count of one shard, or of the whole database."""
        if rank is not None:
            _charge_shard_access(ctx, rank)
            with self._locks[rank]:
                return len(self._shards[rank])
        total = 0
        for r in range(len(self._shards)):
            _charge_shard_access(ctx, r)
            with self._locks[r]:
                total += len(self._shards[r])
        return total

    def label_histogram(self, ctx: RankContext) -> dict[int, int]:
        """Cluster-wide per-label vertex counts (label id → vertices).

        One message per shard, charged proportionally to the number of
        counters the shard returns — a stats sweep, not a data scan.
        """
        merged: dict[int, int] = {}
        for r in range(len(self._shards)):
            with self._locks[r]:
                part = dict(self._label_counts[r])
            _charge_shard_access(ctx, r, 8 * max(1, len(part)))
            for lid, n in part.items():
                merged[lid] = merged.get(lid, 0) + n
        return merged

    def label_count(self, ctx: RankContext, label_id: int) -> int:
        """Cluster-wide count of vertices carrying ``label_id``."""
        total = 0
        for r in range(len(self._shards)):
            _charge_shard_access(ctx, r)
            with self._locks[r]:
                total += self._label_counts[r].get(label_id, 0)
        return total


@dataclass
class ExplicitIndex:
    """A GDI explicit index over vertices satisfying a DNF constraint."""

    name: str
    constraint: Constraint
    nranks: int
    _shards: list[set[int]] = field(default_factory=list, repr=False)
    _locks: list[threading.Lock] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self._shards:
            self._shards = [set() for _ in range(self.nranks)]
            self._locks = [threading.Lock() for _ in range(self.nranks)]

    # -- maintenance (called by transaction commit) ------------------------
    def matches(self, holder, dtype_of) -> bool:
        return self.constraint.evaluate(
            holder.labels, holder.properties, dtype_of
        )

    def update_on_commit(
        self,
        ctx: RankContext,
        vid: int,
        matched_before: bool,
        matched_after: bool,
    ) -> None:
        if matched_before == matched_after:
            return
        rank = unpack_dptr(vid).rank
        _charge_shard_access(ctx, rank)
        with self._locks[rank]:
            if matched_after:
                self._shards[rank].add(vid)
            else:
                self._shards[rank].discard(vid)

    def bulk_add_local(self, ctx: RankContext, vids: Iterable[int]) -> int:
        """Index-build helper: add already-filtered local vertices."""
        added = 0
        with self._locks[ctx.rank]:
            for vid in vids:
                self._shards[ctx.rank].add(vid)
                added += 1
        return added

    def relocate(self, ctx: RankContext, old_vid: int, new_vid: int) -> None:
        """Rewrite a posting after its vertex moved to another rank."""
        old_rank = unpack_dptr(old_vid).rank
        with self._locks[old_rank]:
            present = old_vid in self._shards[old_rank]
            self._shards[old_rank].discard(old_vid)
        if present:
            new_rank = unpack_dptr(new_vid).rank
            _charge_shard_access(ctx, new_rank)
            with self._locks[new_rank]:
                self._shards[new_rank].add(new_vid)

    # -- queries ------------------------------------------------------------
    def local_vertices(self, ctx: RankContext) -> list[int]:
        """``GDI_GetLocalVerticesOfIndex``: this rank's posting list."""
        with self._locks[ctx.rank]:
            snap = list(self._shards[ctx.rank])
        ctx.compute(len(snap))
        return snap

    def shard_vertices(self, ctx: RankContext, shard: int) -> list[int]:
        """One shard's posting list, fetched with a proportional message.

        Single-process (non-collective) index scans sweep every shard
        through this accessor; a remote posting list of *n* vids costs one
        message of ``8 n`` bytes, not a data scan.
        """
        with self._locks[shard]:
            snap = list(self._shards[shard])
        _charge_shard_access(ctx, shard, 8 * max(1, len(snap)))
        ctx.compute(len(snap))
        return snap

    def count(self, ctx: RankContext) -> int:
        """Cluster-wide posting count: the planner's index cardinality."""
        total = 0
        for r in range(self.nranks):
            _charge_shard_access(ctx, r)
            with self._locks[r]:
                total += len(self._shards[r])
        return total


@dataclass
class ExplicitEdgeIndex:
    """A GDI explicit index over edges satisfying a DNF constraint.

    Edge UIDs are volatile (Section 3.4): slot offsets shift when holders
    are rewritten, so the index stores the *source vertices* that carry at
    least one matching edge; :meth:`local_edges` re-resolves the matching
    edge handles inside the caller's transaction.  Maintenance happens at
    commit, like vertex indexes (eventual consistency, Section 3.8).
    """

    name: str
    constraint: Constraint
    nranks: int
    _shards: list[set[int]] = field(default_factory=list, repr=False)
    _locks: list[threading.Lock] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self._shards:
            self._shards = [set() for _ in range(self.nranks)]
            self._locks = [threading.Lock() for _ in range(self.nranks)]

    def source_matches(self, tx, txv) -> bool:
        """Does any edge slot of this vertex satisfy the constraint?"""
        from .transaction_impl import EdgeHandle

        for slot in txv.holder.edges:
            if EdgeHandle(tx, txv, slot)._satisfies(self.constraint):
                return True
        return False

    def update_on_commit(
        self,
        ctx: RankContext,
        vid: int,
        matched_before: bool,
        matched_after: bool,
    ) -> None:
        if matched_before == matched_after:
            return
        rank = unpack_dptr(vid).rank
        _charge_shard_access(ctx, rank)
        with self._locks[rank]:
            if matched_after:
                self._shards[rank].add(vid)
            else:
                self._shards[rank].discard(vid)

    def bulk_add_local(self, ctx: RankContext, vids) -> int:
        added = 0
        with self._locks[ctx.rank]:
            for vid in vids:
                self._shards[ctx.rank].add(vid)
                added += 1
        return added

    def relocate(self, ctx: RankContext, old_vid: int, new_vid: int) -> None:
        """Rewrite a posting after its source vertex moved."""
        old_rank = unpack_dptr(old_vid).rank
        with self._locks[old_rank]:
            present = old_vid in self._shards[old_rank]
            self._shards[old_rank].discard(old_vid)
        if present:
            new_rank = unpack_dptr(new_vid).rank
            _charge_shard_access(ctx, new_rank)
            with self._locks[new_rank]:
                self._shards[new_rank].add(new_vid)

    def local_source_vertices(self, ctx: RankContext) -> list[int]:
        with self._locks[ctx.rank]:
            snap = list(self._shards[ctx.rank])
        ctx.compute(len(snap))
        return snap

    def shard_source_vertices(self, ctx: RankContext, shard: int) -> list[int]:
        """One shard's source-vertex postings (proportional message)."""
        with self._locks[shard]:
            snap = list(self._shards[shard])
        _charge_shard_access(ctx, shard, 8 * max(1, len(snap)))
        ctx.compute(len(snap))
        return snap

    def local_edges(self, ctx: RankContext, tx) -> list:
        """Matching edge handles on this rank, resolved inside ``tx``."""
        out = []
        for vid in self.local_source_vertices(ctx):
            v = tx.associate_vertex(vid)
            out.extend(v.edges(constraint=self.constraint))
        return out

    def count_sources(self, ctx: RankContext) -> int:
        """Cluster-wide source count: the planner's edge-index cardinality."""
        total = 0
        for r in range(self.nranks):
            _charge_shard_access(ctx, r)
            with self._locks[r]:
                total += len(self._shards[r])
        return total
