"""Scalable reader-writer locks for ACI (paper Section 5.6).

One 64-bit lock word per vertex, located in the BGDL *system* window at the
offset corresponding to the vertex's primary block.  The word packs a write
bit and a reader counter:

* bit 62 — write bit (a process holds the write lock),
* bits 0..61 — reader count.

Acquisition is try-lock style with bounded retries: GDA transactions that
cannot obtain a lock fail (the paper reports failed-transaction percentages
rather than blocking forever), and the GDI user starts a new transaction.
Between attempts the contender backs off with a seeded exponential delay
charged to its simulated clock (``ctx.charge``), so retries neither spin
back-to-back (which would inflate CAS contention) nor come free in the
cost model.  ``backoff_base = 0`` disables the backoff.

Protocol (all via remote atomics, two network ops worst case per attempt):

* **read acquire** — FAA(+1); if the fetched word had the write bit set,
  FAA(-1) to back out and retry.
* **write acquire** — CAS(0 → WRITE_BIT); succeeds only with no readers
  and no writer.
* **upgrade read→write** — CAS(1 → WRITE_BIT): we are the sole reader and
  atomically become the writer.
* **releases** — FAA(-1) / CAS(WRITE_BIT → 0).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..rma.faults import backoff_delay
from ..rma.runtime import RankContext
from ..rma.window import Window

__all__ = [
    "RWLock",
    "LockTimeout",
    "LockRegistry",
    "WRITE_BIT",
    "acquire_read_batch",
    "acquire_write_batch",
    "upgrade_batch",
    "release_batch",
]

WRITE_BIT = 1 << 62


class LockTimeout(RuntimeError):
    """Raised when a lock cannot be obtained within the retry budget.

    Transactions translate this into a transaction-critical error and
    abort, which is what produces the "failed transactions" percentages in
    the paper's Figure 4.
    """


@dataclass
class RWLock:
    """A distributed reader-writer lock at a fixed (window, rank, offset).

    The object is a cheap addressing handle; all state is the remote word.
    """

    window: Window
    rank: int
    offset: int
    max_retries: int = 64
    #: seeded exponential backoff between attempts (0 = spin, the
    #: pre-backoff behaviour kept for unit tests exercising raw retries)
    backoff_base: float = 0.0
    backoff_cap: float = 20e-6
    seed: int = 0

    def _backoff(self, ctx: RankContext, attempt: int) -> None:
        """Charge one seeded backoff delay between lock attempts.

        Pure simulated time — no extra one-sided operations, so the
        work-depth guarantees of the lock protocol are unchanged.
        """
        if self.backoff_base <= 0.0:
            return
        delay = backoff_delay(
            self.backoff_base,
            attempt,
            cap=self.backoff_cap,
            seed=self.seed,
            token=(self.rank << 32) ^ self.offset ^ (ctx.rank << 8),
        )
        ctx.charge(delay)
        ctx.rt.trace.record_backoff(ctx.rank, delay)

    # -- read side --------------------------------------------------------
    def acquire_read(self, ctx: RankContext) -> None:
        for attempt in range(self.max_retries):
            old = ctx.faa(self.window, self.rank, self.offset, 1)
            if not old & WRITE_BIT:
                return
            ctx.faa(self.window, self.rank, self.offset, -1)  # back out
            ctx.rt.trace.record_lock_conflict(ctx.rank, self.rank)
            if attempt + 1 < self.max_retries:
                self._backoff(ctx, attempt)
        raise LockTimeout(
            f"read lock at rank {self.rank} offset {self.offset} busy"
        )

    def release_read(self, ctx: RankContext) -> None:
        old = ctx.faa(self.window, self.rank, self.offset, -1)
        if old & WRITE_BIT or (old & ~WRITE_BIT) <= 0:
            raise RuntimeError("release_read without a held read lock")

    # -- write side -------------------------------------------------------
    def acquire_write(self, ctx: RankContext) -> None:
        for attempt in range(self.max_retries):
            if ctx.cas(self.window, self.rank, self.offset, 0, WRITE_BIT) == 0:
                return
            ctx.rt.trace.record_lock_conflict(ctx.rank, self.rank)
            if attempt + 1 < self.max_retries:
                self._backoff(ctx, attempt)
        raise LockTimeout(
            f"write lock at rank {self.rank} offset {self.offset} busy"
        )

    def release_write(self, ctx: RankContext) -> None:
        # FAA, not CAS: while we hold the write bit, readers may be
        # mid-backoff (their transient +1/-1 pairs race with the release),
        # so the word is WRITE_BIT plus a small transient reader count.
        old = ctx.faa(self.window, self.rank, self.offset, -WRITE_BIT)
        if not old & WRITE_BIT:
            ctx.faa(self.window, self.rank, self.offset, WRITE_BIT)  # undo
            raise RuntimeError("release_write without the write lock held")

    # -- upgrade / downgrade -----------------------------------------------
    def upgrade(self, ctx: RankContext) -> None:
        """Atomically turn a held read lock into the write lock.

        Succeeds only while we are the sole reader; under contention the
        caller's transaction must abort (lock-order-free deadlock
        avoidance).
        """
        for attempt in range(self.max_retries):
            if ctx.cas(self.window, self.rank, self.offset, 1, WRITE_BIT) == 1:
                return
            ctx.rt.trace.record_lock_conflict(ctx.rank, self.rank)
            if attempt + 1 < self.max_retries:
                self._backoff(ctx, attempt)
        raise LockTimeout(
            f"upgrade at rank {self.rank} offset {self.offset} failed "
            "(concurrent readers or writer)"
        )

    def downgrade(self, ctx: RankContext) -> None:
        """Turn the held write lock into a read lock without a gap."""
        old = ctx.faa(self.window, self.rank, self.offset, 1 - WRITE_BIT)
        if not old & WRITE_BIT:
            ctx.faa(self.window, self.rank, self.offset, WRITE_BIT - 1)  # undo
            raise RuntimeError("downgrade without the write lock held")

    # -- introspection -----------------------------------------------------
    def peek(self, ctx: RankContext) -> tuple[bool, int]:
        """(write bit set?, reader count) — diagnostics and tests only."""
        word = ctx.aget(self.window, self.rank, self.offset)
        return bool(word & WRITE_BIT), word & ~WRITE_BIT


def acquire_read_batch(ctx: RankContext, locks: list[RWLock]) -> None:
    """Acquire read locks on all ``locks`` with batched FAAs.

    The optimistic +1 FAAs for the whole vector ride one doorbell batch
    (one full atomic round per distinct target NIC); words found with the
    write bit set are backed out in a second batch, then retried through
    the scalar bounded-retry path.  On :class:`LockTimeout` every lock
    acquired by this call has been released; locks the caller already
    held are untouched.
    """
    if not locks:
        return
    if len(locks) == 1:
        locks[0].acquire_read(ctx)
        return
    wins = {id(lk.window) for lk in locks}
    if len(wins) != 1:
        for lk in locks:
            lk.acquire_read(ctx)
        return
    win = locks[0].window
    olds = ctx.faa_batch(
        win, [(lk.rank, lk.offset, 1) for lk in locks]
    )
    contended = [lk for lk, old in zip(locks, olds) if old & WRITE_BIT]
    if not contended:
        return
    # back the failed increments out in one batch, then retry each
    # contended word through the scalar path (per-lock backoff budget).
    ctx.faa_batch(win, [(lk.rank, lk.offset, -1) for lk in contended])
    held = [lk for lk, old in zip(locks, olds) if not old & WRITE_BIT]
    try:
        for lk in contended:
            lk.acquire_read(ctx)
            held.append(lk)
    except LockTimeout:
        if held:
            ctx.faa_batch(win, [(lk.rank, lk.offset, -1) for lk in held])
        raise


def acquire_write_batch(ctx: RankContext, locks: list[RWLock]) -> None:
    """Acquire write locks on all ``locks`` with batched CASes.

    Mirrors :func:`acquire_read_batch`: one optimistic CAS(0→WRITE_BIT)
    batch, scalar retries for contended words, all-or-nothing cleanup on
    timeout.
    """
    if not locks:
        return
    if len(locks) == 1:
        locks[0].acquire_write(ctx)
        return
    wins = {id(lk.window) for lk in locks}
    if len(wins) != 1:
        for lk in locks:
            lk.acquire_write(ctx)
        return
    win = locks[0].window
    olds = ctx.cas_batch(
        win, [(lk.rank, lk.offset, 0, WRITE_BIT) for lk in locks]
    )
    held = [lk for lk, old in zip(locks, olds) if old == 0]
    contended = [lk for lk, old in zip(locks, olds) if old != 0]
    try:
        for lk in contended:
            lk.acquire_write(ctx)
            held.append(lk)
    except LockTimeout:
        if held:
            ctx.faa_batch(
                win, [(lk.rank, lk.offset, -WRITE_BIT) for lk in held]
            )
        raise


def upgrade_batch(ctx: RankContext, locks: list[RWLock]) -> None:
    """Upgrade held read locks to write locks with batched CASes.

    One optimistic CAS(1→WRITE_BIT) batch, scalar bounded retries for
    contended words.  All-or-nothing: on :class:`LockTimeout` every lock
    this call upgraded is downgraded back to a read lock (gap-free FAA)
    before re-raising, so the caller still holds exactly its read locks.
    """
    if not locks:
        return
    if len(locks) == 1:
        locks[0].upgrade(ctx)
        return
    wins = {id(lk.window) for lk in locks}
    if len(wins) != 1:
        for lk in locks:
            lk.upgrade(ctx)
        return
    win = locks[0].window
    olds = ctx.cas_batch(
        win, [(lk.rank, lk.offset, 1, WRITE_BIT) for lk in locks]
    )
    upgraded = [lk for lk, old in zip(locks, olds) if old == 1]
    contended = [lk for lk, old in zip(locks, olds) if old != 1]
    try:
        for lk in contended:
            lk.upgrade(ctx)
            upgraded.append(lk)
    except LockTimeout:
        if upgraded:
            ctx.faa_batch(
                win,
                [(lk.rank, lk.offset, 1 - WRITE_BIT) for lk in upgraded],
            )
        raise


def release_batch(
    ctx: RankContext, locks: list[tuple[RWLock, bool]]
) -> None:
    """Release a mixed vector of ``(lock, is_write)`` in one FAA batch.

    Both release directions are FAAs (see :meth:`RWLock.release_write`
    for why the write release is not a CAS), so the whole vector rides
    one batched atomic round.  The scalar paths' held-lock sanity checks
    are preserved per element.
    """
    if not locks:
        return
    if len(locks) == 1:
        lk, is_write = locks[0]
        (lk.release_write if is_write else lk.release_read)(ctx)
        return
    wins = {id(lk.window) for lk, _ in locks}
    if len(wins) != 1:
        for lk, is_write in locks:
            (lk.release_write if is_write else lk.release_read)(ctx)
        return
    win = locks[0][0].window
    olds = ctx.faa_batch(
        win,
        [
            (lk.rank, lk.offset, -WRITE_BIT if is_write else -1)
            for lk, is_write in locks
        ],
    )
    for (lk, is_write), old in zip(locks, olds):
        if is_write:
            if not old & WRITE_BIT:
                ctx.faa(win, lk.rank, lk.offset, WRITE_BIT)  # undo
                raise RuntimeError(
                    "release_write without the write lock held"
                )
        elif old & WRITE_BIT or (old & ~WRITE_BIT) <= 0:
            raise RuntimeError("release_read without a held read lock")


class LockRegistry:
    """Per-owner bookkeeping of currently held lock words (failover aid).

    The lock word itself carries no owner identity (a reader count and a
    write bit), so when a rank crashes nobody can tell from the word alone
    which +1s and write bits the dead rank will never release.  The
    registry records, Python-side, which ``(rank, offset)`` words each
    owner rank currently holds and in which mode; the failover healer uses
    :meth:`purge` to FAA the dead rank's contributions back out, restoring
    invariant 5 (all lock words zero at quiescence).

    This is the repository's established substitution idiom for structures
    the paper keeps in NIC-accessible memory but whose content is only
    consulted on the control path (compare ``VertexDirectory``): the data
    plane is untouched, only crash cleanup consults the registry.
    """

    #: lock modes mirrored from the transaction layer
    READ = 1
    WRITE = 2

    def __init__(self) -> None:
        self._held: dict[int, dict[tuple[int, int], int]] = {}
        self._mu = threading.Lock()

    def note_acquire(self, owner: int, rank: int, offset: int, mode: int) -> None:
        with self._mu:
            self._held.setdefault(owner, {})[(rank, offset)] = mode

    def note_release(self, owner: int, rank: int, offset: int) -> None:
        with self._mu:
            locks = self._held.get(owner)
            if locks is not None:
                locks.pop((rank, offset), None)

    def purge(self, owner: int) -> list[tuple[int, int, int]]:
        """Remove and return ``(rank, offset, mode)`` for all locks held by
        ``owner`` (used once when ``owner`` is declared dead)."""
        with self._mu:
            locks = self._held.pop(owner, {})
        return [(r, o, m) for (r, o), m in locks.items()]

    def held_by(self, owner: int) -> list[tuple[int, int, int]]:
        with self._mu:
            locks = self._held.get(owner, {})
            return [(r, o, m) for (r, o), m in locks.items()]
