"""Replicated graph metadata: labels and property types (Section 5.8).

Because |L| and |K| are tiny compared to |V|, GDA *replicates* metadata on
every process instead of sharding it.  Each replica keeps a doubly linked
list (O(1) add/remove given the handle) plus hash maps by name and by
integer ID (O(1) existence checks) — the exact structure the paper
describes.

Consistency (Section 3.8): metadata is *eventually consistent*.  Here a
single authoritative :class:`MetadataStore` (the role played by agreed-on
metadata broadcasts in the real system) assigns integer IDs and appends
change records to a log; each rank's :class:`MetadataReplica` applies the
log lazily via :meth:`MetadataReplica.sync` — GDA calls it when
transactions start.  A transaction that encounters an integer ID its
replica has not yet applied raises
:class:`~repro.gdi.errors.GdiStaleMetadata` and aborts, which is exactly
the detect-and-abort behaviour the spec requires.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterator

from ..gdi.constants import EntityType, Multiplicity, SizeType
from ..gdi.errors import GdiInvalidArgument, GdiNotFound, GdiStaleMetadata
from ..gdi.types import Datatype
from .entries import FIRST_PTYPE_ID

__all__ = [
    "Label",
    "PropertyType",
    "MetadataStore",
    "MetadataReplica",
    "LinkedRegistry",
]


@dataclass(frozen=True)
class Label:
    """A label: name + the integer ID stored in holder entry streams."""

    name: str
    int_id: int


@dataclass(frozen=True)
class PropertyType:
    """A property type with the optional hints of Section 3.7."""

    name: str
    int_id: int
    entity_type: EntityType = EntityType.BOTH
    dtype: Datatype = Datatype.BYTES
    size_type: SizeType = SizeType.UNBOUNDED
    size_limit: int = 0  # elements; meaningful for FIXED/MAX
    multiplicity: Multiplicity = Multiplicity.SINGLE


class _Node:
    __slots__ = ("item", "prev", "next")

    def __init__(self, item) -> None:
        self.item = item
        self.prev: "_Node | None" = None
        self.next: "_Node | None" = None


class LinkedRegistry:
    """Doubly linked list + hash maps, as prescribed by Section 5.8.

    The list yields O(1) insertion/removal given the handle (the node);
    the maps give O(1) lookup by name and by integer ID.  (A Python dict
    alone would suffice functionally; the explicit structure mirrors the
    paper's design and keeps removal-by-handle O(1) under iteration.)
    """

    def __init__(self) -> None:
        self._head: _Node | None = None
        self._tail: _Node | None = None
        self._by_name: dict[str, _Node] = {}
        self._by_id: dict[int, _Node] = {}

    def add(self, item) -> None:
        if item.name in self._by_name:
            raise GdiInvalidArgument(f"metadata name {item.name!r} exists")
        node = _Node(item)
        node.prev = self._tail
        if self._tail is not None:
            self._tail.next = node
        else:
            self._head = node
        self._tail = node
        self._by_name[item.name] = node
        self._by_id[item.int_id] = node

    def remove_by_id(self, int_id: int) -> None:
        node = self._by_id.pop(int_id, None)
        if node is None:
            raise GdiNotFound(f"metadata integer ID {int_id} unknown")
        del self._by_name[node.item.name]
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev

    def by_name(self, name: str):
        node = self._by_name.get(name)
        return None if node is None else node.item

    def by_id(self, int_id: int):
        node = self._by_id.get(int_id)
        return None if node is None else node.item

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator:
        node = self._head
        while node is not None:
            yield node.item
            node = node.next


@dataclass
class _Record:
    """One metadata change in the global log."""

    kind: str  # "label" | "ptype" | "drop_label" | "drop_ptype"
    item: object


class MetadataStore:
    """Authoritative metadata state + append-only change log.

    Thread-safe; exactly one instance per database, shared by all ranks.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._log: list[_Record] = []
        self._names_labels: set[str] = set()
        self._names_ptypes: set[str] = set()
        self._live_label_ids: set[int] = set()
        self._live_ptype_ids: set[int] = set()
        self._next_label_id = 1
        self._next_ptype_id = FIRST_PTYPE_ID

    @property
    def version(self) -> int:
        return len(self._log)

    def create_label(self, name: str) -> Label:
        if not name:
            raise GdiInvalidArgument("label name must be non-empty")
        with self._lock:
            if name in self._names_labels:
                raise GdiInvalidArgument(f"label {name!r} already exists")
            label = Label(name=name, int_id=self._next_label_id)
            self._next_label_id += 1
            self._names_labels.add(name)
            self._live_label_ids.add(label.int_id)
            self._log.append(_Record("label", label))
            return label

    def create_property_type(
        self,
        name: str,
        *,
        entity_type: EntityType = EntityType.BOTH,
        dtype: Datatype = Datatype.BYTES,
        size_type: SizeType = SizeType.UNBOUNDED,
        size_limit: int = 0,
        multiplicity: Multiplicity = Multiplicity.SINGLE,
    ) -> PropertyType:
        if not name:
            raise GdiInvalidArgument("property-type name must be non-empty")
        if size_type in (SizeType.FIXED, SizeType.MAX) and size_limit <= 0:
            raise GdiInvalidArgument(
                "FIXED/MAX size types require a positive size_limit"
            )
        with self._lock:
            if name in self._names_ptypes:
                raise GdiInvalidArgument(
                    f"property type {name!r} already exists"
                )
            ptype = PropertyType(
                name=name,
                int_id=self._next_ptype_id,
                entity_type=entity_type,
                dtype=dtype,
                size_type=size_type,
                size_limit=size_limit,
                multiplicity=multiplicity,
            )
            self._next_ptype_id += 1
            self._names_ptypes.add(name)
            self._live_ptype_ids.add(ptype.int_id)
            self._log.append(_Record("ptype", ptype))
            return ptype

    def drop_label(self, int_id: int) -> None:
        with self._lock:
            if int_id not in self._live_label_ids:
                raise GdiNotFound(f"label ID {int_id} unknown")
            self._live_label_ids.discard(int_id)
            for rec in self._log:
                if rec.kind == "label" and rec.item.int_id == int_id:
                    self._names_labels.discard(rec.item.name)
            self._log.append(_Record("drop_label", int_id))

    def drop_property_type(self, int_id: int) -> None:
        with self._lock:
            if int_id not in self._live_ptype_ids:
                raise GdiNotFound(f"property-type ID {int_id} unknown")
            self._live_ptype_ids.discard(int_id)
            for rec in self._log:
                if rec.kind == "ptype" and rec.item.int_id == int_id:
                    self._names_ptypes.discard(rec.item.name)
            self._log.append(_Record("drop_ptype", int_id))

    def records_since(self, version: int) -> list[_Record]:
        with self._lock:
            return self._log[version:]


class MetadataReplica:
    """One rank's replicated view: linked lists + hash maps, lazily synced."""

    def __init__(self, store: MetadataStore) -> None:
        self._store = store
        self.version = 0
        self.labels = LinkedRegistry()
        self.ptypes = LinkedRegistry()

    def sync(self) -> int:
        """Apply all outstanding log records; returns #records applied."""
        records = self._store.records_since(self.version)
        for rec in records:
            if rec.kind == "label":
                self.labels.add(rec.item)
            elif rec.kind == "ptype":
                self.ptypes.add(rec.item)
            elif rec.kind == "drop_label":
                self.labels.remove_by_id(rec.item)
            elif rec.kind == "drop_ptype":
                self.ptypes.remove_by_id(rec.item)
        self.version += len(records)
        return len(records)

    # -- lookups used by transactions (stale IDs abort) ---------------------
    def label_by_id(self, int_id: int) -> Label:
        item = self.labels.by_id(int_id)
        if item is None:
            raise GdiStaleMetadata(
                f"label ID {int_id} not (yet) known to this process"
            )
        return item

    def ptype_by_id(self, int_id: int) -> PropertyType:
        item = self.ptypes.by_id(int_id)
        if item is None:
            raise GdiStaleMetadata(
                f"property-type ID {int_id} not (yet) known to this process"
            )
        return item

    def dtype_of(self, ptype_id: int) -> Datatype:
        return self.ptype_by_id(ptype_id).dtype
