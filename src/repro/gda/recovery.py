"""Crash recovery: per-rank commit log, checkpoints, and replay.

The paper's system is fully in-memory; durability of committed data comes
from checkpointing the distributed state plus an in-memory commit log for
the tail (Section 3.3 discusses the ACID "D" as an implementation
choice).  This module provides the machinery the rank-crash fault model
(:mod:`repro.rma.faults`) is recovered with:

* :class:`CommitLog` — a global, thread-safe, totally ordered log of
  commit records.  Every committing write transaction appends one record
  *while still holding its write locks*, so the sequence order is a valid
  serialization order of the committed transactions.
* :class:`Checkpoint` / :func:`take_checkpoint` — a consistent snapshot
  (:func:`repro.gda.checkpoint.snapshot`) paired with the commit-log
  position at capture time.
* :func:`recover` — a collective that rebuilds a database into a fresh
  (post-crash) runtime: restore the checkpoint, then replay the log tail
  record by record through ordinary write transactions.  After recovery,
  ``snapshot(recovered)`` equals the snapshot of a fault-free twin that
  executed the same committed transactions, and
  :func:`repro.gda.consistency.check_consistency` passes.

Replay entry vocabulary (everything is identified by *application* IDs and
metadata *names*, never internal DPtrs, which differ after restore):

=====================  ==============================================
``("del_v", app)``                      delete vertex + incident edges
``("new_v", app, labels, props)``       create vertex (post-image)
``("upd_v", app, labels, props)``       replace labels/props (post-image)
``("edge+", src, dst, directed, lbl)``  add a lightweight edge
``("edge-", src, dst, directed, lbl)``  remove a lightweight edge
``("hedge+", src, dst, directed, labels, props)``  add a heavy edge
``("hedge-", src, dst, directed)``      remove a heavy edge
``("hedge*", src, dst, directed, labels, props)``  heavy edge post-image
=====================  ==============================================

Known limitation: labels and property types referenced by the tail must
already exist at checkpoint time (metadata changes are eventually
consistent and not logged); replay creates missing *labels* on demand but
cannot reconstruct full property-type specifications.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from ..gdi.errors import GdiNotFound, GdiStateError
from ..rma.runtime import RankContext
from .holder import DIR_IN, DIR_OUT, DIR_UNDIR

if TYPE_CHECKING:  # pragma: no cover
    from .database_impl import GdaDatabase

__all__ = [
    "CommitRecord",
    "CommitLog",
    "Checkpoint",
    "take_checkpoint",
    "recover",
    "replay_entries_idempotent",
]


@dataclass(frozen=True)
class CommitRecord:
    """One committed write transaction's replayable effect."""

    seq: int  # global sequence number (serialization order)
    rank: int  # committing rank (diagnostics only)
    entries: tuple  # replay entries, see module docstring


class CommitLog:
    """Thread-safe, totally ordered in-memory commit log."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[CommitRecord] = []

    def append(self, rank: int, entries: tuple) -> int:
        """Append one record; returns its sequence number.

        Callers must still hold the transaction's write locks so that the
        assigned sequence order is a valid serialization order.
        """
        with self._lock:
            seq = len(self._records)
            self._records.append(CommitRecord(seq=seq, rank=rank, entries=entries))
            return seq

    def mark_aborted(self, seq: int) -> None:
        """Tombstone a record whose commit failed after the log append.

        The log-first commit protocol (replication) appends the record
        *before* applying the writes; when the apply then fails (fenced
        mid-commit by a failover, lock trouble, out of memory) the
        transaction aborts and its record must not replay.  The record is
        replaced by an empty tombstone so sequence numbers stay stable.
        """
        with self._lock:
            old = self._records[seq]
            self._records[seq] = CommitRecord(
                seq=seq, rank=old.rank, entries=()
            )

    def position(self) -> int:
        """Current log length; records with ``seq >= position`` come later."""
        with self._lock:
            return len(self._records)

    def tail(self, since: int) -> list[CommitRecord]:
        """All records appended at or after position ``since``, in order."""
        with self._lock:
            return list(self._records[since:])

    def __len__(self) -> int:
        return self.position()

    def __iter__(self) -> Iterator[CommitRecord]:
        return iter(self.tail(0))


@dataclass(frozen=True)
class Checkpoint:
    """A consistent snapshot plus the commit-log position it covers."""

    snap: dict[str, Any]
    log_pos: int


def take_checkpoint(ctx: RankContext, db: "GdaDatabase") -> Checkpoint:
    """Collectively capture a checkpoint of a quiescent database.

    Must be called with no transactions open anywhere (quiescence), like
    :func:`repro.gda.checkpoint.snapshot` itself.
    """
    from .checkpoint import snapshot

    # The log position must be read while no rank can be committing: after
    # the entry barrier every rank is inside this call, and none can leave
    # (and resume mutating) before the snapshot's final rendezvous — which
    # it only reaches after every position read below.  Reading the
    # position *after* the snapshot instead would race: peers exit the
    # snapshot's last collective and may commit again before this rank's
    # (unscheduled, pure-Python) position read, silently advancing log_pos
    # past the captured state.
    ctx.barrier()
    pos = db.commit_log.position()
    snap = snapshot(ctx, db)
    if db.mvcc is not None and ctx.rank == 0:
        # quiescent point: no open snapshots can pin the GC floor, so a
        # checkpoint doubles as a full version-chain reclamation pass
        db.mvcc.collect(ctx)
    return Checkpoint(snap=snap, log_pos=pos)


def recover(
    ctx: RankContext,
    db: "GdaDatabase",
    checkpoint: Checkpoint,
    commit_log: CommitLog,
    parallel: bool = False,
) -> dict[int, int]:
    """Collectively rebuild ``checkpoint`` + the log tail into empty ``db``.

    ``db`` is a fresh database in a fresh (post-crash) runtime;
    ``commit_log`` is the surviving log of the crashed instance.  The
    checkpoint is restored first, then the tail replays, one ordinary
    write transaction per commit record (the sequence order is a
    serialization order, so sequential replay reproduces the committed
    state).  Returns the application-ID -> internal-ID map of the
    restored vertices.

    With ``parallel=True`` the tail is greedily grouped into batches of
    records with pairwise-disjoint write sets (the application IDs each
    record locks); records inside a batch replay concurrently across the
    ranks, with a barrier between batches to preserve the serialization
    order across conflicting records.  Vertex deletions lock their (only
    dynamically known) neighbor set, so a record containing ``del_v``
    forms a batch of its own.  The result is identical to sequential
    replay: within a batch no record reads or writes another's vertices,
    so any interleaving commutes.
    """
    from .checkpoint import restore

    vid_map = restore(ctx, db, checkpoint.snap)
    tail = [rec for rec in commit_log.tail(checkpoint.log_pos) if rec.entries]
    if not parallel:
        if ctx.rank == 0:
            for rec in tail:
                _replay_record(ctx, db, rec)
        ctx.barrier()
        return vid_map
    # Pre-create every label the tail references (rank 0, before fanning
    # out) so concurrent replayers never race label creation.
    if ctx.rank == 0:
        replica = db.replica(ctx)
        replica.sync()
        known = {l.name for l in replica.labels}
        for name in _tail_label_names(tail):
            if name not in known:
                db.create_label(ctx, name)
                known.add(name)
    ctx.barrier()
    for batch in _conflict_free_batches(tail):
        for j, rec in enumerate(batch):
            if j % ctx.nranks == ctx.rank:
                _replay_record(ctx, db, rec)
        ctx.barrier()
    return vid_map


def _record_write_set(rec: CommitRecord) -> "set[int] | None":
    """Application IDs a record's replay locks; None = unbounded (del_v)."""
    apps: set[int] = set()
    for e in rec.entries:
        if e[0] == "del_v":
            return None  # locks every (dynamically known) neighbor too
        if e[0] in ("new_v", "upd_v"):
            apps.add(e[1])
        else:  # edge+/edge-/hedge+/hedge-/hedge*: locks both endpoints
            apps.add(e[1])
            apps.add(e[2])
    return apps


def _conflict_free_batches(
    tail: "list[CommitRecord]",
) -> "list[list[CommitRecord]]":
    """Greedy in-order grouping into batches with disjoint write sets.

    Pure function of the tail, so every rank computes the same batches.
    """
    batches: list[list[CommitRecord]] = []
    current: list[CommitRecord] = []
    busy: set[int] = set()
    for rec in tail:
        ws = _record_write_set(rec)
        if ws is None:  # del_v: unbounded write set, isolate the record
            if current:
                batches.append(current)
            batches.append([rec])
            current, busy = [], set()
            continue
        if busy & ws:
            batches.append(current)
            current, busy = [], set()
        current.append(rec)
        busy |= ws
    if current:
        batches.append(current)
    return batches


def _tail_label_names(tail: "list[CommitRecord]") -> "set[str]":
    names: set[str] = set()
    for rec in tail:
        for e in rec.entries:
            kind = e[0]
            if kind in ("new_v", "upd_v"):
                names.update(e[2])
            elif kind in ("edge+", "edge-"):
                if e[4]:
                    names.add(e[4])
            elif kind in ("hedge+", "hedge*"):
                names.update(e[4])
    return names


# -- replay ----------------------------------------------------------------
def _replay_record(ctx: RankContext, db: "GdaDatabase", rec: CommitRecord) -> None:
    replica = db.replica(ctx)
    replica.sync()
    label_by_name = {l.name: l for l in replica.labels}
    ptype_by_name = {p.name: p for p in replica.ptypes}

    def label_of(name: str):
        if name not in label_by_name:
            label_by_name[name] = db.create_label(ctx, name)
        return label_by_name[name]

    tx = db.start_transaction(ctx, write=True)
    try:
        for entry in rec.entries:
            _apply_entry(tx, entry, label_of, ptype_by_name)
        tx.commit()
    except BaseException:
        if tx.open:
            tx.abort()
        raise


def _apply_entry(tx, entry: tuple, label_of, ptype_by_name) -> None:
    kind = entry[0]
    if kind == "del_v":
        h = tx.find_vertex(entry[1])
        if h is None:
            raise GdiStateError(f"replay del_v: vertex {entry[1]} missing")
        tx.delete_vertex(h)
    elif kind in ("new_v", "upd_v"):
        _, app, label_names, props = entry
        if kind == "new_v":
            h = tx.create_vertex(app)
            holder = h._txv.holder
        else:
            h = tx.find_vertex(app)
            if h is None:
                raise GdiStateError(f"replay upd_v: vertex {app} missing")
            holder = tx._mutate(h._txv)
        # post-image splice: payload blobs are stored verbatim
        holder.labels = [label_of(n).int_id for n in label_names]
        holder.properties = [
            (ptype_by_name[n].int_id, blob) for n, blob in props
        ]
    elif kind == "edge+":
        _, src, dst, directed, label_name = entry
        a, b = _endpoints(tx, src, dst, kind)
        tx.create_edge(
            a,
            b,
            directed=directed,
            label=label_of(label_name) if label_name else None,
        )
    elif kind == "edge-":
        _, src, dst, directed, label_name = entry
        a, b = _endpoints(tx, src, dst, kind)
        want_lid = label_of(label_name).int_id if label_name else 0
        want_dir = DIR_OUT if directed else DIR_UNDIR
        for e in a.edges():
            s = e._slot
            if (
                not s.heavy
                and s.direction == want_dir
                and s.dptr == b.vid
                and s.label_id == want_lid
            ):
                tx.delete_edge(e)
                break
        else:
            raise GdiStateError(
                f"replay edge-: no matching edge {src}->{dst}"
            )
    elif kind == "hedge+":
        _, src, dst, directed, label_names, props = entry
        a, b = _endpoints(tx, src, dst, kind)
        e = tx.create_edge(
            a,
            b,
            directed=directed,
            labels=[label_of(n) for n in label_names],
            force_heavy=True,
        )
        holder = tx._load_edge_holder(e._slot.dptr).holder
        holder.properties = [
            (ptype_by_name[n].int_id, blob) for n, blob in props
        ]
    elif kind == "hedge-":
        _, src, dst, directed = entry
        a, b = _endpoints(tx, src, dst, kind)
        e = _find_heavy(tx, a, b, directed)
        if e is None:
            raise GdiStateError(
                f"replay hedge-: no matching heavy edge {src}->{dst}"
            )
        tx.delete_edge(e)
    elif kind == "hedge*":
        _, src, dst, directed, label_names, props = entry
        a, b = _endpoints(tx, src, dst, kind)
        e = _find_heavy(tx, a, b, directed)
        if e is None:
            raise GdiStateError(
                f"replay hedge*: no matching heavy edge {src}->{dst}"
            )
        tx._mutate(a._txv)  # take the source vertex's write lock
        txe = tx._load_edge_holder(e._slot.dptr)
        txe.holder.labels = [label_of(n).int_id for n in label_names]
        txe.holder.properties = [
            (ptype_by_name[n].int_id, blob) for n, blob in props
        ]
        txe.dirty = True
    else:  # pragma: no cover - defensive
        raise GdiStateError(f"unknown commit-log entry kind {kind!r}")


def _endpoints(tx, src_app: int, dst_app: int, kind: str):
    a = tx.find_vertex(src_app)
    b = tx.find_vertex(dst_app) if dst_app != src_app else a
    if a is None or b is None:
        raise GdiNotFound(
            f"replay {kind}: endpoint {src_app if a is None else dst_app} "
            "missing"
        )
    return a, b


def _find_heavy(tx, a, b, directed: bool):
    for e in a.edges():
        s = e._slot
        if not s.heavy or s.direction == DIR_IN:
            continue
        h = tx._load_edge_holder(s.dptr).holder
        if h.directed != directed:
            continue
        if (h.src == a.vid and h.dst == b.vid) or (
            not directed and h.src == b.vid and h.dst == a.vid
        ):
            return e
    return None


# -- idempotent replay (failover roll-forward) ------------------------------
def replay_entries_idempotent(
    ctx: RankContext, db: "GdaDatabase", entries: tuple
) -> None:
    """Roll a possibly-torn commit's entries forward (failover redo).

    A crashed rank may have applied any part of its in-flight commit
    before dying: its own shard is rebuilt from the mirror (pre-commit
    image) while healthy shards may already carry the commit's writes and
    publications.  Each entry is therefore applied *tolerantly* — effects
    already present are skipped, missing prerequisites are recreated from
    the post-images the entries carry.  The redo transaction does not
    re-log (the record is already in the commit log under the dead rank's
    sequence number).

    Exactness caveat: a ``edge+`` entry identical to an edge that already
    exists is treated as already applied; graphs relying on identical
    parallel lightweight edges within one torn commit may lose one copy.
    """
    replica = db.replica(ctx)
    replica.sync()
    label_by_name = {l.name: l for l in replica.labels}
    ptype_by_name = {p.name: p for p in replica.ptypes}

    def label_of(name: str):
        if name not in label_by_name:
            label_by_name[name] = db.create_label(ctx, name)
        return label_by_name[name]

    tx = db.start_transaction(ctx, write=True)
    tx._no_log = True
    try:
        for entry in entries:
            _apply_entry_idempotent(tx, entry, label_of, ptype_by_name)
        tx.commit()
    except BaseException:
        if tx.open:
            tx.abort()
        raise


def _apply_entry_idempotent(tx, entry: tuple, label_of, ptype_by_name) -> None:
    kind = entry[0]
    if kind == "del_v":
        h = tx.find_vertex(entry[1])
        if h is not None:
            tx.delete_vertex(h)
    elif kind in ("new_v", "upd_v"):
        _, app, label_names, props = entry
        h = tx.find_vertex(app)
        if h is None:
            h = tx.create_vertex(app)
            holder = h._txv.holder
        else:
            holder = tx._mutate(h._txv)
        # post-image splice: idempotent by construction
        holder.labels = [label_of(n).int_id for n in label_names]
        holder.properties = [
            (ptype_by_name[n].int_id, blob) for n, blob in props
        ]
    elif kind == "edge+":
        _, src, dst, directed, label_name = entry
        pair = _endpoints_tolerant(tx, src, dst)
        if pair is None:
            return  # an endpoint is gone (later deleted); nothing to add
        a, b = pair
        want_lid = label_of(label_name).int_id if label_name else 0
        want_dir = DIR_OUT if directed else DIR_UNDIR
        for e in a.edges():
            s = e._slot
            if (
                not s.heavy
                and s.direction == want_dir
                and s.dptr == b.vid
                and s.label_id == want_lid
            ):
                return  # already applied before the crash
        tx.create_edge(
            a,
            b,
            directed=directed,
            label=label_of(label_name) if label_name else None,
        )
    elif kind == "edge-":
        _, src, dst, directed, label_name = entry
        pair = _endpoints_tolerant(tx, src, dst)
        if pair is None:
            return
        a, b = pair
        want_lid = label_of(label_name).int_id if label_name else 0
        want_dir = DIR_OUT if directed else DIR_UNDIR
        for e in a.edges():
            s = e._slot
            if (
                not s.heavy
                and s.direction == want_dir
                and s.dptr == b.vid
                and s.label_id == want_lid
            ):
                tx.delete_edge(e)
                return
        # already removed before the crash
    elif kind == "hedge+":
        _, src, dst, directed, label_names, props = entry
        pair = _endpoints_tolerant(tx, src, dst)
        if pair is None:
            return
        a, b = pair
        if _find_heavy(tx, a, b, directed) is not None:
            return  # already applied
        e = tx.create_edge(
            a,
            b,
            directed=directed,
            labels=[label_of(n) for n in label_names],
            force_heavy=True,
        )
        holder = tx._load_edge_holder(e._slot.dptr).holder
        holder.properties = [
            (ptype_by_name[n].int_id, blob) for n, blob in props
        ]
    elif kind == "hedge-":
        _, src, dst, directed = entry
        pair = _endpoints_tolerant(tx, src, dst)
        if pair is None:
            return
        a, b = pair
        e = _find_heavy(tx, a, b, directed)
        if e is not None:
            tx.delete_edge(e)
    elif kind == "hedge*":
        _, src, dst, directed, label_names, props = entry
        pair = _endpoints_tolerant(tx, src, dst)
        if pair is None:
            return
        a, b = pair
        e = _find_heavy(tx, a, b, directed)
        if e is None:
            # the holder vanished with the crash: recreate the post-image
            e = tx.create_edge(
                a,
                b,
                directed=directed,
                labels=[label_of(n) for n in label_names],
                force_heavy=True,
            )
            holder = tx._load_edge_holder(e._slot.dptr).holder
            holder.properties = [
                (ptype_by_name[n].int_id, blob) for n, blob in props
            ]
            return
        tx._mutate(a._txv)  # take the source vertex's write lock
        txe = tx._load_edge_holder(e._slot.dptr)
        txe.holder.labels = [label_of(n).int_id for n in label_names]
        txe.holder.properties = [
            (ptype_by_name[n].int_id, blob) for n, blob in props
        ]
        txe.dirty = True
    else:  # pragma: no cover - defensive
        raise GdiStateError(f"unknown commit-log entry kind {kind!r}")


def _endpoints_tolerant(tx, src_app: int, dst_app: int):
    a = tx.find_vertex(src_app)
    b = tx.find_vertex(dst_app) if dst_app != src_app else a
    if a is None or b is None:
        return None
    return a, b
