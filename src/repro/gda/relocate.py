"""Dynamic vertex relocation between collective transactions (Section 3.4).

The paper's motivation for *volatile* internal IDs: "it facilitates
redistributing the graph across processes between collective
transactions, without fearing that internal IDs become stale".  This
module implements that redistribution:

* :func:`plan_balance` computes a greedy move plan equalizing per-rank
  vertex counts;
* :func:`plan_offload` spreads a *hot shard*'s vertices round-robin over
  the other ranks (the hot-shard detector's remediation);
* :func:`rebalance` collectively executes a plan in two crash-safe
  phases and publishes the old→new mapping so stale permanent DPTRs
  raise :class:`~repro.gdi.errors.GdiStaleDptr` instead of silently
  reading the vacated blocks.

Crash-safe execution
--------------------
``rebalance`` is structured as **prepare → vote → commit → patch**:

1. *prepare* — each rank copies its departing vertex holders into
   freshly acquired blocks on their new owners.  Nothing authoritative
   (DHT, directory, indexes, the old holder) is touched, so a rank that
   crashes here simply contributes no moves: its prepared copies are
   unregistered orphans and the database is unchanged (= rollback).
2. *vote* — an allgather publishes every rank's move intents.  With a
   :class:`~repro.rma.membership.ClusterMembership` armed, the
   collective completes over the live view, so survivors learn exactly
   which intents are in flight.
3. *commit* — each rank re-points the DHT, migrates directory and index
   postings, and deletes the old holders for its own intents.  Every
   step is replay-idempotent (the DHT entry is re-pointed only if it
   still names the old location; directory migration is guarded by
   presence; deleting an already-deleted holder is a no-op), so after
   the final barrier the lowest surviving rank *completes* the intents
   of any rank that crashed mid-commit.  Operations fenced by the
   failover machinery (:class:`~repro.rma.faults.RmaStaleEpoch`) heal
   through the database's repair hook and retry.
4. *patch* — every rank rewrites the edge slots and edge-holder
   endpoints of the shards it *hosts* (its own, plus any adopted ward
   after a mid-rebalance failover) against the full allgathered mapping.

Afterwards the membership epoch is bumped with every shard stamped
(:meth:`~repro.rma.membership.ClusterMembership.bump_epoch`), so any
issuer that did not participate is fenced exactly once before touching
relocated data.  The mapping is also recorded on the database
(:meth:`~repro.gda.database_impl.GdaDatabase.note_relocations`): reads
through pre-move permanent IDs raise
:class:`~repro.gdi.errors.GdiStaleDptr` carrying the fresh ID.

Correctness contract: no transactions may be open during a rebalance
(exactly the quiescent point between collective transactions the paper
describes).  Crash tolerance additionally requires block replication
(the dead rank's shard must remain readable through its mirror); without
it a mid-rebalance crash is fatal to the run, as in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rma.faults import RmaStaleEpoch
from ..rma.runtime import RankContext
from .database_impl import GdaDatabase
from .dptr import unpack_dptr
from .holder import KIND_EDGE

__all__ = ["plan_balance", "plan_offload", "rebalance", "MoveIntent"]

#: bounded heal-and-retry attempts for fenced commit operations
_MAX_HEALS = 4


@dataclass
class MoveIntent:
    """One planned vertex move, self-contained enough to be replayed by
    a *surviving* rank if the planning rank crashes mid-commit."""

    old_vid: int
    new_vid: int
    app_id: int
    labels: list[int] = field(default_factory=list)


def plan_balance(
    ctx: RankContext, db: GdaDatabase, tolerance: int = 1
) -> dict[int, int]:
    """Greedy move plan ``{vid: target_rank}`` flattening shard sizes.

    Ranks above the mean shed their excess vertices round-robin onto the
    ranks below the mean.  The plan only names vertices local to the
    calling rank; every rank computes a consistent global view from the
    allgathered shard sizes.
    """
    sizes = ctx.allgather(len(db.directory.local_vertices(ctx)))
    total = sum(sizes)
    mean = total / ctx.nranks
    deficits = [
        (r, int(mean - sizes[r])) for r in range(ctx.nranks)
        if sizes[r] < mean - tolerance
    ]
    if not deficits or sizes[ctx.rank] <= mean + tolerance:
        return {}
    surplus = int(sizes[ctx.rank] - mean)
    # deterministic carve-up: this rank takes a slice of each deficit
    # proportional to its share of the global surplus
    overs = [r for r in range(ctx.nranks) if sizes[r] > mean + tolerance]
    my_pos = overs.index(ctx.rank)
    plan: dict[int, int] = {}
    movable = sorted(db.directory.local_vertices(ctx))[:surplus]
    cursor = my_pos  # stagger starting deficit per overloaded rank
    for vid in movable:
        for _ in range(len(deficits)):
            r, need = deficits[cursor % len(deficits)]
            if need > 0:
                deficits[cursor % len(deficits)] = (r, need - 1)
                plan[vid] = r
                cursor += 1
                break
            cursor += 1
        else:
            break
    return plan


def plan_offload(
    ctx: RankContext,
    db: GdaDatabase,
    hot_shard: int,
    keep_fraction: float = 0.0,
    window: dict[str, list[int]] | None = None,
) -> dict[int, int]:
    """Spread a hot shard's vertices over the ranks with NIC headroom.

    The remediation the hot-shard detector triggers: unlike
    :func:`plan_balance` (which equalizes *counts*), this deliberately
    empties ``hot_shard`` down to ``keep_fraction`` of its vertices so
    the celebrity keys colocated there stop sharing one NIC.

    Targets are weighted by *measured* NIC headroom rather than
    round-robin: the trace's per-shard access counters
    (:meth:`~repro.rma.trace.TraceRecorder.shard_snapshot`, or the delta
    against an earlier ``window`` snapshot — the detector already holds
    one) give each candidate's observed load in one-sided ops plus moved
    bytes, and the move set is split by largest-remainder shares of
    ``peak_load - load + 1``.  A quiet rank therefore absorbs more of
    the celebrity traffic than one already near its NIC limit, instead
    of each receiving an equal slice.  Only the hot rank's plan is
    non-empty; the move set is deterministic (sorted vertex order).
    """
    if ctx.rank != hot_shard or ctx.nranks < 2:
        return {}
    vids = sorted(db.directory.local_vertices(ctx))
    n_keep = int(len(vids) * keep_fraction)
    movable = vids[n_keep:]
    if not movable:
        return {}
    trace = ctx.rt.trace
    snap = (
        trace.shard_diff(window) if window is not None
        else trace.shard_snapshot()
    )
    # measured per-shard NIC load: one-sided op count, with the moved
    # bytes folded in at cache-line-ish granularity so a byte-heavy but
    # op-light shard still reads as busy
    load = [
        ops + nbytes // 1024
        for ops, nbytes in zip(snap["ops"], snap["bytes"])
    ]
    targets = [r for r in range(ctx.nranks) if r != hot_shard]
    peak = max(load[r] for r in targets)
    headroom = {r: peak - load[r] + 1 for r in targets}
    total = sum(headroom.values())
    # blend a uniform base (half the set, split evenly) with the
    # headroom-proportional half: the skew follows the measurement, but
    # no target is starved or flooded outright when absolute loads are
    # small — flooding one quiet rank would just mint the next hotspot
    quota = {
        r: len(movable) * (0.5 / len(targets) + 0.5 * headroom[r] / total)
        for r in targets
    }
    share = {r: int(quota[r]) for r in targets}
    leftover = len(movable) - sum(share.values())
    for r in sorted(
        targets, key=lambda r: (quota[r] - share[r], -r), reverse=True
    )[:leftover]:
        share[r] += 1
    plan: dict[int, int] = {}
    it = iter(movable)
    for r in sorted(targets, key=lambda r: (-headroom[r], r)):
        for _ in range(share[r]):
            plan[next(it)] = r
    return plan


def _with_heal(ctx: RankContext, db: GdaDatabase, fn):
    """Run ``fn()`` healing through bounded epoch fences.

    A mid-rebalance crash fails the dead rank's shard over; the next
    operation a survivor issues against it is fenced with
    :class:`RmaStaleEpoch`.  The database's heal hook repairs the shard
    from its mirror (single-flight) and adopts the new epoch, after
    which the operation is retried.
    """
    for _ in range(_MAX_HEALS):
        try:
            return fn()
        except RmaStaleEpoch:
            db.heal(ctx)
    return fn()


def _commit_intent(
    ctx: RankContext, db: GdaDatabase, intent: MoveIntent
) -> None:
    """Commit (or replay) one move.  Idempotent per step:

    * the DHT is re-pointed only while it still resolves to the old
      location (or to nothing, after a crash between delete and insert);
    * the directory migration is guarded by the old posting's presence
      (the directory update itself has no crash point: it is a
      control-path structure mutated between RMA operations);
    * explicit-index relocations are internally presence-guarded;
    * deleting the already-deleted old holder is a no-op.
    """
    cur = _with_heal(ctx, db, lambda: db.dht.lookup(ctx, intent.app_id))
    if cur != intent.new_vid:
        if cur is not None:
            _with_heal(ctx, db, lambda: db.dht.delete(ctx, intent.app_id))
        _with_heal(
            ctx, db,
            lambda: db.dht.insert(ctx, intent.app_id, intent.new_vid),
        )
    if db.directory.contains(intent.old_vid):
        db.directory.relocate(
            ctx, intent.old_vid, intent.new_vid, labels=intent.labels
        )
    elif not db.directory.contains(intent.new_vid):
        db.directory.add(ctx, intent.new_vid, labels=intent.labels)
    for idx in db.indexes.values():
        idx.relocate(ctx, intent.old_vid, intent.new_vid)
    for eidx in db.edge_indexes.values():
        eidx.relocate(ctx, intent.old_vid, intent.new_vid)

    def _delete_old() -> None:
        stored = db.storage.read_many(
            ctx, [intent.old_vid], missing_ok=True
        )[0]
        if stored is not None and stored.holder.app_id == intent.app_id:
            db.storage.delete(ctx, stored)

    _with_heal(ctx, db, _delete_old)


def rebalance(
    ctx: RankContext,
    db: GdaDatabase,
    plan: dict[int, int] | None = None,
) -> dict[int, int]:
    """Collectively move vertices per ``plan`` (default: balance shards).

    Returns the global ``{old_vid: new_vid}`` mapping.  Must run with no
    open transactions; see the module docstring for the crash-safety
    phases and their failure semantics.
    """
    if plan is None:
        plan = plan_balance(ctx, db)
    mem = getattr(ctx.rt, "membership", None)

    # -- phase 1: prepare (copy holders; nothing authoritative moves) ----
    intents: list[MoveIntent] = []
    for old_vid, target in sorted(plan.items()):
        if unpack_dptr(old_vid).rank != ctx.rank:
            continue  # only the owner moves a vertex
        if target == ctx.rank:
            continue
        stored = db.storage.read(ctx, old_vid)
        primary = db.blocks.acquire_block(ctx, target)
        if primary is None:
            continue  # target shard full: skip the move
        new_stored = type(stored)(
            holder=stored.holder,
            primary=primary,
            # the MVCC version rides along: a snapshot reader validating
            # the relocated holder must see the same commit stamp
            version=stored.version,
        )
        db.storage.rewrite(ctx, new_stored)
        intents.append(
            MoveIntent(
                old_vid=old_vid,
                new_vid=primary,
                app_id=stored.holder.app_id,
                labels=list(stored.holder.labels),
            )
        )

    # -- phase 2: vote (publish intents; survivors learn what's in flight)
    voted = ctx.allgather((ctx.rank, intents))
    all_intents: dict[int, list[MoveIntent]] = {r: i for r, i in voted}

    # -- phase 3: commit own intents, then complete any dead rank's ------
    for intent in intents:
        _commit_intent(ctx, db, intent)
    done = ctx.allgather(ctx.rank)
    survivors = sorted(done)
    if len(survivors) < len(all_intents) and ctx.rank == survivors[0]:
        # a rank that voted died mid-commit: replay its intents (each
        # step is idempotent, so partially committed moves complete)
        for dead_rank in sorted(set(all_intents) - set(survivors)):
            for intent in all_intents[dead_rank]:
                _with_heal(
                    ctx, db, lambda i=intent: _commit_intent(ctx, db, i)
                )
    ctx.barrier()

    # -- phase 4: patch references over every *hosted* shard -------------
    mapping: dict[int, int] = {}
    for part in all_intents.values():
        for intent in part:
            mapping[intent.old_vid] = intent.new_vid
    if mapping:
        _patch_references(ctx, db, mapping)
    ctx.barrier()
    db.dht.quiesce(ctx)

    # -- publish: stale-DPTR table + epoch fence --------------------------
    if ctx.rank == survivors[0]:
        db.note_relocations(mapping)
        if mem is not None and mapping:
            mem.bump_epoch(fence_all=True)
    ctx.barrier()
    if mem is not None:
        # participants observed the new placement; adopt so only
        # non-participants are fenced
        mem.adopt_epoch(ctx.rank)
    return mapping


def _patch_references(
    ctx: RankContext, db: GdaDatabase, mapping: dict[int, int]
) -> None:
    """Rewrite edge slots and edge-holder endpoints naming moved vertices.

    Walks every shard this rank *hosts* — after a mid-rebalance failover
    the backup patches its adopted ward too, so no edge referencing a
    moved vertex survives unpatched.
    """
    mem = getattr(ctx.rt, "membership", None)
    if mem is not None:
        hosted = mem.shards_of(ctx.rank)
        vids: list[int] = []
        for shard in hosted:
            vids.extend(db.directory.shard_vertices(ctx, shard))
    else:
        vids = db.directory.local_vertices(ctx)
    for vid in vids:
        def _patch_one(vid=vid) -> None:
            stored = db.storage.read_many(ctx, [vid], missing_ok=True)[0]
            if stored is None:
                return
            holder = stored.holder
            dirty = False
            for slot in holder.edges:
                if slot.heavy:
                    eh_stored = db.storage.read(ctx, slot.dptr)
                    eh = eh_stored.holder
                    if eh.kind != KIND_EDGE:
                        continue
                    patched = False
                    if eh.src in mapping:
                        eh.src = mapping[eh.src]
                        patched = True
                    if eh.dst in mapping:
                        eh.dst = mapping[eh.dst]
                        patched = True
                    if patched:
                        db.storage.rewrite(ctx, eh_stored)
                elif slot.dptr in mapping:
                    slot.dptr = mapping[slot.dptr]
                    dirty = True
            if dirty:
                db.storage.rewrite(ctx, stored)

        _with_heal(ctx, db, _patch_one)
