"""Dynamic vertex relocation between collective transactions (Section 3.4).

The paper's motivation for *volatile* internal IDs: "it facilitates
redistributing the graph across processes between collective
transactions, without fearing that internal IDs become stale".  This
module implements that redistribution:

* :func:`plan_balance` computes a greedy move plan equalizing per-rank
  vertex counts;
* :func:`rebalance` collectively executes a plan: each rank copies its
  departing vertex holders to their new owners, republishes the
  application-ID mapping in the internal DHT, migrates directory and
  index postings, and — after an allgather of the old→new ID map — every
  rank patches the edge slots and edge-holder endpoints that referenced
  moved vertices.

Correctness contract: no transactions may be open during a rebalance
(exactly the quiescent point between collective transactions the paper
describes).  *Permanent* internal IDs held by the application become
stale after a rebalance — the reason users who want relocation choose
volatile IDs.
"""

from __future__ import annotations

from ..rma.runtime import RankContext
from .database_impl import GdaDatabase
from .dptr import unpack_dptr
from .holder import KIND_EDGE

__all__ = ["plan_balance", "rebalance"]


def plan_balance(
    ctx: RankContext, db: GdaDatabase, tolerance: int = 1
) -> dict[int, int]:
    """Greedy move plan ``{vid: target_rank}`` flattening shard sizes.

    Ranks above the mean shed their excess vertices round-robin onto the
    ranks below the mean.  The plan only names vertices local to the
    calling rank; every rank computes a consistent global view from the
    allgathered shard sizes.
    """
    sizes = ctx.allgather(len(db.directory.local_vertices(ctx)))
    total = sum(sizes)
    mean = total / ctx.nranks
    deficits = [
        (r, int(mean - sizes[r])) for r in range(ctx.nranks)
        if sizes[r] < mean - tolerance
    ]
    if not deficits or sizes[ctx.rank] <= mean + tolerance:
        return {}
    surplus = int(sizes[ctx.rank] - mean)
    # deterministic carve-up: this rank takes a slice of each deficit
    # proportional to its share of the global surplus
    overs = [r for r in range(ctx.nranks) if sizes[r] > mean + tolerance]
    my_pos = overs.index(ctx.rank)
    plan: dict[int, int] = {}
    movable = sorted(db.directory.local_vertices(ctx))[:surplus]
    cursor = my_pos  # stagger starting deficit per overloaded rank
    for vid in movable:
        for _ in range(len(deficits)):
            r, need = deficits[cursor % len(deficits)]
            if need > 0:
                deficits[cursor % len(deficits)] = (r, need - 1)
                plan[vid] = r
                cursor += 1
                break
            cursor += 1
        else:
            break
    return plan


def rebalance(
    ctx: RankContext,
    db: GdaDatabase,
    plan: dict[int, int] | None = None,
) -> dict[int, int]:
    """Collectively move vertices per ``plan`` (default: balance shards).

    Returns the global ``{old_vid: new_vid}`` mapping.  Must run with no
    open transactions.
    """
    if plan is None:
        plan = plan_balance(ctx, db)
    moved_local: dict[int, int] = {}
    for old_vid, target in plan.items():
        if unpack_dptr(old_vid).rank != ctx.rank:
            continue  # only the owner moves a vertex
        stored = db.storage.read(ctx, old_vid)
        if target == ctx.rank:
            continue
        # place the holder on the target rank (skip the move if full)
        primary = db.blocks.acquire_block(ctx, target)
        if primary is None:
            continue
        new_stored = type(stored)(holder=stored.holder, primary=primary)
        db.storage.rewrite(ctx, new_stored)
        app_id = stored.holder.app_id
        db.dht.delete(ctx, app_id)
        db.dht.insert(ctx, app_id, primary)
        db.storage.delete(ctx, stored)
        db.directory.relocate(
            ctx, old_vid, primary, labels=stored.holder.labels
        )
        for idx in db.indexes.values():
            idx.relocate(ctx, old_vid, primary)
        for eidx in db.edge_indexes.values():
            eidx.relocate(ctx, old_vid, primary)
        moved_local[old_vid] = primary

    # publish the mapping and patch all references
    mapping: dict[int, int] = {}
    for part in ctx.allgather(moved_local):
        mapping.update(part)
    if mapping:
        _patch_references(ctx, db, mapping)
    ctx.barrier()
    db.dht.quiesce(ctx)
    return mapping


def _patch_references(
    ctx: RankContext, db: GdaDatabase, mapping: dict[int, int]
) -> None:
    """Rewrite edge slots and edge-holder endpoints naming moved vertices."""
    for vid in db.directory.local_vertices(ctx):
        stored = db.storage.read(ctx, vid)
        holder = stored.holder
        dirty = False
        for slot in holder.edges:
            if slot.heavy:
                eh_stored = db.storage.read(ctx, slot.dptr)
                eh = eh_stored.holder
                if eh.kind != KIND_EDGE:
                    continue
                patched = False
                if eh.src in mapping:
                    eh.src = mapping[eh.src]
                    patched = True
                if eh.dst in mapping:
                    eh.dst = mapping[eh.dst]
                    patched = True
                if patched:
                    db.storage.rewrite(ctx, eh_stored)
            elif slot.dptr in mapping:
                slot.dptr = mapping[slot.dptr]
                dirty = True
        if dirty:
            db.storage.rewrite(ctx, stored)
