"""Primary-backup block replication and live failover (availability layer).

The paper's system is explicitly non-fault-tolerant (Section 8 lists fault
tolerance as future work); this module supplies the GDA half of the online
fault-tolerance extension, on top of the substrate's failure detector and
epoch-fenced membership view (:mod:`repro.rma.membership`):

* **Asynchronous primary-backup mirroring** — every commit's dirty blocks
  are additionally staged, via the batched ``iput`` path, into a dedicated
  *mirror* window on the owning shard's deterministic backup rank
  ``(shard + 1) % P``, at the block's own offset.  The mirror flush rides
  the commit (one extra batched message per touched backup plus one
  flush), and a per-shard :class:`ReplicationLog` records the highest
  commit sequence number whose writes are fully mirrored.
* **Commit intents** — a committing rank publishes its replayable entry
  list *before* appending to the commit log and withdraws it only after
  its mirror flush completes.  Because no one-sided operation separates
  intent publication from the log append, a crashed rank left an intent
  exactly when its last logged record may be torn — which bounds backups
  to **at most one commit behind** (see :meth:`ReplicationManager.commit_lag`).
* **Failover repair** — :meth:`ReplicationManager.repair_shard` rebuilds a
  dead rank's shard in place: undo its held locks (via the
  :class:`~repro.gda.locks.LockRegistry`), reconstruct the free list as
  the complement of the mirrored live-block set, restore the mirrored
  blocks (each verified against its recorded CRC32 before promotion),
  rebuild the shard's DHT segment, then roll the intent's entries forward
  idempotently through the commit-log replay vocabulary and sweep blocks
  the dead rank allocated but never published.  Internal DPtrs survive
  (blocks are restored at their original offsets); the membership view's
  translation table redirects liveness, fencing and cost accounting to the
  backup host.

What is survivable: any single rank crash (detected, repaired online,
degraded service continues).  Not survivable online: a concurrent crash of
a shard and its backup (``note_failure`` refuses, operations raise
:class:`~repro.rma.faults.RmaRankDead`, recovery falls back to
checkpoint-plus-log replay), and corruption of a mirror block (CRC32
mismatch at promotion raises :class:`~repro.gdi.errors.GdiChecksumError`).
"""

from __future__ import annotations

import threading
import zlib
from typing import TYPE_CHECKING

from ..gdi.errors import GdiChecksumError, GdiTransactionCritical
from ..rma.faults import RmaRankDead, RmaTransientError
from ..rma.runtime import RankContext
from ..rma.window import Window
from .dptr import TAG_NULL_INDEX, pack_tagged, unpack_dptr

if TYPE_CHECKING:  # pragma: no cover
    from ..rma.membership import ClusterMembership
    from .blocks import BlockManager
    from .database_impl import GdaDatabase

__all__ = ["ReplicationLog", "ReplicationManager"]


class ReplicationLog:
    """Per-shard and per-committer mirror high-water marks.

    ``shard_high[s]`` is the highest commit sequence number whose writes
    to shard ``s`` are known mirrored; ``rank_high[r]`` the highest
    sequence number committer ``r`` has fully mirrored.  Together with the
    commit-intent protocol these prove each backup is at most one commit
    behind its primary.
    """

    def __init__(self, nranks: int) -> None:
        self._mu = threading.Lock()
        self.shard_high = [-1] * nranks
        self.rank_high = [-1] * nranks

    def advance(self, rank: int, seq: int, shards) -> None:
        with self._mu:
            if seq > self.rank_high[rank]:
                self.rank_high[rank] = seq
            for s in shards:
                if seq > self.shard_high[s]:
                    self.shard_high[s] = seq


class ReplicationManager:
    """Mirrors dirty blocks to backups and repairs crashed shards."""

    def __init__(
        self,
        mirror_win: Window,
        membership: "ClusterMembership",
        blocks: "BlockManager",
        nranks: int,
    ) -> None:
        self.mirror_win = mirror_win
        self.membership = membership
        self.blocks = blocks
        self.block_size = blocks.block_size
        self.blocks_per_rank = blocks.blocks_per_rank
        self.nranks = nranks
        #: shard -> {block index: (crc32, nbytes)} of mirrored live blocks
        self.meta: list[dict[int, tuple[int, int]]] = [
            dict() for _ in range(nranks)
        ]
        self._meta_mu = threading.Lock()
        #: per-origin staged (shard, index, crc, nbytes) awaiting the
        #: commit's mirror flush
        self._staged: list[list[tuple[int, int, int, int]]] = [
            [] for _ in range(nranks)
        ]
        self._staged_mu = threading.Lock()
        #: commit intents: replay entries of the commit each rank is
        #: currently applying (None outside the commit window)
        self.intent: list[tuple | None] = [None] * nranks
        self.intent_seq: list[int | None] = [None] * nranks
        #: allocation journal: block DPtr -> acquiring rank, for blocks
        #: acquired since that rank's last completed commit (sweep source)
        self._journal: dict[int, int] = {}
        self._journal_mu = threading.Lock()
        self.log = ReplicationLog(nranks)

    # -- allocation journal (installed as BlockManager hooks) ---------------
    def note_acquire(self, ctx: RankContext, dptr: int) -> None:
        with self._journal_mu:
            self._journal[dptr] = ctx.rank

    def note_release(self, ctx: RankContext, dptr: int) -> None:
        with self._journal_mu:
            self._journal.pop(dptr, None)
        d = unpack_dptr(dptr)
        with self._meta_mu:
            self.meta[d.rank].pop(d.offset // self.block_size, None)

    def journal_of(self, rank: int) -> list[int]:
        with self._journal_mu:
            return [d for d, owner in self._journal.items() if owner == rank]

    # -- the mirroring data path -------------------------------------------
    def stage(self, ctx: RankContext, items: list[tuple[int, bytes]]) -> None:
        """Stage block writes towards their owners' backups (batched iput).

        Rides the holder write-back: called with the same ``(dptr, data)``
        items, issues one non-blocking batch against the mirror window and
        records the pending metadata; :meth:`commit_mirrors` completes
        both.
        """
        if not items:
            return
        mem = self.membership
        ops = []
        staged = []
        for dptr, data in items:
            d = unpack_dptr(dptr)
            ops.append((mem.backup_of(d.rank), d.offset, data))
            staged.append(
                (
                    d.rank,
                    d.offset // self.block_size,
                    zlib.crc32(data) & 0xFFFFFFFF,
                    len(data),
                )
            )
        ctx.iput_batch(self.mirror_win, ops)
        with self._staged_mu:
            self._staged[ctx.rank].extend(staged)

    def begin_commit(self, rank: int, entries: tuple) -> None:
        """Publish the commit intent (crash-atomic with the log append:
        no one-sided operation separates this from ``log_commit``)."""
        self.intent[rank] = entries
        self.intent_seq[rank] = None

    def note_logged(self, rank: int, seq: int) -> None:
        self.intent_seq[rank] = seq

    def commit_mirrors(self, ctx: RankContext, seq: int | None) -> None:
        """Complete the commit's mirror traffic and publish its metadata.

        The flush is the only operation (and thus the only crash point);
        metadata, high-water marks, journal and intent then settle in one
        uninterruptible Python step, so a crashed rank either left its
        intent (torn commit, roll it forward) or completed everything.
        """
        with self._staged_mu:
            pending = bool(self._staged[ctx.rank])
        if pending:
            ctx.flush(self.mirror_win)
        with self._staged_mu:
            staged, self._staged[ctx.rank] = self._staged[ctx.rank], []
        touched: set[int] = set()
        nbytes = 0
        with self._meta_mu:
            for shard, idx, crc, n in staged:
                self.meta[shard][idx] = (crc, n)
                touched.add(shard)
                nbytes += n
        if staged:
            ctx.rt.trace.record_mirror(ctx.rank, len(staged), nbytes)
        if seq is not None:
            self.log.advance(ctx.rank, seq, touched)
        self.end_commit(ctx.rank)

    def end_commit(self, rank: int) -> None:
        self.intent[rank] = None
        self.intent_seq[rank] = None
        with self._journal_mu:
            for d in [k for k, o in self._journal.items() if o == rank]:
                self._journal.pop(d)

    def abort_commit(self, ctx: RankContext) -> None:
        """Withdraw a failed commit's staged mirrors.

        Staged iputs may already sit in the network queues carrying
        uncommitted bytes that a *later* mirror flush would apply; rather
        than trying to unsend them, re-mirror the affected blocks from the
        (still committed) data window so mirror content and metadata
        agree again.
        """
        with self._staged_mu:
            staged, self._staged[ctx.rank] = self._staged[ctx.rank], []
        self.intent[ctx.rank] = None
        self.intent_seq[ctx.rank] = None
        if not staged:
            return
        bs = self.block_size
        mem = self.membership
        blocks = sorted({(shard, idx) for shard, idx, _, _ in staged})
        try:
            blobs = ctx.get_batch(
                self.blocks.data_win, [(s, i * bs, bs) for s, i in blocks]
            )
            ops = [
                (mem.backup_of(s), i * bs, blob)
                for (s, i), blob in zip(blocks, blobs)
            ]
            ctx.iput_batch(self.mirror_win, ops)
            ctx.flush(self.mirror_win)
        except (RmaTransientError, RmaRankDead):
            # The abort itself raced a failover (e.g. the re-read fenced,
            # or a backup died too).  The affected shard is being rebuilt
            # from mirror + intent anyway; skipping the re-mirror only
            # risks a stale mirror block that the next commit of the same
            # block overwrites.
            pass

    def commit_lag(self, db: "GdaDatabase", rank: int) -> int:
        """Number of ``rank``'s logged commits not yet fully mirrored.

        The intent protocol bounds this at 1: a rank publishes one intent,
        logs one record, and withdraws the intent only when the record's
        mirrors are flushed — it cannot log a second record in between.
        """
        high = self.log.rank_high[rank]
        return sum(
            1
            for rec in db.commit_log.tail(max(0, high + 1))
            if rec.rank == rank and rec.entries
        )

    # -- failover repair ----------------------------------------------------
    def repair_shard(
        self, ctx: RankContext, db: "GdaDatabase", shard: int
    ) -> dict[str, int]:
        """Rebuild the crashed ``shard`` in place from its backup mirror.

        Caller must have won ``membership.begin_repair(shard, ctx.rank)``.
        Returns repair statistics (restored blocks, redone commits, swept
        blocks, re-inserted DHT entries).
        """
        rt = ctx.rt
        mem = self.membership
        rt.trace.record_repair(ctx.rank)
        mem.adopt_epoch(ctx.rank)
        bs, n = self.block_size, self.blocks_per_rank

        # 0. The dead rank's staged mirrors die with it; capture its intent.
        with self._staged_mu:
            self._staged[shard] = []
        intent = self.intent[shard]
        intent_seq = self.intent_seq[shard]
        self.intent[shard] = None
        self.intent_seq[shard] = None

        # 1. Undo the dead rank's held locks on healthy shards (its own
        # shard's lock words are rebuilt to zero below).
        if db.lock_registry is not None:
            from .locks import WRITE_BIT, LockRegistry

            for lrank, loff, mode in db.lock_registry.purge(shard):
                if lrank == shard:
                    continue
                delta = -1 if mode == LockRegistry.READ else -WRITE_BIT
                ctx.faa(db.blocks.system_win, lrank, loff, delta)

        # 2. Fetch and verify the mirrored live blocks (promotion gate).
        with self._meta_mu:
            live = sorted(self.meta[shard].items())
        backup = mem.backup_of(shard)
        blobs = (
            ctx.get_batch(
                self.mirror_win,
                [(backup, idx * bs, nb) for idx, (_, nb) in live],
            )
            if live
            else []
        )
        for (idx, (crc, _)), blob in zip(live, blobs):
            if zlib.crc32(blob) & 0xFFFFFFFF != crc:
                rt.trace.record_corruption_detected(ctx.rank)
                raise GdiChecksumError(
                    f"mirror of shard {shard} block {idx} failed CRC32 "
                    "verification at failover promotion"
                )

        # 3. Rebuild the shard's BGDL segments in place: data zeroed then
        # restored at original offsets (DPtrs survive), free list = the
        # complement of the live set, allocation count = |live|, lock
        # words zero.
        free = [i for i in range(n) if i not in dict(live)]
        usage = bytearray(8 * n)
        for pos, idx in enumerate(free):
            nxt = free[pos + 1] if pos + 1 < len(free) else TAG_NULL_INDEX
            usage[8 * idx : 8 * idx + 8] = nxt.to_bytes(8, "little")
        head_idx = free[0] if free else TAG_NULL_INDEX
        sys_img = (
            pack_tagged(0, head_idx).to_bytes(8, "little", signed=True)
            + len(live).to_bytes(8, "little", signed=True)
            + b"\x00" * (8 * n)
        )
        ctx.put(db.blocks.data_win, shard, 0, b"\x00" * (bs * n))
        ctx.put(db.blocks.usage_win, shard, 0, bytes(usage))
        ctx.put(db.blocks.system_win, shard, 0, sys_img)
        if live:
            ctx.iput_batch(
                db.blocks.data_win,
                [(shard, idx * bs, blob) for (idx, _), blob in zip(live, blobs)],
            )
            ctx.flush(db.blocks.data_win)

        # 4. Rebuild the shard's DHT segment from the key mirror.
        reinserted = db.dht.rebuild_shard(ctx, shard)

        # 5. Roll the dead rank's logged-but-possibly-torn commit forward.
        redone = 0
        if intent is not None and intent_seq is not None:
            from .recovery import replay_entries_idempotent

            for attempt in range(8):
                try:
                    replay_entries_idempotent(ctx, db, intent)
                    redone = 1
                    break
                except GdiTransactionCritical:
                    if attempt == 7:
                        raise
            self.log.advance(shard, intent_seq, range(self.nranks))

        # 6. Sweep blocks the dead rank allocated but never published
        # (in-flight uncommitted creations, torn resizes).  Reachability
        # is computed under read locks on the intent's touched vertices.
        swept = self._sweep_dead_allocations(ctx, db, shard, intent)

        return {
            "restored_blocks": len(live),
            "redone_commits": redone,
            "swept_blocks": swept,
            "dht_reinserted": reinserted,
        }

    def _sweep_dead_allocations(
        self, ctx: RankContext, db: "GdaDatabase", shard: int, intent
    ) -> int:
        journal = self.journal_of(shard)
        if not journal:
            return 0
        reachable: set[int] = set()
        if intent:
            apps: set[int] = set()
            for e in intent:
                if e[0] in ("del_v", "new_v", "upd_v"):
                    apps.add(e[1])
                elif e[0] in ("edge+", "edge-", "hedge+", "hedge-", "hedge*"):
                    apps.add(e[1])
                    apps.add(e[2])
            try:
                tx = db.start_transaction(ctx, write=False)
                try:
                    for app in sorted(apps):
                        h = tx.find_vertex(app)
                        if h is None:
                            continue
                        stored = h._txv.stored
                        reachable.update(stored.all_blocks)
                        for slot in stored.holder.edges:
                            if slot.heavy:
                                es = db.storage.read(ctx, slot.dptr)
                                reachable.update(es.all_blocks)
                    tx.commit()
                except BaseException:
                    if tx.open:
                        tx.abort()
                    raise
            except (GdiTransactionCritical, RmaTransientError):
                # Could not pin the touched vertices (heavy contention);
                # leave the journal in place rather than risk freeing a
                # block a survivor just adopted.
                return 0
        swept = 0
        for dptr in journal:
            d = unpack_dptr(dptr)
            if d.rank == shard or dptr in reachable:
                with self._journal_mu:
                    self._journal.pop(dptr, None)
                continue
            db.blocks.release_block(ctx, dptr)  # hook drops journal + meta
            swept += 1
        return swept

    # -- diagnostics --------------------------------------------------------
    def mirrored_block_count(self, shard: int) -> int:
        with self._meta_mu:
            return len(self.meta[shard])
