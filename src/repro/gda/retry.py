"""Automatic transaction restart with seeded exponential backoff.

GDI's transaction-critical errors guarantee the enclosing transaction
fails; the prescribed user reaction is "abort and start a new
transaction" (Section 3.3).  :func:`run_transaction` packages that loop:
it runs a transaction body, and on a transaction-critical error (or an
RMA transient fault that escaped the substrate's own per-op retries)
aborts, charges a seeded exponential backoff to the rank's simulated
clock, and restarts — turning the paper's "failed transactions" into
automatic restarts with bounded attempts.

Backoff is pure simulated time (``ctx.charge``): no extra one-sided
operations are issued, so work-depth accounting of the transaction
protocol is unchanged.  Restarts are counted in
``db.stats[rank].restarts`` and the delay in the trace's per-rank
``backoff_time``.

Collective transactions can only be retried when *every* participant
fails symmetrically (all ranks observe the error and re-enter
``run_transaction``'s next attempt together); asymmetric failures poison
the collective engine and propagate.  Rank crashes
(:class:`~repro.rma.faults.RmaRankDead`) are never retried — they require
:mod:`repro.gda.recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from ..gdi.errors import GdiTransactionCritical
from ..rma.faults import RmaStaleEpoch, RmaTransientError, backoff_delay
from ..rma.runtime import RankContext

if TYPE_CHECKING:  # pragma: no cover
    from .database_impl import GdaDatabase
    from .transaction_impl import Transaction

__all__ = ["RetryPolicy", "RetryDeadlineExceeded", "run_transaction"]


class RetryDeadlineExceeded(RuntimeError):
    """The retry loop ran out of wall-clock budget before succeeding.

    Deliberately *not* a :class:`~repro.gdi.errors.GdiTransactionCritical`
    (nor an :class:`~repro.rma.faults.RmaTransientError`): an enclosing
    retry loop must treat an exhausted deadline as terminal, never as one
    more retryable abort.  The failure that exhausted the budget is
    attached as ``last_error`` (and as ``__cause__``), together with the
    elapsed simulated time and the number of attempts made.
    """

    def __init__(
        self,
        deadline: float,
        elapsed: float,
        attempts: int,
        last_error: BaseException,
    ) -> None:
        super().__init__(
            f"transaction deadline of {deadline:.3g}s exhausted after "
            f"{attempts} attempt(s) ({elapsed:.3g}s elapsed); "
            f"last error: {last_error!r}"
        )
        self.deadline = deadline
        self.elapsed = elapsed
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to restart failed transactions.

    ``deadline`` is a total wall-clock budget in simulated seconds,
    measured on the rank's clock from entry to :func:`run_transaction`
    across *all* attempts and backoffs (``None`` keeps the legacy
    attempts-only behavior).  The first attempt always runs; once a
    restart — including the backoff it would charge — can no longer
    finish within the budget, the loop stops and raises
    :class:`RetryDeadlineExceeded` wrapping the last failure instead of
    overshooting the caller's latency budget.
    """

    max_attempts: int = 8
    backoff_base: float = 5e-6
    backoff_factor: float = 2.0
    backoff_cap: float = 500e-6
    seed: int = 0
    deadline: float | None = None


def run_transaction(
    ctx: RankContext,
    db: "GdaDatabase",
    fn: "Callable[[Transaction], Any]",
    *,
    write: bool = True,
    collective: bool = False,
    snapshot: bool = False,
    policy: RetryPolicy | None = None,
) -> Any:
    """Run ``fn(tx)`` in a transaction, retrying aborts with backoff.

    ``fn`` receives an open transaction, performs its operations, and
    returns a value; the transaction is committed afterwards (unless
    ``fn`` already closed it).  On :class:`GdiTransactionCritical` or
    :class:`~repro.rma.faults.RmaTransientError` the transaction is
    aborted and restarted up to ``policy.max_attempts`` times; the last
    failure is re-raised.  ``fn`` must be safe to re-execute from scratch
    (apply external side effects only after this function returns).
    """
    policy = policy or RetryPolicy()
    if policy.max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    stats = db.stats[ctx.rank]
    t0 = ctx.clock
    for attempt in range(policy.max_attempts):
        kwargs = {"write": write}
        if snapshot:
            # only forwarded when set, so duck-typed stand-in databases
            # without MVCC support keep working
            kwargs["snapshot"] = True
        if collective:
            tx = db.start_collective_transaction(ctx, **kwargs)
        else:
            tx = db.start_transaction(ctx, **kwargs)
        try:
            out = fn(tx)
            if tx.open:
                tx.commit()
            return out
        except (GdiTransactionCritical, RmaTransientError) as exc:
            if tx.open:
                if isinstance(exc, RmaTransientError) and not tx.failed:
                    tx._fail("rma")
                try:
                    tx.abort()
                except RmaTransientError:
                    # The abort itself raced a reconfiguration; the heal
                    # below (or the failover repair) reclaims its state.
                    tx.open = False
            if isinstance(exc, RmaStaleEpoch):
                # Fenced by a failover: repair the failed shard from its
                # block mirrors before retrying against the new view.
                heal = getattr(db, "heal", None)
                if heal is not None:
                    heal(ctx)
            if attempt + 1 >= policy.max_attempts:
                raise
            delay = backoff_delay(
                policy.backoff_base,
                attempt,
                cap=policy.backoff_cap,
                factor=policy.backoff_factor,
                seed=policy.seed,
                token=(ctx.rank << 20) ^ stats.started,
            )
            if policy.deadline is not None:
                elapsed = ctx.clock - t0
                if elapsed + delay >= policy.deadline:
                    # a restart could not finish in time: abort now
                    # instead of burning backoff past the caller's budget
                    raise RetryDeadlineExceeded(
                        policy.deadline, elapsed, attempt + 1, exc
                    ) from exc
            stats.restarts += 1
            ctx.charge(delay)
            ctx.rt.trace.record_backoff(ctx.rank, delay)
    raise AssertionError("unreachable")  # pragma: no cover
