"""GDA transactions: 2-phase RW locking, local caches, commit/abort.

Implements Sections 3.3-3.5 and 5.6 of the paper:

* **Local transactions** run on one process; **collective transactions**
  actively involve every rank (OLAP/OLSP).  Both come in read-only and
  write flavours.
* All changes are **visible only locally** until commit: the transaction
  state caches vertex/edge holders in hash maps keyed by internal ID and
  tracks dirty holders in a vector, exactly the bookkeeping structure mix
  the paper calls out as a major design choice.
* **ACI** via two-phase reader-writer locking with one lock word per
  vertex (:mod:`repro.gda.locks`).  Lock acquisition is try-lock with a
  bounded retry budget; exhaustion raises
  :class:`~repro.gdi.errors.GdiLockFailed`, a transaction-critical error —
  the transaction is guaranteed to fail and the caller must abort and
  start a new one.  These aborts are the paper's "failed transactions".
* Collective *read* transactions are lock-free: GDI read transactions may
  assume no participant modifies the data (Section 3.3).  Collective
  *write* transactions (bulk ingestion) are also lock-free but require
  ranks to mutate disjoint vertices, which the bulk loader guarantees by
  exchanging data so that every vertex is only touched by its home rank.
* **Handles** (Section 3.5) are opaque per-process objects; vertex and
  edge handles are only valid inside their transaction (volatile IDs,
  Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from ..gdi.constants import EdgeOrientation, Multiplicity, SizeType
from ..gdi.constraint import Constraint, LabelCondition
from ..gdi.errors import (
    GdiChecksumError,
    GdiInvalidArgument,
    GdiLockFailed,
    GdiNonUniqueId,
    GdiNotFound,
    GdiObjectMismatch,
    GdiReadOnly,
    GdiSizeLimit,
    GdiStaleDptr,
    GdiStateError,
)
from ..gdi.types import Datatype, decode_value, encode_value, value_nbytes
from ..rma.faults import RmaStaleEpoch
from ..rma.membership import SHARD_FAILED, SHARD_REPAIRING
from ..rma.runtime import RankContext
from .dptr import pack_edge_uid, unpack_dptr, unpack_edge_uid
from .holder import (
    DIR_IN,
    DIR_MASK,
    DIR_OUT,
    DIR_UNDIR,
    NEED_ALL,
    NEED_ENTRIES,
    NEED_IDENT,
    NEED_TOPO,
    SLOT_HEAVY,
    EdgeHolder,
    EdgeSlot,
    StoredHolder,
    VertexHolder,
)
from .locks import (
    LockRegistry,
    LockTimeout,
    RWLock,
    acquire_read_batch,
    acquire_write_batch,
    release_batch,
    upgrade_batch,
)
from .metadata import Label, PropertyType

if TYPE_CHECKING:  # pragma: no cover
    from .database_impl import GdaDatabase

__all__ = ["Transaction", "VertexHandle", "EdgeHandle", "VolatileVertexId"]


@dataclass(frozen=True)
class VolatileVertexId:
    """A volatile internal vertex ID (Section 3.4).

    Valid only inside the transaction that produced it; using it in any
    other transaction raises :class:`~repro.gdi.errors.GdiStateError`.
    """

    token: int
    txn: int  # identity of the owning transaction

_LOCK_NONE, _LOCK_READ, _LOCK_WRITE = 0, 1, 2


@dataclass
class _TxVertex:
    """Transaction-cache entry of one vertex."""

    vid: int
    stored: StoredHolder
    lock_mode: int = _LOCK_NONE
    #: membership epoch at lock acquisition; a shard rehosted after this
    #: epoch rebuilt its lock words, so the release must be skipped
    lock_epoch: int = 0
    dirty: bool = False
    created: bool = False
    deleted: bool = False
    index_preimage: dict[str, bool] = field(default_factory=dict)
    edge_index_preimage: dict[str, bool] = field(default_factory=dict)
    #: edge-slot list as loaded (write txns only) — identity-diffed at
    #: commit to derive the replayable commit-log edge entries
    edge_preimage: "list[EdgeSlot] | None" = None
    #: label ids as loaded (write txns only) — diffed at commit to keep
    #: the directory's per-label histogram current
    label_preimage: "list[int] | None" = None
    #: holder state as loaded, copied deep enough to be immutable under
    #: this transaction's own mutations — installed in the MVCC version
    #: chain at commit (write txns with MVCC enabled only)
    mvcc_preimage: "StoredHolder | None" = None

    @property
    def holder(self) -> VertexHolder:
        return self.stored.holder  # type: ignore[return-value]


@dataclass
class _TxEdge:
    """Transaction-cache entry of one heavyweight edge holder."""

    dptr: int
    stored: StoredHolder
    dirty: bool = False
    created: bool = False
    deleted: bool = False
    #: (src_app, dst_app) when supplied by the bulk loader, so commit
    #: logging needs no remote reads to resolve application IDs
    app_ids: "tuple[int, int] | None" = None
    #: holder state as loaded (see :attr:`_TxVertex.mvcc_preimage`)
    mvcc_preimage: "StoredHolder | None" = None

    @property
    def holder(self) -> EdgeHolder:
        return self.stored.holder  # type: ignore[return-value]


def _frozen_copy(stored: StoredHolder) -> StoredHolder:
    """Copy a holder deep enough to serve as an MVCC pre-image.

    The committing transaction mutates its cached holders in place
    (labels/properties/edge-slot lists), so the chain image must own
    those containers.  Slot objects and property blobs are shared: the
    transaction layer replaces them, it never mutates them.  Block lists
    are dropped — an image is only ever *served*, never rewritten.
    """
    h = stored.holder
    if h.kind == 1:
        ch = VertexHolder(
            app_id=h.app_id,
            labels=list(h.labels),
            properties=list(h.properties),
        )
        if h._edges is not None:
            ch._edges = list(h._edges)
        else:  # still in wire form; the buffer is immutable bytes
            ch._edges = None
            ch._slot_buf = h._slot_buf
    else:
        ch = EdgeHolder(
            src=h.src,
            dst=h.dst,
            directed=h.directed,
            labels=list(h.labels),
            properties=list(h.properties),
        )
    return StoredHolder(
        holder=ch,
        primary=stored.primary,
        parts=stored.parts,
        version=stored.version,
    )


class Transaction:
    """One GDI transaction bound to a database and a rank context."""

    def __init__(
        self,
        db: "GdaDatabase",
        ctx: RankContext,
        *,
        write: bool,
        collective: bool,
        snapshot: bool = False,
    ) -> None:
        self.db = db
        self.ctx = ctx
        self.write = write
        self.collective = collective
        #: MVCC snapshot read mode: resolve every holder read against a
        #: frozen watermark instead of taking read locks (lock-free, so
        #: an OLTP storm never blocks — and is never blocked by — this
        #: transaction).  Requires ``db.mvcc`` (GdaConfig.mvcc).
        self.snapshot = bool(snapshot) and not write and db.mvcc is not None
        self._snap = None
        self._commit_ts: int | None = None
        if self.snapshot:
            if collective:
                # every participant must read at the same watermark:
                # rank 0 begins the snapshot and broadcasts the handle,
                # the others join it (each rank holds its own refcount)
                snap0 = db.mvcc.begin_snapshot() if ctx.rank == 0 else None
                snap0 = ctx.bcast(snap0, root=0)
                self._snap = (
                    snap0 if ctx.rank == 0 else db.mvcc.share(snap0)
                )
            else:
                self._snap = db.mvcc.begin_snapshot()
        self.open = True
        self.failed = False
        self.fail_cause: str | None = None  # per-cause abort accounting
        self._vertices: dict[int, _TxVertex] = {}
        self._edges: dict[int, _TxEdge] = {}
        self._dirty_order: list[int] = []  # the paper's dirty-block vector
        self._created_app_ids: dict[int, int] = {}  # app_id -> vid
        self._volatile_ids: dict[int, int] = {}  # volatile token -> vid
        self._bulk_slot_apps: dict[int, int] = {}  # id(slot) -> other app ID
        #: availability-layer state (all inert without a membership view)
        self._mem = getattr(ctx.rt, "membership", None)
        self._start_epoch = self._mem.epoch if self._mem is not None else 0
        self._no_log = False  # failover redo replays without re-logging
        self._logged_seq: int | None = None  # set between log append + apply

    # -- context manager: abort on error, commit must be explicit ----------
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.open:
            self.abort()

    # -- guards --------------------------------------------------------------
    def _check_open(self) -> None:
        if not self.open:
            raise GdiStateError("transaction already closed")
        if self.failed:
            raise GdiStateError(
                "transaction failed; abort it and start a new one"
            )

    def _check_write(self) -> None:
        if not self.write:
            raise GdiReadOnly("mutation inside a read-only transaction")

    def _fail(self, cause: str = "other") -> None:
        self.failed = True
        if self.fail_cause is None:
            self.fail_cause = cause

    def _deleted_in_txn(self, vid: int) -> bool:
        """Is ``vid`` a vertex this transaction has marked deleted?

        Allows re-creating an application ID whose old vertex is deleted
        within the same transaction (delete + create in one unit).
        """
        txv = self._vertices.get(vid)
        return txv is not None and txv.deleted

    def _acquire_or_fail(self, home: int) -> int:
        """Allocate a primary block or fail the transaction (no memory)."""
        from .blocks import OutOfBlocksError
        from ..gdi.errors import GdiNoMemory

        try:
            return self.db.blocks.acquire_block_anywhere(self.ctx, home)
        except OutOfBlocksError as exc:
            self._fail("nomem")
            raise GdiNoMemory(str(exc)) from exc

    # -- locking ---------------------------------------------------------------
    def _lock_of(self, vid: int) -> RWLock:
        rank, offset = self.db.blocks.lock_location(vid)
        cfg = self.db.config
        return RWLock(
            self.db.blocks.system_win,
            rank=rank,
            offset=offset,
            max_retries=cfg.lock_max_retries,
            backoff_base=cfg.lock_backoff_base,
            backoff_cap=cfg.lock_backoff_cap,
        )

    def _ensure_lock(self, txv: _TxVertex, want_write: bool) -> None:
        if self.collective or self.snapshot or txv.created:
            # collective and snapshot txns are lock-free; created
            # vertices are private until commit
            return
        want = _LOCK_WRITE if want_write else _LOCK_READ
        if txv.lock_mode >= want:
            return
        lock = self._lock_of(txv.vid)
        try:
            if txv.lock_mode == _LOCK_NONE:
                if want_write:
                    lock.acquire_write(self.ctx)
                else:
                    lock.acquire_read(self.ctx)
            else:  # read -> write upgrade
                lock.upgrade(self.ctx)
        except LockTimeout as exc:
            self._fail("lock")
            raise GdiLockFailed(str(exc)) from exc
        txv.lock_mode = want
        if self._mem is not None:
            txv.lock_epoch = self._mem.epoch
        reg = self.db.lock_registry
        if reg is not None:
            lrank, loff = self.db.blocks.lock_location(txv.vid)
            reg.note_acquire(
                self.ctx.rank,
                lrank,
                loff,
                LockRegistry.WRITE if want_write else LockRegistry.READ,
            )

    def _note_locked(self, txvs: "list[_TxVertex]", want: int) -> None:
        reg = self.db.lock_registry
        for txv in txvs:
            txv.lock_mode = want
            if reg is not None:
                lrank, loff = self.db.blocks.lock_location(txv.vid)
                reg.note_acquire(
                    self.ctx.rank,
                    lrank,
                    loff,
                    LockRegistry.WRITE
                    if want == _LOCK_WRITE
                    else LockRegistry.READ,
                )

    def _ensure_locks(self, txvs: "list[_TxVertex]", want_write: bool) -> None:
        """Batched :meth:`_ensure_lock` over already-cached vertices.

        Splits the vector into fresh acquisitions (one batched-atomic
        round via ``acquire_*_batch``) and read->write upgrades (one
        batched CAS round via ``upgrade_batch``).  Falls back to the
        scalar path when a membership view is armed (failover epochs
        must be captured per lock) or the vector degenerates.
        """
        if self.collective or self.snapshot:
            return
        want = _LOCK_WRITE if want_write else _LOCK_READ
        todo: list[_TxVertex] = []
        seen: set[int] = set()
        for txv in txvs:
            if txv.created or txv.lock_mode >= want or txv.vid in seen:
                continue
            seen.add(txv.vid)
            todo.append(txv)
        if not todo:
            return
        if self._mem is not None or len(todo) == 1:
            for txv in todo:
                self._ensure_lock(txv, want_write)
            return
        fresh = [t for t in todo if t.lock_mode == _LOCK_NONE]
        upg = [t for t in todo if t.lock_mode == _LOCK_READ]
        try:
            if fresh:
                locks = [self._lock_of(t.vid) for t in fresh]
                if want_write:
                    acquire_write_batch(self.ctx, locks)
                else:
                    acquire_read_batch(self.ctx, locks)
                self._note_locked(fresh, want)
            if upg:
                upgrade_batch(self.ctx, [self._lock_of(t.vid) for t in upg])
                self._note_locked(upg, want)
        except LockTimeout as exc:
            self._fail("lock")
            raise GdiLockFailed(str(exc)) from exc

    def _undo_lock(self, vid: int, mode: int, lock_epoch: int) -> None:
        """Release one held lock word, failover-aware.

        A shard rebuilt by a failover repair after this lock was acquired
        had its lock words zeroed, so our contribution is already gone;
        issuing the release anyway would corrupt the fresh word.
        """
        if mode == _LOCK_NONE:
            return
        lrank, loff = self.db.blocks.lock_location(vid)
        reg = self.db.lock_registry
        if reg is not None:
            reg.note_release(self.ctx.rank, lrank, loff)
        mem = self._mem

        def rebuilt() -> bool:
            return mem is not None and (
                mem.shard_state(lrank) in (SHARD_FAILED, SHARD_REPAIRING)
                or mem.rehosted_at[lrank] > lock_epoch
            )

        if rebuilt():
            return
        lock = self._lock_of(vid)
        try:
            if mode == _LOCK_READ:
                lock.release_read(self.ctx)
            else:
                lock.release_write(self.ctx)
        except RmaStaleEpoch:
            # Fenced exactly once per reconfiguration (adopt-once); the
            # epoch is adopted now.  Re-check whether the word survived
            # the reconfiguration before re-issuing.
            if rebuilt():
                return
            if mode == _LOCK_READ:
                lock.release_read(self.ctx)
            else:
                lock.release_write(self.ctx)

    def _release_locks(self) -> None:
        if self.snapshot:
            return  # never held any
        # With no membership view armed the failover-aware release checks
        # are no-ops, and every release direction is an FAA — the whole
        # vector rides one batched atomic round per distinct lock shard.
        if self._mem is None and not self.collective:
            reg = self.db.lock_registry
            pending: list[tuple[RWLock, bool]] = []
            for txv in self._vertices.values():
                if txv.created:
                    continue
                mode, txv.lock_mode = txv.lock_mode, _LOCK_NONE
                if mode == _LOCK_NONE:
                    continue
                if reg is not None:
                    lrank, loff = self.db.blocks.lock_location(txv.vid)
                    reg.note_release(self.ctx.rank, lrank, loff)
                pending.append(
                    (self._lock_of(txv.vid), mode == _LOCK_WRITE)
                )
            release_batch(self.ctx, pending)
            return
        for txv in self._vertices.values():
            if txv.created:
                continue
            mode, txv.lock_mode = txv.lock_mode, _LOCK_NONE
            self._undo_lock(txv.vid, mode, txv.lock_epoch)

    # -- vertex loading ------------------------------------------------------------
    def _load_vertex(
        self,
        vid: int,
        for_write: bool,
        expected_app_id: int | None = None,
        need: int = NEED_ALL,
    ) -> _TxVertex:
        return self.load_vertices(
            [vid],
            for_write=for_write,
            expected_app_ids=[expected_app_id],
            need=need,
        )[0]  # type: ignore[return-value]

    def load_vertices(
        self,
        vids: list[int],
        for_write: bool = False,
        expected_app_ids: list[int | None] | None = None,
        missing_ok: bool = False,
        need: int = NEED_ALL,
    ) -> "list[_TxVertex | None]":
        """Read-pipeline many vertices into the transaction cache at once.

        All uncached holders are fetched with the batched storage path
        (holder and block reads coalesce per home rank and complete in a
        fixed number of flush rounds).  Per-element validation matches the
        scalar path: a vanished holder raises :class:`GdiNotFound` (or
        yields ``None`` with ``missing_ok``), a non-vertex holder raises
        :class:`GdiObjectMismatch`, and an ``expected_app_ids`` mismatch —
        the block was recycled between translate and associate — counts as
        a read miss.  Locks are taken *before* the batched read (2PL) and
        rolled back for any element that fails validation.

        ``need`` is a holder-parts projection mask (see
        :mod:`repro.gda.holder`): read-only callers that will only follow
        edges pass ``NEED_TOPO`` and skip the property bytes entirely.
        Write transactions always load full holders (preimages and
        rewrites need the complete payload); cached entries missing a
        requested part are hydrated in place with one batched re-read.
        """
        self._check_open()
        if for_write:
            self._check_write()
        if self.write:
            # preimage capture and commit rewrites need whole holders
            need = NEED_ALL
        if self.snapshot:
            # full-span reads carry the CRC end to end, so a torn read
            # under a concurrent lock-free rewrite surfaces as a checksum
            # failure and retries against the version chain
            need = NEED_ALL
        need |= NEED_IDENT
        if expected_app_ids is None:
            expected_app_ids = [None] * len(vids)
        results: list[_TxVertex | None] = [None] * len(vids)
        fetch_idx: list[int] = []
        placeholders: dict[int, _TxVertex] = {}
        expected_by_vid: dict[int, int] = {}
        hydrate: list[_TxVertex] = []
        hydrate_ids: set[int] = set()
        # Pass 1: serve cache hits (and fail fast on in-txn deletions)
        # before taking any new locks.  Lock ensures for the hits are
        # themselves batched (fresh acquisitions and read->write
        # upgrades each ride one atomic round).
        cached: list[_TxVertex] = []
        reloc = self.db.relocations
        for i, vid in enumerate(vids):
            if reloc and vid in reloc:
                # the DPTR predates a rebalance: the vertex vacated this
                # block, and reading through it would return whatever
                # lives there now (stale-DPTR hazard, Section 3.4)
                raise GdiStaleDptr(
                    f"internal ID {vid:#x} predates a vertex relocation "
                    f"(placement epoch {self.db.placement_epoch}); "
                    "re-translate the application ID or use volatile IDs",
                    fresh_vid=reloc[vid],
                )
            txv = self._vertices.get(vid)
            if txv is not None:
                if txv.deleted:
                    if missing_ok:
                        continue
                    raise GdiNotFound(
                        f"vertex {vid:#x} deleted in this transaction"
                    )
                cached.append(txv)
                if (
                    txv.stored.parts & need
                ) != need and vid not in hydrate_ids:
                    hydrate.append(txv)
                    hydrate_ids.add(vid)
                results[i] = txv
            else:
                fetch_idx.append(i)
                if expected_app_ids[i] is not None:
                    expected_by_vid.setdefault(vid, expected_app_ids[i])
        if cached:
            self._ensure_locks(cached, for_write)
        if hydrate:
            self._hydrate_parts(hydrate, need)
        # Pass 2: lock *before* reading so the fetched holders are stable
        # (2PL); a lock failure mid-batch rolls back the locks already
        # taken for this batch (they are not yet owned by the cache).
        for i in fetch_idx:
            vid = vids[i]
            if vid not in placeholders:
                # duplicates in this batch: one lock, one fetch
                placeholders[vid] = _TxVertex(vid=vid, stored=None)  # type: ignore[arg-type]
        if self.snapshot:
            # Lock-free watermark reads: no locks, no placeholders owned;
            # chain-covered vids are served from their pre-images, the
            # rest from the live blocks after version validation.
            if placeholders:
                err = self._snapshot_load(
                    list(placeholders), need, expected_by_vid, missing_ok
                )
                if err is not None:
                    raise err
            for i in fetch_idx:
                results[i] = self._vertices.get(vids[i])
            return results
        if (
            not self.collective
            and self._mem is None
            and len(placeholders) > 1
        ):
            # Fast path: no failover bookkeeping armed, so the optimistic
            # acquisitions for the whole batch ride one doorbell batch of
            # atomics (all-or-nothing; the helper rolls back on timeout).
            locks = [self._lock_of(v) for v in placeholders]
            try:
                if for_write:
                    acquire_write_batch(self.ctx, locks)
                else:
                    acquire_read_batch(self.ctx, locks)
            except LockTimeout as exc:
                self._fail("lock")
                raise GdiLockFailed(str(exc)) from exc
            want = _LOCK_WRITE if for_write else _LOCK_READ
            reg = self.db.lock_registry
            for vid, placeholder in placeholders.items():
                placeholder.lock_mode = want
                if reg is not None:
                    lrank, loff = self.db.blocks.lock_location(vid)
                    reg.note_acquire(
                        self.ctx.rank,
                        lrank,
                        loff,
                        LockRegistry.WRITE if for_write else LockRegistry.READ,
                    )
        else:
            acquired: list[_TxVertex] = []
            for placeholder in placeholders.values():
                try:
                    self._ensure_lock(placeholder, for_write)
                except BaseException:
                    for p in acquired:
                        self._rollback_placeholder_lock(p)
                    raise
                acquired.append(placeholder)
        fetch_vids = list(placeholders)
        if fetch_vids:
            try:
                stored_list = self.db.storage.read_many(
                    self.ctx, fetch_vids, missing_ok=True, need=need
                )
            except BaseException:
                for p in placeholders.values():
                    self._rollback_placeholder_lock(p)
                raise
            error: BaseException | None = None
            for vid, stored in zip(fetch_vids, stored_list):
                placeholder = placeholders[vid]
                if stored is None:
                    # The holder vanished between the ID translation and
                    # this read (vertex deleted, block freed): a normal
                    # read-miss outcome.
                    self._rollback_placeholder_lock(placeholder)
                    if not missing_ok and error is None:
                        error = GdiNotFound(
                            f"vertex {vid:#x} no longer exists"
                        )
                    continue
                if stored.holder.kind != 1:
                    self._rollback_placeholder_lock(placeholder)
                    if error is None:
                        error = GdiObjectMismatch(f"{vid:#x} is not a vertex")
                    continue
                expected = expected_by_vid.get(vid)
                if expected is not None and stored.holder.app_id != expected:
                    self._rollback_placeholder_lock(placeholder)
                    if not missing_ok and error is None:
                        error = GdiNotFound(
                            f"vertex {vid:#x} was recycled (expected "
                            f"application ID {expected}, found "
                            f"{stored.holder.app_id})"
                        )
                    continue
                txv = _TxVertex(
                    vid=vid,
                    stored=stored,
                    lock_mode=placeholder.lock_mode,
                    lock_epoch=placeholder.lock_epoch,
                )
                self._vertices[vid] = txv
                if self.write:
                    if self.db.mvcc is not None:
                        # the pre-image this commit will chain-install
                        txv.mvcc_preimage = _frozen_copy(stored)
                    # capture the slot identities for the commit-log diff
                    txv.edge_preimage = list(stored.holder.edges)
                    txv.label_preimage = list(stored.holder.labels)
                    # index preimages are only consulted by the commit
                    # apply phase, so read transactions skip them (their
                    # holders may be projections without entries anyway)
                    txv.index_preimage = self._index_matches(stored.holder)
                    txv.edge_index_preimage = self._edge_index_matches(txv)
            if error is not None:
                raise error
            for i in fetch_idx:
                results[i] = self._vertices.get(vids[i])
        return results

    def _rollback_placeholder_lock(self, placeholder: _TxVertex) -> None:
        if self.collective or self.snapshot:
            return
        self._undo_lock(
            placeholder.vid, placeholder.lock_mode, placeholder.lock_epoch
        )

    # -- snapshot (MVCC) reads ---------------------------------------------
    def _snapshot_load(
        self,
        fetch_vids: "list[int]",
        need: int,
        expected_by_vid: "dict[int, int]",
        missing_ok: bool,
    ) -> BaseException | None:
        """Batched lock-free vertex load at the snapshot watermark.

        Visibility rule (:mod:`repro.mvcc.versions`): a chain entry with
        ``boundary_ts > W`` serves the vid's state at ``W``; otherwise
        the live blocks are authoritative, validated by the version
        stamped in the holder header being ``<= W``.  A too-new version,
        a reused block, or a checksum failure all mean a commit after
        the watermark is (re)writing the holder — its pre-image is
        already installed (install-before-rewrite), so the vid simply
        re-resolves against the chain on the next attempt.  Returns the
        first per-element validation error instead of raising so the
        caller keeps the scalar path's error precedence.
        """
        mvcc = self.db.mvcc
        w = self._snap.watermark
        trace = self.ctx.rt.trace
        rank = self.ctx.rank
        error: BaseException | None = None

        def miss(why: str) -> None:
            nonlocal error
            if not missing_ok and error is None:
                error = GdiNotFound(why)

        def serve(vid: int, stored: StoredHolder) -> None:
            nonlocal error
            expected = expected_by_vid.get(vid)
            if expected is not None and stored.holder.app_id != expected:
                # the block was recycled relative to the caller's ID
                # translation: that vertex did not live here at W
                miss(
                    f"vertex {vid:#x} was recycled (expected application "
                    f"ID {expected}, found {stored.holder.app_id})"
                )
                return
            self._vertices[vid] = _TxVertex(vid=vid, stored=stored)

        pending = list(fetch_vids)
        for _ in range(4):
            live: list[int] = []
            for vid in pending:
                hit, image = mvcc.versions.resolve(("v", vid), w)
                if hit:
                    trace.record_snapshot_read(rank)
                    if image is None:
                        miss(
                            f"vertex {vid:#x} absent at snapshot "
                            f"watermark {w}"
                        )
                    else:
                        serve(vid, image)
                else:
                    live.append(vid)
            if not live:
                return error
            try:
                stored_list = self.db.storage.read_many(
                    self.ctx, live, missing_ok=True, need=need
                )
            except GdiChecksumError:
                pending = live  # torn read under a concurrent rewrite
                continue
            pending = []
            for vid, stored in zip(live, stored_list):
                if stored is None:
                    if mvcc.versions.covered(("v", vid), w):
                        # deleted by a commit > W between our chain pass
                        # and the read; the fresh entry serves W
                        pending.append(vid)
                        continue
                    # no chain entry and no live holder: never existed
                    # at W, or was deleted at a commit <= W
                    miss(f"vertex {vid:#x} no longer exists")
                    continue
                if stored.version > w:
                    pending.append(vid)  # rewritten after W: re-resolve
                    continue
                if stored.holder.kind != 1:
                    if mvcc.versions.covered(("v", vid), w):
                        pending.append(vid)  # block reused; chain serves
                    elif error is None:
                        error = GdiObjectMismatch(f"{vid:#x} is not a vertex")
                    continue
                trace.record_snapshot_read(rank)
                serve(vid, stored)
            if not pending:
                return error
        raise GdiStateError(
            f"snapshot read of {len(pending)} vid(s) did not stabilize "
            f"after 4 attempts (watermark {w})"
        )

    @property
    def snapshot_watermark(self) -> int | None:
        """The frozen watermark of a snapshot transaction, else ``None``."""
        return self._snap.watermark if self._snap is not None else None

    def visible_vertices(self, live_vids, shard: int) -> "list[int]":
        """Snapshot-aware vid enumeration for directory sweeps.

        The live directory misses vertices deleted after the watermark
        (the unpublish tombstones recover them) and includes vertices
        created after it (those resolve to absent through the chain, so
        callers must associate with ``missing_ok=True`` and drop the
        ``None`` results).  Outside snapshot mode this is the identity.
        """
        vids = list(live_vids)
        if not self.snapshot:
            return vids
        extra = self.db.mvcc.deleted_vids(shard, self._snap.watermark)
        if extra:
            seen = set(vids)
            vids.extend(v for v in extra if v not in seen)
        return vids

    def _close_snapshot(self) -> None:
        if self._snap is not None:
            self._snap.close()
            self._snap = None

    # -- part hydration (projected reads) ---------------------------------
    def _ensure_parts(self, txv: _TxVertex, need: int) -> None:
        """Hydrate one cached vertex so the requested parts are present."""
        if txv.created or txv.deleted:
            return
        if (txv.stored.parts & need) == need:
            return
        self._hydrate_parts([txv], need)

    def _hydrate_parts(self, txvs: "list[_TxVertex]", need: int) -> None:
        """Batched in-place hydration of cached projection holders.

        Re-reads only the missing payload parts (the holders are stable:
        this transaction holds their locks, or runs collectively under
        the no-concurrent-writer contract) and merges them into the
        *existing* holder objects, so handles and edge-slot identities
        held by the caller stay valid.
        """
        want = [
            t
            for t in txvs
            if not t.created and (t.stored.parts & need) != need
        ]
        if not want:
            return
        masks = [
            ((need & ~t.stored.parts) | NEED_IDENT) for t in want
        ]
        fresh_list = self.db.storage.read_many(
            self.ctx, [t.vid for t in want], missing_ok=False, need=masks
        )
        for txv, fresh in zip(want, fresh_list):
            holder = txv.stored.holder
            fholder = fresh.holder
            got = fresh.parts
            if got & NEED_ENTRIES and not txv.stored.parts & NEED_ENTRIES:
                holder.labels = fholder.labels
                holder.properties = fholder.properties
            if (
                got & NEED_TOPO
                and not txv.stored.parts & NEED_TOPO
                and holder._edges is None
            ):
                if fholder._edges is not None:
                    holder._edges = fholder._edges
                else:
                    holder._slot_buf = fholder._slot_buf
            txv.stored.data_blocks = fresh.data_blocks
            txv.stored.index_blocks = fresh.index_blocks
            txv.stored.parts |= got

    def _index_matches(self, holder) -> dict[str, bool]:
        dtype_of = self.db.replica(self.ctx).dtype_of
        return {
            name: idx.matches(holder, dtype_of)
            for name, idx in self.db.indexes.items()
        }

    def _edge_index_matches(self, txv: _TxVertex) -> dict[str, bool]:
        if not self.db.edge_indexes:
            return {}
        return {
            name: idx.source_matches(self, txv)
            for name, idx in self.db.edge_indexes.items()
        }

    def _mark_dirty(self, txv: _TxVertex) -> None:
        if not txv.dirty:
            txv.dirty = True
            self._dirty_order.append(txv.vid)

    def read_holder(self, vid: int) -> StoredHolder:
        """Raw holder access (index building, analytics fast paths)."""
        return self._load_vertex(vid, for_write=False).stored

    # -- ID translation (Section 3.4) --------------------------------------------------
    def translate_vertex_id(self, app_id: int, volatile: bool = False):
        """``GDI_TranslateVertexID``: application ID -> internal ID.

        GDI offers two internal-ID flavours (Section 3.4):

        * **permanent** (default here): the raw 64-bit DPtr, shareable
          across transactions — fewer translations, but pins the vertex's
          placement;
        * **volatile** (``volatile=True``): a :class:`VolatileVertexId`
          valid *only inside this transaction*, which lets the
          implementation relocate data between transactions (dynamic load
          balancing) without fear of stale IDs.
        """
        self._check_open()
        app_id = int(app_id)  # accept numpy integers
        if app_id in self._created_app_ids:
            vid = self._created_app_ids[app_id]
        else:
            vid = self.db.dht.lookup(self.ctx, app_id)
            if vid is None and self.snapshot:
                # deleted after the watermark: the unpublish tombstone
                # recovers the vid that carried the ID at the snapshot
                vid = self.db.mvcc.lookup_unpublished(
                    app_id, self._snap.watermark
                )
            if vid is None:
                raise GdiNotFound(f"no vertex with application ID {app_id}")
        if not volatile:
            return vid
        token = VolatileVertexId(token=len(self._volatile_ids), txn=id(self))
        self._volatile_ids[token.token] = vid
        return token

    def _resolve_vid(self, vid) -> int:
        if isinstance(vid, VolatileVertexId):
            if vid.txn != id(self):
                raise GdiStateError(
                    "volatile internal ID used outside the transaction "
                    "that obtained it (Section 3.4)"
                )
            return self._volatile_ids[vid.token]
        return vid

    def find_vertex(self, app_id: int) -> "VertexHandle | None":
        """Convenience: translate + associate, ``None`` if absent.

        Validates that the holder still belongs to ``app_id``, guarding
        against the translate/associate race with a concurrent delete
        that recycled the primary block.
        """
        return self.find_vertices([app_id])[0]

    def find_vertices(
        self, app_ids: list[int], need: int = NEED_ALL
    ) -> "list[VertexHandle | None]":
        """Batched :meth:`find_vertex`: one handle (or ``None``) per ID.

        Translations resolve through one batched DHT lookup and the
        holders through one pipelined storage read, so the network rounds
        are bounded by chain/indirection depth rather than the ID count.
        ``need`` projects the read onto the holder parts the caller will
        touch (see :meth:`load_vertices`).
        """
        self._check_open()
        app_ids = [int(a) for a in app_ids]
        vids: list[int | None] = [None] * len(app_ids)
        to_lookup: list[int] = []
        for i, app_id in enumerate(app_ids):
            if app_id in self._created_app_ids:
                vids[i] = self._created_app_ids[app_id]
            else:
                to_lookup.append(i)
        if to_lookup:
            found = self.db.dht.lookup_many(
                self.ctx, [app_ids[i] for i in to_lookup]
            )
            for i, vid in zip(to_lookup, found):
                vids[i] = vid
        if self.snapshot:
            # IDs the live DHT no longer maps were deleted after the
            # watermark; the unpublish tombstones recover the vid that
            # carried each one at the snapshot
            for i in to_lookup:
                if vids[i] is None:
                    vids[i] = self.db.mvcc.lookup_unpublished(
                        app_ids[i], self._snap.watermark
                    )
        present = [i for i in range(len(app_ids)) if vids[i] is not None]
        loaded = self.load_vertices(
            [vids[i] for i in present],
            for_write=False,
            expected_app_ids=[app_ids[i] for i in present],
            missing_ok=True,
            need=need,
        )
        out: list[VertexHandle | None] = [None] * len(app_ids)
        for i, txv in zip(present, loaded):
            if txv is not None:
                out[i] = VertexHandle(self, txv)
        if self.snapshot:
            # second chance: a live DHT hit can point at a vertex created
            # after the watermark that reuses a deleted application ID;
            # the tombstoned predecessor is the one visible at W
            again = [
                (i, self.db.mvcc.lookup_unpublished(
                    app_ids[i], self._snap.watermark
                ))
                for i, txv in zip(present, loaded)
                if txv is None
            ]
            again = [(i, alt) for i, alt in again
                     if alt is not None and alt != vids[i]]
            if again:
                reloaded = self.load_vertices(
                    [alt for _, alt in again],
                    for_write=False,
                    expected_app_ids=[app_ids[i] for i, _ in again],
                    missing_ok=True,
                    need=need,
                )
                for (i, _), txv in zip(again, reloaded):
                    if txv is not None:
                        out[i] = VertexHandle(self, txv)
        return out

    # -- vertex CRUD ------------------------------------------------------------------------
    def create_vertex(
        self,
        app_id: int,
        labels: Iterable[Label] = (),
        properties: Iterable[tuple[PropertyType, Any]] = (),
    ) -> "VertexHandle":
        """``GDI_CreateVertex``: new vertex, private until commit."""
        self._check_open()
        self._check_write()
        app_id = int(app_id)  # accept numpy integers
        if app_id in self._created_app_ids and not self._deleted_in_txn(
            self._created_app_ids[app_id]
        ):
            self._fail("nonunique")
            raise GdiNonUniqueId(f"application ID {app_id} created twice")
        existing = self.db.dht.lookup(self.ctx, app_id)
        if existing is not None and not self._deleted_in_txn(existing):
            self._fail("nonunique")
            raise GdiNonUniqueId(f"application ID {app_id} already in use")
        return self._create_checked(app_id, labels, properties)

    def create_vertices(
        self,
        specs: "list[tuple[int, Iterable[Label], Iterable[tuple[PropertyType, Any]]]]",
    ) -> "list[VertexHandle]":
        """Batched ``GDI_CreateVertex``: one DHT probe for all new IDs.

        ``specs`` is ``(app_id, labels, properties)`` triples.  The
        uniqueness prechecks for the whole batch resolve through a single
        batched DHT lookup instead of one round trip per vertex; a
        non-unique ID fails the transaction exactly like the scalar path.
        """
        self._check_open()
        self._check_write()
        app_ids = [int(a) for a, _, _ in specs]
        found = self.db.dht.lookup_many(self.ctx, app_ids)
        handles: list[VertexHandle] = []
        for (app_id, labels, properties), existing in zip(specs, found):
            app_id = int(app_id)
            if app_id in self._created_app_ids and not self._deleted_in_txn(
                self._created_app_ids[app_id]
            ):
                self._fail("nonunique")
                raise GdiNonUniqueId(
                    f"application ID {app_id} created twice"
                )
            if existing is not None and not self._deleted_in_txn(existing):
                self._fail("nonunique")
                raise GdiNonUniqueId(
                    f"application ID {app_id} already in use"
                )
            handles.append(self._create_checked(app_id, labels, properties))
        return handles

    def _create_checked(
        self,
        app_id: int,
        labels: Iterable[Label] = (),
        properties: Iterable[tuple[PropertyType, Any]] = (),
    ) -> "VertexHandle":
        """Create a vertex whose uniqueness precheck already passed."""
        home = self.db.home_rank(app_id)
        primary = self._acquire_or_fail(home)
        # a recycled block is a live vertex again, not a stale DPTR
        self.db.relocations.pop(primary, None)
        holder = VertexHolder(app_id=app_id)
        txv = _TxVertex(
            vid=primary,
            stored=StoredHolder(holder=holder, primary=primary),
            lock_mode=_LOCK_WRITE,
            created=True,
        )
        txv.index_preimage = {name: False for name in self.db.indexes}
        txv.edge_index_preimage = {name: False for name in self.db.edge_indexes}
        self._vertices[primary] = txv
        self._mark_dirty(txv)
        self._created_app_ids[app_id] = primary
        handle = VertexHandle(self, txv)
        for label in labels:
            handle.add_label(label)
        for ptype, value in properties:
            handle.set_property(ptype, value)
        return handle

    def associate_vertex(self, vid, need: int = NEED_ALL) -> "VertexHandle":
        """``GDI_AssociateVertex``: make a handle for an existing vertex.

        Accepts both permanent (raw DPtr) and volatile internal IDs.
        """
        return VertexHandle(
            self,
            self._load_vertex(
                self._resolve_vid(vid), for_write=False, need=need
            ),
        )

    def associate_vertices(
        self, vids, missing_ok: bool = False, need: int = NEED_ALL
    ) -> "list[VertexHandle | None]":
        """Batched ``GDI_AssociateVertex``: one pipelined read for all IDs.

        Neighborhood expansions (analytics, GNN sampling, BI traversals)
        use this to fetch a whole frontier's holders with coalesced
        per-rank messages instead of one round trip per vertex.  With
        ``missing_ok`` deleted/recycled vertices yield ``None`` instead of
        raising, matching the scalar try/except-``GdiNotFound`` idiom.
        ``need`` projects the fetch onto the holder parts the caller will
        touch (see :meth:`load_vertices`).
        """
        resolved = [self._resolve_vid(v) for v in vids]
        loaded = self.load_vertices(
            resolved, for_write=False, missing_ok=missing_ok, need=need
        )
        return [
            VertexHandle(self, txv) if txv is not None else None
            for txv in loaded
        ]

    def delete_vertex(self, handle: "VertexHandle") -> None:
        """``GDI_FreeVertex`` (delete): remove vertex and incident edges.

        Expensive by design: every incident edge's counterpart slot on the
        neighboring vertex must be removed, which write-locks each
        neighbor (Figure 5 shows vertex deletion as the slowest OLTP op).
        All neighbors are write-locked and fetched in one batched load
        instead of one round trip per incident edge.
        """
        self._check_open()
        self._check_write()
        txv = handle._txv
        self._ensure_lock(txv, want_write=True)
        slots = list(txv.holder.edges)
        # resolve the far endpoints first (heavy slots read their edge
        # holder), then pull every distinct neighbor in one batched load
        others: list[int] = []
        for slot in slots:
            other_vid = self._slot_other_endpoint(txv.vid, slot)
            others.append(other_vid)
            if slot.heavy:
                self._mark_edge_holder_deleted(slot.dptr)
        distinct = sorted({o for o in others if o != txv.vid})
        if distinct:
            self.load_vertices(distinct, for_write=True)
        for slot, other_vid in zip(slots, others):
            if other_vid != txv.vid:
                other = self._vertices[other_vid]
                self._remove_reciprocal_slot(other, txv.vid, slot)
                self._mark_dirty(other)
        txv.holder.edges.clear()
        txv.deleted = True
        self._mark_dirty(txv)

    # -- vertex mutation helpers (used by VertexHandle) ---------------------------------------
    def _mutate(self, txv: _TxVertex) -> VertexHolder:
        self._check_open()
        self._check_write()
        if txv.deleted:
            raise GdiNotFound("vertex deleted in this transaction")
        self._ensure_lock(txv, want_write=True)
        self._ensure_parts(txv, NEED_ALL)
        self._mark_dirty(txv)
        return txv.holder

    # -- edges ------------------------------------------------------------------------------------
    def create_edge(
        self,
        src: "VertexHandle",
        dst: "VertexHandle",
        *,
        label: Label | None = None,
        directed: bool = True,
        labels: Iterable[Label] = (),
        properties: Iterable[tuple[PropertyType, Any]] = (),
        force_heavy: bool = False,
    ) -> "EdgeHandle":
        """``GDI_CreateEdge``.

        Becomes a *lightweight* edge (stored inline in the source holder,
        at most one label, no properties — Section 5.4.2) whenever
        possible; otherwise (or when ``force_heavy``) a heavyweight edge
        holder is created.
        """
        self._check_open()
        self._check_write()
        if src._tx is not self or dst._tx is not self:
            raise GdiObjectMismatch("handles belong to another transaction")
        label_list = list(labels)
        if label is not None:
            label_list.insert(0, label)
        props = [
            (pt, self._encode_property(pt, value)) for pt, value in properties
        ]
        heavy = force_heavy or bool(props) or len(label_list) > 1
        src_holder = self._mutate(src._txv)
        dst_txv = dst._txv
        if heavy:
            home = unpack_dptr(src._txv.vid).rank
            edge_holder = EdgeHolder(
                src=src._txv.vid,
                dst=dst_txv.vid,
                directed=directed,
                labels=[l.int_id for l in label_list],
                properties=[(pt.int_id, blob) for pt, blob in props],
            )
            eptr = self._acquire_or_fail(home)
            self._edges[eptr] = _TxEdge(
                dptr=eptr,
                stored=StoredHolder(holder=edge_holder, primary=eptr),
                created=True,
                dirty=True,
            )
            fwd = EdgeSlot(eptr, 0, (DIR_OUT if directed else DIR_UNDIR) | SLOT_HEAVY)
            rev = EdgeSlot(eptr, 0, (DIR_IN if directed else DIR_UNDIR) | SLOT_HEAVY)
        else:
            lid = label_list[0].int_id if label_list else 0
            fwd = EdgeSlot(dst_txv.vid, lid, DIR_OUT if directed else DIR_UNDIR)
            rev = EdgeSlot(src._txv.vid, lid, DIR_IN if directed else DIR_UNDIR)
        src_holder.edges.append(fwd)
        if dst_txv.vid != src._txv.vid:
            dst_holder = self._mutate(dst_txv)
            dst_holder.edges.append(rev)
        elif directed:
            # directed self-loop: the vertex sees it both outgoing and
            # incoming; undirected self-loops keep a single slot.
            src_holder.edges.append(rev)
        return EdgeHandle(self, src._txv, fwd)

    def associate_edge(self, uid: bytes) -> "EdgeHandle":
        """``GDI_AssociateEdge``: resolve a 12-byte edge UID to a handle."""
        self._check_open()
        vid, slot_idx = unpack_edge_uid(uid)
        txv = self._load_vertex(vid, for_write=False)
        if slot_idx >= len(txv.holder.edges):
            raise GdiNotFound(f"edge slot {slot_idx} out of range")
        return EdgeHandle(self, txv, txv.holder.edges[slot_idx])

    def delete_edge(self, handle: "EdgeHandle") -> None:
        """``GDI_FreeEdge`` (delete): remove both endpoint slots."""
        self._check_open()
        self._check_write()
        txv = handle._base
        slot = handle._slot
        holder = self._mutate(txv)
        removed = _remove_by_identity(holder.edges, slot)
        if not removed:
            raise GdiNotFound("edge already removed in this transaction")
        other_vid = self._slot_other_endpoint(txv.vid, slot)
        if slot.heavy:
            self._mark_edge_holder_deleted(slot.dptr)
        if other_vid != txv.vid:
            other = self._load_vertex(other_vid, for_write=True)
            self._remove_reciprocal_slot(other, txv.vid, slot)
            self._mark_dirty(other)
        elif slot.direction != DIR_UNDIR:
            # directed self-loop: drop the complementary slot too
            self._remove_reciprocal_slot(txv, txv.vid, slot)

    def bulk_append_half_edge(
        self,
        vid: int,
        other_vid: int,
        direction: int,
        label_id: int = 0,
        heavy_dptr: int | None = None,
        other_app_id: int | None = None,
    ) -> None:
        """Bulk-ingestion fast path: append one edge slot to ``vid``.

        Used by the bulk data-loading collectives (Section 4, BULK): the
        loader exchanges edges so that each rank appends only to vertices
        it owns, making lock-free collective write transactions safe.  The
        caller is responsible for appending the reciprocal slot on the
        other endpoint (usually in a second exchange phase).  When
        ``heavy_dptr`` is given the slot references that heavyweight edge
        holder instead of the neighbor vertex.  Pass ``other_app_id``
        (the loader already knows it) so commit logging resolves the
        neighbor's application ID without a remote read.
        """
        if not self.collective:
            raise GdiStateError(
                "bulk_append_half_edge requires a collective transaction"
            )
        txv = self._load_vertex(vid, for_write=True)
        if heavy_dptr is not None:
            slot = EdgeSlot(heavy_dptr, 0, direction | SLOT_HEAVY)
        else:
            slot = EdgeSlot(other_vid, label_id, direction)
            if other_app_id is not None:
                self._bulk_slot_apps[id(slot)] = int(other_app_id)
        txv.holder.edges.append(slot)
        self._mark_dirty(txv)

    def bulk_create_edge_holder(
        self,
        src_vid: int,
        dst_vid: int,
        *,
        directed: bool = True,
        labels: Iterable[Label] = (),
        properties: Iterable[tuple[PropertyType, Any]] = (),
        src_app_id: int | None = None,
        dst_app_id: int | None = None,
    ) -> int:
        """Bulk-ingestion fast path: materialize a heavyweight edge holder.

        Returns its DPtr; the caller routes it to both endpoints' owners,
        which attach the slots with :meth:`bulk_append_half_edge`.  Pass
        the endpoint application IDs (the loader already knows them) so
        commit logging needs no remote reads to resolve them.
        """
        if not self.collective:
            raise GdiStateError(
                "bulk_create_edge_holder requires a collective transaction"
            )
        self._check_open()
        self._check_write()
        props = [
            (pt.int_id, self._encode_property(pt, value))
            for pt, value in properties
        ]
        holder = EdgeHolder(
            src=src_vid,
            dst=dst_vid,
            directed=directed,
            labels=[l.int_id for l in labels],
            properties=props,
        )
        eptr = self._acquire_or_fail(unpack_dptr(src_vid).rank)
        self._edges[eptr] = _TxEdge(
            dptr=eptr,
            stored=StoredHolder(holder=holder, primary=eptr),
            created=True,
            dirty=True,
            app_ids=(
                (int(src_app_id), int(dst_app_id))
                if src_app_id is not None and dst_app_id is not None
                else None
            ),
        )
        return eptr

    def _slot_other_endpoint(self, base_vid: int, slot: EdgeSlot) -> int:
        if not slot.heavy:
            return slot.dptr
        e = self._load_edge_holder(slot.dptr)
        h = e.holder
        return h.dst if h.src == base_vid else h.src

    def _remove_reciprocal_slot(
        self, other: _TxVertex, base_vid: int, slot: EdgeSlot
    ) -> None:
        """Remove one slot on ``other`` matching the reciprocal of ``slot``."""
        want_dir = _reciprocal_direction(slot.direction)
        for cand in other.holder.edges:
            if cand is slot:
                continue
            if slot.heavy:
                if cand.heavy and cand.dptr == slot.dptr:
                    _remove_by_identity(other.holder.edges, cand)
                    return
            elif (
                not cand.heavy
                and cand.dptr == base_vid
                and cand.label_id == slot.label_id
                and cand.direction == want_dir
            ):
                _remove_by_identity(other.holder.edges, cand)
                return
        # The reciprocal slot must exist if the graph is consistent.
        raise GdiStateError(
            f"reciprocal edge slot missing on vertex {other.vid:#x}"
        )

    # -- heavy edge holders -------------------------------------------------------------------------
    def _load_edge_holder(self, eptr: int) -> _TxEdge:
        txe = self._edges.get(eptr)
        if txe is not None:
            if txe.deleted:
                raise GdiNotFound("edge deleted in this transaction")
            return txe
        if self.snapshot:
            return self._snapshot_load_edge(eptr)
        stored = self.db.storage.read(self.ctx, eptr)
        if stored.holder.kind != 2:
            raise GdiObjectMismatch(f"{eptr:#x} is not an edge holder")
        txe = _TxEdge(dptr=eptr, stored=stored)
        if self.write and self.db.mvcc is not None:
            txe.mvcc_preimage = _frozen_copy(stored)
        self._edges[eptr] = txe
        return txe

    def _snapshot_load_edge(self, eptr: int) -> _TxEdge:
        """Lock-free heavyweight-edge load at the snapshot watermark
        (same visibility rule and retry shape as :meth:`_snapshot_load`)."""
        mvcc = self.db.mvcc
        w = self._snap.watermark
        trace = self.ctx.rt.trace
        for _ in range(4):
            hit, image = mvcc.versions.resolve(("e", eptr), w)
            if hit:
                trace.record_snapshot_read(self.ctx.rank)
                if image is None:
                    raise GdiNotFound(
                        f"edge holder {eptr:#x} absent at snapshot "
                        f"watermark {w}"
                    )
                txe = _TxEdge(dptr=eptr, stored=image)
                self._edges[eptr] = txe
                return txe
            try:
                stored = self.db.storage.read_many(
                    self.ctx, [eptr], missing_ok=True
                )[0]
            except GdiChecksumError:
                continue  # torn read: the writer installed its pre-image
            if stored is None:
                if mvcc.versions.covered(("e", eptr), w):
                    continue  # deleted after W mid-read; chain serves
                raise GdiNotFound(
                    f"edge holder {eptr:#x} absent at snapshot watermark {w}"
                )
            if stored.version > w:
                continue  # rewritten after the watermark: re-resolve
            if stored.holder.kind != 2:
                if mvcc.versions.covered(("e", eptr), w):
                    continue  # block reused; the chain serves W
                raise GdiObjectMismatch(f"{eptr:#x} is not an edge holder")
            trace.record_snapshot_read(self.ctx.rank)
            txe = _TxEdge(dptr=eptr, stored=stored)
            self._edges[eptr] = txe
            return txe
        raise GdiStateError(
            f"snapshot read of edge holder {eptr:#x} did not stabilize "
            f"after 4 attempts (watermark {w})"
        )

    def _mark_edge_holder_deleted(self, eptr: int) -> None:
        txe = self._load_edge_holder(eptr)
        txe.deleted = True
        txe.dirty = True

    # -- property encoding with the Section 3.7 hints ---------------------------------------------------
    def _encode_property(self, ptype: PropertyType, value: Any) -> bytes:
        blob = encode_value(ptype.dtype, value)
        n = value_nbytes(ptype.dtype, value)
        if ptype.size_type == SizeType.FIXED and n != ptype.size_limit:
            raise GdiSizeLimit(
                f"{ptype.name}: value size {n} != fixed size {ptype.size_limit}"
            )
        if ptype.size_type == SizeType.MAX and n > ptype.size_limit:
            raise GdiSizeLimit(
                f"{ptype.name}: value size {n} exceeds limit {ptype.size_limit}"
            )
        return blob

    # -- commit / abort ------------------------------------------------------------------------------------
    def commit(self) -> None:
        """``GDI_CloseTransaction``: write back, publish, unlock."""
        self._check_open()
        if self.collective:
            self.ctx.barrier()
        stats = self.db.stats[self.ctx.rank]
        try:
            if self.write:
                self._commit_writes()
        except BaseException:
            self._abort_logged_commit()
            self._release_locks()
            self._close_snapshot()
            self.open = False
            stats.aborted += 1
            if self.failed:
                stats.failed += 1
                stats.count_failure(self.fail_cause or "other")
            raise
        self._release_locks()
        self._close_snapshot()
        self.open = False
        stats.committed += 1
        if self.collective:
            self.db.dht.quiesce(self.ctx)

    def _commit_writes(self) -> None:
        ctx = self.ctx
        # Final uniqueness validation of created application IDs, one
        # batched DHT lookup for all of them.
        created_ids = list(self._created_app_ids)
        if created_ids:
            found = self.db.dht.lookup_many(ctx, created_ids)
            for app_id, existing in zip(created_ids, found):
                if existing is not None and not self._deleted_in_txn(existing):
                    self._rollback_created()
                    self._fail("nonunique")
                    raise GdiNonUniqueId(
                        f"application ID {app_id} concurrently created"
                    )
        replica = self.db.replica(ctx)
        # Entry pass (no writes): partition the vertex cache and derive
        # the replayable commit-log entries before anything is applied.
        deletes: list[tuple] = []
        upserts: list[tuple] = []
        ordered = sorted(self._vertices.values(), key=lambda t: not t.deleted)
        survivors: list[_TxVertex] = []
        for txv in ordered:
            if txv.deleted and txv.created:
                continue
            if txv.deleted:
                deletes.append(("del_v", txv.holder.app_id))
            elif txv.created or txv.dirty:
                survivors.append(txv)
                holder = txv.holder
                upserts.append(
                    (
                        "new_v" if txv.created else "upd_v",
                        holder.app_id,
                        tuple(
                            replica.label_by_id(l).name for l in holder.labels
                        ),
                        tuple(
                            (replica.ptype_by_id(pid).name, bytes(blob))
                            for pid, blob in holder.properties
                        ),
                    )
                )
        edge_rm, edge_add = self._edge_log_entries(replica, survivors)
        log_entries = tuple(deletes + upserts + edge_rm + edge_add)
        # Log-first commit: publish the commit intent, append the record,
        # note its sequence.  No one-sided operation separates the three
        # steps, so a crashed rank left its intent published exactly when
        # its last record may be only partially applied — the failover
        # healer rolls that record forward idempotently, which is what
        # bounds backups to at most one commit behind.
        repl = self.db.replication
        seq: int | None = None
        if log_entries and not self._no_log:
            if repl is not None:
                repl.begin_commit(ctx.rank, log_entries)
            seq = self.db.log_commit(ctx.rank, log_entries)
            self._logged_seq = seq
            if repl is not None:
                repl.note_logged(ctx.rank, seq)
        # MVCC: allocate the commit timestamp (right after the log
        # append, while every write lock is still held, so timestamp
        # order is the serialization order) and install the pre-image
        # version chains BEFORE any live block is touched — a snapshot
        # reader that observes a too-new header version is then
        # guaranteed to find its state in the chain.  Failover redo
        # replays (``_no_log``) re-install under a fresh timestamp.
        mvcc = self.db.mvcc
        ts = 0
        if mvcc is not None:
            mutated = (
                bool(survivors)
                or bool(deletes)
                or any(
                    txe.created or txe.dirty or txe.deleted
                    for txe in self._edges.values()
                )
            )
            if mutated:
                ts = mvcc.begin_commit(ctx.rank)
                self._commit_ts = ts
                installed = 0
                for txv in ordered:
                    if txv.deleted and txv.created:
                        continue
                    if txv.deleted:
                        if mvcc.versions.install(
                            ("v", txv.vid), ts, txv.mvcc_preimage
                        ):
                            installed += 1
                        mvcc.note_unpublished(
                            txv.holder.app_id,
                            txv.vid,
                            unpack_dptr(txv.vid).rank,
                            ts,
                        )
                    elif txv.created:
                        # absent before this commit
                        if mvcc.versions.install(("v", txv.vid), ts, None):
                            installed += 1
                        txv.stored.version = ts
                    elif txv.dirty:
                        if mvcc.versions.install(
                            ("v", txv.vid), ts, txv.mvcc_preimage
                        ):
                            installed += 1
                        txv.stored.version = ts
                for txe in self._edges.values():
                    if txe.created and txe.deleted:
                        continue
                    if txe.deleted:
                        if mvcc.versions.install(
                            ("e", txe.dptr), ts, txe.mvcc_preimage
                        ):
                            installed += 1
                    elif txe.created:
                        if mvcc.versions.install(("e", txe.dptr), ts, None):
                            installed += 1
                        txe.stored.version = ts
                    elif txe.dirty:
                        if mvcc.versions.install(
                            ("e", txe.dptr), ts, txe.mvcc_preimage
                        ):
                            installed += 1
                        txe.stored.version = ts
                if installed:
                    ctx.rt.trace.record_versions_installed(
                        ctx.rank, installed
                    )
        # Apply phase.  Heavy edge holders first so endpoint slots never
        # dangle; all dirty edge holders write back in one batched flush,
        # and all deleted ones clear their headers in another.
        edge_rewrites: list[StoredHolder] = []
        edge_deletes: list[StoredHolder] = []
        for txe in self._edges.values():
            if txe.deleted:
                if txe.created:
                    self.db.blocks.release_block(ctx, txe.stored.primary)
                else:
                    edge_deletes.append(txe.stored)
            elif txe.dirty:
                edge_rewrites.append(txe.stored)
        self.db.storage.delete_many(ctx, edge_deletes)
        self.db.storage.rewrite_many(ctx, edge_rewrites)
        vertex_deletes: list[StoredHolder] = []
        for txv in ordered:
            if txv.deleted and txv.created:
                self.db.blocks.release_block(ctx, txv.stored.primary)
                continue
            if txv.deleted:
                # Unpublish (DHT, directory, indexes) BEFORE freeing the
                # blocks: a concurrent create may otherwise reuse the
                # primary block and have its fresh directory entry removed
                # by this very deletion.
                self.db.dht.delete(ctx, txv.holder.app_id)
                self.db.directory.remove(
                    ctx,
                    txv.vid,
                    labels=(
                        txv.label_preimage
                        if txv.label_preimage is not None
                        else txv.holder.labels
                    ),
                )
                self._apply_index_updates(txv, deleted=True)
                vertex_deletes.append(txv.stored)
        self.db.storage.delete_many(ctx, vertex_deletes)
        # One batched write-back for every created/dirty vertex holder:
        # block writes of all holders coalesce per home rank and complete
        # at a single flush (deletions above already freed their blocks,
        # so grown holders can reuse them).  Publication (DHT, directory,
        # indexes) follows the write-back, as in the scalar path.
        self.db.storage.rewrite_many(
            ctx, [txv.stored for txv in survivors]
        )
        for txv in survivors:
            if txv.created:
                self.db.dht.insert(ctx, txv.holder.app_id, txv.vid)
                self.db.directory.add(
                    ctx, txv.vid, labels=txv.holder.labels
                )
            elif txv.label_preimage is not None:
                self.db.directory.update_labels(
                    ctx, txv.vid, txv.label_preimage, txv.holder.labels
                )
            self._apply_index_updates(txv)
        if repl is not None:
            repl.commit_mirrors(ctx, seq)
        # Fully applied (and mirrored): the record is now permanent, a
        # later failure (e.g. during lock release) must not tombstone it.
        self._logged_seq = None
        if mvcc is not None and ts:
            mvcc.note_applied(ts)
            self._commit_ts = None
            mvcc.maybe_collect(ctx)

    def _abort_logged_commit(self) -> None:
        """Withdraw a commit that failed between log append and apply end.

        The log-first protocol appends the record before applying the
        writes; an apply failure (fenced mid-commit by a failover, lock
        trouble, out of blocks) aborts the transaction, so its record is
        tombstoned (entries cleared) to keep replay equal to the committed
        state, and any staged mirror traffic is withdrawn.
        """
        if self._logged_seq is not None:
            self.db.commit_log.mark_aborted(self._logged_seq)
            self._logged_seq = None
        if self._commit_ts is not None and self.db.mvcc is not None:
            # Retire the timestamp so the watermark is never pinned by an
            # aborted commit.  Its chain entries stay: they correctly
            # record the pre-abort state, and snapshots below the ts read
            # through them even when the apply was partial (the same
            # roll-forward semantics the failover healer provides for
            # the live blocks).
            self.db.mvcc.note_applied(self._commit_ts)
            self._commit_ts = None
        if self.db.replication is not None and self.write:
            self.db.replication.abort_commit(self.ctx)

    def _edge_log_entries(
        self, replica, survivors: "list[_TxVertex]"
    ) -> tuple[list[tuple], list[tuple]]:
        """Replayable edge entries: identity-diff of slots vs. load time.

        Each logical edge is emitted exactly once, from its canonical
        side, matching :func:`repro.gda.checkpoint.snapshot`: the OUT
        slot for directed edges, the smaller application-ID endpoint for
        undirected ones.  Edges whose other endpoint is deleted in this
        transaction are skipped — their ``del_v`` entry removes incident
        edges on replay.  Heavyweight edges are logged from the cached
        edge holders instead of the slots.
        """
        edge_rm: list[tuple] = []
        edge_add: list[tuple] = []

        def emit(out: list[tuple], tag: str, txv: _TxVertex, slot) -> None:
            direction = slot.direction
            if slot.heavy or direction == DIR_IN:
                return
            if self._deleted_in_txn(slot.dptr):
                return
            app = txv.holder.app_id
            other_app = self._bulk_slot_apps.get(id(slot))
            if other_app is None:
                other_app = self._log_app_of(slot.dptr)
            if direction == DIR_UNDIR and app > other_app:
                return  # the smaller endpoint's side emits
            label_name = (
                replica.label_by_id(slot.label_id).name
                if slot.label_id
                else None
            )
            out.append((tag, app, other_app, direction == DIR_OUT, label_name))

        for txv in survivors:
            pre = txv.edge_preimage if txv.edge_preimage is not None else []
            cur = txv.holder.edges
            pre_ids = {id(s) for s in pre}
            cur_ids = {id(s) for s in cur}
            for slot in pre:
                if id(slot) not in cur_ids:
                    emit(edge_rm, "edge-", txv, slot)
            for slot in cur:
                if id(slot) not in pre_ids:
                    emit(edge_add, "edge+", txv, slot)
        for txe in self._edges.values():
            h = txe.holder
            if txe.created and txe.deleted:
                continue
            if not (txe.created or txe.deleted or txe.dirty):
                continue
            if self._deleted_in_txn(h.src) or self._deleted_in_txn(h.dst):
                continue  # del_v covers the removal on replay
            if txe.app_ids is not None:
                src_app, dst_app = txe.app_ids
            else:
                src_app = self._log_app_of(h.src)
                dst_app = self._log_app_of(h.dst)
            if txe.deleted:
                edge_rm.append(("hedge-", src_app, dst_app, h.directed))
                continue
            label_names = tuple(
                replica.label_by_id(l).name for l in h.labels
            )
            props = tuple(
                (replica.ptype_by_id(pid).name, bytes(blob))
                for pid, blob in h.properties
            )
            tag = "hedge+" if txe.created else "hedge*"
            edge_add.append(
                (tag, src_app, dst_app, h.directed, label_names, props)
            )
        return edge_rm, edge_add

    def _log_app_of(self, vid: int) -> int:
        """Application ID of ``vid`` for commit logging.

        Served from the transaction cache in every ordinary path (both
        endpoints of a mutated edge are cached); the storage read is a
        fallback for exotic callers only.
        """
        txv = self._vertices.get(vid)
        if txv is not None:
            return txv.holder.app_id
        return self.db.storage.read(self.ctx, vid).holder.app_id

    def _apply_index_updates(self, txv: _TxVertex, deleted: bool = False) -> None:
        dtype_of = self.db.replica(self.ctx).dtype_of
        for name, idx in self.db.indexes.items():
            before = txv.index_preimage.get(name, False)
            after = False if deleted else idx.matches(txv.holder, dtype_of)
            idx.update_on_commit(self.ctx, txv.vid, before, after)
        for name, eidx in self.db.edge_indexes.items():
            before = txv.edge_index_preimage.get(name, False)
            after = False if deleted else eidx.source_matches(self, txv)
            eidx.update_on_commit(self.ctx, txv.vid, before, after)

    def _rollback_created(self) -> None:
        mem = self._mem
        created = [
            t.stored.primary for t in self._vertices.values() if t.created
        ] + [t.stored.primary for t in self._edges.values() if t.created]
        for primary in created:
            if (
                mem is not None
                and mem.rehosted_at[unpack_dptr(primary).rank]
                > self._start_epoch
            ):
                # The shard was rebuilt after this transaction allocated
                # the block: the free-list reconstruction (complement of
                # the mirrored live set) already reclaimed it, a release
                # now would double-free.
                continue
            try:
                self.db.blocks.release_block(self.ctx, primary)
            except RmaStaleEpoch:
                # Fenced: the shard reconfigured since the allocation, so
                # the rebuild reclaimed the block (see above).
                pass

    def abort(self) -> None:
        """``GDI_AbortTransaction``: discard all local changes."""
        if not self.open:
            raise GdiStateError("transaction already closed")
        self._abort_logged_commit()
        self._rollback_created()
        self._release_locks()
        self._close_snapshot()
        self.open = False
        stats = self.db.stats[self.ctx.rank]
        stats.aborted += 1
        if self.failed:
            stats.failed += 1
            stats.count_failure(self.fail_cause or "other")
        if self.collective:
            self.ctx.barrier()


def _reciprocal_direction(direction: int) -> int:
    if direction == DIR_OUT:
        return DIR_IN
    if direction == DIR_IN:
        return DIR_OUT
    return DIR_UNDIR


def _remove_by_identity(slots: list[EdgeSlot], victim: EdgeSlot) -> bool:
    for i, s in enumerate(slots):
        if s is victim:
            del slots[i]
            return True
    return False


class VertexHandle:
    """Opaque per-process vertex access object (Section 3.5)."""

    __slots__ = ("_tx", "_txv")

    def __init__(self, tx: Transaction, txv: _TxVertex) -> None:
        self._tx = tx
        self._txv = txv

    # handles support assignment/comparison per the spec
    def __eq__(self, other: object) -> bool:
        return isinstance(other, VertexHandle) and other._txv is self._txv

    def __hash__(self) -> int:
        return hash(id(self._txv))

    @property
    def vid(self) -> int:
        """The internal ID (64-bit DPtr) this handle is associated with."""
        return self._txv.vid

    @property
    def app_id(self) -> int:
        return self._holder().app_id

    def _holder(self, need: int = 0) -> VertexHolder:
        """Read access guard: transaction open, vertex not deleted.

        ``need`` names the holder parts this accessor is about to touch;
        vertices loaded through a projected read are hydrated on demand.
        """
        self._tx._check_open()
        if self._txv.deleted:
            raise GdiNotFound("vertex deleted in this transaction")
        if need:
            self._tx._ensure_parts(self._txv, need)
        return self._txv.holder

    # -- labels ------------------------------------------------------------
    def labels(self) -> list[Label]:
        """``GDI_GetAllLabelsOfVertex``."""
        replica = self._tx.db.replica(self._tx.ctx)
        return [
            replica.label_by_id(i)
            for i in self._holder(NEED_ENTRIES).labels
        ]

    def has_label(self, label: Label) -> bool:
        return label.int_id in self._holder(NEED_ENTRIES).labels

    def add_label(self, label: Label) -> None:
        """``GDI_AddLabelToVertex`` (idempotent)."""
        holder = self._tx._mutate(self._txv)
        if label.int_id not in holder.labels:
            holder.labels.append(label.int_id)

    def remove_label(self, label: Label) -> None:
        holder = self._tx._mutate(self._txv)
        try:
            holder.labels.remove(label.int_id)
        except ValueError:
            raise GdiNotFound(
                f"vertex has no label {label.name!r}"
            ) from None

    # -- properties ---------------------------------------------------------
    def properties(self, ptype: PropertyType) -> list[Any]:
        """``GDI_GetPropertiesOfVertex``: all entries of one p-type."""
        return [
            decode_value(ptype.dtype, blob)
            for pid, blob in self._holder(NEED_ENTRIES).properties
            if pid == ptype.int_id
        ]

    def property(self, ptype: PropertyType) -> Any | None:
        """Single-entry convenience; ``None`` if absent."""
        vals = self.properties(ptype)
        return vals[0] if vals else None

    def all_properties(self) -> list[tuple[PropertyType, Any]]:
        replica = self._tx.db.replica(self._tx.ctx)
        out = []
        for pid, blob in self._holder(NEED_ENTRIES).properties:
            pt = replica.ptype_by_id(pid)
            out.append((pt, decode_value(pt.dtype, blob)))
        return out

    def set_property(self, ptype: PropertyType, value: Any) -> None:
        """``GDI_UpdatePropertyOfVertex``: replace all entries by one."""
        blob = self._tx._encode_property(ptype, value)
        holder = self._tx._mutate(self._txv)
        holder.properties = [
            (pid, b) for pid, b in holder.properties if pid != ptype.int_id
        ]
        holder.properties.append((ptype.int_id, blob))

    def add_property(self, ptype: PropertyType, value: Any) -> None:
        """``GDI_AddPropertyToVertex``: append an entry (MULTI p-types)."""
        blob = self._tx._encode_property(ptype, value)
        holder = self._tx._mutate(self._txv)
        if ptype.multiplicity == Multiplicity.SINGLE and any(
            pid == ptype.int_id for pid, _ in holder.properties
        ):
            raise GdiInvalidArgument(
                f"{ptype.name} is single-entry and already present"
            )
        holder.properties.append((ptype.int_id, blob))

    def remove_properties(self, ptype: PropertyType) -> int:
        holder = self._tx._mutate(self._txv)
        before = len(holder.properties)
        holder.properties = [
            (pid, b) for pid, b in holder.properties if pid != ptype.int_id
        ]
        return before - len(holder.properties)

    # -- edges ----------------------------------------------------------------
    def edges(
        self,
        orientation: EdgeOrientation = EdgeOrientation.ANY,
        constraint: Constraint | None = None,
    ) -> list["EdgeHandle"]:
        """``GDI_GetEdgesOfVertex`` with an optional constraint filter."""
        out = []
        for slot in self._holder(NEED_TOPO).edges:
            if not _orientation_matches(slot.direction, orientation):
                continue
            handle = EdgeHandle(self._tx, self._txv, slot)
            if constraint is not None and not handle._satisfies(constraint):
                continue
            out.append(handle)
        return out

    def neighbors(
        self,
        orientation: EdgeOrientation = EdgeOrientation.ANY,
        constraint: Constraint | None = None,
    ) -> list[int]:
        """``GDI_GetNeighborVerticesOfVertex``: neighbor internal IDs.

        Holders still in wire form take a vectorized path over the raw
        slot array (one numpy pass instead of per-slot ``EdgeHandle``
        objects); heavy slots or constraints beyond a single has-label
        fall back to the handle loop, which matches semantics exactly.
        """
        holder = self._holder(NEED_TOPO)
        lid: int | None = None
        if constraint is not None and not constraint.is_true():
            lid = _constraint_label_id(constraint)
            if lid is None:
                return [
                    e.other_endpoint()
                    for e in self.edges(orientation, constraint)
                ]
        if holder._edges is not None:
            # already materialized as slot objects: the scalar loop wins
            return [
                e.other_endpoint()
                for e in self.edges(orientation, constraint)
            ]
        dptr, label, flags = holder.edges_as_arrays()
        if np.any(flags & SLOT_HEAVY):
            return [
                e.other_endpoint()
                for e in self.edges(orientation, constraint)
            ]
        mask = _orientation_mask(flags, orientation)
        if lid is not None:
            mask = mask & (label == lid)
        return dptr[mask].tolist()

    def degree(self, orientation: EdgeOrientation = EdgeOrientation.ANY) -> int:
        holder = self._holder(NEED_TOPO)
        if holder._edges is None:
            _, _, flags = holder.edges_as_arrays()
            return int(np.count_nonzero(_orientation_mask(flags, orientation)))
        return sum(
            1
            for slot in holder.edges
            if _orientation_matches(slot.direction, orientation)
        )

    def delete(self) -> None:
        self._tx.delete_vertex(self)


def _orientation_matches(direction: int, wanted: EdgeOrientation) -> bool:
    if direction == DIR_OUT:
        return bool(wanted & EdgeOrientation.OUTGOING)
    if direction == DIR_IN:
        return bool(wanted & EdgeOrientation.INCOMING)
    return bool(
        wanted
        & (
            EdgeOrientation.UNDIRECTED
            | EdgeOrientation.OUTGOING
            | EdgeOrientation.INCOMING
        )
    )


def _orientation_mask(flags: np.ndarray, wanted: EdgeOrientation) -> np.ndarray:
    """Vectorized :func:`_orientation_matches` over a slot flags array."""
    d = flags & DIR_MASK
    want_out = bool(wanted & EdgeOrientation.OUTGOING)
    want_in = bool(wanted & EdgeOrientation.INCOMING)
    want_any = want_out or want_in or bool(wanted & EdgeOrientation.UNDIRECTED)
    return (
        ((d == DIR_OUT) & want_out)
        | ((d == DIR_IN) & want_in)
        | ((d == DIR_UNDIR) & want_any)
    )


def _constraint_label_id(constraint: Constraint) -> int | None:
    """The label ID of a plain has-label constraint, else ``None``.

    Only the exact shape produced by :meth:`Constraint.has_label` (one
    conjunction, one present-label condition) is vectorizable against the
    slot label column; anything else goes through full DNF evaluation.
    """
    if len(constraint.conjunctions) != 1:
        return None
    conj = constraint.conjunctions[0]
    if len(conj) != 1:
        return None
    cond = conj[0]
    if (
        isinstance(cond, LabelCondition)
        and cond.present
        and cond.label_id > 0
    ):
        return cond.label_id
    return None


class EdgeHandle:
    """Opaque per-process edge access object.

    Valid only within its transaction (edge UIDs are volatile: the slot
    offset may change when the source holder is rewritten, Section 3.4).
    """

    __slots__ = ("_tx", "_base", "_slot")

    def __init__(self, tx: Transaction, base: _TxVertex, slot: EdgeSlot) -> None:
        self._tx = tx
        self._base = base
        self._slot = slot

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EdgeHandle) and other._slot is self._slot

    def __hash__(self) -> int:
        return hash(id(self._slot))

    @property
    def uid(self) -> bytes:
        """The 12-byte edge UID (Section 5.4.2), relative to the base vertex."""
        for idx, s in enumerate(self._base.holder.edges):
            if s is self._slot:  # identity, not value equality
                return pack_edge_uid(self._base.vid, idx)
        raise GdiNotFound("edge slot no longer present on its base vertex")

    @property
    def heavy(self) -> bool:
        return self._slot.heavy

    @property
    def directed(self) -> bool:
        if self._slot.heavy:
            return self._tx._load_edge_holder(self._slot.dptr).holder.directed
        return self._slot.direction != DIR_UNDIR

    def endpoints(self) -> tuple[int, int]:
        """``GDI_GetVerticesOfEdge``: (origin vid, target vid)."""
        base_vid = self._base.vid
        if self._slot.heavy:
            h = self._tx._load_edge_holder(self._slot.dptr).holder
            return h.src, h.dst
        if self._slot.direction == DIR_IN:
            return self._slot.dptr, base_vid
        return base_vid, self._slot.dptr

    def other_endpoint(self) -> int:
        return self._tx._slot_other_endpoint(self._base.vid, self._slot)

    # -- labels -----------------------------------------------------------
    def labels(self) -> list[Label]:
        """``GDI_GetAllLabelsOfEdge``."""
        replica = self._tx.db.replica(self._tx.ctx)
        return [replica.label_by_id(i) for i in self._label_ids()]

    def _label_ids(self) -> list[int]:
        if self._slot.heavy:
            return list(self._tx._load_edge_holder(self._slot.dptr).holder.labels)
        return [self._slot.label_id] if self._slot.label_id else []

    def has_label(self, label: Label) -> bool:
        return label.int_id in self._label_ids()

    # -- properties (heavyweight edges only, Section 5.4.2) -----------------
    def properties(self, ptype: PropertyType) -> list[Any]:
        if not self._slot.heavy:
            return []  # lightweight edges carry no properties
        holder = self._tx._load_edge_holder(self._slot.dptr).holder
        return [
            decode_value(ptype.dtype, blob)
            for pid, blob in holder.properties
            if pid == ptype.int_id
        ]

    def property(self, ptype: PropertyType) -> Any | None:
        vals = self.properties(ptype)
        return vals[0] if vals else None

    def set_property(self, ptype: PropertyType, value: Any) -> None:
        """``GDI_UpdatePropertyOfEdge`` (heavyweight edges only)."""
        if not self._slot.heavy:
            raise GdiInvalidArgument(
                "lightweight edges cannot carry properties; recreate the "
                "edge with properties to make it heavyweight"
            )
        self._tx._check_write()
        # guard via the source vertex's lock (one lock per vertex, 5.6)
        self._tx._mutate(self._base)
        blob = self._tx._encode_property(ptype, value)
        txe = self._tx._load_edge_holder(self._slot.dptr)
        txe.holder.properties = [
            (pid, b) for pid, b in txe.holder.properties if pid != ptype.int_id
        ]
        txe.holder.properties.append((ptype.int_id, blob))
        txe.dirty = True

    def _satisfies(self, constraint: Constraint) -> bool:
        if self._slot.heavy:
            h = self._tx._load_edge_holder(self._slot.dptr).holder
            labels, props = h.labels, h.properties
        else:
            labels, props = self._label_ids(), []
        return constraint.evaluate(
            labels, props, self._tx.db.replica(self._tx.ctx).dtype_of
        )

    def delete(self) -> None:
        self._tx.delete_edge(self)
