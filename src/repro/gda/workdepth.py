"""Work-depth accounting of GDA routines (paper Section 5.9).

The paper supports "nearly any function" with a work-depth (WD) bound:
the *work* of a routine is its total operation count, the *depth* its
longest dependency chain.  The headline result: the majority of data and
metadata routines are O(1) work and depth; only routines touching ``x``
metadata items are O(x).

Because our substrate counts every one-sided operation
(:class:`repro.rma.trace.TraceRecorder`), these bounds are *checkable*:
this module declares the bounds, and ``tests/gda/test_workdepth.py``
executes each routine and asserts its measured operation count stays
within the declared budget.  This is the reproduction of the paper's
theoretical contribution #3 — turned into executable assertions.

Notation: ``P`` = ranks, ``k`` = blocks of a holder, ``c`` = chain length
of a DHT bucket, ``d`` = degree of a vertex, ``x`` = metadata items.
Retries under contention multiply the contended term; the bounds below
are the uncontended (common) case the paper's analysis reports.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WorkDepthBound", "BOUNDS", "measure_ops"]


@dataclass(frozen=True)
class WorkDepthBound:
    """Declared uncontended bound for one routine.

    ``work(params)``/``depth(params)`` evaluate the bound to a concrete
    operation budget given the instance parameters.
    """

    routine: str
    work_formula: str
    depth_formula: str
    #: callable evaluating the max one-sided-op budget for the routine
    work_budget: object
    section: str

    def budget(self, **params) -> int:
        return int(self.work_budget(**params))


#: Work-depth table of the core GDA routines.
BOUNDS: dict[str, WorkDepthBound] = {
    "acquire_block": WorkDepthBound(
        routine="acquire_block",
        work_formula="O(1): 2 AGETs + 1 CAS + 1 FAA",
        depth_formula="O(1)",
        work_budget=lambda **_: 4,
        section="5.5",
    ),
    "release_block": WorkDepthBound(
        routine="release_block",
        work_formula="O(1): 1 AGET + 1 APUT + 1 flush + 1 CAS + 1 FAA",
        depth_formula="O(1)",
        work_budget=lambda **_: 5,
        section="5.5",
    ),
    "dht_insert": WorkDepthBound(
        routine="dht_insert",
        work_formula="O(1): alloc (4) + 1 AGET + entry put/flush (2) + 1 CAS",
        depth_formula="O(1)",
        work_budget=lambda **_: 8,
        section="5.7",
    ),
    "dht_lookup": WorkDepthBound(
        routine="dht_lookup",
        work_formula="O(c): 1 AGET + c GETs along the chain",
        depth_formula="O(c)",
        work_budget=lambda c=1, **_: 1 + c,
        section="5.7",
    ),
    "dht_delete": WorkDepthBound(
        routine="dht_delete",
        work_formula="O(c): walk (1 + c) + 2 CASes + re-walk (c)",
        depth_formula="O(c)",
        work_budget=lambda c=1, **_: 3 + 2 * c,
        section="5.7",
    ),
    "lock_read_acquire": WorkDepthBound(
        routine="lock_read_acquire",
        work_formula="O(1): 1 FAA",
        depth_formula="O(1)",
        work_budget=lambda **_: 1,
        section="5.6",
    ),
    "lock_write_acquire": WorkDepthBound(
        routine="lock_write_acquire",
        work_formula="O(1): 1 CAS",
        depth_formula="O(1)",
        work_budget=lambda **_: 1,
        section="5.6",
    ),
    "holder_read": WorkDepthBound(
        routine="holder_read",
        work_formula="O(k): 1 GET per block (+index blocks)",
        depth_formula="O(1): two fetch rounds with indirection",
        work_budget=lambda k=1, **_: k,
        section="5.4/5.5",
    ),
    "holder_write": WorkDepthBound(
        routine="holder_write",
        work_formula="O(k): 1 PUT per block + 1 flush",
        depth_formula="O(1)",
        work_budget=lambda k=1, **_: k + 1,
        section="5.4/5.5",
    ),
    "metadata_create": WorkDepthBound(
        routine="metadata_create",
        work_formula="O(1) per item; O(x) for x items",
        depth_formula="O(1) / O(x)",
        work_budget=lambda x=1, **_: x,
        section="5.8",
    ),
    "translate_vertex_id": WorkDepthBound(
        routine="translate_vertex_id",
        work_formula="O(c): one DHT lookup",
        depth_formula="O(c)",
        work_budget=lambda c=1, **_: 1 + c,
        section="5.3/5.7",
    ),
}


def measure_ops(trace, rank: int):
    """Return a snapshot capturing function for measured-op assertions.

    Usage::

        done = measure_ops(rt.trace, rank)
        ...operation...
        assert done() <= BOUNDS["acquire_block"].budget()
    """
    before = trace.counters[rank].snapshot()

    def measured() -> int:
        now = trace.counters[rank].snapshot()
        return (
            (now["puts"] - before["puts"])
            + (now["gets"] - before["gets"])
            + (now["atomics"] - before["atomics"])
        )

    return measured
