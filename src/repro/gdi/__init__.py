"""The Graph Database Interface (GDI) — the public API of this library.

GDI is a storage-layer interface for graph databases over the Labeled
Property Graph model, offering CRUD for vertices, edges, labels, and
properties, rich constraints, explicit indexes, and local + collective
transactions (paper Section 3).  This package is the specification-level
API; :mod:`repro.gda` is the GDI-RMA implementation behind it.
"""

from .constants import (
    EdgeOrientation,
    EntityType,
    ErrorCode,
    Multiplicity,
    SizeType,
    TransactionType,
)
from .constraint import Constraint, LabelCondition, PropertyCondition
from .errors import (
    GdiError,
    GdiInvalidArgument,
    GdiLockFailed,
    GdiNoMemory,
    GdiNonUniqueId,
    GdiNotFound,
    GdiStaleDptr,
    GdiObjectMismatch,
    GdiReadOnly,
    GdiSizeLimit,
    GdiStaleMetadata,
    GdiStateError,
    GdiTransactionCritical,
)
from .types import Datatype, decode_value, encode_value, value_nbytes


def __getattr__(name: str):
    # GraphDatabase/GdaConfig come from repro.gda, which imports the GDI
    # specification modules above; resolve lazily to break the cycle.
    if name in ("GraphDatabase", "GdaConfig", "create_database"):
        from . import database

        return getattr(database, name)
    raise AttributeError(name)


__all__ = [
    "EdgeOrientation",
    "EntityType",
    "ErrorCode",
    "Multiplicity",
    "SizeType",
    "TransactionType",
    "Constraint",
    "LabelCondition",
    "PropertyCondition",
    "GdaConfig",
    "GraphDatabase",
    "create_database",
    "GdiError",
    "GdiInvalidArgument",
    "GdiLockFailed",
    "GdiNoMemory",
    "GdiNonUniqueId",
    "GdiNotFound",
    "GdiStaleDptr",
    "GdiObjectMismatch",
    "GdiReadOnly",
    "GdiSizeLimit",
    "GdiStaleMetadata",
    "GdiStateError",
    "GdiTransactionCritical",
    "Datatype",
    "decode_value",
    "encode_value",
    "value_nbytes",
]
