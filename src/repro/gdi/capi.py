"""C-style GDI bindings: the spec's ``GDI_*`` routine names.

The GDI specification is a C API; the paper's Listings 1-3 are written
against routine names like ``GDI_StartTransaction`` and
``GDI_AssociateVertex``.  This module provides those names as thin
wrappers over the Pythonic objects so that spec-style code ports
line-by-line.  Output parameters of the C API become return values;
everything else keeps the spec's argument order where Python allows.

Example (paper Listing 1, lines 1-4)::

    trans_obj = GDI_StartTransaction(db, ctx)
    vID = GDI_TranslateVertexID(vID_app, trans_obj)
    vH = GDI_AssociateVertex(vID, trans_obj)
    eIDs = GDI_GetEdgesOfVertex(GDI_EDGE_UNDIRECTED, vH)

Constants mirror the spec: ``GDI_EDGE_OUTGOING``, ``GDI_EDGE_INCOMING``,
``GDI_EDGE_UNDIRECTED`` (which, as in Listing 1, selects *all* edges of a
vertex in an undirected sense).
"""

from __future__ import annotations

from typing import Any

from ..gda.database_impl import GdaConfig, GdaDatabase
from ..gda.metadata import Label, PropertyType
from ..gda.transaction_impl import EdgeHandle, Transaction, VertexHandle
from .constants import EdgeOrientation
from .constraint import Constraint

__all__ = [
    "GDI_EDGE_OUTGOING",
    "GDI_EDGE_INCOMING",
    "GDI_EDGE_UNDIRECTED",
    "GDI_CreateDatabase",
    "GDI_CreateLabel",
    "GDI_CreatePropertyType",
    "GDI_GetLabel",
    "GDI_GetPropertyType",
    "GDI_StartTransaction",
    "GDI_StartCollectiveTransaction",
    "GDI_CloseTransaction",
    "GDI_CloseCollectiveTransaction",
    "GDI_AbortTransaction",
    "GDI_TranslateVertexID",
    "GDI_CreateVertex",
    "GDI_AssociateVertex",
    "GDI_AssociateEdge",
    "GDI_CreateEdge",
    "GDI_FreeVertex",
    "GDI_FreeEdge",
    "GDI_GetAllLabelsOfVertex",
    "GDI_GetAllLabelsOfEdge",
    "GDI_AddLabelToVertex",
    "GDI_RemoveLabelFromVertex",
    "GDI_GetPropertiesOfVertex",
    "GDI_GetPropertiesOfEdge",
    "GDI_AddPropertyToVertex",
    "GDI_UpdatePropertyOfVertex",
    "GDI_UpdatePropertyOfEdge",
    "GDI_RemovePropertiesOfVertex",
    "GDI_GetEdgesOfVertex",
    "GDI_GetNeighborVerticesOfVertex",
    "GDI_GetVerticesOfEdge",
    "GDI_CreateIndex",
    "GDI_GetLocalVerticesOfIndex",
]

#: Edge orientation constants (``GDI_EDGE_*``).  As in Listing 1,
#: ``GDI_EDGE_UNDIRECTED`` used as a selector retrieves every edge.
GDI_EDGE_OUTGOING = EdgeOrientation.OUTGOING
GDI_EDGE_INCOMING = EdgeOrientation.INCOMING
GDI_EDGE_UNDIRECTED = EdgeOrientation.ANY


# -- database & metadata ----------------------------------------------------
def GDI_CreateDatabase(ctx, config: GdaConfig | None = None) -> GdaDatabase:
    return GdaDatabase.create(ctx, config)


def GDI_CreateLabel(name: str, db: GdaDatabase, ctx) -> Label:
    return db.create_label(ctx, name)


def GDI_CreatePropertyType(name: str, db: GdaDatabase, ctx, **hints) -> PropertyType:
    return db.create_property_type(ctx, name, **hints)


def GDI_GetLabel(name: str, db: GdaDatabase, ctx) -> Label:
    return db.label(ctx, name)


def GDI_GetPropertyType(name: str, db: GdaDatabase, ctx) -> PropertyType:
    return db.property_type(ctx, name)


# -- transactions -------------------------------------------------------------
def GDI_StartTransaction(db: GdaDatabase, ctx, write: bool = True) -> Transaction:
    return db.start_transaction(ctx, write=write)


def GDI_StartCollectiveTransaction(
    db: GdaDatabase, ctx, write: bool = False
) -> Transaction:
    return db.start_collective_transaction(ctx, write=write)


def GDI_CloseTransaction(trans_obj: Transaction) -> None:
    trans_obj.commit()


def GDI_CloseCollectiveTransaction(trans_obj: Transaction) -> None:
    trans_obj.commit()


def GDI_AbortTransaction(trans_obj: Transaction) -> None:
    trans_obj.abort()


# -- vertices -------------------------------------------------------------------
def GDI_TranslateVertexID(vID_app: int, trans_obj: Transaction) -> int:
    return trans_obj.translate_vertex_id(vID_app)


def GDI_CreateVertex(vID_app: int, trans_obj: Transaction) -> VertexHandle:
    return trans_obj.create_vertex(vID_app)


def GDI_AssociateVertex(vID: int, trans_obj: Transaction) -> VertexHandle:
    return trans_obj.associate_vertex(vID)


def GDI_FreeVertex(vH: VertexHandle) -> None:
    """Delete the vertex (the spec folds delete into handle freeing)."""
    vH.delete()


def GDI_GetAllLabelsOfVertex(vH: VertexHandle) -> list[Label]:
    return vH.labels()


def GDI_AddLabelToVertex(label: Label, vH: VertexHandle) -> None:
    vH.add_label(label)


def GDI_RemoveLabelFromVertex(label: Label, vH: VertexHandle) -> None:
    vH.remove_label(label)


def GDI_GetPropertiesOfVertex(ptype: PropertyType, vH: VertexHandle) -> list[Any]:
    return vH.properties(ptype)


def GDI_AddPropertyToVertex(
    value: Any, ptype: PropertyType, vH: VertexHandle
) -> None:
    vH.add_property(ptype, value)


def GDI_UpdatePropertyOfVertex(
    value: Any, ptype: PropertyType, vH: VertexHandle
) -> None:
    vH.set_property(ptype, value)


def GDI_RemovePropertiesOfVertex(ptype: PropertyType, vH: VertexHandle) -> int:
    return vH.remove_properties(ptype)


def GDI_GetEdgesOfVertex(
    orientation: EdgeOrientation,
    vH: VertexHandle,
    constraint: Constraint | None = None,
) -> list[EdgeHandle]:
    return vH.edges(orientation, constraint)


def GDI_GetNeighborVerticesOfVertex(
    orientation: EdgeOrientation,
    vH: VertexHandle,
    constraint: Constraint | None = None,
) -> list[int]:
    return vH.neighbors(orientation, constraint)


# -- edges -----------------------------------------------------------------------
def GDI_CreateEdge(
    src: VertexHandle,
    dst: VertexHandle,
    trans_obj: Transaction,
    *,
    label: Label | None = None,
    directed: bool = True,
    properties=(),
) -> EdgeHandle:
    return trans_obj.create_edge(
        src, dst, label=label, directed=directed, properties=properties
    )


def GDI_AssociateEdge(eID: bytes, trans_obj: Transaction) -> EdgeHandle:
    return trans_obj.associate_edge(eID)


def GDI_FreeEdge(eH: EdgeHandle) -> None:
    eH.delete()


def GDI_GetAllLabelsOfEdge(eH: EdgeHandle) -> list[Label]:
    return eH.labels()


def GDI_GetPropertiesOfEdge(ptype: PropertyType, eH: EdgeHandle) -> list[Any]:
    return eH.properties(ptype)


def GDI_UpdatePropertyOfEdge(value: Any, ptype: PropertyType, eH: EdgeHandle) -> None:
    eH.set_property(ptype, value)


def GDI_GetVerticesOfEdge(eH: EdgeHandle) -> tuple[int, int]:
    return eH.endpoints()


# -- indexes ----------------------------------------------------------------------
def GDI_CreateIndex(name: str, constraint: Constraint, db: GdaDatabase, ctx):
    return db.create_index(ctx, name, constraint)


def GDI_GetLocalVerticesOfIndex(index, ctx, trans_obj: Transaction) -> list[int]:
    del trans_obj  # index reads are eventually consistent (Section 3.8)
    return index.local_vertices(ctx)
