"""GDI constants: error codes, edge orientations, entity classes, size types.

Names follow the GDI specification's ``GDI_*`` conventions so that the
examples in the paper (Listings 1-3) translate line-by-line.
"""

from __future__ import annotations

from enum import IntEnum, IntFlag

__all__ = [
    "ErrorCode",
    "EdgeOrientation",
    "EntityType",
    "SizeType",
    "Multiplicity",
    "TransactionType",
]


class ErrorCode(IntEnum):
    """GDI return codes.

    ``TRANSACTION_CRITICAL``-class codes guarantee the transaction will
    fail (Section 3.3); GDI offers no retry — the user must start a new
    transaction.
    """

    SUCCESS = 0
    ERROR_ARGUMENT = 1
    ERROR_NOT_FOUND = 2
    ERROR_OBJECT_MISMATCH = 3
    ERROR_STATE = 4
    ERROR_NO_MEMORY = 5
    ERROR_TRANSACTION_CRITICAL = 16
    ERROR_LOCK_FAILED = 17
    ERROR_STALE_METADATA = 18
    ERROR_READ_ONLY = 19
    ERROR_NON_UNIQUE_ID = 20
    ERROR_SIZE_LIMIT = 21


class EdgeOrientation(IntFlag):
    """Edge direction selectors (``GDI_EDGE_*`` in the spec)."""

    OUTGOING = 1
    INCOMING = 2
    UNDIRECTED = 4
    #: Any orientation: convenience mask used by neighborhood queries.
    ANY = OUTGOING | INCOMING | UNDIRECTED


class EntityType(IntFlag):
    """What kind of graph element a property type may attach to."""

    VERTEX = 1
    EDGE = 2
    BOTH = VERTEX | EDGE


class SizeType(IntEnum):
    """Size declaration of a property type (Section 3.7).

    Declaring fixed or bounded sizes lets the implementation lay values
    out without per-value length scans.
    """

    FIXED = 0  # exactly `size_limit` elements
    MAX = 1  # at most `size_limit` elements
    UNBOUNDED = 2  # no declared limit


class Multiplicity(IntEnum):
    """May a single vertex/edge carry multiple entries of one p-type?"""

    SINGLE = 0
    MULTI = 1


class TransactionType(IntEnum):
    """Local (single-process) vs collective transactions (Section 3.3)."""

    LOCAL = 0
    COLLECTIVE = 1
