"""GDI constraints: boolean formulas in disjunctive normal form (DNF).

Constraints (Section 3.6) describe conditions on labels and properties.
They are the query language of explicit indexes and of filtered
neighborhood traversals (e.g. Listing 3's edge-label filter).  A
constraint is a disjunction of conjunctions of atomic conditions:

* :class:`LabelCondition` — a label is present (or absent),
* :class:`PropertyCondition` — a property compares against a value, or
  merely exists/is absent.

Evaluation happens against the decoded label list and property entries of
one vertex or edge.  Multi-entry property types satisfy a comparison if
*any* entry does.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .errors import GdiInvalidArgument
from .types import Datatype, decode_value

__all__ = ["LabelCondition", "PropertyCondition", "Constraint"]


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _compare(op: str, stored: Any, wanted: Any) -> bool:
    if isinstance(stored, np.ndarray) or isinstance(wanted, np.ndarray):
        if op == "==":
            return bool(np.array_equal(stored, wanted))
        if op == "!=":
            return not np.array_equal(stored, wanted)
        raise GdiInvalidArgument(f"operator {op!r} not defined for arrays")
    try:
        return bool(_OPS[op](stored, wanted))
    except TypeError as exc:
        raise GdiInvalidArgument(
            f"cannot compare {stored!r} {op} {wanted!r}"
        ) from exc


@dataclass(frozen=True)
class LabelCondition:
    """The element carries (``present=True``) or lacks a label."""

    label_id: int
    present: bool = True

    def evaluate(self, labels: Sequence[int], properties, dtype_of) -> bool:
        return (self.label_id in labels) == self.present


@dataclass(frozen=True)
class PropertyCondition:
    """A property of the element compares against a constant.

    ``op`` is one of ``== != < <= > >= exists absent``.  For ``exists`` /
    ``absent`` the ``value`` field is ignored.
    """

    ptype_id: int
    op: str = "exists"
    value: Any = None

    def __post_init__(self) -> None:
        if self.op not in _OPS and self.op not in ("exists", "absent"):
            raise GdiInvalidArgument(f"unknown property operator {self.op!r}")

    def evaluate(
        self,
        labels,
        properties: Sequence[tuple[int, bytes]],
        dtype_of: Callable[[int], Datatype],
    ) -> bool:
        entries = [blob for pid, blob in properties if pid == self.ptype_id]
        if self.op == "exists":
            return bool(entries)
        if self.op == "absent":
            return not entries
        dtype = dtype_of(self.ptype_id)
        return any(
            _compare(self.op, decode_value(dtype, blob), self.value)
            for blob in entries
        )


Condition = LabelCondition | PropertyCondition


@dataclass(frozen=True)
class Constraint:
    """A DNF formula: ``OR`` over conjunctions, each ``AND`` of conditions.

    An empty disjunction is unsatisfiable; an empty conjunction is
    trivially true (so ``Constraint.true()`` matches everything).
    """

    conjunctions: tuple[tuple[Condition, ...], ...]

    # -- construction -----------------------------------------------------
    @classmethod
    def of(cls, *conjunctions: Iterable[Condition]) -> "Constraint":
        return cls(tuple(tuple(c) for c in conjunctions))

    @classmethod
    def true(cls) -> "Constraint":
        return cls(((),))

    @classmethod
    def false(cls) -> "Constraint":
        return cls(())

    @classmethod
    def has_label(cls, label_id: int) -> "Constraint":
        return cls.of([LabelCondition(label_id)])

    @classmethod
    def lacks_label(cls, label_id: int) -> "Constraint":
        return cls.of([LabelCondition(label_id, present=False)])

    @classmethod
    def prop(cls, ptype_id: int, op: str = "exists", value: Any = None) -> "Constraint":
        return cls.of([PropertyCondition(ptype_id, op, value)])

    # -- structural tests -------------------------------------------------
    def is_true(self) -> bool:
        """Trivially satisfied: some conjunction is empty."""
        return any(len(c) == 0 for c in self.conjunctions)

    def is_false(self) -> bool:
        """Unsatisfiable by structure: the disjunction is empty."""
        return not self.conjunctions

    # -- combinators (stay in DNF) ---------------------------------------
    def __or__(self, other: "Constraint") -> "Constraint":
        # Short-circuit the neutral/absorbing elements so planner-built
        # chains (``acc = acc | c``) never accumulate redundant terms.
        if self.is_true() or other.is_true():
            return Constraint.true()
        if self.is_false():
            return other
        if other.is_false():
            return self
        return Constraint(
            _dedupe_conjunctions(self.conjunctions + other.conjunctions)
        )

    def __and__(self, other: "Constraint") -> "Constraint":
        if self.is_false() or other.is_false():
            return Constraint.false()
        if self.is_true():
            return other
        if other.is_true():
            return self
        # DNF distribution; dedupe repeated conditions inside each product
        # conjunction and repeated conjunctions across the disjunction, so
        # ``c & c`` stays at c.n_conditions instead of squaring it.
        combined = tuple(
            _dedupe_conditions(a + b)
            for a in self.conjunctions
            for b in other.conjunctions
        )
        return Constraint(_dedupe_conjunctions(combined))

    def simplify(self) -> "Constraint":
        """Cheap logical simplification, preserving DNF and semantics.

        * drops duplicate conditions within each conjunction,
        * drops conjunctions containing a contradiction (the same label
          required present and absent, or the same property required both
          ``exists`` and ``absent``),
        * drops duplicate conjunctions and conjunctions *absorbed* by a
          subset conjunction (``A or (A and B)`` = ``A``),
        * collapses to :meth:`true`/:meth:`false` when the structure
          allows it.
        """
        kept: list[tuple[Condition, ...]] = []
        for conj in self.conjunctions:
            conj = _dedupe_conditions(conj)
            if _contradictory(conj):
                continue
            if not conj:
                return Constraint.true()
            kept.append(conj)
        # absorption: a conjunction whose condition set contains another
        # conjunction's set is redundant
        sets = [frozenset(c) for c in kept]
        out: list[tuple[Condition, ...]] = []
        for i, conj in enumerate(kept):
            absorbed = any(
                (j != i and sets[j] < sets[i])
                or (j < i and sets[j] == sets[i])
                for j in range(len(kept))
            )
            if not absorbed:
                out.append(conj)
        return Constraint(tuple(out))

    # -- evaluation ---------------------------------------------------------
    def evaluate(
        self,
        labels: Sequence[int],
        properties: Sequence[tuple[int, bytes]],
        dtype_of: Callable[[int], Datatype],
    ) -> bool:
        return any(
            all(cond.evaluate(labels, properties, dtype_of) for cond in conj)
            for conj in self.conjunctions
        )

    @property
    def n_conditions(self) -> int:
        return sum(len(c) for c in self.conjunctions)


def _dedupe_conditions(conj: tuple[Condition, ...]) -> tuple[Condition, ...]:
    """Drop repeated conditions, keeping first-occurrence order."""
    seen: set[Condition] = set()
    out: list[Condition] = []
    for cond in conj:
        if cond not in seen:
            seen.add(cond)
            out.append(cond)
    return tuple(out)


def _dedupe_conjunctions(
    conjunctions: tuple[tuple[Condition, ...], ...]
) -> tuple[tuple[Condition, ...], ...]:
    """Drop repeated conjunctions (as condition *sets*), keeping order."""
    seen: set[frozenset[Condition]] = set()
    out: list[tuple[Condition, ...]] = []
    for conj in conjunctions:
        key = frozenset(conj)
        if key not in seen:
            seen.add(key)
            out.append(conj)
    return tuple(out)


def _contradictory(conj: tuple[Condition, ...]) -> bool:
    """Does the conjunction require a label/property both ways at once?"""
    label_req: dict[int, bool] = {}
    prop_req: dict[int, str] = {}
    for cond in conj:
        if isinstance(cond, LabelCondition):
            prev = label_req.setdefault(cond.label_id, cond.present)
            if prev != cond.present:
                return True
        elif isinstance(cond, PropertyCondition):
            if cond.op in ("exists", "absent"):
                prev = prop_req.setdefault(cond.ptype_id, cond.op)
                if prev != cond.op:
                    return True
            elif cond.op in _OPS:
                # a comparison implies existence
                if prop_req.get(cond.ptype_id) == "absent":
                    return True
                prop_req.setdefault(cond.ptype_id, "exists")
    return False
