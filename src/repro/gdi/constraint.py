"""GDI constraints: boolean formulas in disjunctive normal form (DNF).

Constraints (Section 3.6) describe conditions on labels and properties.
They are the query language of explicit indexes and of filtered
neighborhood traversals (e.g. Listing 3's edge-label filter).  A
constraint is a disjunction of conjunctions of atomic conditions:

* :class:`LabelCondition` — a label is present (or absent),
* :class:`PropertyCondition` — a property compares against a value, or
  merely exists/is absent.

Evaluation happens against the decoded label list and property entries of
one vertex or edge.  Multi-entry property types satisfy a comparison if
*any* entry does.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .errors import GdiInvalidArgument
from .types import Datatype, decode_value

__all__ = ["LabelCondition", "PropertyCondition", "Constraint"]


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _compare(op: str, stored: Any, wanted: Any) -> bool:
    if isinstance(stored, np.ndarray) or isinstance(wanted, np.ndarray):
        if op == "==":
            return bool(np.array_equal(stored, wanted))
        if op == "!=":
            return not np.array_equal(stored, wanted)
        raise GdiInvalidArgument(f"operator {op!r} not defined for arrays")
    try:
        return bool(_OPS[op](stored, wanted))
    except TypeError as exc:
        raise GdiInvalidArgument(
            f"cannot compare {stored!r} {op} {wanted!r}"
        ) from exc


@dataclass(frozen=True)
class LabelCondition:
    """The element carries (``present=True``) or lacks a label."""

    label_id: int
    present: bool = True

    def evaluate(self, labels: Sequence[int], properties, dtype_of) -> bool:
        return (self.label_id in labels) == self.present


@dataclass(frozen=True)
class PropertyCondition:
    """A property of the element compares against a constant.

    ``op`` is one of ``== != < <= > >= exists absent``.  For ``exists`` /
    ``absent`` the ``value`` field is ignored.
    """

    ptype_id: int
    op: str = "exists"
    value: Any = None

    def __post_init__(self) -> None:
        if self.op not in _OPS and self.op not in ("exists", "absent"):
            raise GdiInvalidArgument(f"unknown property operator {self.op!r}")

    def evaluate(
        self,
        labels,
        properties: Sequence[tuple[int, bytes]],
        dtype_of: Callable[[int], Datatype],
    ) -> bool:
        entries = [blob for pid, blob in properties if pid == self.ptype_id]
        if self.op == "exists":
            return bool(entries)
        if self.op == "absent":
            return not entries
        dtype = dtype_of(self.ptype_id)
        return any(
            _compare(self.op, decode_value(dtype, blob), self.value)
            for blob in entries
        )


Condition = LabelCondition | PropertyCondition


@dataclass(frozen=True)
class Constraint:
    """A DNF formula: ``OR`` over conjunctions, each ``AND`` of conditions.

    An empty disjunction is unsatisfiable; an empty conjunction is
    trivially true (so ``Constraint.true()`` matches everything).
    """

    conjunctions: tuple[tuple[Condition, ...], ...]

    # -- construction -----------------------------------------------------
    @classmethod
    def of(cls, *conjunctions: Iterable[Condition]) -> "Constraint":
        return cls(tuple(tuple(c) for c in conjunctions))

    @classmethod
    def true(cls) -> "Constraint":
        return cls(((),))

    @classmethod
    def false(cls) -> "Constraint":
        return cls(())

    @classmethod
    def has_label(cls, label_id: int) -> "Constraint":
        return cls.of([LabelCondition(label_id)])

    @classmethod
    def lacks_label(cls, label_id: int) -> "Constraint":
        return cls.of([LabelCondition(label_id, present=False)])

    @classmethod
    def prop(cls, ptype_id: int, op: str = "exists", value: Any = None) -> "Constraint":
        return cls.of([PropertyCondition(ptype_id, op, value)])

    # -- combinators (stay in DNF) ---------------------------------------
    def __or__(self, other: "Constraint") -> "Constraint":
        return Constraint(self.conjunctions + other.conjunctions)

    def __and__(self, other: "Constraint") -> "Constraint":
        combined = tuple(
            a + b for a in self.conjunctions for b in other.conjunctions
        )
        return Constraint(combined)

    # -- evaluation ---------------------------------------------------------
    def evaluate(
        self,
        labels: Sequence[int],
        properties: Sequence[tuple[int, bytes]],
        dtype_of: Callable[[int], Datatype],
    ) -> bool:
        return any(
            all(cond.evaluate(labels, properties, dtype_of) for cond in conj)
            for conj in self.conjunctions
        )

    @property
    def n_conditions(self) -> int:
        return sum(len(c) for c in self.conjunctions)
