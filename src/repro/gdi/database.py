"""GDI database management: the public entry point of the library.

``GraphDatabase`` is the GDI database object.  Per the layering of the
paper (Figure 1), the *specification* lives in :mod:`repro.gdi` while the
*implementation* is GDI-RMA in :mod:`repro.gda`; the facade here is what a
database mid-layer (or a direct GDI client) programs against.

Quick tour::

    from repro.rma import run_spmd
    from repro.gdi import GraphDatabase

    def app(ctx):
        db = GraphDatabase.create(ctx)                # collective
        person = db.create_label(ctx, "Person")
        age = db.create_property_type(ctx, "age", dtype=Datatype.INT64)
        with db.start_transaction(ctx, write=True) as tx:
            v = tx.create_vertex(app_id=1, labels=[person])
            v.set_property(age, 42)
            tx.commit()

    run_spmd(4, app)
"""

from __future__ import annotations

__all__ = ["GraphDatabase", "GdaConfig", "create_database"]

# The implementation lives in repro.gda, which itself imports the GDI
# specification modules; resolve lazily (PEP 562) to avoid the cycle.


def __getattr__(name: str):
    if name in ("GraphDatabase", "GdaConfig"):
        from ..gda.database_impl import GdaConfig, GdaDatabase

        return {"GraphDatabase": GdaDatabase, "GdaConfig": GdaConfig}[name]
    raise AttributeError(name)


def create_database(ctx, config=None):
    """``GDI_CreateDatabase``: collectively create a database instance."""
    from ..gda.database_impl import GdaDatabase

    return GdaDatabase.create(ctx, config)
