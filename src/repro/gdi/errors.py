"""GDI exception hierarchy, mirroring the spec's error-code classes.

GDI distinguishes *transaction-critical* errors (the transaction is
guaranteed to fail and must be restarted by the user) from non-critical
ones (Section 3.3).  The Python binding expresses this distinction in the
class hierarchy so callers can ``except GdiTransactionCritical``.
"""

from __future__ import annotations

from .constants import ErrorCode

__all__ = [
    "GdiError",
    "GdiInvalidArgument",
    "GdiNotFound",
    "GdiStaleDptr",
    "GdiObjectMismatch",
    "GdiStateError",
    "GdiNoMemory",
    "GdiTransactionCritical",
    "GdiLockFailed",
    "GdiStaleMetadata",
    "GdiReadOnly",
    "GdiNonUniqueId",
    "GdiSizeLimit",
    "GdiChecksumError",
]


class GdiError(Exception):
    """Base of all GDI errors; carries the spec error code."""

    code: ErrorCode = ErrorCode.ERROR_STATE

    @property
    def transaction_critical(self) -> bool:
        return isinstance(self, GdiTransactionCritical)


class GdiInvalidArgument(GdiError):
    code = ErrorCode.ERROR_ARGUMENT


class GdiNotFound(GdiError):
    code = ErrorCode.ERROR_NOT_FOUND


class GdiStaleDptr(GdiNotFound):
    """A permanent internal ID (DPTR) predates a vertex relocation.

    Raised instead of a bare :class:`GdiNotFound` when the database can
    prove the ID named a vertex that a rebalance has since moved: the
    DPTR is not merely unknown, it points at a block the vertex vacated.
    Reading through it silently would return the wrong shard's bytes —
    the stale-DPTR hazard of paper Section 3.4, and the reason users who
    want relocation choose *volatile* internal IDs.  ``fresh_vid``
    carries the post-move ID when the relocation table still remembers
    it, so resolvable callers can heal instead of aborting.
    """

    code = ErrorCode.ERROR_NOT_FOUND

    def __init__(self, message: str, fresh_vid: int | None = None) -> None:
        super().__init__(message)
        self.fresh_vid = fresh_vid


class GdiObjectMismatch(GdiError):
    """A handle was used with an object of the wrong type or database."""

    code = ErrorCode.ERROR_OBJECT_MISMATCH


class GdiStateError(GdiError):
    """Operation invalid in the current state (e.g. closed transaction)."""

    code = ErrorCode.ERROR_STATE


class GdiTransactionCritical(GdiError):
    """The enclosing transaction is guaranteed to fail.

    Per the spec there is no recovery: the user aborts and starts a new
    transaction.  The high-level workload drivers count these as the
    "failed transactions" percentages of the paper's Figure 4.
    """

    code = ErrorCode.ERROR_TRANSACTION_CRITICAL


class GdiLockFailed(GdiTransactionCritical):
    """A reader-writer lock could not be obtained in the retry budget."""

    code = ErrorCode.ERROR_LOCK_FAILED


class GdiNoMemory(GdiTransactionCritical):
    """Storage exhausted (no free blocks) or a holder exceeds the block
    addressing capacity.  Transaction-critical: the enclosing transaction
    cannot complete and must be aborted."""

    code = ErrorCode.ERROR_NO_MEMORY


class GdiStaleMetadata(GdiTransactionCritical):
    """Graph data referenced metadata this process has not yet synced.

    This is the abort path required by GDI's eventual consistency for
    metadata (Section 3.8).
    """

    code = ErrorCode.ERROR_STALE_METADATA


class GdiReadOnly(GdiTransactionCritical):
    """A mutation was attempted inside a read-only transaction."""

    code = ErrorCode.ERROR_READ_ONLY


class GdiNonUniqueId(GdiTransactionCritical):
    """An application vertex ID is already present in the database."""

    code = ErrorCode.ERROR_NON_UNIQUE_ID


class GdiSizeLimit(GdiError):
    """A property value violates its declared size type/limit."""

    code = ErrorCode.ERROR_SIZE_LIMIT


class GdiChecksumError(GdiTransactionCritical):
    """A holder payload failed its CRC32 verification.

    Raised when the checksum stored in a holder header does not match the
    payload read back from the block store (silent corruption), or when a
    mirrored block fails verification during failover promotion.
    Transaction-critical: retrying re-reads the same corrupt bytes, so the
    transaction cannot complete; recovery requires restoring the affected
    shard from its replica or a checkpoint.
    """

    code = ErrorCode.ERROR_STATE
