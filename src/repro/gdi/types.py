"""GDI datatypes and property-value (de)serialization.

GDI lets the user declare the datatype of a property type's values
(Section 3.7), which enables compact fixed-width storage.  This module
defines the supported datatypes and converts Python values to/from the
byte payloads stored in holder entry streams
(:mod:`repro.gda.entries`).
"""

from __future__ import annotations

import struct
from enum import Enum
from typing import Any

import numpy as np

from .errors import GdiInvalidArgument

__all__ = ["Datatype", "encode_value", "decode_value", "value_nbytes"]


class Datatype(Enum):
    """Datatypes of property values (``GDI_*`` datatype constants)."""

    INT64 = "int64"
    DOUBLE = "double"
    BOOL = "bool"
    STRING = "string"  # UTF-8
    BYTES = "bytes"
    INT64_ARRAY = "int64_array"
    DOUBLE_ARRAY = "double_array"  # e.g. GNN feature vectors


_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def encode_value(dtype: Datatype, value: Any) -> bytes:
    """Serialize a property value of the given datatype to bytes."""
    try:
        if dtype is Datatype.INT64:
            return _I64.pack(int(value))
        if dtype is Datatype.DOUBLE:
            return _F64.pack(float(value))
        if dtype is Datatype.BOOL:
            return b"\x01" if value else b"\x00"
        if dtype is Datatype.STRING:
            if not isinstance(value, str):
                raise GdiInvalidArgument(f"expected str, got {type(value).__name__}")
            return value.encode("utf-8")
        if dtype is Datatype.BYTES:
            if not isinstance(value, (bytes, bytearray, memoryview)):
                raise GdiInvalidArgument(
                    f"expected bytes, got {type(value).__name__}"
                )
            return bytes(value)
        if dtype is Datatype.INT64_ARRAY:
            arr = np.asarray(value, dtype=np.int64)
            return arr.tobytes()
        if dtype is Datatype.DOUBLE_ARRAY:
            arr = np.asarray(value, dtype=np.float64)
            return arr.tobytes()
    except (struct.error, OverflowError, TypeError, ValueError) as exc:
        raise GdiInvalidArgument(
            f"cannot encode {value!r} as {dtype.value}: {exc}"
        ) from exc
    raise GdiInvalidArgument(f"unknown datatype {dtype!r}")


def decode_value(dtype: Datatype, blob: bytes) -> Any:
    """Deserialize a property payload back into a Python value."""
    try:
        if dtype is Datatype.INT64:
            return _I64.unpack(blob)[0]
        if dtype is Datatype.DOUBLE:
            return _F64.unpack(blob)[0]
        if dtype is Datatype.BOOL:
            return blob != b"\x00"
        if dtype is Datatype.STRING:
            return blob.decode("utf-8")
        if dtype is Datatype.BYTES:
            return bytes(blob)
        if dtype is Datatype.INT64_ARRAY:
            return np.frombuffer(blob, dtype=np.int64).copy()
        if dtype is Datatype.DOUBLE_ARRAY:
            return np.frombuffer(blob, dtype=np.float64).copy()
    except (struct.error, UnicodeDecodeError, ValueError) as exc:
        raise GdiInvalidArgument(
            f"cannot decode {len(blob)}-byte payload as {dtype.value}: {exc}"
        ) from exc
    raise GdiInvalidArgument(f"unknown datatype {dtype!r}")


def value_nbytes(dtype: Datatype, value: Any) -> int:
    """Size in bytes of the encoded payload (element count for arrays)."""
    if dtype in (Datatype.INT64, Datatype.DOUBLE):
        return 8
    if dtype is Datatype.BOOL:
        return 1
    if dtype is Datatype.STRING:
        return len(value.encode("utf-8"))
    if dtype is Datatype.BYTES:
        return len(value)
    if dtype in (Datatype.INT64_ARRAY, Datatype.DOUBLE_ARRAY):
        return 8 * int(np.asarray(value).size)
    raise GdiInvalidArgument(f"unknown datatype {dtype!r}")
