"""Distributed in-memory LPG graph generator (paper contribution #5).

Kronecker edge sampling in the Graph500 style (:mod:`.kronecker`),
configurable label/property schemas defaulting to the paper's 20 labels
and 13 property types (:mod:`.schema`), and bulk materialization into a
GDA database (:mod:`.lpg`).
"""

from .kronecker import KroneckerParams, edge_slice, generate_edges, scramble
from .lpg import (
    GeneratedGraph,
    build_lpg,
    build_lpg_from_edges,
    create_schema_metadata,
)
from .schema import LpgSchema, PropertySpec, default_schema

__all__ = [
    "KroneckerParams",
    "edge_slice",
    "generate_edges",
    "scramble",
    "GeneratedGraph",
    "build_lpg",
    "build_lpg_from_edges",
    "create_schema_metadata",
    "LpgSchema",
    "PropertySpec",
    "default_schema",
]
