"""Graph500-style Kronecker edge generator (paper Section 6.3).

The paper bases its distributed in-memory LPG generator on the Graph500
reference code, which samples edges from the Kronecker random-graph model
[Leskovec et al., JMLR 2010] with initiator matrix ``[[A, B], [C, D]]``
(defaults A=0.57, B=0.19, C=0.19, D=0.05 — the Graph500 parameters).  A
graph of *scale* ``s`` and *edge factor* ``e`` has ``2**s`` vertices and
``e * 2**s`` edges with a heavy-tail skewed degree distribution.

The sampler is vectorized with NumPy (one column of random draws per
Kronecker level) and sharded deterministically: rank ``r`` of ``P``
generates its contiguous slice of the global edge list from a seed derived
from ``(seed, r)``, so the same (seed, scale, efactor) always yields the
same global graph regardless of ``P``'s value only through slicing.
Vertex IDs are scrambled by a fixed pseudo-random permutation, as in
Graph500, so that vertex index carries no structural information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KroneckerParams", "generate_edges", "edge_slice", "scramble"]

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class KroneckerParams:
    """Parameters of one Kronecker graph."""

    scale: int
    edge_factor: int = 16
    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    seed: int = 1

    @property
    def n_vertices(self) -> int:
        return 1 << self.scale

    @property
    def n_edges(self) -> int:
        return self.edge_factor * self.n_vertices

    @property
    def d(self) -> float:
        return 1.0 - self.a - self.b - self.c


def scramble(ids: np.ndarray, scale: int, seed: int) -> np.ndarray:
    """Permute vertex IDs with a deterministic bijection on [0, 2**scale).

    Uses a two-round multiply-xor-shift (a Feistel-free bijection modulo a
    power of two: odd-multiplier affine maps and xorshifts are invertible),
    matching Graph500's intent of destroying the correlation between
    vertex index and degree.
    """
    n_bits = scale
    mask = (1 << n_bits) - 1
    x = ids.astype(np.uint64) & np.uint64(mask)
    mult1 = np.uint64(((seed * 2 + 1) * 0x9E3779B9 | 1) & mask) | np.uint64(1)
    mult2 = np.uint64(((seed * 6 + 5) * 0x85EBCA6B | 1) & mask) | np.uint64(1)
    half = np.uint64(max(1, n_bits // 2))
    with np.errstate(over="ignore"):
        x = (x * mult1) & np.uint64(mask)
        x ^= x >> half
        x = (x * mult2) & np.uint64(mask)
        x ^= x >> half
        x = (x * mult1) & np.uint64(mask)
    return x.astype(np.int64)


def edge_slice(n_edges: int, rank: int, nranks: int) -> tuple[int, int]:
    """Contiguous [start, stop) slice of the global edge list for a rank."""
    base = n_edges // nranks
    extra = n_edges % nranks
    start = rank * base + min(rank, extra)
    stop = start + base + (1 if rank < extra else 0)
    return start, stop


def generate_edges(
    params: KroneckerParams, rank: int = 0, nranks: int = 1
) -> np.ndarray:
    """Generate this rank's shard of the edge list.

    Returns an ``(m_local, 2)`` int64 array of (src, dst) vertex IDs in
    ``[0, 2**scale)``.  Fully deterministic in ``(params, rank, nranks)``.
    """
    start, stop = edge_slice(params.n_edges, rank, nranks)
    m = stop - start
    if m == 0:
        return np.empty((0, 2), dtype=np.int64)
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=params.seed, spawn_key=(rank, nranks))
    )
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = params.a + params.b
    a_norm = params.a / ab
    c_norm = params.c / max(1e-12, (params.c + params.d))
    for bit in range(params.scale):
        ii = rng.random(m) > ab
        jj = rng.random(m) > np.where(ii, c_norm, a_norm)
        src += ii.astype(np.int64) << bit
        dst += jj.astype(np.int64) << bit
    src = scramble(src, params.scale, params.seed)
    dst = scramble(dst, params.scale, params.seed)
    return np.stack([src, dst], axis=1)
