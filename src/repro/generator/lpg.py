"""Distributed in-memory LPG graph materialization (paper Section 6.3).

Builds a labeled property graph inside a GDA database, fully in memory,
using the bulk data-loading collectives of Section 4 (BULK):

1. every rank creates the vertices it owns (round-robin by application
   ID, so creation is purely local) inside one collective write
   transaction, attaching schema-derived labels and properties;
2. the application-ID → internal-ID map is allgathered (the bulk loader's
   one-shot replacement for per-edge DHT lookups);
3. every rank generates its Kronecker edge shard and routes *half-edges*
   with a single alltoall so that each rank appends only to vertices it
   owns — making the lock-free collective write transaction safe.

The result is deterministic in ``(params, schema, nranks)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gda.database_impl import GdaDatabase
from ..gda.holder import DIR_IN, DIR_OUT, DIR_UNDIR
from ..gda.metadata import Label, PropertyType
from ..gdi.constants import EntityType
from ..rma.runtime import RankContext
from .kronecker import KroneckerParams, generate_edges
from .schema import LpgSchema, default_schema

__all__ = ["GeneratedGraph", "build_lpg", "create_schema_metadata"]


@dataclass
class GeneratedGraph:
    """Handle to a generated graph living inside a database."""

    db: GdaDatabase
    params: KroneckerParams
    schema: LpgSchema
    labels: dict[str, Label]
    ptypes: dict[str, PropertyType]
    vid_map: dict[int, int]  # application ID -> internal ID (replicated)
    directed: bool
    n_vertices: int
    n_edges_requested: int
    n_edges_loaded: int

    def vertex_label(self, idx: int) -> Label:
        return self.labels[self.schema.vertex_label_names[idx]]

    def edge_label(self, idx: int) -> Label:
        return self.labels[self.schema.edge_label_names[idx]]

    def ptype(self, name: str) -> PropertyType:
        return self.ptypes[name]


def create_schema_metadata(
    ctx: RankContext, db: GdaDatabase, schema: LpgSchema
) -> tuple[dict[str, Label], dict[str, PropertyType]]:
    """Collectively register the schema's labels and property types."""
    if ctx.rank == 0:
        for name in schema.vertex_label_names + schema.edge_label_names:
            db.create_label(ctx, name)
        for spec in schema.properties:
            db.create_property_type(
                ctx,
                spec.name,
                entity_type=spec.entity_type,
                dtype=spec.dtype,
                size_type=spec.size_type,
                size_limit=spec.size_limit,
            )
    ctx.barrier()
    db.replica(ctx).sync()
    labels = {
        name: db.label(ctx, name)
        for name in schema.vertex_label_names + schema.edge_label_names
    }
    ptypes = {spec.name: db.property_type(ctx, spec.name) for spec in schema.properties}
    return labels, ptypes


def build_lpg(
    ctx: RankContext,
    db: GdaDatabase,
    params: KroneckerParams,
    schema: LpgSchema | None = None,
    *,
    directed: bool = True,
    dedup: bool = True,
    drop_self_loops: bool = False,
) -> GeneratedGraph:
    """Collectively generate and load one LPG Kronecker graph."""
    edges = generate_edges(params, ctx.rank, ctx.nranks)
    g = build_lpg_from_edges(
        ctx,
        db,
        n_vertices=params.n_vertices,
        edges_local=edges.tolist(),
        schema=schema,
        directed=directed,
        dedup=dedup,
        drop_self_loops=drop_self_loops,
    )
    g.params = params
    g.n_edges_requested = params.n_edges
    return g


def build_lpg_from_edges(
    ctx: RankContext,
    db: GdaDatabase,
    *,
    n_vertices: int,
    edges_local: list,
    schema: LpgSchema | None = None,
    directed: bool = True,
    dedup: bool = True,
    drop_self_loops: bool = False,
) -> GeneratedGraph:
    """Bulk-load an arbitrary edge list (e.g. a real-world graph).

    ``edges_local`` is this rank's shard of (src, dst) pairs in
    application-ID space ``[0, n_vertices)``; labels and properties are
    assigned by the schema's deterministic rules, exactly as for
    generated graphs (Section 6.7 loads real-world graphs this way).
    """
    schema = schema if schema is not None else default_schema()
    labels, ptypes = create_schema_metadata(ctx, db, schema)
    n = n_vertices

    # -- phase 1: vertices (local creation, collective write txn) ----------
    tx = db.start_collective_transaction(ctx, write=True)
    local_map: dict[int, int] = {}
    vlabel_names = schema.vertex_label_names
    for app_id in range(ctx.rank, n, ctx.nranks):
        vlabels = [
            labels[vlabel_names[i]] for i in schema.vertex_label_indices(app_id)
        ]
        vprops = [
            (ptypes[name], value)
            for name, value in schema.vertex_property_values(app_id)
        ]
        handle = tx.create_vertex(app_id, labels=vlabels, properties=vprops)
        local_map[app_id] = handle.vid
    tx.commit()

    # -- phase 2: replicate the application-ID map --------------------------
    vid_map: dict[int, int] = {}
    for part in ctx.allgather(local_map):
        vid_map.update(part)

    # -- phase 3: edges (half-edge exchange, collective write txn) -----------
    elabel_names = schema.edge_label_names
    outboxes: list[list[tuple[int, int, int, int]]] = [
        [] for _ in range(ctx.nranks)
    ]
    heavy_out: list[list[tuple[int, int]]] = [[] for _ in range(ctx.nranks)]
    for src, dst in edges_local:
        if drop_self_loops and src == dst:
            continue
        if schema.edge_is_heavy(src, dst):
            # heavyweight edges are created at the source owner and their
            # holder pointers shipped to the destination owner afterwards
            heavy_out[db.home_rank(src)].append((src, dst))
            continue
        li = schema.edge_label_index(src, dst)
        label_id = labels[elabel_names[li]].int_id if li is not None else 0
        if directed:
            outboxes[db.home_rank(src)].append((src, dst, DIR_OUT, label_id))
            outboxes[db.home_rank(dst)].append((src, dst, DIR_IN, label_id))
        else:
            outboxes[db.home_rank(src)].append((src, dst, DIR_UNDIR, label_id))
            if src != dst:
                outboxes[db.home_rank(dst)].append(
                    (dst, src, DIR_UNDIR, label_id)
                )
    received = ctx.alltoall(outboxes)
    half_edges = [he for box in received for he in box]
    if dedup:
        half_edges = sorted(set(half_edges))
    heavy_received = [e for box in ctx.alltoall(heavy_out) for e in box]
    if dedup:
        heavy_received = sorted(set(heavy_received))
    n_loaded_local = 0
    tx = db.start_collective_transaction(ctx, write=True)
    for a, b, direction, label_id in half_edges:
        if direction == DIR_OUT or direction == DIR_UNDIR:
            base, other = a, b
        else:  # DIR_IN half lives on the destination vertex
            base, other = b, a
        tx.bulk_append_half_edge(
            vid_map[base], vid_map[other], direction, label_id,
            other_app_id=other,
        )
        # Count each logical edge exactly once across all ranks.
        if direction == DIR_OUT or (direction == DIR_UNDIR and a <= b):
            n_loaded_local += 1
    # heavyweight edges, round 1: create holders + source-side slots
    reverse_out: list[list[tuple[int, int, int]]] = [
        [] for _ in range(ctx.nranks)
    ]
    for src, dst in heavy_received:
        li = schema.edge_label_index(src, dst)
        elabels = [labels[elabel_names[li]]] if li is not None else []
        props = [
            (ptypes[name], value)
            for name, value in schema.edge_property_values(src, dst)
        ]
        eptr = tx.bulk_create_edge_holder(
            vid_map[src],
            vid_map[dst],
            directed=directed,
            labels=elabels,
            properties=props,
            src_app_id=src,
            dst_app_id=dst,
        )
        fwd = DIR_OUT if directed else DIR_UNDIR
        tx.bulk_append_half_edge(vid_map[src], vid_map[dst], fwd, 0, eptr)
        n_loaded_local += 1
        if src != dst:
            rev = DIR_IN if directed else DIR_UNDIR
            reverse_out[db.home_rank(dst)].append((dst, src, eptr))
        elif directed:
            tx.bulk_append_half_edge(vid_map[src], vid_map[dst], DIR_IN, 0, eptr)
    # heavyweight edges, round 2: destination-side slots
    rev = DIR_IN if directed else DIR_UNDIR
    for box in ctx.alltoall(reverse_out):
        for base, other, eptr in box:
            tx.bulk_append_half_edge(
                vid_map[base], vid_map[other], rev, 0, eptr
            )
    tx.commit()
    n_loaded = ctx.allreduce(n_loaded_local)

    n_edges_local = len(edges_local)
    return GeneratedGraph(
        db=db,
        params=KroneckerParams(scale=max(1, (n - 1).bit_length())),
        schema=schema,
        labels=labels,
        ptypes=ptypes,
        vid_map=vid_map,
        directed=directed,
        n_vertices=n,
        n_edges_requested=ctx.allreduce(n_edges_local),
        n_edges_loaded=n_loaded,
    )
