"""Label/property schema for generated LPG graphs (paper Section 6.3).

The paper's generator extends Kronecker graphs with "a user-specified
selection (counts and sizes) of labels and properties, and how they are
assigned to vertices and edges", defaulting to **20 labels and 13 property
types**.  This module defines that schema and the deterministic assignment
functions: every vertex receives one primary label plus optional secondary
labels and property values derived from a hash of its application ID, so
regeneration is reproducible and no coordination between ranks is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gdi.constants import EntityType, Multiplicity, SizeType
from ..gdi.types import Datatype

__all__ = ["PropertySpec", "LpgSchema", "default_schema"]


def _mix(x: int, salt: int) -> int:
    x = (x + salt * 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & ((1 << 64) - 1)
    return x ^ (x >> 31)


@dataclass(frozen=True)
class PropertySpec:
    """Declaration of one generated property type."""

    name: str
    dtype: Datatype
    entity_type: EntityType = EntityType.VERTEX
    size_type: SizeType = SizeType.UNBOUNDED
    size_limit: int = 0
    #: fraction of elements that carry this property
    density: float = 1.0
    #: for arrays: element count; for strings: character count
    length: int = 8


@dataclass
class LpgSchema:
    """Counts, names, and assignment rules of labels and property types.

    ``n_vertex_labels`` + ``n_edge_labels`` labels total; every vertex
    gets one primary vertex-label (chosen by ID hash) and, with
    probability ``secondary_label_density``, one secondary label;
    lightweight edges carry one edge-label.
    """

    n_vertex_labels: int = 16
    n_edge_labels: int = 4
    properties: list[PropertySpec] = field(default_factory=list)
    secondary_label_density: float = 0.25
    #: fraction of edges that carry properties (heavyweight edges);
    #: requires at least one EDGE-typed PropertySpec
    heavy_edge_fraction: float = 0.0
    seed: int = 7

    # -- names -------------------------------------------------------------
    @property
    def vertex_label_names(self) -> list[str]:
        return [f"VL{i}" for i in range(self.n_vertex_labels)]

    @property
    def edge_label_names(self) -> list[str]:
        return [f"EL{i}" for i in range(self.n_edge_labels)]

    @property
    def n_labels(self) -> int:
        return self.n_vertex_labels + self.n_edge_labels

    def vertex_properties_specs(self) -> list[PropertySpec]:
        return [
            p for p in self.properties if p.entity_type & EntityType.VERTEX
        ]

    def edge_properties_specs(self) -> list[PropertySpec]:
        return [
            p for p in self.properties if p.entity_type & EntityType.EDGE
        ]

    # -- assignment rules -----------------------------------------------------
    def vertex_label_indices(self, app_id: int) -> list[int]:
        """Indices (into vertex_label_names) of this vertex's labels."""
        if self.n_vertex_labels == 0:
            return []
        h = _mix(app_id, self.seed)
        out = [h % self.n_vertex_labels]
        if (
            self.n_vertex_labels > 1
            and (_mix(app_id, self.seed + 1) % 1000) / 1000.0
            < self.secondary_label_density
        ):
            second = _mix(app_id, self.seed + 2) % self.n_vertex_labels
            if second != out[0]:
                out.append(second)
        return out

    def edge_label_index(self, src: int, dst: int) -> int | None:
        """Index (into edge_label_names) of an edge's label, or None."""
        if self.n_edge_labels == 0:
            return None
        return _mix(src * 0x1F123BB5 + dst, self.seed + 3) % self.n_edge_labels

    def edge_is_heavy(self, src: int, dst: int) -> bool:
        """Does this edge carry properties (become a heavyweight edge)?"""
        if self.heavy_edge_fraction <= 0 or not self.edge_properties_specs():
            return False
        h = _mix(src * 0x27D4EB2F + dst, self.seed + 9)
        return (h % 10_000) / 10_000.0 < self.heavy_edge_fraction

    def edge_property_values(self, src: int, dst: int) -> list[tuple[str, object]]:
        """(p-type name, value) pairs for one heavyweight edge."""
        out: list[tuple[str, object]] = []
        for i, spec in enumerate(self.edge_properties_specs()):
            h = _mix(src * 0x9E3779B1 + dst, self.seed + 200 + i)
            if (h % 1000) / 1000.0 >= spec.density:
                continue
            out.append((spec.name, self._value_for(spec, h)))
        return out

    def vertex_property_values(self, app_id: int) -> list[tuple[str, object]]:
        """(p-type name, value) pairs generated for one vertex."""
        out: list[tuple[str, object]] = []
        for i, spec in enumerate(self.vertex_properties_specs()):
            h = _mix(app_id, self.seed + 100 + i)
            if (h % 1000) / 1000.0 >= spec.density:
                continue
            out.append((spec.name, self._value_for(spec, h)))
        return out

    @staticmethod
    def _value_for(spec: PropertySpec, h: int) -> object:
        if spec.dtype is Datatype.INT64:
            return h % 100_000
        if spec.dtype is Datatype.DOUBLE:
            return (h % 10_000) / 100.0
        if spec.dtype is Datatype.BOOL:
            return bool(h & 1)
        if spec.dtype is Datatype.STRING:
            alphabet = "abcdefghijklmnopqrstuvwxyz"
            return "".join(
                alphabet[(h >> (5 * k)) % 26] for k in range(spec.length)
            )
        if spec.dtype is Datatype.BYTES:
            return (h & ((1 << (8 * spec.length)) - 1)).to_bytes(
                spec.length, "little"
            )
        if spec.dtype is Datatype.DOUBLE_ARRAY:
            rng = np.random.default_rng(h & 0xFFFFFFFF)
            return rng.random(spec.length)
        if spec.dtype is Datatype.INT64_ARRAY:
            rng = np.random.default_rng(h & 0xFFFFFFFF)
            return rng.integers(0, 1000, size=spec.length, dtype=np.int64)
        raise ValueError(f"unsupported dtype {spec.dtype}")


def default_schema(
    n_vertex_labels: int = 16,
    n_edge_labels: int = 4,
    n_properties: int = 13,
    feature_dim: int = 8,
    seed: int = 7,
) -> LpgSchema:
    """The paper's default: 20 labels and 13 property types.

    The property mix covers every GDI datatype: identifiers and counters
    (INT64), scores (DOUBLE), flags (BOOL), names/descriptions (STRING),
    opaque payloads (BYTES), and a GNN feature vector (DOUBLE_ARRAY) as
    used by the OLAP GNN workload of Listing 2.
    """
    catalog = [
        PropertySpec("p_id", Datatype.INT64),
        PropertySpec("p_score", Datatype.DOUBLE),
        PropertySpec("p_active", Datatype.BOOL),
        PropertySpec("p_name", Datatype.STRING, length=12),
        PropertySpec("p_blob", Datatype.BYTES, length=16, density=0.5),
        PropertySpec(
            "p_feature",
            Datatype.DOUBLE_ARRAY,
            size_type=SizeType.FIXED,
            size_limit=8 * feature_dim,
            length=feature_dim,
        ),
        PropertySpec("p_age", Datatype.INT64, density=0.9),
        PropertySpec("p_rank", Datatype.DOUBLE, density=0.8),
        PropertySpec("p_city", Datatype.STRING, length=8, density=0.7),
        PropertySpec("p_flags", Datatype.INT64, density=0.6),
        PropertySpec("p_note", Datatype.STRING, length=20, density=0.3),
        PropertySpec("p_ts", Datatype.INT64, density=0.95),
        PropertySpec("p_ratio", Datatype.DOUBLE, density=0.4),
    ]
    return LpgSchema(
        n_vertex_labels=n_vertex_labels,
        n_edge_labels=n_edge_labels,
        properties=catalog[: max(0, n_properties)],
        seed=seed,
    )
