"""MVCC snapshot reads for true HTAP (ROADMAP: versioned blocks).

The paper's headline is OLTP *and* OLAP on one store; this package
removes the remaining contention between them.  Write commits install
pre-image version chains as part of commit write-back, a monotonic
commit-timestamp authority piggybacks on the commit log's append order,
and read-only transactions opened with ``snapshot=True`` resolve every
holder read against a frozen watermark instead of taking read locks —
so a write-heavy storm never blocks (and is never blocked by) an
analytics scan.  A watermark GC reclaims superseded versions once no
live snapshot can see them, keeping memory bounded.

Layout:

* :mod:`repro.mvcc.versions` — :class:`VersionStore`, the thread-safe
  pre-image chains keyed by storage object, with the visibility rule
  and watermark pruning.
* :mod:`repro.mvcc.snapshot` — :class:`SnapshotManager` (timestamp
  authority, applied-watermark tracking, live-snapshot registry,
  unpublish tombstones for deleted vertices, GC driver) and the
  :class:`Snapshot` handle read-only transactions carry.

The manager is a *control-path shared structure* like the commit log
and the vertex directory: rank 0 constructs it with the database and
every rank reaches it through the shared ``db.mvcc`` reference, so
version chains survive rank crashes the same way the log does — block
repair restores the live images (version headers are copied verbatim
by the mirror), the chains were never lost.
"""

from __future__ import annotations

from .snapshot import Snapshot, SnapshotManager
from .versions import VersionStore

__all__ = ["Snapshot", "SnapshotManager", "VersionStore"]
