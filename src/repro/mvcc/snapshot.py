"""Commit-timestamp authority, watermark tracking, snapshots, and GC.

Timestamps piggyback on the commit log's append order: a committing
transaction calls :meth:`SnapshotManager.begin_commit` immediately
after its log append, while it still holds every write lock, so the
timestamp order *is* the serialization order of conflicting commits.
The **applied watermark** is the largest ``W`` such that every commit
with ``ts <= W`` has finished write-back (commits apply out of order
across ranks, so the watermark is the contiguous applied prefix).  A
snapshot taken at watermark ``W`` therefore sees a state that really
existed: all of commits ``1..W``, none after.

Crashed commits: a rank that dies between ``begin_commit`` and
``note_applied`` would pin the watermark forever.  Each pending
timestamp remembers its issuing rank; failover's heal step calls
:meth:`force_apply` for the dead ranks once their shards are repaired
and the log replayed — the replay re-applies surviving effects under
*fresh* timestamps, so the orphaned one is safe to retire.

GC: the reclamation floor is the smallest live snapshot watermark (or
the applied watermark when no snapshot is open).  :meth:`collect`
prunes version chains and unpublish tombstones up to the floor; it runs
automatically every ``gc_interval`` applied commits and from the
checkpoint machinery (:func:`repro.gda.recovery.take_checkpoint`), so
long-lived version history is bounded by snapshot lifetime, not run
length.
"""

from __future__ import annotations

import threading
from bisect import insort

from .versions import VersionStore

__all__ = ["Snapshot", "SnapshotManager"]


class Snapshot:
    """A read-only transaction's frozen watermark (refcounted handle)."""

    __slots__ = ("watermark", "manager", "closed")

    def __init__(self, watermark: int, manager: "SnapshotManager") -> None:
        self.watermark = watermark
        self.manager = manager
        self.closed = False

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.manager.release(self.watermark)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"Snapshot(watermark={self.watermark}, {state})"


class SnapshotManager:
    """Timestamp authority + snapshot registry + watermark GC driver.

    One instance per database, shared by every rank (control path, like
    the commit log).  All methods are thread-safe.
    """

    def __init__(self, gc_interval: int = 32) -> None:
        self._lock = threading.Lock()
        self.gc_interval = max(1, int(gc_interval))
        self._last_ts = 0
        self._watermark = 0
        #: issued-but-not-applied commit ts -> issuing rank
        self._pending: dict[int, int] = {}
        #: applied ts above the watermark, awaiting the contiguous prefix
        self._applied_ahead: set[int] = set()
        #: live snapshot watermark -> refcount
        self._live: dict[int, int] = {}
        self.versions = VersionStore()
        #: unpublish tombstones for deleted vertices, so snapshots can
        #: still *find* and *enumerate* them: app_id -> [(delete_ts, vid)]
        #: sorted by ts, and shard -> [(delete_ts, vid)] for directory
        #: sweeps.  Pruned with the same GC floor as the chains.
        self._unpublished: dict[int, list[tuple[int, int]]] = {}
        self._deleted_by_shard: dict[int, list[tuple[int, int]]] = {}
        self._applied_since_gc = 0
        #: lifetime GC statistics (benchmark reporting)
        self.total_reclaimed = 0
        self.gc_floor_high = 0

    # -- timestamp authority ----------------------------------------------
    def begin_commit(self, rank: int) -> int:
        """Allocate the next commit timestamp (call right after the log
        append, while the write locks are still held)."""
        with self._lock:
            self._last_ts += 1
            ts = self._last_ts
            self._pending[ts] = rank
            return ts

    def note_applied(self, ts: int) -> None:
        """Mark commit ``ts`` fully written back; advance the watermark
        over the contiguous applied prefix."""
        with self._lock:
            self._pending.pop(ts, None)
            self._applied_ahead.add(ts)
            while self._watermark + 1 in self._applied_ahead:
                self._watermark += 1
                self._applied_ahead.discard(self._watermark)
            self._applied_since_gc += 1

    def force_apply(self, ranks) -> int:
        """Retire pending timestamps issued by (now dead) ``ranks`` so
        the watermark can advance past their orphaned commits.  Returns
        how many were retired."""
        dead = set(ranks)
        with self._lock:
            orphans = [t for t, r in self._pending.items() if r in dead]
        for ts in orphans:
            self.note_applied(ts)
        return len(orphans)

    @property
    def watermark(self) -> int:
        with self._lock:
            return self._watermark

    @property
    def last_issued(self) -> int:
        with self._lock:
            return self._last_ts

    # -- snapshot registry -------------------------------------------------
    def begin_snapshot(self) -> Snapshot:
        with self._lock:
            w = self._watermark
            self._live[w] = self._live.get(w, 0) + 1
        return Snapshot(w, self)

    def share(self, snap: Snapshot) -> Snapshot:
        """Join an existing snapshot (collective transactions: rank 0
        begins, the broadcast handle is shared by every other rank).
        Returns a per-rank handle at the same watermark."""
        with self._lock:
            self._live[snap.watermark] = self._live.get(snap.watermark, 0) + 1
        return Snapshot(snap.watermark, self)

    def release(self, watermark: int) -> None:
        with self._lock:
            n = self._live.get(watermark, 0) - 1
            if n > 0:
                self._live[watermark] = n
            else:
                self._live.pop(watermark, None)

    def live_snapshots(self) -> int:
        with self._lock:
            return sum(self._live.values())

    # -- unpublish tombstones ---------------------------------------------
    def note_unpublished(
        self, app_id: int, vid: int, shard: int, ts: int
    ) -> None:
        """Record that the vertex ``vid`` (application ID ``app_id``,
        homed on ``shard``) was deleted by commit ``ts`` — snapshots at
        watermarks below ``ts`` still see it."""
        with self._lock:
            insort(
                self._unpublished.setdefault(app_id, []), (ts, vid)
            )
            insort(
                self._deleted_by_shard.setdefault(shard, []), (ts, vid)
            )

    def lookup_unpublished(self, app_id: int, watermark: int) -> int | None:
        """The vid that carried ``app_id`` at ``watermark`` if a later
        commit deleted it (DHT lookup misses it now)."""
        with self._lock:
            for ts, vid in self._unpublished.get(app_id, ()):
                if ts > watermark:
                    return vid
        return None

    def deleted_vids(self, shard: int, watermark: int) -> list[int]:
        """Vids homed on ``shard`` that existed at ``watermark`` but
        have since been deleted (missing from the live directory)."""
        with self._lock:
            return [
                vid
                for ts, vid in self._deleted_by_shard.get(shard, ())
                if ts > watermark
            ]

    def rekey(self, mapping: dict[int, int]) -> None:
        """Follow a relocation: version chains and tombstones move with
        their vertices (``old vid -> new vid``)."""
        self.versions.rekey({("v", old): ("v", new) for old, new in mapping.items()})
        with self._lock:
            for entries in self._unpublished.values():
                for i, (ts, vid) in enumerate(entries):
                    if vid in mapping:
                        entries[i] = (ts, mapping[vid])
            for entries in self._deleted_by_shard.values():
                for i, (ts, vid) in enumerate(entries):
                    if vid in mapping:
                        entries[i] = (ts, mapping[vid])

    # -- GC ----------------------------------------------------------------
    def gc_floor(self) -> int:
        """Reclamation floor: nothing at or below it is reachable."""
        with self._lock:
            if self._live:
                return min(self._live)
            return self._watermark

    def collect(self, ctx=None) -> int:
        """Prune version chains and tombstones up to the floor.

        With ``ctx`` the reclaimed-entry count and the floor gauge are
        recorded in the rank's trace counters.  Returns the number of
        entries reclaimed.
        """
        floor = self.gc_floor()
        reclaimed = self.versions.prune(floor)
        with self._lock:
            for app_id in list(self._unpublished):
                entries = self._unpublished[app_id]
                kept = [(t, v) for t, v in entries if t > floor]
                reclaimed += len(entries) - len(kept)
                if kept:
                    self._unpublished[app_id] = kept
                else:
                    del self._unpublished[app_id]
            for shard in list(self._deleted_by_shard):
                entries = self._deleted_by_shard[shard]
                kept = [(t, v) for t, v in entries if t > floor]
                if kept:
                    self._deleted_by_shard[shard] = kept
                else:
                    del self._deleted_by_shard[shard]
            self.total_reclaimed += reclaimed
            if floor > self.gc_floor_high:
                self.gc_floor_high = floor
        if ctx is not None:
            if reclaimed:
                ctx.rt.trace.record_versions_reclaimed(ctx.rank, reclaimed)
            ctx.rt.trace.record_gc_watermark(ctx.rank, floor)
        return reclaimed

    def maybe_collect(self, ctx=None) -> int:
        """Opportunistic GC: runs :meth:`collect` once every
        ``gc_interval`` applied commits (called from commit write-back,
        so a write-heavy storm reclaims as it goes)."""
        with self._lock:
            if self._applied_since_gc < self.gc_interval:
                return 0
            self._applied_since_gc = 0
        return self.collect(ctx)
