"""Pre-image version chains: the storage side of snapshot isolation.

A chain entry ``(boundary_ts, image)`` records that *immediately before*
the commit with timestamp ``boundary_ts`` applied, the object's state
was ``image`` (``None`` = the object did not exist).  Entries are
installed by the committing transaction while it still holds every
write lock, *before* the live blocks are rewritten, which yields the
visibility rule snapshot readers rely on:

* a reader at watermark ``W`` sees the effects of exactly the commits
  with ``ts <= W``;
* the smallest chain entry with ``boundary_ts > W`` is the object's
  state at ``W`` (no commit in ``(W, boundary_ts)`` touched the object,
  else it would have installed its own entry — and entries above a live
  watermark are never pruned);
* no such entry means no commit after ``W`` modified the object, so the
  *live* blocks are the state at ``W``.  The reader validates that by
  checking the version stamped in the holder header is ``<= W`` and
  re-resolving the chain when it is not (the racing writer installed
  the pre-image before it touched the blocks).

Keys are opaque hashables — the transaction layer uses ``("v", vid)``
for vertex holders and ``("e", eptr)`` for heavyweight-edge holders so
the two ID spaces cannot collide.

GC: :meth:`VersionStore.prune` drops every entry with ``boundary_ts <=
floor`` where ``floor`` is the smallest live snapshot watermark.  Any
future reader has ``W >= floor`` and only ever consults entries with
``boundary_ts > W``, so the dropped entries are unreachable.
"""

from __future__ import annotations

import threading
from bisect import bisect_right, insort

__all__ = ["VersionStore"]

#: sentinel distinguishing "no chain entry covers this watermark — read
#: the live blocks" from "the chain says the object was absent" (None)
_MISS = object()


class VersionStore:
    """Thread-safe pre-image chains for one database."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: key -> [(boundary_ts, image)] sorted ascending by boundary_ts
        self._chains: dict[object, list[tuple[int, object]]] = {}

    def install(self, key, boundary_ts: int, image) -> bool:
        """Record ``image`` as the state of ``key`` before commit
        ``boundary_ts``.  Returns False if that boundary was already
        installed (idempotent under replay)."""
        with self._lock:
            chain = self._chains.setdefault(key, [])
            ts_list = [t for t, _ in chain]
            i = bisect_right(ts_list, boundary_ts)
            if i > 0 and ts_list[i - 1] == boundary_ts:
                return False
            insort(chain, (boundary_ts, image), key=lambda e: e[0])
            return True

    def resolve(self, key, watermark: int) -> tuple[bool, object]:
        """Resolve ``key`` at ``watermark``.

        Returns ``(True, image)`` when a chain entry covers the
        watermark (``image`` may be None: absent at that time), or
        ``(False, None)`` when the live blocks are authoritative.
        """
        with self._lock:
            chain = self._chains.get(key)
            if not chain:
                return (False, None)
            ts_list = [t for t, _ in chain]
            i = bisect_right(ts_list, watermark)
            if i == len(chain):
                return (False, None)
            return (True, chain[i][1])

    def covered(self, key, watermark: int) -> bool:
        """True when a chain entry (not the live blocks) serves ``key``
        at ``watermark``."""
        with self._lock:
            chain = self._chains.get(key)
            if not chain:
                return False
            return chain[-1][0] > watermark

    def prune(self, floor: int) -> int:
        """Drop every entry with ``boundary_ts <= floor``; returns how
        many entries were reclaimed."""
        reclaimed = 0
        with self._lock:
            for key in list(self._chains):
                chain = self._chains[key]
                ts_list = [t for t, _ in chain]
                i = bisect_right(ts_list, floor)
                if i:
                    reclaimed += i
                    del chain[:i]
                if not chain:
                    del self._chains[key]
        return reclaimed

    def rekey(self, mapping: dict) -> None:
        """Rename chain keys after a relocation (old key -> new key).

        Relocation runs at a quiescent point (no open transactions, so
        no live snapshots), but chains above the applied watermark must
        follow the object to its new home for *future* snapshots.
        """
        with self._lock:
            moved = {}
            for old, new in mapping.items():
                chain = self._chains.pop(old, None)
                if chain is not None:
                    moved[new] = chain
            self._chains.update(moved)

    # -- introspection (tests, GC accounting) ------------------------------
    def total_entries(self) -> int:
        with self._lock:
            return sum(len(c) for c in self._chains.values())

    def chain_len(self, key) -> int:
        with self._lock:
            return len(self._chains.get(key, ()))
