"""Declarative query layer over GDI transactions (Cypher-lite).

The paper positions GDI as the storage-and-transaction layer *beneath* a
graph-database query front-end (Sections 1, 3); this package is that
front-end.  It follows the classic pipeline of a declarative engine
(*A1: A Distributed In-Memory Graph Database* uses the same shape over
one-sided reads):

1. :mod:`repro.query.lexer` + :mod:`repro.query.parser` — a tokenizer and
   recursive-descent parser for a Cypher-lite pattern language, producing
   the AST of :mod:`repro.query.ast`;
2. :mod:`repro.query.planner` — rule-based rewrites (predicate pushdown
   into GDI DNF :class:`~repro.gdi.constraint.Constraint`\\ s, point
   lookups routed to the DHT, label/property scans routed to
   :class:`~repro.gda.index_impl.ExplicitIndex`) plus cost-based join
   ordering driven by index/label cardinalities and the RMA cost model;
3. :mod:`repro.query.physical` — batched, vectorized operators that run
   inside a single GDI transaction and prefetch whole frontiers through
   the batched RMA read paths (``find_vertices``/``associate_vertices``);
4. :mod:`repro.query.engine` — the :class:`QueryEngine` facade with a
   plan cache (hits skip parse+plan), ``EXPLAIN``/``PROFILE`` output and
   per-operator RMA counters wired into the trace recorder;
5. :mod:`repro.query.reference` — a naive full-scan interpreter used as a
   correctness oracle by the property-based equivalence suite.
"""

from .ast import Query
from .engine import QueryEngine, QueryResult
from .errors import QueryError, QueryPlanError, QuerySyntaxError
from .parser import parse_query
from .planner import plan_query
from .reference import run_reference

__all__ = [
    "Query",
    "QueryEngine",
    "QueryResult",
    "QueryError",
    "QueryPlanError",
    "QuerySyntaxError",
    "parse_query",
    "plan_query",
    "run_reference",
]
