"""Abstract syntax tree of the Cypher-lite language.

All nodes are frozen dataclasses so that a parsed query (and every plan
derived from it) is hashable and safely shareable across threads — the
plan cache relies on this.

The grammar (see docs/GDI_SPEC.md §11 for the full EBNF)::

    query     := [EXPLAIN | PROFILE]
                 [MATCH pattern ("," pattern)*] [WHERE expr]
                 [CREATE pattern ("," pattern)*]
                 [SET setitem ("," setitem)*]
                 [DELETE var ("," var)*]
                 [RETURN [DISTINCT] item ("," item)*
                    [ORDER BY order ("," order)*] [SKIP n] [LIMIT n]]
    pattern   := node (rel node)*
    node      := "(" [var] (":" Label)* [props] ")"
    rel       := "-" "[" [var] [":" Label] ["*" [min] ".." [max]] [props]
                 "]" ("->" | "-") | "<-" "[" ... "]" "-"
    props     := "{" key (op | ":") value ("," ...)* "}"

Two deliberate deviations from Cypher, chosen to keep the engine and the
full-scan reference oracle exactly equivalent:

* property maps accept comparison operators (``{age > 30}``), not only
  equality;
* variable-length expansion ``*min..max`` uses **BFS distance
  semantics** — it binds each distinct endpoint whose shortest-path
  distance from the source lies in ``[min, max]`` exactly once — rather
  than Cypher's trail semantics (one row per non-edge-repeating path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Param",
    "PropPredicate",
    "NodePattern",
    "RelPattern",
    "PathPattern",
    "Expr",
    "Literal",
    "ParamRef",
    "VarRef",
    "PropRef",
    "Cmp",
    "HasLabel",
    "IsNull",
    "And",
    "Or",
    "Not",
    "FuncCall",
    "ReturnItem",
    "OrderItem",
    "SetProp",
    "SetLabel",
    "Query",
    "AGGREGATE_FUNCS",
]

#: aggregate function names understood by RETURN
AGGREGATE_FUNCS = ("count", "sum", "min", "max", "avg", "collect")


@dataclass(frozen=True)
class Param:
    """A ``$name`` placeholder resolved from the params dict at run time."""

    name: str


@dataclass(frozen=True)
class PropPredicate:
    """One ``key op value`` entry of a pattern property map."""

    key: str
    op: str  # one of = <> < <= > >=
    value: Any  # literal or Param


@dataclass(frozen=True)
class NodePattern:
    """``(var:Label {k op v, ...})``; ``var`` may be auto-generated."""

    var: str
    labels: tuple[str, ...] = ()
    preds: tuple[PropPredicate, ...] = ()
    #: parser-generated variable (not usable in RETURN)
    anonymous: bool = False


@dataclass(frozen=True)
class RelPattern:
    """``-[var:Label*min..max {k op v}]->`` between two nodes."""

    var: str | None = None
    label: str | None = None
    direction: str = "any"  # "out" | "in" | "any", relative to left node
    min_hops: int = 1
    max_hops: int = 1
    preds: tuple[PropPredicate, ...] = ()
    #: a ``*`` was present — even ``*1..1`` keeps BFS-distance semantics
    #: (one row per distinct endpoint, self-loops never reach the source)
    starred: bool = False

    @property
    def var_length(self) -> bool:
        return self.starred or (self.min_hops, self.max_hops) != (1, 1)


@dataclass(frozen=True)
class PathPattern:
    """A chain ``node (rel node)*``; ``len(rels) == len(nodes) - 1``."""

    nodes: tuple[NodePattern, ...]
    rels: tuple[RelPattern, ...] = ()


# -- expressions (WHERE / RETURN / SET values) -----------------------------
class Expr:
    """Marker base class of expression nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    value: Any


@dataclass(frozen=True)
class ParamRef(Expr):
    name: str


@dataclass(frozen=True)
class VarRef(Expr):
    """A bare pattern variable (vertex or relationship)."""

    name: str


@dataclass(frozen=True)
class PropRef(Expr):
    """``var.key``; the reserved key ``id`` is the application ID."""

    var: str
    key: str


@dataclass(frozen=True)
class Cmp(Expr):
    op: str  # = <> < <= > >=
    left: Expr
    right: Expr


@dataclass(frozen=True)
class HasLabel(Expr):
    """``var:Label`` used as a boolean predicate."""

    var: str
    label: str


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class And(Expr):
    items: tuple[Expr, ...]


@dataclass(frozen=True)
class Or(Expr):
    items: tuple[Expr, ...]


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True)
class FuncCall(Expr):
    """``fn(args)``; ``count(*)`` is ``FuncCall("count", (), star=True)``."""

    name: str
    args: tuple[Expr, ...] = ()
    distinct: bool = False
    star: bool = False

    @property
    def aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCS


# -- clauses ----------------------------------------------------------------
@dataclass(frozen=True)
class ReturnItem:
    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    desc: bool = False


@dataclass(frozen=True)
class SetProp:
    """``SET var.key = value``."""

    var: str
    key: str
    value: Expr


@dataclass(frozen=True)
class SetLabel:
    """``SET var:Label``."""

    var: str
    label: str


@dataclass(frozen=True)
class Query:
    """One parsed Cypher-lite statement."""

    matches: tuple[PathPattern, ...] = ()
    where: Expr | None = None
    creates: tuple[PathPattern, ...] = ()
    sets: tuple[SetProp | SetLabel, ...] = ()
    deletes: tuple[str, ...] = ()
    returns: tuple[ReturnItem, ...] = ()
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    skip: Any = None  # int | Param | None
    limit: Any = None  # int | Param | None
    mode: str = "run"  # "run" | "explain" | "profile"

    @property
    def writes(self) -> bool:
        return bool(self.creates or self.sets or self.deletes)

    def match_vars(self) -> tuple[str, ...]:
        """Pattern variables bound by MATCH, in first-appearance order."""
        seen: dict[str, None] = {}
        for path in self.matches:
            for i, node in enumerate(path.nodes):
                seen.setdefault(node.var, None)
                if i < len(path.rels) and path.rels[i].var:
                    seen.setdefault(path.rels[i].var, None)
        return tuple(seen)
