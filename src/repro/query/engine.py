"""The :class:`QueryEngine` facade: plan cache, EXPLAIN/PROFILE, execution.

``run()`` is the single entry point: parse → plan → execute inside one
GDI transaction.  Parsed-and-planned queries are cached keyed on the
whitespace-normalized query text plus a fingerprint of the database's
index set, so re-executing a query skips both parse and plan entirely —
cache hits/misses are recorded per rank in the RMA trace recorder
(``plan_cache_hits`` / ``plan_cache_misses``), which is how benchmarks
verify that the cache engages.

Cache entries carry the vertex-directory version they were planned
against.  Staleness never affects correctness (every operator
re-validates fetched data against its constraints), but when the
version has moved the entry is *revalidated* with
:func:`~repro.query.planner.plan_is_current`: if current statistics
would still choose the same scan access paths the entry is refreshed in
place (a hit); if an access path flipped — an index overtaking a label
sweep, a label histogram inversion — the query is re-planned (a miss).
Creating or dropping an index changes the fingerprint and naturally
re-plans.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from .errors import QueryPlanError
from .logical import LogicalPlan
from .parser import parse_query
from .physical import ExecState, execute_plan
from .planner import plan_is_current, plan_query

__all__ = ["QueryEngine", "QueryResult"]


@dataclass
class QueryResult:
    """Outcome of one query execution."""

    columns: tuple[str, ...]
    rows: list[tuple]
    stats: dict = field(default_factory=dict)
    plan: LogicalPlan | None = None
    #: EXPLAIN/PROFILE rendering (None for plain runs)
    plan_text: str | None = None

    def scalar(self):
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise QueryPlanError(
                f"expected a 1x1 result, got {len(self.rows)} row(s)"
            )
        return self.rows[0][0]


#: default LRU bound of the plan cache: generous for any benchmark's
#: working set of distinct query texts, yet a hard ceiling so a
#: many-tenant serving workload with diverse text cannot grow the
#: engine's memory without limit.
DEFAULT_PLAN_CACHE_ENTRIES = 256


class QueryEngine:
    """Cypher-lite query engine over one GDA database.

    One engine may be shared by all ranks of a simulation (its plan
    cache is guarded by a lock); per-execution state lives in the
    transaction, never in the engine.

    The plan cache is an LRU bounded to ``max_cache_entries``: lookups
    and refreshes touch the entry, inserts beyond the bound evict the
    least-recently-used plan (counted per rank as
    ``plan_cache_evictions`` in the trace recorder).
    """

    def __init__(
        self, db, max_cache_entries: int = DEFAULT_PLAN_CACHE_ENTRIES
    ) -> None:
        if max_cache_entries < 1:
            raise ValueError("max_cache_entries must be >= 1")
        self.db = db
        self.max_cache_entries = max_cache_entries
        #: cache key -> (plan, directory version it was validated against),
        #: in least-recently-used-first order
        self._cache: OrderedDict[tuple, tuple[LogicalPlan, int]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    # -- plan cache --------------------------------------------------------
    def _cache_key(self, text: str) -> tuple:
        return (
            " ".join(text.split()),
            tuple(sorted(self.db.indexes)),
            tuple(sorted(self.db.edge_indexes)),
        )

    def _cache_store(self, ctx, key: tuple, value: tuple) -> None:
        """Insert/refresh ``key`` as most-recently-used; evict past the cap."""
        with self._lock:
            self._cache[key] = value
            self._cache.move_to_end(key)
            n_evicted = 0
            while len(self._cache) > self.max_cache_entries:
                self._cache.popitem(last=False)
                n_evicted += 1
        for _ in range(n_evicted):
            ctx.rt.trace.record_plan_cache_eviction(ctx.rank)

    def _get_plan(self, ctx, text: str) -> LogicalPlan:
        key = self._cache_key(text)
        version = self.db.directory.version
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
        plan: LogicalPlan | None = None
        if entry is not None:
            plan, seen_version = entry
            if seen_version != version:
                # data moved underneath the plan: keep it only if current
                # statistics would still pick the same scan access paths
                if plan_is_current(self.db, ctx, plan):
                    self._cache_store(ctx, key, (plan, version))
                else:
                    plan = None
        ctx.rt.trace.record_plan_cache(ctx.rank, hit=plan is not None)
        if plan is None:
            plan = plan_query(self.db, ctx, parse_query(text))
            self._cache_store(ctx, key, (plan, version))
        return plan

    def cache_info(self, ctx) -> dict[str, int]:
        """This rank's plan-cache hit/miss/eviction counters + cache size."""
        counters = ctx.rt.trace.counters[ctx.rank]
        with self._lock:
            size = len(self._cache)
        return {
            "hits": counters.plan_cache_hits,
            "misses": counters.plan_cache_misses,
            "entries": size,
            "evictions": counters.plan_cache_evictions,
        }

    # -- entry points ------------------------------------------------------
    def prepare(self, ctx, text: str) -> LogicalPlan:
        """Parse and plan (cached) without executing.

        Callers that wrap execution in their own transaction (the serving
        front-end, retry loops) use the returned plan's ``query.writes``
        to pick the transaction mode before opening it.
        """
        return self._get_plan(ctx, text)

    def explain(self, ctx, text: str) -> str:
        """The EXPLAIN rendering of a query's plan (no execution)."""
        return self._get_plan(ctx, text).explain()

    def run(
        self,
        ctx,
        text: str,
        params: dict | None = None,
        tx=None,
    ) -> QueryResult:
        """Parse, plan (cached), and execute one query.

        Without ``tx`` the engine opens its own transaction (write iff
        the query mutates) and commits it; with ``tx`` the query joins
        the caller's open transaction, which the caller commits — that
        is how :func:`repro.gda.retry.run_transaction` retry loops wrap
        engine queries.
        """
        plan = self._get_plan(ctx, text)
        query = plan.query
        if query.mode == "explain":
            return QueryResult(
                columns=plan.columns,
                rows=[],
                plan=plan,
                plan_text=plan.explain(),
            )
        profile = query.mode == "profile"
        own_tx = tx is None
        if own_tx:
            # read-only plans ride an MVCC snapshot when the database has
            # one (GdaConfig.mvcc): lock-free scans at a frozen watermark
            # instead of read-locking every touched vertex
            tx = self.db.start_transaction(
                ctx, write=query.writes, snapshot=not query.writes
            )
        try:
            ex = ExecState(self.db, ctx, tx, params)
            rows, stats, prof = execute_plan(plan, ex, profile=profile)
            if own_tx:
                tx.commit()
        except BaseException:
            if own_tx and tx.open:
                tx.abort()
            raise
        return QueryResult(
            columns=plan.columns,
            rows=rows,
            stats=stats,
            plan=plan,
            plan_text=plan.explain(prof) if profile else None,
        )
