"""Error taxonomy of the query layer."""

from __future__ import annotations

__all__ = ["QueryError", "QuerySyntaxError", "QueryPlanError"]


class QueryError(Exception):
    """Base class of all query-layer errors."""


class QuerySyntaxError(QueryError):
    """The query text does not parse.

    Carries the character position of the offending token so callers can
    point at it.
    """

    def __init__(self, message: str, pos: int = -1) -> None:
        super().__init__(
            message if pos < 0 else f"{message} (at position {pos})"
        )
        self.pos = pos


class QueryPlanError(QueryError):
    """The query parsed but cannot be planned or executed.

    Examples: an unbound variable in RETURN, a CREATE node without the
    mandatory ``id`` property, a parameter missing at execution time.
    """
