"""Shared expression evaluation for the engine and the reference oracle.

Both executors bind pattern variables to *binding* objects implementing
the small duck-typed protocol of :class:`Binding` (the engine wraps GDI
handles, the reference interpreter wraps snapshot records), and both
evaluate WHERE/RETURN expressions through :func:`eval_expr` — one shared
semantics, two independent data paths.

Null semantics (documented in docs/GDI_SPEC.md §11):

* a missing property reads as ``None``;
* any comparison involving ``None`` is false (so is its negation via
  ``<>`` — use ``IS NULL`` to test for absence);
* ``NOT``/``AND``/``OR`` are two-valued over Python truthiness with
  ``None`` counting as false;
* aggregates skip ``None`` inputs; ``sum`` of nothing is ``0``,
  ``count`` of nothing is ``0``, ``min``/``max``/``avg`` of nothing are
  ``None``, ``collect`` of nothing is ``[]``;
* ``collect`` returns its values in a canonical sorted order, making
  results order-independent and comparable across executors.
"""

from __future__ import annotations

from typing import Any, Callable

from .ast import (
    And,
    Cmp,
    Expr,
    FuncCall,
    HasLabel,
    IsNull,
    Literal,
    Not,
    Or,
    Param,
    ParamRef,
    PropRef,
    VarRef,
)
from .errors import QueryPlanError

__all__ = [
    "Binding",
    "eval_expr",
    "to_output",
    "hashable",
    "sort_key",
    "resolve_value",
    "aggregate_value",
    "truthy",
]


class Binding:
    """Duck-typed protocol of a pattern-variable binding.

    Engine-side implementations wrap transaction handles; the reference
    interpreter wraps immutable snapshot records.
    """

    is_edge = False

    @property
    def app_id(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def has_label(self, name: str) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def prop(self, key: str) -> Any:  # pragma: no cover - interface
        raise NotImplementedError

    def output(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError

    def cmp_key(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


def resolve_value(value: Any, params: dict | None) -> Any:
    """Resolve a literal-or-:class:`Param` slot against the params dict."""
    if isinstance(value, Param):
        if params is None or value.name not in params:
            raise QueryPlanError(f"missing query parameter ${value.name}")
        return params[value.name]
    return value


def eval_expr(expr: Expr, row: dict, params: dict | None) -> Any:
    """Evaluate one expression against a row of variable bindings."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ParamRef):
        if params is None or expr.name not in params:
            raise QueryPlanError(f"missing query parameter ${expr.name}")
        return params[expr.name]
    if isinstance(expr, VarRef):
        try:
            return row[expr.name]
        except KeyError:
            raise QueryPlanError(
                f"unbound variable {expr.name!r}"
            ) from None
    if isinstance(expr, PropRef):
        binding = row.get(expr.var)
        if binding is None:
            raise QueryPlanError(f"unbound variable {expr.var!r}")
        if expr.key == "id" and not binding.is_edge:
            return binding.app_id
        return binding.prop(expr.key)
    if isinstance(expr, HasLabel):
        binding = row.get(expr.var)
        if binding is None:
            raise QueryPlanError(f"unbound variable {expr.var!r}")
        return binding.has_label(expr.label)
    if isinstance(expr, IsNull):
        is_null = eval_expr(expr.operand, row, params) is None
        return is_null != expr.negated
    if isinstance(expr, Cmp):
        left = eval_expr(expr.left, row, params)
        right = eval_expr(expr.right, row, params)
        return _compare(expr.op, left, right)
    if isinstance(expr, And):
        return all(truthy(eval_expr(i, row, params)) for i in expr.items)
    if isinstance(expr, Or):
        return any(truthy(eval_expr(i, row, params)) for i in expr.items)
    if isinstance(expr, Not):
        return not truthy(eval_expr(expr.operand, row, params))
    if isinstance(expr, FuncCall):
        raise QueryPlanError(
            f"function {expr.name}() not valid here (aggregates are only "
            "allowed as top-level RETURN items)"
        )
    raise QueryPlanError(f"cannot evaluate expression {expr!r}")


def truthy(value: Any) -> bool:
    return bool(value) if value is not None else False


def _compare(op: str, left: Any, right: Any) -> bool:
    if left is None or right is None:
        return False
    if isinstance(left, Binding):
        left = left.cmp_key()
    if isinstance(right, Binding):
        right = right.cmp_key()
    try:
        if op == "=":
            return bool(left == right)
        if op == "<>":
            return bool(left != right)
        if op == "<":
            return bool(left < right)
        if op == "<=":
            return bool(left <= right)
        if op == ">":
            return bool(left > right)
        if op == ">=":
            return bool(left >= right)
    except TypeError:
        return False
    raise QueryPlanError(f"unknown comparison operator {op!r}")


def to_output(value: Any) -> Any:
    """Convert an evaluated value to its user-facing output form."""
    if isinstance(value, Binding):
        return value.output()
    return value


def hashable(value: Any) -> Any:
    """A hashable stand-in for DISTINCT/grouping keys."""
    if isinstance(value, list):
        return tuple(hashable(v) for v in value)
    if isinstance(value, tuple):
        return tuple(hashable(v) for v in value)
    return value


def sort_key(value: Any):
    """Total-order key across mixed output types; ``None`` sorts first."""
    if value is None:
        return (0, 0, 0)
    if isinstance(value, bool):
        return (1, 0, float(value))
    if isinstance(value, (int, float)):
        return (1, 0, float(value))
    if isinstance(value, str):
        return (1, 1, value)
    if isinstance(value, (tuple, list)):
        return (1, 2, tuple(sort_key(v) for v in value))
    return (1, 3, repr(value))


def aggregate_value(
    func: FuncCall,
    rows: list[dict],
    params: dict | None,
    evalfn: Callable[[Expr, dict, dict | None], Any] = eval_expr,
) -> Any:
    """Compute one aggregate over a group of rows."""
    if func.star:
        return len(rows)
    arg = func.args[0]
    values = [to_output(evalfn(arg, row, params)) for row in rows]
    values = [v for v in values if v is not None]
    if func.distinct:
        seen: set = set()
        unique = []
        for v in values:
            k = hashable(v)
            if k not in seen:
                seen.add(k)
                unique.append(v)
        values = unique
    name = func.name
    if name == "count":
        return len(values)
    if name == "sum":
        return sum(values) if values else 0
    if name == "min":
        return min(values, key=sort_key) if values else None
    if name == "max":
        return max(values, key=sort_key) if values else None
    if name == "avg":
        return sum(values) / len(values) if values else None
    if name == "collect":
        return sorted(values, key=sort_key)
    raise QueryPlanError(f"unknown aggregate {name!r}")
