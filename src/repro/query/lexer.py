"""Tokenizer of the Cypher-lite language.

Produces a flat list of :class:`Token`; the recursive-descent parser in
:mod:`repro.query.parser` consumes it.  Keywords are case-insensitive,
identifiers are case-sensitive (they name labels, properties, and
variables).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import QuerySyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "MATCH",
        "WHERE",
        "RETURN",
        "CREATE",
        "SET",
        "DELETE",
        "DETACH",
        "ORDER",
        "BY",
        "SKIP",
        "LIMIT",
        "AND",
        "OR",
        "NOT",
        "XOR",
        "AS",
        "DISTINCT",
        "ASC",
        "DESC",
        "IS",
        "NULL",
        "TRUE",
        "FALSE",
        "EXPLAIN",
        "PROFILE",
    }
)

#: multi-character punctuation, longest first so the scanner is greedy
_PUNCT2 = ("<=", ">=", "<>", "!=", "->", "<-", "..")
_PUNCT1 = "()[]{}:,.-<>=*$+"


@dataclass(frozen=True)
class Token:
    """One lexeme: ``kind`` is KEYWORD/IDENT/INT/FLOAT/STRING/PUNCT/EOF."""

    kind: str
    value: str
    pos: int


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens; raises :class:`QuerySyntaxError`."""
    out: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("//", i):  # line comment
            j = text.find("\n", i)
            i = n if j < 0 else j + 1
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                out.append(Token("KEYWORD", word.upper(), i))
            else:
                out.append(Token("IDENT", word, i))
            i = j
            continue
        if ch.isdigit():
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            # a float needs digit '.' digit — but '..' is the range punct
            if (
                j + 1 < n
                and text[j] == "."
                and text[j + 1].isdigit()
                and not text.startswith("..", j)
            ):
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
                out.append(Token("FLOAT", text[i:j], i))
            else:
                out.append(Token("INT", text[i:j], i))
            i = j
            continue
        if ch in ("'", '"'):
            j = i + 1
            buf: list[str] = []
            while j < n and text[j] != ch:
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j + 1])
                    j += 2
                else:
                    buf.append(text[j])
                    j += 1
            if j >= n:
                raise QuerySyntaxError("unterminated string literal", i)
            out.append(Token("STRING", "".join(buf), i))
            i = j + 1
            continue
        two = text[i : i + 2]
        if two in _PUNCT2:
            out.append(Token("PUNCT", two, i))
            i += 2
            continue
        if ch in _PUNCT1:
            out.append(Token("PUNCT", ch, i))
            i += 1
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r}", i)
    out.append(Token("EOF", "", n))
    return out
