"""Logical query plans: the operator tree the planner emits.

A plan is a *linear pipeline* of operator descriptors (frozen
dataclasses): each operator consumes the binding rows of its upstream and
emits new rows.  The physical executor (:mod:`repro.query.physical`)
interprets these descriptors with batched GDI calls; ``EXPLAIN`` renders
them one per line with cardinality estimates.

Plans hold only symbolic state — label/property *names*, parameter
placeholders, cardinality estimates — never resolved metadata IDs or
:class:`~repro.gdi.constraint.Constraint` objects.  That keeps a cached
plan valid across transactions and parameter sets: IDs and constraints
are materialized per execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .ast import (
    And,
    Cmp,
    Expr,
    FuncCall,
    HasLabel,
    IsNull,
    Literal,
    Not,
    NodePattern,
    Or,
    OrderItem,
    Param,
    ParamRef,
    PathPattern,
    PropPredicate,
    PropRef,
    Query,
    RelPattern,
    ReturnItem,
    SetLabel,
    SetProp,
    VarRef,
)

__all__ = [
    "NodeSpec",
    "ScanOp",
    "ExpandOp",
    "FilterOp",
    "ProjectOp",
    "AggregateOp",
    "DistinctOp",
    "OrderByOp",
    "SkipLimitOp",
    "CreateOp",
    "SetOp",
    "DeleteOp",
    "LogicalPlan",
    "expr_text",
]


@dataclass(frozen=True)
class NodeSpec:
    """Everything needed to bind (or re-check) one node variable.

    ``labels``/``preds`` are the union of the pattern's own conditions
    and the WHERE conjuncts the planner pushed down; the executor
    materializes them into one DNF constraint per execution.
    """

    var: str
    labels: tuple[str, ...] = ()
    preds: tuple[PropPredicate, ...] = ()
    anonymous: bool = False


@dataclass(frozen=True)
class ScanOp:
    """Bind ``spec.var`` from a source, cross-joined with upstream rows.

    ``source`` is one of:

    * ``"dht"`` — application-ID point lookup (``detail`` = the ID value,
      literal or :class:`~repro.query.ast.Param`);
    * ``"index"`` — posting sweep of the explicit index named ``detail``;
    * ``"label"`` — directory scan filtered by the label named ``detail``
      (chosen as the rarest label via the per-label histogram);
    * ``"all"`` — full vertex-directory scan;
    * ``"bound"`` — the variable is already bound upstream, only re-check
      the node conditions.
    """

    spec: NodeSpec
    source: str
    detail: Any = None
    est: float = 1.0

    @property
    def name(self) -> str:
        return {
            "dht": "NodeByIdSeek",
            "index": "IndexScan",
            "label": "LabelScan",
            "all": "AllNodeScan",
            "bound": "ArgumentCheck",
        }[self.source]


@dataclass(frozen=True)
class ExpandOp:
    """Expand from ``src_var`` over ``rel`` into ``dst``.

    With ``bound`` the destination variable already has a binding, so the
    expansion degenerates into an existence check (a hash-join against
    the reachable set) instead of binding new rows.
    """

    src_var: str
    rel: RelPattern
    dst: NodeSpec
    bound: bool = False
    est: float = 1.0

    @property
    def name(self) -> str:
        if self.rel.var_length:
            return "VarLengthExpand"
        return "ExpandInto" if self.bound else "Expand"


@dataclass(frozen=True)
class FilterOp:
    """Residual WHERE conjuncts the planner could not push down."""

    expr: Expr
    est: float = 1.0


@dataclass(frozen=True)
class ProjectOp:
    items: tuple[ReturnItem, ...]
    columns: tuple[str, ...]


@dataclass(frozen=True)
class AggregateOp:
    """Implicit Cypher grouping: non-aggregate items are the group keys.

    ``agg_mask[i]`` says whether output column ``i`` is an aggregate;
    the True positions map onto ``aggs`` in order, the False positions
    onto ``keys`` in order.
    """

    keys: tuple[ReturnItem, ...]
    aggs: tuple[ReturnItem, ...]
    columns: tuple[str, ...]
    agg_mask: tuple[bool, ...] = ()


@dataclass(frozen=True)
class DistinctOp:
    pass


@dataclass(frozen=True)
class OrderByOp:
    #: (output column index, descending) pairs
    keys: tuple[tuple[int, bool], ...]
    items: tuple[OrderItem, ...]


@dataclass(frozen=True)
class SkipLimitOp:
    skip: Any = None  # int | Param | None
    limit: Any = None


@dataclass(frozen=True)
class CreateOp:
    paths: tuple[PathPattern, ...]


@dataclass(frozen=True)
class SetOp:
    items: tuple[SetProp | SetLabel, ...]


@dataclass(frozen=True)
class DeleteOp:
    vars: tuple[str, ...]


@dataclass(frozen=True)
class LogicalPlan:
    """One planned query: the AST plus its linear operator pipeline."""

    query: Query
    ops: tuple
    columns: tuple[str, ...]
    #: ``ops``-index ranges ``[start, end)`` of each MATCH path, in plan
    #: order.  The executor checks observed vs. estimated cardinality at
    #: these boundaries and re-plans the remaining paths when they
    #: diverge (adaptive mid-query re-planning).
    match_spans: tuple[tuple[int, int], ...] = ()

    def explain(self, profile: "dict[int, dict] | None" = None) -> str:
        """Render the pipeline, one operator per line.

        With ``profile`` (operator position → measured stats from a
        PROFILE run) each line also shows actual rows and RMA traffic.
        """
        lines = ["QueryPlan"]
        for i, op in enumerate(self.ops):
            desc = _describe(op)
            if profile is not None and i in profile:
                p = profile[i]
                snap = p.get("snapshot_reads", 0)
                desc += (
                    f"  [rows={p['rows']} msgs={p['msgs']}"
                    f" rma_bytes={p['rma_bytes']}"
                    + (f" snapshot_reads={snap}" if snap else "")
                    + "]"
                )
            lines.append("  " + desc)
        return "\n".join(lines)


def _spec_text(spec: NodeSpec) -> str:
    parts = spec.var
    for lab in spec.labels:
        parts += f":{lab}"
    if spec.preds:
        inner = ", ".join(
            f"{p.key} {p.op} {_value_text(p.value)}" for p in spec.preds
        )
        parts += " {" + inner + "}"
    return f"({parts})"


def _value_text(value: Any) -> str:
    if isinstance(value, Param):
        return f"${value.name}"
    return repr(value)


def _rel_text(rel: RelPattern) -> str:
    inner = rel.var or ""
    if rel.label:
        inner += f":{rel.label}"
    if rel.var_length:
        hi = "" if rel.max_hops is None else str(rel.max_hops)
        inner += f"*{rel.min_hops}..{hi}"
    body = f"[{inner}]" if inner else ""
    if rel.direction == "out":
        return f"-{body}->"
    if rel.direction == "in":
        return f"<-{body}-"
    return f"-{body}-"


def _describe(op) -> str:
    if isinstance(op, ScanOp):
        detail = ""
        if op.source == "dht":
            detail = f" id={_value_text(op.detail)}"
        elif op.source == "index":
            detail = f" index={op.detail!r}"
        elif op.source == "label":
            detail = f" label={op.detail}"
        return f"{op.name}{_spec_text(op.spec)}{detail} est={op.est:g}"
    if isinstance(op, ExpandOp):
        return (
            f"{op.name}({op.src_var}){_rel_text(op.rel)}"
            f"{_spec_text(op.dst)} est={op.est:g}"
        )
    if isinstance(op, FilterOp):
        return f"Filter {expr_text(op.expr)} est={op.est:g}"
    if isinstance(op, ProjectOp):
        return "Project " + ", ".join(op.columns)
    if isinstance(op, AggregateOp):
        keys = ", ".join(c for c in op.columns[: len(op.keys)])
        aggs = ", ".join(op.columns[len(op.keys):])
        head = f"Aggregate {aggs}"
        return head + (f" GROUP BY {keys}" if keys else "")
    if isinstance(op, DistinctOp):
        return "Distinct"
    if isinstance(op, OrderByOp):
        return "OrderBy " + ", ".join(
            f"{expr_text(it.expr)}{' DESC' if it.desc else ''}"
            for it in op.items
        )
    if isinstance(op, SkipLimitOp):
        parts = []
        if op.skip is not None:
            parts.append(f"SKIP {_value_text(op.skip)}")
        if op.limit is not None:
            parts.append(f"LIMIT {_value_text(op.limit)}")
        return " ".join(parts)
    if isinstance(op, CreateOp):
        n_nodes = sum(len(p.nodes) for p in op.paths)
        n_rels = sum(len(p.rels) for p in op.paths)
        return f"Create nodes={n_nodes} rels={n_rels}"
    if isinstance(op, SetOp):
        return "SetProperties " + ", ".join(
            f"{s.var}:{s.label}"
            if isinstance(s, SetLabel)
            else f"{s.var}.{s.key}"
            for s in op.items
        )
    if isinstance(op, DeleteOp):
        return "Delete " + ", ".join(op.vars)
    return repr(op)


def expr_text(expr: Expr) -> str:
    """Canonical text of an expression (column naming, EXPLAIN output)."""
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, ParamRef):
        return f"${expr.name}"
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, PropRef):
        return f"{expr.var}.{expr.key}"
    if isinstance(expr, Cmp):
        return f"{expr_text(expr.left)} {expr.op} {expr_text(expr.right)}"
    if isinstance(expr, HasLabel):
        return f"{expr.var}:{expr.label}"
    if isinstance(expr, IsNull):
        return (
            f"{expr_text(expr.operand)} IS"
            f"{' NOT' if expr.negated else ''} NULL"
        )
    if isinstance(expr, And):
        return " AND ".join(_paren(i) for i in expr.items)
    if isinstance(expr, Or):
        return " OR ".join(_paren(i) for i in expr.items)
    if isinstance(expr, Not):
        return f"NOT {_paren(expr.operand)}"
    if isinstance(expr, FuncCall):
        if expr.star:
            return f"{expr.name}(*)"
        inner = ", ".join(expr_text(a) for a in expr.args)
        if expr.distinct:
            inner = "DISTINCT " + inner
        return f"{expr.name}({inner})"
    return repr(expr)


def _paren(expr: Expr) -> str:
    if isinstance(expr, (And, Or)):
        return f"({expr_text(expr)})"
    return expr_text(expr)
