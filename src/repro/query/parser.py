"""Recursive-descent parser: Cypher-lite text → :class:`~repro.query.ast.Query`.

One function per grammar production; every production consumes tokens
from a shared cursor.  The parser is purely syntactic — name resolution
(labels, property types, variables) happens in the planner, so a query
mentioning an unknown label still parses and simply matches nothing.
"""

from __future__ import annotations

from .ast import (
    And,
    Cmp,
    FuncCall,
    HasLabel,
    IsNull,
    Literal,
    Not,
    NodePattern,
    Or,
    OrderItem,
    Param,
    ParamRef,
    PathPattern,
    PropPredicate,
    PropRef,
    Query,
    RelPattern,
    ReturnItem,
    SetLabel,
    SetProp,
    VarRef,
)
from .errors import QuerySyntaxError
from .lexer import Token, tokenize

__all__ = ["parse_query"]

_CMP_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.toks = tokenize(text)
        self.i = 0
        self._anon = 0

    # -- cursor helpers ----------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.toks[self.i]

    def advance(self) -> Token:
        tok = self.toks[self.i]
        if tok.kind != "EOF":
            self.i += 1
        return tok

    def at_keyword(self, *words: str) -> bool:
        return self.cur.kind == "KEYWORD" and self.cur.value in words

    def at_punct(self, *vals: str) -> bool:
        return self.cur.kind == "PUNCT" and self.cur.value in vals

    def expect_punct(self, val: str) -> Token:
        if not self.at_punct(val):
            raise QuerySyntaxError(
                f"expected {val!r}, found {self.cur.value or 'end of input'!r}",
                self.cur.pos,
            )
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            raise QuerySyntaxError(
                f"expected {word}, found {self.cur.value or 'end of input'!r}",
                self.cur.pos,
            )
        return self.advance()

    def expect_ident(self, what: str) -> str:
        if self.cur.kind != "IDENT":
            raise QuerySyntaxError(
                f"expected {what}, found {self.cur.value or 'end of input'!r}",
                self.cur.pos,
            )
        return self.advance().value

    def fresh_var(self) -> str:
        self._anon += 1
        return f"_anon{self._anon}"

    # -- entry -------------------------------------------------------------
    def parse(self) -> Query:
        mode = "run"
        if self.at_keyword("EXPLAIN"):
            self.advance()
            mode = "explain"
        elif self.at_keyword("PROFILE"):
            self.advance()
            mode = "profile"
        matches: list[PathPattern] = []
        while self.at_keyword("MATCH"):
            self.advance()
            matches.append(self.parse_path())
            while self.at_punct(","):
                self.advance()
                matches.append(self.parse_path())
        where = None
        if self.at_keyword("WHERE"):
            self.advance()
            where = self.parse_expr()
        creates: list[PathPattern] = []
        while self.at_keyword("CREATE"):
            self.advance()
            creates.append(self.parse_path())
            while self.at_punct(","):
                self.advance()
                creates.append(self.parse_path())
        sets: list[SetProp | SetLabel] = []
        if self.at_keyword("SET"):
            self.advance()
            sets.append(self.parse_set_item())
            while self.at_punct(","):
                self.advance()
                sets.append(self.parse_set_item())
        deletes: list[str] = []
        if self.at_keyword("DETACH"):
            self.advance()
            if not self.at_keyword("DELETE"):
                raise QuerySyntaxError("DETACH must precede DELETE", self.cur.pos)
        if self.at_keyword("DELETE"):
            self.advance()
            deletes.append(self.expect_ident("variable"))
            while self.at_punct(","):
                self.advance()
                deletes.append(self.expect_ident("variable"))
        returns: list[ReturnItem] = []
        distinct = False
        order_by: list[OrderItem] = []
        skip = limit = None
        if self.at_keyword("RETURN"):
            self.advance()
            if self.at_keyword("DISTINCT"):
                self.advance()
                distinct = True
            returns.append(self.parse_return_item())
            while self.at_punct(","):
                self.advance()
                returns.append(self.parse_return_item())
            if self.at_keyword("ORDER"):
                self.advance()
                self.expect_keyword("BY")
                order_by.append(self.parse_order_item())
                while self.at_punct(","):
                    self.advance()
                    order_by.append(self.parse_order_item())
            if self.at_keyword("SKIP"):
                self.advance()
                skip = self.parse_count_operand("SKIP")
            if self.at_keyword("LIMIT"):
                self.advance()
                limit = self.parse_count_operand("LIMIT")
        if self.cur.kind != "EOF":
            raise QuerySyntaxError(
                f"unexpected trailing input {self.cur.value!r}", self.cur.pos
            )
        if not (matches or creates):
            raise QuerySyntaxError("query needs at least MATCH or CREATE", 0)
        return Query(
            matches=tuple(matches),
            where=where,
            creates=tuple(creates),
            sets=tuple(sets),
            deletes=tuple(deletes),
            returns=tuple(returns),
            distinct=distinct,
            order_by=tuple(order_by),
            skip=skip,
            limit=limit,
            mode=mode,
        )

    # -- patterns ----------------------------------------------------------
    def parse_path(self) -> PathPattern:
        nodes = [self.parse_node()]
        rels: list[RelPattern] = []
        while self.at_punct("-", "<-"):
            rels.append(self.parse_rel())
            nodes.append(self.parse_node())
        return PathPattern(nodes=tuple(nodes), rels=tuple(rels))

    def parse_node(self) -> NodePattern:
        self.expect_punct("(")
        var = None
        if self.cur.kind == "IDENT":
            var = self.advance().value
        labels: list[str] = []
        while self.at_punct(":"):
            self.advance()
            labels.append(self.expect_ident("label name"))
        preds = self.parse_props() if self.at_punct("{") else ()
        self.expect_punct(")")
        anonymous = var is None
        return NodePattern(
            var=var or self.fresh_var(),
            labels=tuple(labels),
            preds=preds,
            anonymous=anonymous,
        )

    def parse_rel(self) -> RelPattern:
        # '<-[...]-' | '-[...]->' | '-[...]-' | bare '<--', '-->', '--'
        if self.at_punct("<-"):
            self.advance()
            direction = "in"
        else:
            self.expect_punct("-")
            direction = None  # decided by the closing arrow
        var = label = None
        min_hops = max_hops = 1
        starred = False
        preds: tuple[PropPredicate, ...] = ()
        if self.at_punct("["):
            self.advance()
            if self.cur.kind == "IDENT":
                var = self.advance().value
            if self.at_punct(":"):
                self.advance()
                label = self.expect_ident("relationship label")
            if self.at_punct("*"):
                self.advance()
                starred = True
                min_hops, max_hops = 1, None
                if self.cur.kind == "INT":
                    min_hops = int(self.advance().value)
                    max_hops = min_hops
                if self.at_punct(".."):
                    self.advance()
                    max_hops = None
                    if self.cur.kind == "INT":
                        max_hops = int(self.advance().value)
            if self.at_punct("{"):
                preds = self.parse_props()
            self.expect_punct("]")
        if direction == "in":
            self.expect_punct("-")
        elif self.at_punct("->"):
            self.advance()
            direction = "out"
        else:
            self.expect_punct("-")
            direction = "any"
        if var is not None and starred:
            raise QuerySyntaxError(
                "variable-length relationships cannot bind a variable",
                self.cur.pos,
            )
        if max_hops is not None and max_hops < min_hops:
            raise QuerySyntaxError(
                f"empty hop range *{min_hops}..{max_hops}", self.cur.pos
            )
        return RelPattern(
            var=var,
            label=label,
            direction=direction,
            min_hops=min_hops,
            max_hops=max_hops,
            preds=preds,
            starred=starred,
        )

    def parse_props(self) -> tuple[PropPredicate, ...]:
        self.expect_punct("{")
        preds: list[PropPredicate] = []
        while True:
            key = self.expect_ident("property name")
            if self.at_punct(":"):
                self.advance()
                op = "="
            elif self.at_punct(*_CMP_OPS):
                op = self.advance().value
                if op == "!=":
                    op = "<>"
            else:
                raise QuerySyntaxError(
                    "expected ':' or a comparison operator in property map",
                    self.cur.pos,
                )
            preds.append(PropPredicate(key=key, op=op, value=self.parse_value()))
            if self.at_punct(","):
                self.advance()
                continue
            break
        self.expect_punct("}")
        return tuple(preds)

    def parse_value(self):
        """A literal or ``$param`` (property maps, SKIP/LIMIT)."""
        if self.at_punct("$"):
            self.advance()
            return Param(self.expect_ident("parameter name"))
        tok = self.cur
        if tok.kind == "INT":
            self.advance()
            return int(tok.value)
        if tok.kind == "FLOAT":
            self.advance()
            return float(tok.value)
        if tok.kind == "STRING":
            self.advance()
            return tok.value
        if tok.kind == "KEYWORD" and tok.value in ("TRUE", "FALSE"):
            self.advance()
            return tok.value == "TRUE"
        if tok.kind == "KEYWORD" and tok.value == "NULL":
            self.advance()
            return None
        if self.at_punct("-"):
            self.advance()
            tok = self.cur
            if tok.kind == "INT":
                self.advance()
                return -int(tok.value)
            if tok.kind == "FLOAT":
                self.advance()
                return -float(tok.value)
            raise QuerySyntaxError("expected a number after '-'", tok.pos)
        raise QuerySyntaxError(
            f"expected a literal value, found {tok.value!r}", tok.pos
        )

    def parse_count_operand(self, what: str):
        if self.at_punct("$"):
            self.advance()
            return Param(self.expect_ident("parameter name"))
        if self.cur.kind == "INT":
            return int(self.advance().value)
        raise QuerySyntaxError(
            f"{what} expects a non-negative integer or parameter", self.cur.pos
        )

    # -- expressions -------------------------------------------------------
    def parse_expr(self):
        return self.parse_or()

    def parse_or(self):
        items = [self.parse_and()]
        while self.at_keyword("OR"):
            self.advance()
            items.append(self.parse_and())
        return items[0] if len(items) == 1 else Or(tuple(items))

    def parse_and(self):
        items = [self.parse_not()]
        while self.at_keyword("AND"):
            self.advance()
            items.append(self.parse_not())
        return items[0] if len(items) == 1 else And(tuple(items))

    def parse_not(self):
        if self.at_keyword("NOT"):
            self.advance()
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self):
        left = self.parse_primary()
        if self.at_keyword("IS"):
            self.advance()
            negated = False
            if self.at_keyword("NOT"):
                self.advance()
                negated = True
            self.expect_keyword("NULL")
            return IsNull(left, negated=negated)
        if self.at_punct(*_CMP_OPS):
            op = self.advance().value
            if op == "!=":
                op = "<>"
            return Cmp(op=op, left=left, right=self.parse_primary())
        return left

    def parse_primary(self):
        tok = self.cur
        if self.at_punct("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_punct(")")
            return inner
        if self.at_punct("$"):
            self.advance()
            return ParamRef(self.expect_ident("parameter name"))
        if tok.kind in ("INT", "FLOAT", "STRING") or (
            tok.kind == "KEYWORD" and tok.value in ("TRUE", "FALSE", "NULL")
        ) or self.at_punct("-"):
            return Literal(self.parse_value())
        if tok.kind == "IDENT":
            name = self.advance().value
            if self.at_punct("("):  # function call
                self.advance()
                star = distinct = False
                args: list = []
                if self.at_punct("*"):
                    self.advance()
                    star = True
                else:
                    if self.at_keyword("DISTINCT"):
                        self.advance()
                        distinct = True
                    if not self.at_punct(")"):
                        args.append(self.parse_expr())
                        while self.at_punct(","):
                            self.advance()
                            args.append(self.parse_expr())
                self.expect_punct(")")
                return FuncCall(
                    name=name.lower(),
                    args=tuple(args),
                    distinct=distinct,
                    star=star,
                )
            if self.at_punct("."):
                self.advance()
                return PropRef(var=name, key=self.expect_ident("property name"))
            if self.at_punct(":"):
                self.advance()
                return HasLabel(var=name, label=self.expect_ident("label name"))
            return VarRef(name)
        raise QuerySyntaxError(
            f"unexpected token {tok.value or 'end of input'!r}", tok.pos
        )

    # -- RETURN / ORDER BY / SET ------------------------------------------
    def parse_return_item(self) -> ReturnItem:
        expr = self.parse_expr()
        alias = None
        if self.at_keyword("AS"):
            self.advance()
            alias = self.expect_ident("alias")
        return ReturnItem(expr=expr, alias=alias)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        desc = False
        if self.at_keyword("DESC"):
            self.advance()
            desc = True
        elif self.at_keyword("ASC"):
            self.advance()
        return OrderItem(expr=expr, desc=desc)

    def parse_set_item(self) -> SetProp | SetLabel:
        var = self.expect_ident("variable")
        if self.at_punct(":"):
            self.advance()
            return SetLabel(var=var, label=self.expect_ident("label name"))
        self.expect_punct(".")
        key = self.expect_ident("property name")
        self.expect_punct("=")
        return SetProp(var=var, key=key, value=self.parse_primary())


def parse_query(text: str) -> Query:
    """Parse one Cypher-lite statement into its AST."""
    return _Parser(text).parse()
