"""Physical executor: batched, vectorized operators over GDI transactions.

The executor interprets a :class:`~repro.query.logical.LogicalPlan`
inside **one** GDI transaction.  Operators are vectorized: each consumes
the full materialized row set of its upstream and issues *batched* GDI
calls —

* ``NodeByIdSeek`` resolves application IDs through the batched DHT
  lookup (:meth:`Transaction.find_vertices`);
* ``IndexScan``/``LabelScan``/``AllNodeScan`` sweep per-rank posting or
  directory shards (one proportional message per shard) and associate
  all candidates with a single pipelined
  :meth:`Transaction.associate_vertices` batch;
* ``Expand`` collects the entire neighbor frontier of all input rows and
  prefetches it with one ``associate_vertices`` batch per hop level —
  the PR-1 read-pipelining path — instead of one round trip per row.

Three raw-speed mechanisms layer on top of the batching:

* **Needs-projected reads** — :func:`_plan_needs` walks the whole plan
  once and computes, per node variable, which holder parts any operator
  will ever touch (identity / topology / label+property entries).  Every
  batched fetch passes that mask down to the storage layer, so e.g. a
  ``RETURN b.id`` BFS frontier moves only 40-byte headers instead of
  full holder payloads.
* **Operator fusion** — a scan or expand followed by ``Filter`` (and
  optionally ``Project``) runs as one pass: the filter prunes candidates
  *before* the expensive second-stage topology hydration and before the
  cross-join materializes rows.  Fusion is disabled under ``PROFILE`` so
  per-operator deltas stay aligned with the rendered plan.
* **Adaptive re-planning** — at MATCH-path boundaries
  (:attr:`~repro.query.logical.LogicalPlan.match_spans`) the executor
  compares observed vs. estimated cardinality; on >=4x divergence the
  remaining paths are re-planned with the true row count
  (:func:`~repro.query.planner.replan_tail`), which can flip join
  anchors a stale estimate got wrong.

Write operators batch too: ``CREATE`` funnels all fresh vertices of all
rows through one :meth:`Transaction.create_vertices` call (one DHT probe
round), and ``SET``/``DELETE`` prefetch their distinct target vertices
with a single write-locking :meth:`Transaction.load_vertices` batch.

Symbolic plan state (label/property names, ``$params``) is materialized
per execution into GDI :class:`~repro.gdi.constraint.Constraint` objects
by :class:`ExecState`, which is also where write operators create
missing labels/property types on demand.
"""

from __future__ import annotations

from typing import Any

from ..gda.holder import NEED_ALL, NEED_ENTRIES, NEED_IDENT, NEED_TOPO
from ..gdi.constants import EdgeOrientation, EntityType
from ..gdi.constraint import Constraint
from ..gdi.errors import GdiNotFound
from ..gdi.types import Datatype
from .ast import (
    And,
    Cmp,
    FuncCall,
    HasLabel,
    IsNull,
    Not,
    Or,
    PropPredicate,
    PropRef,
    SetLabel,
    VarRef,
)
from .errors import QueryPlanError
from .evalexpr import (
    Binding,
    aggregate_value,
    eval_expr,
    hashable,
    resolve_value,
    sort_key,
    to_output,
    truthy,
)
from .logical import (
    AggregateOp,
    CreateOp,
    DeleteOp,
    DistinctOp,
    ExpandOp,
    FilterOp,
    LogicalPlan,
    NodeSpec,
    OrderByOp,
    ProjectOp,
    ScanOp,
    SetOp,
    SkipLimitOp,
)
from .planner import _free_vars, replan_tail

__all__ = ["ExecState", "execute_plan", "VertexVal", "EdgeVal"]

_OP_TO_GDI = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

_ORIENTATION = {
    "out": EdgeOrientation.OUTGOING,
    "in": EdgeOrientation.INCOMING,
    "any": EdgeOrientation.ANY,
}

#: inferred datatypes for properties created by CREATE/SET (bool before
#: int: Python bools are ints)
_INFERRED_DTYPES = (
    (bool, Datatype.BOOL),
    (int, Datatype.INT64),
    (float, Datatype.DOUBLE),
    (str, Datatype.STRING),
    (bytes, Datatype.BYTES),
)


class VertexVal(Binding):
    """Engine-side binding of a node variable: wraps a vertex handle."""

    __slots__ = ("h", "ex")
    is_edge = False

    def __init__(self, handle, ex: "ExecState") -> None:
        self.h = handle
        self.ex = ex

    @property
    def app_id(self) -> int:
        return self.h.app_id

    @property
    def vid(self) -> int:
        return self.h.vid

    def has_label(self, name: str) -> bool:
        label = self.ex.label(name)
        return label is not None and self.h.has_label(label)

    def prop(self, key: str) -> Any:
        ptype = self.ex.ptype(key)
        return None if ptype is None else self.h.property(ptype)

    def output(self) -> Any:
        return self.app_id

    def cmp_key(self) -> Any:
        return ("v", self.app_id)


class EdgeVal(Binding):
    """Engine-side binding of a relationship variable: wraps an edge handle."""

    __slots__ = ("e", "ex")
    is_edge = True

    def __init__(self, handle, ex: "ExecState") -> None:
        self.e = handle
        self.ex = ex

    @property
    def app_id(self) -> int:
        raise QueryPlanError("relationships have no application ID")

    def has_label(self, name: str) -> bool:
        label = self.ex.label(name)
        return label is not None and self.e.has_label(label)

    def prop(self, key: str) -> Any:
        ptype = self.ex.ptype(key)
        return None if ptype is None else self.e.property(ptype)

    def label_name(self) -> str | None:
        labels = self.e.labels()
        return labels[0].name if labels else None

    def output(self) -> Any:
        src_vid, dst_vid = self.e.endpoints()
        return (
            self.ex.app_of(src_vid),
            self.ex.app_of(dst_vid),
            self.label_name(),
        )

    def cmp_key(self) -> Any:
        src_vid, dst_vid = self.e.endpoints()
        return ("e", src_vid, dst_vid, tuple(l.int_id for l in self.e.labels()))


class ExecState:
    """Per-execution state: transaction, params, constraint materializer."""

    def __init__(self, db, ctx, tx, params: dict | None) -> None:
        self.db = db
        self.ctx = ctx
        self.tx = tx
        self.params = params
        self.replica = db.replica(ctx)
        self.stats: dict[str, int] = {}

    def bump(self, key: str, n: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + n

    # -- metadata lookups (read side: unknown names match nothing) ---------
    def label(self, name: str):
        return self.replica.labels.by_name(name)

    def ptype(self, key: str):
        return self.replica.ptypes.by_name(key)

    def app_of(self, vid: int) -> int:
        # identity lives in the holder header: never pull the payload
        return self.tx.associate_vertex(vid, need=NEED_IDENT).app_id

    def resolve(self, value: Any) -> Any:
        return resolve_value(value, self.params)

    # -- metadata lookups (write side: create on demand) -------------------
    def ensure_label(self, name: str):
        label = self.replica.labels.by_name(name)
        if label is None:
            label = self.db.create_label(self.ctx, name)
        return label

    def ensure_ptype(self, key: str, sample: Any):
        ptype = self.replica.ptypes.by_name(key)
        if ptype is not None:
            return ptype
        for pytype, dtype in _INFERRED_DTYPES:
            if isinstance(sample, pytype):
                return self.db.create_property_type(
                    self.ctx, key, entity_type=EntityType.BOTH, dtype=dtype
                )
        raise QueryPlanError(
            f"cannot infer a property datatype for {key} = {sample!r}"
        )

    # -- constraint materialization ----------------------------------------
    def node_constraint(self, spec: NodeSpec) -> Constraint:
        """The spec's labels + non-``id`` predicates as one DNF constraint.

        Unknown label/property names make the constraint unsatisfiable
        (nothing in the database can match them).
        """
        return self._constraint(
            spec.labels, [p for p in spec.preds if p.key != "id"]
        )

    def edge_constraint(self, rel) -> Constraint:
        labels = (rel.label,) if rel.label else ()
        return self._constraint(labels, rel.preds)

    def _constraint(
        self, labels: tuple, preds: "list[PropPredicate] | tuple"
    ) -> Constraint:
        c = Constraint.true()
        for name in labels:
            label = self.label(name)
            if label is None:
                return Constraint.false()
            c = c & Constraint.has_label(label.int_id)
        for pred in preds:
            ptype = self.ptype(pred.key)
            if ptype is None:
                return Constraint.false()
            c = c & Constraint.prop(
                ptype.int_id, _OP_TO_GDI[pred.op], self.resolve(pred.value)
            )
        return c.simplify()

    def spec_match(self, spec: NodeSpec, binding: VertexVal) -> bool:
        """Does an already-bound vertex satisfy a node spec?"""
        for pred in spec.preds:
            if pred.key == "id":
                if not _compare_id(pred.op, binding.app_id, self.resolve(pred.value)):
                    return False
        constraint = self.node_constraint(spec)
        if constraint.is_true():
            return True  # id-only spec: never touch the payload
        if constraint.is_false():
            return False
        holder = binding.h._holder(NEED_ENTRIES)
        return constraint.evaluate(
            holder.labels, holder.properties, self.replica.dtype_of
        )


def _compare_id(op: str, app_id: int, value: Any) -> bool:
    try:
        value = int(value)
    except (TypeError, ValueError):
        return False
    return {
        "=": app_id == value,
        "<>": app_id != value,
        "<": app_id < value,
        "<=": app_id <= value,
        ">": app_id > value,
        ">=": app_id >= value,
    }[op]


# -- plan-wide read projection -----------------------------------------------
def _plan_needs(ops) -> dict[str, int]:
    """Per node variable, the union of holder parts any operator touches.

    Walked once per execution over the whole pipeline, so the *first*
    fetch of a variable already requests everything later operators will
    read — no second round trip, and nothing the plan never touches.
    Unknown variables default to full holders at the use sites.
    """
    needs: dict[str, int] = {}

    def add(var: str, mask: int) -> None:
        needs[var] = needs.get(var, NEED_IDENT) | mask

    def spec_mask(spec: NodeSpec) -> int:
        if spec.labels or any(p.key != "id" for p in spec.preds):
            return NEED_ENTRIES
        return NEED_IDENT

    def walk(expr) -> None:
        if isinstance(expr, PropRef):
            add(expr.var, NEED_IDENT if expr.key == "id" else NEED_ENTRIES)
        elif isinstance(expr, HasLabel):
            add(expr.var, NEED_ENTRIES)
        elif isinstance(expr, VarRef):
            add(expr.name, NEED_IDENT)
        elif isinstance(expr, Cmp):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, (And, Or)):
            for item in expr.items:
                walk(item)
        elif isinstance(expr, (Not, IsNull)):
            walk(expr.operand)
        elif isinstance(expr, FuncCall):
            for arg in expr.args:
                walk(arg)

    for op in ops:
        if isinstance(op, ScanOp):
            add(op.spec.var, spec_mask(op.spec))
        elif isinstance(op, ExpandOp):
            add(op.src_var, NEED_TOPO)
            add(op.dst.var, spec_mask(op.dst))
        elif isinstance(op, FilterOp):
            walk(op.expr)
        elif isinstance(op, ProjectOp):
            for item in op.items:
                walk(item.expr)
        elif isinstance(op, AggregateOp):
            for item in op.keys:
                walk(item.expr)
            for item in op.aggs:
                walk(item.expr)
    return needs


def _bound_vars(ops) -> set[str]:
    """Variables bound by an already-executed operator prefix."""
    bound: set[str] = set()
    for op in ops:
        if isinstance(op, ScanOp):
            bound.add(op.spec.var)
        elif isinstance(op, ExpandOp):
            bound.add(op.dst.var)
            if op.rel.var is not None:
                bound.add(op.rel.var)
    return bound


def _diverged(observed: int, est: float) -> bool:
    ratio = max(float(observed), 1.0) / max(float(est), 1.0)
    return ratio >= 4.0 or ratio <= 0.25


def _emit(rows, ex: ExecState, filt, project):
    """Finish one fused operator: residual filter, then projection."""
    if filt is not None:
        rows = [r for r in rows if truthy(eval_expr(filt.expr, r, ex.params))]
    if project is not None:
        return run_project(project, rows, ex.params), True
    return rows, False


# -- execution ---------------------------------------------------------------
def execute_plan(
    plan: LogicalPlan, ex: ExecState, profile: bool = False
) -> tuple[list[tuple], dict, dict[int, dict]]:
    """Run a plan to completion; returns (rows, stats, per-op profile)."""
    rows: list = [{}]
    prof: dict[int, dict] = {}
    projected = False
    ops = list(plan.ops)
    spans = list(plan.match_spans)
    needs = _plan_needs(ops)
    fuse = not profile  # PROFILE keeps op deltas aligned with plan.ops
    span_i = 0
    i = 0
    while i < len(ops):
        # adaptive re-planning: at each MATCH-path boundary compare the
        # observed cardinality against the planner's estimate for the
        # path just finished; on >=4x divergence re-plan the remaining
        # paths with the true row count (at most once per boundary).
        while fuse and span_i < len(spans) - 1 and i >= spans[span_i][1]:
            start, end = spans[span_i]
            span_i += 1
            if end <= start or not rows:
                continue  # empty span (fully-bound path) or dead pipeline
            est = getattr(ops[end - 1], "est", None)
            if est is None or not _diverged(len(rows), est):
                continue
            tail_end = spans[-1][1]
            new_ops, rel_spans = replan_tail(
                ex.db,
                ex.ctx,
                plan.query,
                span_i,
                float(len(rows)),
                _bound_vars(ops[:i]),
            )
            ops = ops[:i] + new_ops + list(ops[tail_end:])
            spans = spans[:span_i] + [
                (i + s, i + e) for s, e in rel_spans
            ]
            needs = _plan_needs(ops)
            ex.bump("replans")
            ex.ctx.rt.trace.record_replan(ex.ctx.rank)
        op = ops[i]
        before = (
            ex.ctx.rt.trace.counters[ex.ctx.rank].snapshot()
            if profile
            else None
        )
        consumed = 1
        if fuse and isinstance(op, (ScanOp, ExpandOp)):
            # operator fusion: pull an adjacent Filter (and Project) into
            # the scan/expand so filtering happens before row
            # materialization (and, for two-stage scans, before the
            # topology hydration of pruned candidates).
            filt = project = None
            j = i + 1
            if j < len(ops) and isinstance(ops[j], FilterOp):
                filt = ops[j]
                j += 1
            if j < len(ops) and isinstance(ops[j], ProjectOp):
                project = ops[j]
                j += 1
            consumed = j - i
            if isinstance(op, ScanOp):
                rows, did_project = _run_scan(
                    op, rows, ex, needs, filt, project
                )
            else:
                rows, did_project = _run_expand(
                    op, rows, ex, needs, filt, project
                )
            projected = projected or did_project
        else:
            rows, projected = _run_op(op, rows, ex, projected, needs)
        if before is not None:
            delta = ex.ctx.rt.trace.counters[ex.ctx.rank].diff(before)
            prof[i] = {
                "rows": len(rows),
                "msgs": delta["remote_ops"] + delta["local_ops"],
                "rma_bytes": delta["bytes_put"]
                + delta["bytes_got"]
                + delta["bytes_batched"],
                "snapshot_reads": delta["snapshot_reads"],
            }
        i += consumed
    if not projected:
        rows = []  # write-only query: no result rows
    return rows, ex.stats, prof


def _run_op(op, rows, ex: ExecState, projected: bool, needs=None):
    if isinstance(op, ScanOp):
        return _run_scan(op, rows, ex, needs)[0], projected
    if isinstance(op, ExpandOp):
        return _run_expand(op, rows, ex, needs)[0], projected
    if isinstance(op, FilterOp):
        return (
            [r for r in rows if truthy(eval_expr(op.expr, r, ex.params))],
            projected,
        )
    if isinstance(op, CreateOp):
        return _run_create(op, rows, ex), projected
    if isinstance(op, SetOp):
        return _run_set(op, rows, ex), projected
    if isinstance(op, DeleteOp):
        return _run_delete(op, rows, ex), projected
    if isinstance(op, ProjectOp):
        return run_project(op, rows, ex.params), True
    if isinstance(op, AggregateOp):
        return run_aggregate(op, rows, ex.params), True
    if isinstance(op, DistinctOp):
        return run_distinct(rows), projected
    if isinstance(op, OrderByOp):
        return run_orderby(op, rows), projected
    if isinstance(op, SkipLimitOp):
        return run_skiplimit(op, rows, ex.params), projected
    raise QueryPlanError(f"unknown operator {op!r}")


# -- scans -------------------------------------------------------------------
#: below this candidate count a two-stage (entries-then-topology) scan
#: costs more in extra round trips than the pruned payload saves
_TWO_STAGE_MIN = 16


def _run_scan(
    op: ScanOp, rows: list, ex: ExecState, needs=None, filt=None, project=None
):
    spec = op.spec
    if op.source == "bound":
        out = [row for row in rows if ex.spec_match(spec, row[spec.var])]
        return _emit(out, ex, filt, project)
    need = needs.get(spec.var, NEED_ALL) if needs is not None else NEED_ALL
    # a fused filter over just this variable prunes candidates before the
    # cross-join (and before stage-two hydration)
    pre = None
    if filt is not None:
        free: set[str] = set()
        _free_vars(filt.expr, free)
        if free <= {spec.var}:
            pre, filt = filt, None
    if op.source == "dht":
        handle = ex.tx.find_vertices(
            [int(ex.resolve(op.detail))], need=need
        )[0]
        candidates = [] if handle is None else [VertexVal(handle, ex)]
        candidates = [v for v in candidates if ex.spec_match(spec, v)]
    else:
        if op.source == "index":
            idx = ex.db.indexes.get(op.detail)
            if idx is None:
                raise QueryPlanError(
                    f"plan references dropped index {op.detail!r}"
                )
            vids = [
                vid
                for shard in range(ex.db.nranks)
                for vid in idx.shard_vertices(ex.ctx, shard)
            ]
        elif op.source == "label" and not ex.tx.write:
            # the directory's per-label member sets narrow the sweep to
            # the labelled vertices; spec_match still re-validates every
            # candidate (the directory is maintained at commit time).
            # Write transactions keep the full sweep: their own
            # uncommitted SET :Label changes are invisible to the
            # directory but must be visible to the scan.
            label = ex.label(op.detail)
            vids = (
                []
                if label is None
                else [
                    vid
                    for shard in range(ex.db.nranks)
                    for vid in ex.db.directory.shard_vertices(
                        ex.ctx, shard, label_id=label.int_id
                    )
                ]
            )
        else:  # "all" (and in-write-txn "label") sweep the whole directory
            vids = [
                vid
                for shard in range(ex.db.nranks)
                for vid in ex.db.directory.shard_vertices(ex.ctx, shard)
            ]
        # two-stage scan: when the spec filters on labels/properties and
        # the plan also needs topology, first fetch entries only, prune,
        # then hydrate the survivors' adjacency with a second batch
        two_stage = (
            (need & NEED_TOPO)
            and (spec.labels or spec.preds or pre is not None)
            and len(vids) >= _TWO_STAGE_MIN
        )
        first = (need & ~NEED_TOPO) | NEED_IDENT if two_stage else need
        handles = ex.tx.associate_vertices(vids, missing_ok=True, need=first)
        candidates = [VertexVal(h, ex) for h in handles if h is not None]
        candidates = [v for v in candidates if ex.spec_match(spec, v)]
        if pre is not None:
            candidates = [
                v
                for v in candidates
                if truthy(eval_expr(pre.expr, {spec.var: v}, ex.params))
            ]
            pre = None
        if two_stage and candidates:
            ex.tx.associate_vertices(
                [v.vid for v in candidates], missing_ok=True, need=need
            )
    if pre is not None:
        candidates = [
            v
            for v in candidates
            if truthy(eval_expr(pre.expr, {spec.var: v}, ex.params))
        ]
    out = [dict(row, **{spec.var: v}) for row in rows for v in candidates]
    return _emit(out, ex, filt, project)


# -- expansion ---------------------------------------------------------------
def _run_expand(
    op: ExpandOp, rows: list, ex: ExecState, needs=None, filt=None, project=None
):
    if not rows:
        return _emit([], ex, filt, project)
    constraint = ex.edge_constraint(op.rel)
    if constraint.is_false():
        return _emit([], ex, filt, project)
    if op.rel.var_length:
        out = _run_var_expand(op, rows, ex, constraint, needs)
        return _emit(out, ex, filt, project)
    orientation = _ORIENTATION[op.rel.direction]
    need = needs.get(op.dst.var, NEED_ALL) if needs is not None else NEED_ALL
    # With no relationship variable the edge handles themselves are never
    # observed: the vectorized neighbor enumeration (one numpy pass over
    # the slot array) replaces per-edge handle construction.
    by_vid_only = op.rel.var is None
    # one adjacency enumeration per *distinct* source vertex
    adjacency: dict[int, list] = {}
    for row in rows:
        src: VertexVal = row[op.src_var]
        if src.vid not in adjacency:
            if by_vid_only:
                adjacency[src.vid] = src.h.neighbors(
                    orientation, constraint=constraint
                )
            else:
                adjacency[src.vid] = src.h.edges(
                    orientation, constraint=constraint
                )
    # prefetch the entire frontier with one batched associate
    if by_vid_only:
        frontier = sorted(
            {vid for nbrs in adjacency.values() for vid in nbrs}
        )
    else:
        frontier = sorted(
            {
                e.other_endpoint()
                for edges in adjacency.values()
                for e in edges
            }
        )
    fetched = ex.tx.associate_vertices(frontier, missing_ok=True, need=need)
    by_vid = {
        vid: VertexVal(h, ex)
        for vid, h in zip(frontier, fetched)
        if h is not None
    }
    matching = {
        vid: val
        for vid, val in by_vid.items()
        if ex.spec_match(op.dst, val)
    }
    out = []
    for row in rows:
        src = row[op.src_var]
        if by_vid_only:
            for nbr_vid in adjacency[src.vid]:
                val = matching.get(nbr_vid)
                if val is None:
                    continue
                if op.bound:
                    if row[op.dst.var].vid != nbr_vid:
                        continue
                    out.append(dict(row))
                else:
                    out.append(dict(row, **{op.dst.var: val}))
            continue
        for edge in adjacency[src.vid]:
            nbr_vid = edge.other_endpoint()
            val = matching.get(nbr_vid)
            if val is None:
                continue
            if op.bound:
                if row[op.dst.var].vid != nbr_vid:
                    continue
                new = dict(row)
            else:
                new = dict(row, **{op.dst.var: val})
            if op.rel.var is not None:
                new[op.rel.var] = EdgeVal(edge, ex)
            out.append(new)
    return _emit(out, ex, filt, project)


def _run_var_expand(
    op: ExpandOp, rows: list, ex: ExecState, constraint: Constraint, needs=None
) -> list:
    """Variable-length expansion with BFS *distance* semantics.

    From each distinct source, every vertex whose shortest-path distance
    (over matching edges) lies in ``[min_hops, max_hops]`` binds exactly
    once.  Each BFS level's frontier is prefetched with one batched
    ``associate_vertices`` call shared across *all* sources.  Levels
    below ``max_hops`` must carry topology (they expand again); the
    final level fetches only what the destination spec and downstream
    operators read — for a ``RETURN b.id`` friends-of-friends query the
    (largest) last frontier moves nothing but holder headers.
    """
    orientation = _ORIENTATION[op.rel.direction]
    lo, hi = op.rel.min_hops, op.rel.max_hops
    dst_need = (
        needs.get(op.dst.var, NEED_ALL) if needs is not None else NEED_ALL
    )
    sources: dict[int, VertexVal] = {}
    for row in rows:
        src = row[op.src_var]
        sources.setdefault(src.vid, src)
    # visited[src_vid] : vid -> BFS depth
    visited: dict[int, dict[int, int]] = {
        vid: {vid: 0} for vid in sources
    }
    vals: dict[int, VertexVal] = dict(sources)
    frontiers: dict[int, list[int]] = {vid: [vid] for vid in sources}
    depth = 0
    while any(frontiers.values()) and (hi is None or depth < hi):
        depth += 1
        # per-source neighbor discovery over the already-associated level
        discovered: dict[int, set[int]] = {}
        for src_vid, level in frontiers.items():
            nxt: set[int] = set()
            for vid in level:
                for nbr in vals[vid].h.neighbors(
                    orientation, constraint=constraint
                ):
                    if nbr not in visited[src_vid]:
                        nxt.add(nbr)
            discovered[src_vid] = nxt
        # one batched prefetch of the union frontier of all sources
        union = sorted(
            vid
            for vid in set().union(*discovered.values())
            if vid not in vals
        ) if discovered else []
        if union:
            lvl_need = (
                dst_need
                if hi is not None and depth == hi
                else dst_need | NEED_TOPO
            )
            for vid, h in zip(
                union,
                ex.tx.associate_vertices(
                    union, missing_ok=True, need=lvl_need
                ),
            ):
                if h is not None:
                    vals[vid] = VertexVal(h, ex)
        for src_vid, nxt in discovered.items():
            alive = [v for v in nxt if v in vals]
            for v in alive:
                visited[src_vid][v] = depth
            frontiers[src_vid] = alive
    # collect endpoints within the hop range, filtered by the dst spec
    endpoint_ok: dict[int, bool] = {}

    def dst_ok(vid: int) -> bool:
        if vid not in endpoint_ok:
            endpoint_ok[vid] = ex.spec_match(op.dst, vals[vid])
        return endpoint_ok[vid]

    out = []
    for row in rows:
        src = row[op.src_var]
        reach = visited[src.vid]
        if op.bound:
            dst_vid = row[op.dst.var].vid
            d = reach.get(dst_vid)
            if d is not None and lo <= d and (hi is None or d <= hi):
                out.append(row)
            continue
        for vid, d in reach.items():
            if d < lo or (hi is not None and d > hi):
                continue
            if not dst_ok(vid):
                continue
            out.append(dict(row, **{op.dst.var: vals[vid]}))
    return out


# -- writes ------------------------------------------------------------------
def _run_create(op: CreateOp, rows: list, ex: ExecState) -> list:
    # Phase 1: gather every fresh vertex any row binds, then create them
    # all with one batched call (one DHT uniqueness-probe round instead
    # of one round trip per vertex).  The planner guarantees each fresh
    # CREATE node carries exactly one ``id =`` predicate.
    envs = [dict(row) for row in rows]
    specs: list[tuple] = []
    slots: list[tuple[int, str]] = []
    for ei, env in enumerate(envs):
        pending: set[str] = set()
        for path in op.paths:
            for node in path.nodes:
                if node.var in env or node.var in pending:
                    continue
                app_id = None
                props = []
                labels = [ex.ensure_label(n) for n in node.labels]
                for pred in node.preds:
                    value = ex.resolve(pred.value)
                    if pred.key == "id":
                        app_id = int(value)
                    else:
                        props.append(
                            (ex.ensure_ptype(pred.key, value), value)
                        )
                specs.append((app_id, labels, props))
                slots.append((ei, node.var))
                pending.add(node.var)
    if specs:
        handles = ex.tx.create_vertices(specs)
        for (ei, var), handle in zip(slots, handles):
            envs[ei][var] = VertexVal(handle, ex)
            ex.bump("vertices_created")
    # Phase 2: edges, in plan order, against the now-bound endpoints.
    for env in envs:
        for path in op.paths:
            bindings = [env[node.var] for node in path.nodes]
            for i, rel in enumerate(path.rels):
                left, right = bindings[i], bindings[i + 1]
                src, dst = (
                    (left, right) if rel.direction == "out" else (right, left)
                )
                label = ex.ensure_label(rel.label) if rel.label else None
                props = []
                for pred in rel.preds:
                    if pred.op != "=":
                        raise QueryPlanError(
                            "CREATE edge properties must use '=' or ':'"
                        )
                    value = ex.resolve(pred.value)
                    props.append((ex.ensure_ptype(pred.key, value), value))
                edge = ex.tx.create_edge(
                    src.h, dst.h, label=label, properties=props
                )
                if rel.var is not None:
                    env[rel.var] = EdgeVal(edge, ex)
                ex.bump("edges_created")
    return envs


def _prefetch_write_targets(rows: list, ex: ExecState, vars_: list) -> None:
    """Batch-load (and write-lock) the distinct vertices a SET/DELETE
    touches: the read->write lock upgrades and any part hydration ride
    one batched round instead of one per mutation."""
    vids = {
        row[var].vid
        for row in rows
        for var in vars_
        if not row[var].is_edge
    }
    if len(vids) > 1:
        ex.tx.load_vertices(sorted(vids), for_write=True, missing_ok=True)


def _run_set(op: SetOp, rows: list, ex: ExecState) -> list:
    _prefetch_write_targets(rows, ex, [item.var for item in op.items])
    for row in rows:
        for item in op.items:
            binding = row[item.var]
            if isinstance(item, SetLabel):
                if binding.is_edge:
                    raise QueryPlanError("SET :Label requires a node variable")
                binding.h.add_label(ex.ensure_label(item.label))
                ex.bump("labels_set")
                continue
            value = eval_expr(item.value, row, ex.params)
            value = to_output(value)
            if binding.is_edge:
                target = binding.e
            else:
                target = binding.h
            if value is None:
                ptype = ex.ptype(item.key)
                if ptype is not None:
                    target.remove_properties(ptype)
                    ex.bump("props_removed")
            else:
                target.set_property(ex.ensure_ptype(item.key, value), value)
                ex.bump("props_set")
    return rows


def _run_delete(op: DeleteOp, rows: list, ex: ExecState) -> list:
    _prefetch_write_targets(rows, ex, list(op.vars))
    deleted_v: set[int] = set()
    deleted_e: set[int] = set()
    for row in rows:
        for var in op.vars:
            binding = row[var]
            if binding.is_edge:
                if id(binding.e._slot) in deleted_e:
                    continue
                deleted_e.add(id(binding.e._slot))
                try:
                    ex.tx.delete_edge(binding.e)
                except GdiNotFound:
                    continue  # already removed via a vertex delete
                ex.bump("edges_deleted")
            else:
                if binding.vid in deleted_v:
                    continue
                deleted_v.add(binding.vid)
                ex.tx.delete_vertex(binding.h)
                ex.bump("vertices_deleted")
    return rows


# -- result shaping (shared with the reference interpreter) ------------------
def run_project(op: ProjectOp, rows: list, params: dict | None) -> list:
    return [
        tuple(
            to_output(eval_expr(item.expr, row, params)) for item in op.items
        )
        for row in rows
    ]


def run_aggregate(op: AggregateOp, rows: list, params: dict | None) -> list:
    groups: dict[tuple, tuple[tuple, list]] = {}
    if not op.keys:
        groups[()] = ((), list(rows))
    else:
        for row in rows:
            values = tuple(
                to_output(eval_expr(item.expr, row, params))
                for item in op.keys
            )
            key = hashable(values)
            groups.setdefault(key, (values, []))[1].append(row)
    out = []
    for key_values, group_rows in groups.values():
        aggs = [
            aggregate_value(item.expr, group_rows, params)
            for item in op.aggs
        ]
        keys_it = iter(key_values)
        aggs_it = iter(aggs)
        out.append(
            tuple(
                next(aggs_it) if is_agg else next(keys_it)
                for is_agg in op.agg_mask
            )
        )
    return out


def run_distinct(rows: list) -> list:
    seen: set = set()
    out = []
    for row in rows:
        key = hashable(row)
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out


def run_orderby(op: OrderByOp, rows: list) -> list:
    # stable sorts applied last-key-first give multi-key mixed-direction
    out = list(rows)
    for col, desc in reversed(op.keys):
        out.sort(key=lambda r: sort_key(r[col]), reverse=desc)
    return out


def run_skiplimit(op: SkipLimitOp, rows: list, params: dict | None) -> list:
    skip = resolve_value(op.skip, params) if op.skip is not None else 0
    skip = max(0, int(skip))
    if op.limit is None:
        return rows[skip:]
    limit = max(0, int(resolve_value(op.limit, params)))
    return rows[skip : skip + limit]
