"""Query planner: rule-based rewrites + cost-based join ordering.

Planning one parsed :class:`~repro.query.ast.Query` proceeds in four
steps:

1. **Predicate pushdown** — top-level WHERE conjuncts of the form
   ``var:Label`` or ``var.key op literal/$param`` are folded into the
   node's pattern conditions, where the executor evaluates them as one
   GDI DNF :class:`~repro.gdi.constraint.Constraint` against the fetched
   holder (no per-predicate Python dispatch per row).
2. **Access-path selection** — for each candidate anchor node: an
   ``id =`` equality routes to the DHT point lookup, a condition set
   implying an :class:`~repro.gda.index_impl.ExplicitIndex` constraint
   routes to that index's posting sweep, a labelled node routes to a
   directory label scan over the *rarest* matching label (per-label
   histogram), everything else falls back to the full directory scan.
3. **Cost-based join ordering** — every node of a path chain is costed
   as the anchor using the RMA cost model (`repro.rma.costmodel`): scan
   cost plus the modelled one-sided traffic of expanding the rest of the
   chain, with cardinalities from index counts and the label histogram.
   The cheapest anchor wins; the chain is then expanded outward from it.
4. **Tail assembly** — residual WHERE filter, write operators, implicit
   grouping (aggregate vs. plain projection), DISTINCT, ORDER BY mapped
   onto output columns, SKIP/LIMIT.

Statistics (directory counts, histogram, index cardinalities) are cached
per database and invalidated on :attr:`VertexDirectory.version` bumps, so
repeated planning does not re-pay the stat sweeps.
"""

from __future__ import annotations

import dataclasses

from ..gdi.constants import Multiplicity
from ..gdi.constraint import LabelCondition, PropertyCondition
from .ast import (
    AGGREGATE_FUNCS,
    And,
    Cmp,
    Expr,
    FuncCall,
    HasLabel,
    IsNull,
    Literal,
    Not,
    NodePattern,
    Or,
    Param,
    ParamRef,
    PathPattern,
    PropPredicate,
    PropRef,
    Query,
    VarRef,
)
from .errors import QueryPlanError
from .logical import (
    AggregateOp,
    CreateOp,
    DeleteOp,
    DistinctOp,
    ExpandOp,
    FilterOp,
    LogicalPlan,
    NodeSpec,
    OrderByOp,
    ProjectOp,
    ScanOp,
    SetOp,
    SkipLimitOp,
    expr_text,
)

__all__ = ["plan_query", "replan_tail", "plan_is_current", "DEFAULT_FANOUT"]

#: assumed average out-degree when no finer statistic exists
DEFAULT_FANOUT = 8.0
#: nominal holder payload (bytes) fetched per expanded row in the cost model
_HOLDER_BYTES = 96.0

_CMP_FLIP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
_OP_TO_GDI = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: per-database statistics cache: id(db) -> (directory version, stats)
_stats_cache: dict[int, tuple[int, "_Stats"]] = {}


class _Stats:
    """Cardinality statistics gathered once per directory version."""

    def __init__(self, db, ctx) -> None:
        self.total = max(1, db.directory.count(ctx))
        hist = db.directory.label_histogram(ctx)
        replica = db.replica(ctx)
        self.label_card: dict[str, int] = {}
        for lid, n in hist.items():
            try:
                self.label_card[replica.label_by_id(lid).name] = n
            except Exception:
                pass
        self.index_card: dict[str, int] = {
            name: idx.count(ctx) for name, idx in db.indexes.items()
        }


def _get_stats(db, ctx) -> _Stats:
    version = db.directory.version
    cached = _stats_cache.get(id(db))
    if cached is not None and cached[0] == version:
        return cached[1]
    stats = _Stats(db, ctx)
    if len(_stats_cache) > 64:  # bound the cache (ids are recycled anyway)
        _stats_cache.clear()
    _stats_cache[id(db)] = (version, stats)
    return stats


def plan_query(db, ctx, query: Query) -> LogicalPlan:
    """Build the logical operator pipeline for one parsed query."""
    pushdowns, residual = _pushdown(db, ctx, query)
    stats = _get_stats(db, ctx)
    ops: list = []
    bound: set[str] = set()
    est = 1.0
    spans: list[tuple[int, int]] = []
    for path in query.matches:
        start = len(ops)
        est = _plan_path(db, ctx, stats, path, pushdowns, bound, ops, est)
        spans.append((start, len(ops)))
    if residual is not None:
        _check_vars(residual, bound, "WHERE")
        est = max(1.0, est * 0.5)
        ops.append(FilterOp(expr=residual, est=est))
    if query.creates:
        bound |= _plan_creates(query, bound, ops)
    if query.sets:
        for item in query.sets:
            if item.var not in bound:
                raise QueryPlanError(f"SET references unbound {item.var!r}")
        ops.append(SetOp(items=query.sets))
    if query.deletes:
        for var in query.deletes:
            if var not in bound:
                raise QueryPlanError(f"DELETE references unbound {var!r}")
        ops.append(DeleteOp(vars=query.deletes))
    columns = _plan_returns(query, bound, ops)
    return LogicalPlan(
        query=query,
        ops=tuple(ops),
        columns=columns,
        match_spans=tuple(spans),
    )


def replan_tail(
    db, ctx, query: Query, path_idx: int, est_in: float, bound: set[str]
) -> tuple[list, list[tuple[int, int]]]:
    """Re-plan MATCH paths ``path_idx``.. with a corrected cardinality.

    Called by the executor when the observed row count at a MATCH-path
    boundary diverges from the planner's estimate: the remaining paths
    are re-ordered with ``est_in`` as the true input cardinality (and
    fresh statistics), which can flip anchor choices the stale estimate
    got wrong.  Returns the replacement operator list and its path spans
    (``ops``-relative, same convention as
    :attr:`~repro.query.logical.LogicalPlan.match_spans`).
    """
    pushdowns, _ = _pushdown(db, ctx, query)
    stats = _get_stats(db, ctx)
    ops: list = []
    spans: list[tuple[int, int]] = []
    bound = set(bound)
    est = max(float(est_in), 1.0)
    for path in query.matches[path_idx:]:
        start = len(ops)
        est = _plan_path(db, ctx, stats, path, pushdowns, bound, ops, est)
        spans.append((start, len(ops)))
    return ops, spans


def plan_is_current(db, ctx, plan: LogicalPlan) -> bool:
    """Would the plan's scan access paths be chosen again under current stats?

    Used by the engine's plan cache to revalidate entries after the
    vertex directory version moved: estimates inside a stale plan affect
    only quality, but a *flipped access path* (an index becoming cheaper
    than a label sweep, a label histogram inversion) is worth a re-plan.
    """
    stats = _get_stats(db, ctx)
    for op in plan.ops:
        if isinstance(op, ScanOp) and op.source in ("index", "label", "all"):
            source, detail, _ = _choose_source(db, ctx, stats, op.spec)
            if (source, detail) != (op.source, op.detail):
                return False
    return True


# -- predicate pushdown ------------------------------------------------------
def _conjuncts(expr: Expr | None) -> list[Expr]:
    if expr is None:
        return []
    if isinstance(expr, And):
        out: list[Expr] = []
        for item in expr.items:
            out.extend(_conjuncts(item))
        return out
    return [expr]


def _pushdown(
    db, ctx, query: Query
) -> tuple[dict[str, tuple[list[str], list[PropPredicate]]], Expr | None]:
    """Fold single-variable WHERE conjuncts into node conditions.

    Returns (var → (extra labels, extra predicates), residual WHERE).
    Comparisons on MULTI-entry property types stay residual: a DNF
    constraint matches if *any* entry satisfies, while expression
    evaluation reads the first entry — only SINGLE types (and unknown
    names, which fail both ways) are equivalent under pushdown.
    """
    node_vars = {
        n.var for path in query.matches for n in path.nodes
    }
    push: dict[str, tuple[list[str], list[PropPredicate]]] = {}
    residual: list[Expr] = []
    for conj in _conjuncts(query.where):
        target: tuple[str, str | None, PropPredicate | None] | None = None
        if isinstance(conj, HasLabel) and conj.var in node_vars:
            target = (conj.var, conj.label, None)
        elif isinstance(conj, Cmp):
            pred = _cmp_to_pred(db, ctx, conj, node_vars)
            if pred is not None:
                target = (pred[0], None, pred[1])
        if target is None:
            residual.append(conj)
            continue
        var, label, pred = target
        labels, preds = push.setdefault(var, ([], []))
        if label is not None:
            labels.append(label)
        if pred is not None:
            preds.append(pred)
    if not residual:
        return push, None
    return push, residual[0] if len(residual) == 1 else And(tuple(residual))


def _cmp_to_pred(
    db, ctx, cmp: Cmp, node_vars: set[str]
) -> tuple[str, PropPredicate] | None:
    sides = [(cmp.left, cmp.right, cmp.op), (cmp.right, cmp.left, _CMP_FLIP[cmp.op])]
    for prop_side, value_side, op in sides:
        if not isinstance(prop_side, PropRef) or prop_side.var not in node_vars:
            continue
        if isinstance(value_side, Literal):
            value = value_side.value
        elif isinstance(value_side, ParamRef):
            value = Param(value_side.name)
        else:
            continue
        if value is None:
            return None  # comparisons against NULL never match; keep residual
        if prop_side.key != "id":
            ptype = db.replica(ctx).ptypes.by_name(prop_side.key)
            if ptype is not None and ptype.multiplicity != Multiplicity.SINGLE:
                return None
        return prop_side.var, PropPredicate(prop_side.key, op, value)
    return None


# -- access-path selection ---------------------------------------------------
def _merged_spec(
    node: NodePattern,
    pushdowns: dict[str, tuple[list[str], list[PropPredicate]]],
) -> NodeSpec:
    extra_labels, extra_preds = pushdowns.get(node.var, ((), ()))
    labels = list(node.labels)
    for lab in extra_labels:
        if lab not in labels:
            labels.append(lab)
    return NodeSpec(
        var=node.var,
        labels=tuple(labels),
        preds=tuple(node.preds) + tuple(extra_preds),
        anonymous=node.anonymous,
    )


def _static_conditions(db, ctx, spec: NodeSpec) -> set:
    """Node conditions as GDI condition objects (literal values only)."""
    replica = db.replica(ctx)
    out: set = set()
    for name in spec.labels:
        label = replica.labels.by_name(name)
        if label is not None:
            out.add(LabelCondition(label.int_id))
    for pred in spec.preds:
        if isinstance(pred.value, Param) or pred.key == "id":
            continue
        ptype = replica.ptypes.by_name(pred.key)
        if ptype is not None:
            out.add(
                PropertyCondition(ptype.int_id, _OP_TO_GDI[pred.op], pred.value)
            )
    return out


def _choose_source(db, ctx, stats: _Stats, spec: NodeSpec):
    """Pick the cheapest access path: (source, detail, est_rows)."""
    for pred in spec.preds:
        if pred.key == "id" and pred.op == "=":
            return "dht", pred.value, 1.0
    conds = _static_conditions(db, ctx, spec)
    best: tuple[str, float] | None = None
    for name, idx in db.indexes.items():
        # the node conditions must *imply* the index constraint: some
        # conjunction of the index DNF is fully contained in them
        if any(
            conj and set(conj) <= conds
            for conj in idx.constraint.conjunctions
        ) or idx.constraint.is_true():
            card = float(stats.index_card.get(name, stats.total))
            if best is None or card < best[1]:
                best = (name, card)
    if best is not None:
        return "index", best[0], best[1]
    if spec.labels:
        rarest = min(
            spec.labels, key=lambda l: stats.label_card.get(l, 0)
        )
        return "label", rarest, float(stats.label_card.get(rarest, 0))
    return "all", None, float(stats.total)


def _selectivity(db, ctx, stats: _Stats, spec: NodeSpec) -> float:
    _, _, est = _choose_source(db, ctx, stats, spec)
    return min(1.0, max(est, 0.001) / stats.total)


def _expand_fanout(rel) -> float:
    if not rel.var_length:
        return DEFAULT_FANOUT
    hops = rel.max_hops if rel.max_hops is not None else rel.min_hops + 2
    return DEFAULT_FANOUT ** min(hops, 4)


# -- cost-based join ordering ------------------------------------------------
def _plan_path(
    db,
    ctx,
    stats: _Stats,
    path: PathPattern,
    pushdowns,
    bound: set[str],
    ops: list,
    est_in: float,
) -> float:
    specs = [_merged_spec(n, pushdowns) for n in path.nodes]
    cost = ctx.rt.cost
    msg = cost.onesided(ctx.rank, (ctx.rank + 1) % ctx.nranks, _HOLDER_BYTES)

    def anchor_cost(i: int) -> float:
        if specs[i].var in bound:
            scan_cost, rows = 0.0, est_in
        else:
            _, _, est = _choose_source(db, ctx, stats, specs[i])
            scan_cost = ctx.nranks * cost.onesided(
                ctx.rank, (ctx.rank + 1) % ctx.nranks, 8.0
            ) + est * cost.compute(1)
            rows = est_in * max(est, 0.001)
        total = scan_cost
        for j, rel, dst in _walk_from(path, i):
            if specs[dst].var in bound:
                rows = max(rows * 0.1, 0.001)
                continue
            rows = rows * _expand_fanout(rel) * _selectivity(
                db, ctx, stats, specs[dst]
            )
            rows = max(rows, 0.001)
            total += rows * msg
        return total

    anchor = min(range(len(specs)), key=anchor_cost)
    # emit the anchor access
    spec = specs[anchor]
    if spec.var in bound:
        if spec.labels or spec.preds:
            ops.append(ScanOp(spec=spec, source="bound", est=est_in))
        rows = est_in
    else:
        source, detail, est = _choose_source(db, ctx, stats, spec)
        rows = max(est_in * max(est, 1.0), 1.0)
        ops.append(ScanOp(spec=spec, source=source, detail=detail, est=rows))
        bound.add(spec.var)
    # expand outward from the anchor
    for j, rel, dst_i in _walk_from(path, anchor):
        dst = specs[dst_i]
        if rel.var is not None:
            bound.add(rel.var)
        if dst.var in bound:
            rows = max(rows * 0.1, 1.0)
            ops.append(
                ExpandOp(
                    src_var=specs[_other(j, dst_i)].var,
                    rel=rel,
                    dst=dst,
                    bound=True,
                    est=rows,
                )
            )
        else:
            rows = max(
                rows
                * _expand_fanout(rel)
                * _selectivity(db, ctx, stats, dst),
                1.0,
            )
            ops.append(
                ExpandOp(
                    src_var=specs[_other(j, dst_i)].var,
                    rel=rel,
                    dst=dst,
                    est=rows,
                )
            )
            bound.add(dst.var)
    return rows


def _other(rel_index: int, dst_index: int) -> int:
    """The source node index of rel ``rel_index`` given its destination."""
    return rel_index if dst_index == rel_index + 1 else rel_index + 1


def _walk_from(path: PathPattern, anchor: int):
    """Expansion steps outward from the anchor: (rel idx, rel, dst idx).

    Rels right of the anchor keep their direction (they are traversed
    left→right); rels left of it are traversed right→left, so their
    direction is flipped to stay relative to the traversal source.
    """
    steps = []
    for j in range(anchor, len(path.rels)):
        steps.append((j, path.rels[j], j + 1))
    for j in range(anchor - 1, -1, -1):
        steps.append((j, _flip(path.rels[j]), j))
    return steps


def _flip(rel):
    if rel.direction == "out":
        return dataclasses.replace(rel, direction="in")
    if rel.direction == "in":
        return dataclasses.replace(rel, direction="out")
    return rel


# -- writes ------------------------------------------------------------------
def _plan_creates(query: Query, bound: set[str], ops: list) -> set[str]:
    new_vars: set[str] = set()
    for path in query.creates:
        for rel in path.rels:
            if rel.var_length:
                raise QueryPlanError("CREATE cannot use variable-length edges")
            if rel.direction == "any":
                raise QueryPlanError("CREATE edges must be directed (-> or <-)")
        for node in path.nodes:
            if node.var in bound or node.var in new_vars:
                continue
            ids = [
                p for p in node.preds if p.key == "id" and p.op == "="
            ]
            if len(ids) != 1:
                raise QueryPlanError(
                    f"CREATE node {node.var!r} needs exactly one "
                    "id = <value> property (the application ID)"
                )
            for p in node.preds:
                if p.op != "=":
                    raise QueryPlanError(
                        "CREATE properties must use '=' or ':'"
                    )
            new_vars.add(node.var)
    ops.append(CreateOp(paths=query.creates))
    return new_vars


# -- RETURN tail -------------------------------------------------------------
def _has_aggregate(expr: Expr) -> bool:
    if isinstance(expr, FuncCall) and expr.aggregate:
        return True
    children: tuple = ()
    if isinstance(expr, Cmp):
        children = (expr.left, expr.right)
    elif isinstance(expr, (And, Or)):
        children = expr.items
    elif isinstance(expr, Not):
        children = (expr.operand,)
    elif isinstance(expr, IsNull):
        children = (expr.operand,)
    elif isinstance(expr, FuncCall):
        children = expr.args
    return any(_has_aggregate(c) for c in children)


def _free_vars(expr: Expr, out: set[str]) -> None:
    if isinstance(expr, VarRef):
        out.add(expr.name)
    elif isinstance(expr, PropRef):
        out.add(expr.var)
    elif isinstance(expr, HasLabel):
        out.add(expr.var)
    elif isinstance(expr, Cmp):
        _free_vars(expr.left, out)
        _free_vars(expr.right, out)
    elif isinstance(expr, (And, Or)):
        for item in expr.items:
            _free_vars(item, out)
    elif isinstance(expr, Not):
        _free_vars(expr.operand, out)
    elif isinstance(expr, IsNull):
        _free_vars(expr.operand, out)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            _free_vars(arg, out)


def _check_vars(expr: Expr, bound: set[str], clause: str) -> None:
    free: set[str] = set()
    _free_vars(expr, free)
    missing = free - bound
    if missing:
        raise QueryPlanError(
            f"{clause} references unbound variable(s): "
            + ", ".join(sorted(missing))
        )


def _plan_returns(
    query: Query, bound: set[str], ops: list
) -> tuple[str, ...]:
    if not query.returns:
        if not query.writes:
            raise QueryPlanError("read query without RETURN")
        if query.order_by or query.skip is not None or query.limit is not None:
            raise QueryPlanError("ORDER BY/SKIP/LIMIT require RETURN")
        return ()
    columns = tuple(
        item.alias or expr_text(item.expr) for item in query.returns
    )
    if len(set(columns)) != len(columns):
        raise QueryPlanError(f"duplicate output column in RETURN: {columns}")
    for item in query.returns:
        _check_vars(item.expr, bound, "RETURN")
    agg_mask = tuple(_has_aggregate(item.expr) for item in query.returns)
    if any(agg_mask):
        keys, aggs = [], []
        for item, is_agg in zip(query.returns, agg_mask):
            if is_agg:
                if not (
                    isinstance(item.expr, FuncCall) and item.expr.aggregate
                ):
                    raise QueryPlanError(
                        "aggregates must be top-level RETURN items"
                    )
                if item.expr.star and item.expr.name != "count":
                    raise QueryPlanError("only count(*) accepts '*'")
                if not item.expr.star and len(item.expr.args) != 1:
                    raise QueryPlanError(
                        f"{item.expr.name}() takes exactly one argument"
                    )
                if not item.expr.star and _has_aggregate(item.expr.args[0]):
                    raise QueryPlanError("nested aggregates are not allowed")
                aggs.append(item)
            else:
                keys.append(item)
        ops.append(
            AggregateOp(
                keys=tuple(keys),
                aggs=tuple(aggs),
                columns=columns,
                agg_mask=agg_mask,
            )
        )
    else:
        ops.append(ProjectOp(items=query.returns, columns=columns))
    if query.distinct:
        ops.append(DistinctOp())
    if query.order_by:
        keys = []
        for order in query.order_by:
            keys.append((_order_column(order, query, columns), order.desc))
        ops.append(OrderByOp(keys=tuple(keys), items=query.order_by))
    if query.skip is not None or query.limit is not None:
        ops.append(SkipLimitOp(skip=query.skip, limit=query.limit))
    return columns


def _order_column(order, query: Query, columns: tuple[str, ...]) -> int:
    """Map an ORDER BY expression onto an output column index.

    Sorting happens after projection (and aggregation), so the sort key
    must be one of the output columns — referenced by alias, by matching
    expression, or by identical expression text.
    """
    if isinstance(order.expr, VarRef) and order.expr.name in columns:
        return columns.index(order.expr.name)
    for i, item in enumerate(query.returns):
        if item.expr == order.expr:
            return i
    text = expr_text(order.expr)
    if text in columns:
        return columns.index(text)
    raise QueryPlanError(
        f"ORDER BY key {text!r} is not an output column of RETURN"
    )
