"""Naive full-scan reference interpreter — the engine's correctness oracle.

``run_reference`` snapshots the entire graph in one read transaction
(sweeping every directory shard, one batched associate), then evaluates
the query AST by brute force over the in-memory snapshot: anchors always
scan all vertices, chains are matched strictly left-to-right, and no
index, pushdown, statistics, or batching is involved.  Sharing only the
expression evaluator and result-shaping helpers with the real executor,
it exercises a completely different match path — the property-based
equivalence suite asserts ``engine == reference`` on random graphs and
queries.

Write queries are rejected: the oracle is read-only by design.
"""

from __future__ import annotations

from typing import Any

from repro.gda.holder import DIR_IN, DIR_OUT

from .ast import NodePattern, PathPattern, Query, RelPattern
from .engine import QueryResult
from .errors import QueryPlanError
from .evalexpr import Binding, eval_expr, resolve_value, truthy
from .parser import parse_query
from .physical import (
    run_aggregate,
    run_distinct,
    run_orderby,
    run_project,
    run_skiplimit,
)
from .planner import _plan_returns

__all__ = ["run_reference"]


class _SnapSlot:
    """One edge slot of the snapshot, relative to its base vertex."""

    __slots__ = ("direction", "other_vid", "endpoints", "label_names", "props")

    def __init__(self, direction, other_vid, endpoints, label_names, props):
        self.direction = direction  # "out" | "in" | "undir"
        self.other_vid = other_vid
        self.endpoints = endpoints  # true (origin vid, target vid)
        self.label_names = label_names
        self.props = props  # name -> list of values


class _SnapVertex(Binding):
    """Snapshot record of one vertex."""

    is_edge = False

    def __init__(self, vid, app_id, label_names, props):
        self.vid = vid
        self._app_id = app_id
        self.label_names = label_names
        self.props = props  # name -> list of values
        self.slots: list[_SnapSlot] = []

    @property
    def app_id(self) -> int:
        return self._app_id

    def has_label(self, name: str) -> bool:
        return name in self.label_names

    def prop(self, key: str) -> Any:
        values = self.props.get(key)
        return values[0] if values else None

    def output(self) -> Any:
        return self._app_id

    def cmp_key(self) -> Any:
        return ("v", self._app_id)


class _SnapEdge(Binding):
    """Snapshot binding of a relationship variable."""

    is_edge = True

    def __init__(self, base: _SnapVertex, slot: _SnapSlot, snap: "_Snapshot"):
        self.base = base
        self.slot = slot
        self.snap = snap

    @property
    def app_id(self) -> int:
        raise QueryPlanError("relationships have no application ID")

    def has_label(self, name: str) -> bool:
        return name in self.slot.label_names

    def prop(self, key: str) -> Any:
        values = self.slot.props.get(key)
        return values[0] if values else None

    def label_name(self) -> str | None:
        return self.slot.label_names[0] if self.slot.label_names else None

    def output(self) -> Any:
        src, dst = self.slot.endpoints
        return (
            self.snap.by_vid[src].app_id,
            self.snap.by_vid[dst].app_id,
            self.label_name(),
        )

    def cmp_key(self) -> Any:
        src, dst = self.slot.endpoints
        return ("e", src, dst, self.slot.label_names)


class _Snapshot:
    def __init__(self) -> None:
        self.by_vid: dict[int, _SnapVertex] = {}

    @property
    def vertices(self) -> list[_SnapVertex]:
        return list(self.by_vid.values())


def _take_snapshot(ctx, db) -> _Snapshot:
    """Read the whole graph in one transaction, one batched associate."""
    snap = _Snapshot()
    tx = db.start_transaction(ctx, write=False)
    try:
        vids = [
            vid
            for shard in range(db.nranks)
            for vid in db.directory.shard_vertices(ctx, shard)
        ]
        handles = tx.associate_vertices(vids, missing_ok=True)
        ptypes = db.all_property_types(ctx)
        for vid, h in zip(vids, handles):
            if h is None:
                continue
            props: dict[str, list] = {}
            for pt, value in h.all_properties():
                props.setdefault(pt.name, []).append(value)
            snap.by_vid[vid] = _SnapVertex(
                vid=vid,
                app_id=h.app_id,
                label_names=frozenset(l.name for l in h.labels()),
                props=props,
            )
        for vid, h in zip(vids, handles):
            if h is None:
                continue
            base = snap.by_vid[vid]
            for e in h.edges():
                # slot direction relative to the base vertex (self-loops
                # and heavy edges make endpoints() ambiguous for this)
                sdir = e._slot.direction
                if sdir == DIR_OUT:
                    direction = "out"
                elif sdir == DIR_IN:
                    direction = "in"
                else:
                    direction = "undir"
                eprops: dict[str, list] = {}
                if e.heavy:
                    for pt in ptypes:
                        values = e.properties(pt)
                        if values:
                            eprops[pt.name] = values
                base.slots.append(
                    _SnapSlot(
                        direction=direction,
                        other_vid=e.other_endpoint(),
                        endpoints=e.endpoints(),
                        label_names=tuple(l.name for l in e.labels()),
                        props=eprops,
                    )
                )
        tx.commit()
    except BaseException:
        if tx.open:
            tx.abort()
        raise
    return snap


# -- pattern matching --------------------------------------------------------
def _pred_ok(values: list, op: str, wanted: Any) -> bool:
    """Any-entry comparison, mirroring GDI ``PropertyCondition``."""
    for value in values:
        try:
            ok = {
                "=": value == wanted,
                "<>": value != wanted,
                "<": value < wanted,
                "<=": value <= wanted,
                ">": value > wanted,
                ">=": value >= wanted,
            }[op]
        except TypeError:
            ok = False
        if ok:
            return True
    return False


def _node_ok(node: NodePattern, v: _SnapVertex, params) -> bool:
    for name in node.labels:
        if name not in v.label_names:
            return False
    for pred in node.preds:
        wanted = resolve_value(pred.value, params)
        if pred.key == "id":
            if not _pred_ok([v.app_id], pred.op, _as_int(wanted)):
                return False
        elif not _pred_ok(v.props.get(pred.key, []), pred.op, wanted):
            return False
    return True


def _as_int(value: Any) -> Any:
    try:
        return int(value)
    except (TypeError, ValueError):
        return value


def _slot_ok(slot: _SnapSlot, rel: RelPattern, params) -> bool:
    if rel.direction == "out" and slot.direction == "in":
        return False
    if rel.direction == "in" and slot.direction == "out":
        return False
    if rel.label is not None and rel.label not in slot.label_names:
        return False
    for pred in rel.preds:
        wanted = resolve_value(pred.value, params)
        if not _pred_ok(slot.props.get(pred.key, []), pred.op, wanted):
            return False
    return True


def _bfs(src: _SnapVertex, rel: RelPattern, snap: _Snapshot, params):
    """Shortest-path distances over matching edges (distance semantics)."""
    visited = {src.vid: 0}
    frontier = [src]
    depth = 0
    while frontier and (rel.max_hops is None or depth < rel.max_hops):
        depth += 1
        nxt = []
        for v in frontier:
            for slot in v.slots:
                if not _slot_ok(slot, rel, params):
                    continue
                if slot.other_vid in visited:
                    continue
                other = snap.by_vid.get(slot.other_vid)
                if other is None:
                    continue
                visited[slot.other_vid] = depth
                nxt.append(other)
        frontier = nxt
    return visited


def _match_path(
    path: PathPattern, rows: list[dict], snap: _Snapshot, params
) -> list[dict]:
    first = path.nodes[0]
    out = []
    for row in rows:
        if first.var in row:
            if _node_ok(first, row[first.var], params):
                out.append(row)
        else:
            for v in snap.vertices:
                if _node_ok(first, v, params):
                    out.append(dict(row, **{first.var: v}))
    rows = out
    for i, rel in enumerate(path.rels):
        src_node, dst_node = path.nodes[i], path.nodes[i + 1]
        nrows = []
        for row in rows:
            src: _SnapVertex = row[src_node.var]
            if rel.var_length:
                reach = _bfs(src, rel, snap, params)
                if dst_node.var in row:
                    d = reach.get(row[dst_node.var].vid)
                    if (
                        d is not None
                        and rel.min_hops <= d
                        and (rel.max_hops is None or d <= rel.max_hops)
                        and _node_ok(dst_node, row[dst_node.var], params)
                    ):
                        nrows.append(row)
                    continue
                for vid, d in reach.items():
                    if d < rel.min_hops or (
                        rel.max_hops is not None and d > rel.max_hops
                    ):
                        continue
                    v = snap.by_vid[vid]
                    if _node_ok(dst_node, v, params):
                        nrows.append(dict(row, **{dst_node.var: v}))
                continue
            for slot in src.slots:
                if not _slot_ok(slot, rel, params):
                    continue
                other = snap.by_vid.get(slot.other_vid)
                if other is None or not _node_ok(dst_node, other, params):
                    continue
                if dst_node.var in row:
                    if row[dst_node.var].vid != other.vid:
                        continue
                    new = dict(row)
                else:
                    new = dict(row, **{dst_node.var: other})
                if rel.var is not None:
                    new[rel.var] = _SnapEdge(src, slot, snap)
                nrows.append(new)
        rows = nrows
    return rows


# -- entry -------------------------------------------------------------------
def run_reference(
    ctx, db, text: str, params: dict | None = None
) -> QueryResult:
    """Evaluate a read query by brute force against a full snapshot."""
    query: Query = parse_query(text)
    if query.writes:
        raise QueryPlanError("the reference interpreter is read-only")
    if query.mode != "run":
        raise QueryPlanError(
            "the reference interpreter executes plain queries only"
        )
    snap = _take_snapshot(ctx, db)
    rows: list[dict] = [{}]
    for path in query.matches:
        rows = _match_path(path, rows, snap, params)
    if query.where is not None:
        rows = [
            row for row in rows if truthy(eval_expr(query.where, row, params))
        ]
    # result shaping: same tail operators as the engine, planned over the
    # full binding set (trivial and deterministic — the oracle's
    # independence matters for matching, scans, and pushdown)
    bound = set()
    for row in rows[:1]:
        bound |= set(row)
    bound |= set(query.match_vars())
    tail: list = []
    columns = _plan_returns(query, bound, tail)
    out: list = rows
    from .logical import (
        AggregateOp,
        DistinctOp,
        OrderByOp,
        ProjectOp,
        SkipLimitOp,
    )

    for op in tail:
        if isinstance(op, ProjectOp):
            out = run_project(op, out, params)
        elif isinstance(op, AggregateOp):
            out = run_aggregate(op, out, params)
        elif isinstance(op, DistinctOp):
            out = run_distinct(out)
        elif isinstance(op, OrderByOp):
            out = run_orderby(op, out)
        elif isinstance(op, SkipLimitOp):
            out = run_skiplimit(op, out, params)
    return QueryResult(columns=columns, rows=out)
