"""Simulated RMA substrate: the repository's stand-in for foMPI / MPI-3 RMA.

Provides windows, one-sided puts/gets/atomics/flushes, MPI-style
collectives, SPMD executors, and a LogGP-style network cost model.  See
DESIGN.md for how this substitutes for the Cray Aries hardware used in the
paper.
"""

from .costmodel import (
    UNIFORM,
    XC40,
    XC50,
    ZERO_COST,
    CostModel,
    MachineProfile,
    log2ceil,
)
from .executor import InterleavingScheduler, SpmdError, ThreadExecutor, run_spmd
from .faults import (
    FaultInjector,
    FaultPlan,
    RmaRankDead,
    RmaStaleEpoch,
    RmaTransientError,
    backoff_delay,
)
from .membership import (
    SHARD_FAILED,
    SHARD_NORMAL,
    SHARD_REHOSTED,
    SHARD_REPAIRING,
    ClusterMembership,
)
from .runtime import BatchRequest, RankContext, Request, RmaError, RmaRuntime
from .trace import RankCounters, TraceRecorder
from .window import Window, WindowError

__all__ = [
    "CostModel",
    "MachineProfile",
    "UNIFORM",
    "XC40",
    "XC50",
    "ZERO_COST",
    "log2ceil",
    "InterleavingScheduler",
    "SpmdError",
    "ThreadExecutor",
    "run_spmd",
    "FaultInjector",
    "FaultPlan",
    "RmaRankDead",
    "RmaStaleEpoch",
    "RmaTransientError",
    "backoff_delay",
    "ClusterMembership",
    "SHARD_NORMAL",
    "SHARD_FAILED",
    "SHARD_REPAIRING",
    "SHARD_REHOSTED",
    "RankContext",
    "RmaError",
    "RmaRuntime",
    "Request",
    "BatchRequest",
    "RankCounters",
    "TraceRecorder",
    "Window",
    "WindowError",
]
