"""Collective communication for the simulated RMA substrate.

GDI prescribes collective routines with MPI semantics (paper Section 3.2);
GDI-RMA uses them for collective transactions, bulk ingestion, and global
reductions in OLAP queries.  This module provides barrier, bcast, reduce,
allreduce, gather, allgather, scatter, alltoall, and scan over the ranks of
one :class:`repro.rma.runtime.RmaRuntime`.

Implementation: rank threads rendezvous through a generation-numbered
exchange (every participant deposits a contribution, the last arrival
publishes the round, every participant then reads all contributions).  The
*simulated* cost charged to each rank follows the binomial-tree /
dissemination models in :mod:`repro.rma.costmodel`: collectives also act as
clock synchronization points, so after a collective every participant's
clock equals ``max(entry clocks) + collective cost`` — exactly the
semantics of a synchronizing MPI collective.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

__all__ = ["CollectiveEngine", "CollectiveAbort", "REDUCE_OPS", "payload_nbytes"]


class CollectiveAbort(RuntimeError):
    """Raised in every waiting rank when a peer dies mid-collective."""


class _Dead:
    """Sentinel contribution of a crashed, excluded participant."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return "<dead contribution>"


_DEAD = _Dead()


def _sum(a, b):
    return a + b


def _max(a, b):
    return a if a >= b else b


def _min(a, b):
    return a if a <= b else b


def _prod(a, b):
    return a * b


def _land(a, b):
    return bool(a) and bool(b)


def _lor(a, b):
    return bool(a) or bool(b)


#: Named reduction operators accepted wherever an ``op`` is expected.
REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": _sum,
    "max": _max,
    "min": _min,
    "prod": _prod,
    "land": _land,
    "lor": _lor,
}


def payload_nbytes(value: Any) -> int:
    """Best-effort estimate of a contribution's wire size in bytes.

    Exact sizes matter only for the bandwidth term of the cost model;
    unknown Python objects are charged a flat 64 bytes.
    """
    if value is None:
        return 0
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, (int, float, bool)):
        return 8
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(value, (list, tuple)):
        return sum(payload_nbytes(v) for v in value) or 8
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in value.items()) or 8
    return 64


def _resolve_op(op) -> Callable[[Any, Any], Any]:
    if callable(op):
        return op
    try:
        return REDUCE_OPS[op]
    except KeyError:
        raise ValueError(f"unknown reduction op {op!r}") from None


class CollectiveEngine:
    """Rendezvous-based collective engine shared by all ranks of a runtime."""

    def __init__(self, runtime) -> None:
        self._rt = runtime
        self._nranks = runtime.nranks
        self._cond = threading.Condition()
        self._generation = 0
        self._arrived = 0
        self._slots: dict[int, list] = {}
        self._ready: set[int] = set()
        self._left: dict[int, int] = {}
        #: participant count a published generation waits to release
        self._readers: dict[int, int] = {}
        #: generations deterministically aborted by a mid-collective crash
        self._aborted: set[int] = set()
        #: crashed ranks permanently excluded from the rendezvous (only
        #: populated when the runtime has a membership view: collectives
        #: then complete over the live view instead of aborting)
        self._excluded: set[int] = set()
        self._poisoned: BaseException | None = None

    # -- failure handling -------------------------------------------------
    def poison(self, exc: BaseException) -> None:
        """Wake every waiting rank with :class:`CollectiveAbort`.

        Called by the executor when any rank raises, so sibling ranks do
        not hang forever inside a half-entered collective.
        """
        with self._cond:
            self._poisoned = exc
            self._cond.notify_all()

    def _check_poison(self) -> None:
        if self._poisoned is not None:
            raise CollectiveAbort(
                f"collective aborted: peer rank failed ({self._poisoned!r})"
            )

    def reset_for_new_run(self) -> None:
        """Drop the poison and half-entered rendezvous state of an
        aborted SPMD phase.

        Called by the executor when a runtime is reused for another
        phase: no rank threads exist between phases, so the pending
        generations can never be completed and would otherwise abort the
        next phase's first collective.  Crashed ranks stay excluded (the
        generation counter also keeps advancing, so a stale ``gen`` can
        never collide with a live one).
        """
        with self._cond:
            self._poisoned = None
            self._arrived = 0
            self._slots.clear()
            self._ready.clear()
            self._left.clear()
            self._readers.clear()
            self._aborted.clear()

    # -- core rendezvous ---------------------------------------------------
    def _raise_dead(self, detail: str):
        from .faults import RmaRankDead  # local: avoid an import cycle

        raise RmaRankDead(detail)

    def _try_publish(self, gen: int) -> bool:
        """Publish ``gen`` if every non-excluded rank has arrived."""
        expected = self._nranks - len(self._excluded)
        if self._arrived < expected:
            return False
        self._arrived = 0
        self._generation += 1
        self._ready.add(gen)
        self._readers[gen] = expected
        self._cond.notify_all()
        return True

    def _scan_for_dead(self, gen: int) -> None:
        """Detect participants that died before arriving in ``gen``.

        Without a membership view the whole generation is aborted and
        every participant deterministically observes ``RmaRankDead``
        (satellite fix: a mid-collective crash used to hang waiters until
        an external poison).  With a membership view the dead rank is
        excluded, its shard fails over, and the collective completes over
        the live view with a sentinel in the dead rank's slot.
        """
        faults = getattr(self._rt, "faults", None)
        if faults is None or not faults.dead:
            return
        slots = self._slots.get(gen)
        if slots is None:
            return
        missing = [
            r
            for r in range(self._nranks)
            if r in faults.dead
            and r not in self._excluded
            and slots[r] is _DEAD
        ]
        if not missing:
            return
        mem = getattr(self._rt, "membership", None)
        for r in missing:
            if mem is None or not mem.note_failure(r):
                # fatal: no live backup can take over -> abort this
                # generation for everyone, deterministically
                self._aborted.add(gen)
                self._arrived = 0
                self._cond.notify_all()
                return
            self._excluded.add(r)
        self._try_publish(gen)

    def _exchange(self, rank: int, value: Any) -> list:
        """Deposit ``value`` and return the list of all contributions.

        Contributions of crashed, excluded ranks come back as the
        module-level ``_DEAD`` sentinel; the per-collective wrappers skip
        (or, for rooted collectives, reject) them.
        """
        faults = getattr(self._rt, "faults", None)
        if faults is not None:
            # a crashed rank must not keep participating in collectives
            faults.check_alive(rank)
        with self._cond:
            self._check_poison()
            gen = self._generation
            if gen in self._aborted:
                self._raise_dead(
                    "collective aborted: a participant crashed mid-collective"
                )
            slots = self._slots.setdefault(gen, [_DEAD] * self._nranks)
            slots[rank] = value
            self._arrived += 1
            if not self._try_publish(gen):
                # parked until the last participant arrives: tell the
                # interleaving scheduler this rank cannot issue ops, so
                # op-grant rounds must not stall waiting for it
                sched = getattr(self._rt, "scheduler", None)
                if sched is not None:
                    sched.block(rank)
                try:
                    while gen not in self._ready:
                        self._check_poison()
                        if gen in self._aborted:
                            self._raise_dead(
                                "collective aborted: a participant crashed "
                                "mid-collective"
                            )
                        self._scan_for_dead(gen)
                        if gen in self._ready or gen in self._aborted:
                            continue
                        self._cond.wait(timeout=0.05)
                finally:
                    if sched is not None:
                        sched.unblock(rank)
                if gen in self._aborted:
                    self._raise_dead(
                        "collective aborted: a participant crashed "
                        "mid-collective"
                    )
            result = self._slots[gen]
            self._left[gen] = self._left.get(gen, 0) + 1
            if self._left[gen] >= self._readers.get(gen, self._nranks):
                del self._slots[gen]
                del self._left[gen]
                self._readers.pop(gen, None)
                self._ready.discard(gen)
            return result

    def _entry_clock(self, rank: int) -> float:
        """A rank enters a collective no earlier than its NIC is drained."""
        return self._rt.effective_clock(rank)

    def _sync_clocks(self, rank: int, cost: float, clocks: Sequence[float]) -> None:
        """Advance this rank's clock to ``max(entry clocks) + cost``.

        Entry clocks already include receiver-side NIC service, so the
        rank's service horizon is absorbed into the synchronized clock.
        """
        self._rt.clocks[rank] = max(clocks) + cost
        # The NIC-busy horizon was included in the entry clocks, so after
        # the synchronization the NIC is considered drained: advance the
        # horizon to the synced clock (future service extends from here).
        with self._rt._atomic_locks[rank]:
            self._rt.service[rank] = max(
                self._rt.service[rank], self._rt.clocks[rank]
            )
        self._rt.trace.record("collective", rank, rank, "-", 0, 0)

    @staticmethod
    def _live_pairs(contribs: list) -> list[tuple[int, Any]]:
        """(rank, (clock, value)) pairs of the live contributions."""
        return [(i, c) for i, c in enumerate(contribs) if c is not _DEAD]

    # -- collectives -------------------------------------------------------
    def barrier(self, rank: int) -> None:
        contribs = self._exchange(rank, self._entry_clock(rank))
        clocks = [c for c in contribs if c is not _DEAD]
        self._sync_clocks(rank, self._rt.cost.barrier(self._nranks), clocks)

    def bcast(self, rank: int, value: Any, root: int = 0) -> Any:
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        if contribs[root] is _DEAD:
            self._raise_dead(f"bcast root {root} crashed mid-collective")
        clocks = [c for _, (c, _v) in self._live_pairs(contribs)]
        result = contribs[root][1]
        cost = self._rt.cost.tree_collective(self._nranks, payload_nbytes(result))
        self._sync_clocks(rank, cost, clocks)
        return result

    def reduce(self, rank: int, value: Any, op="sum", root: int = 0) -> Any:
        fn = _resolve_op(op)
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        pairs = self._live_pairs(contribs)
        clocks = [c for _, (c, _v) in pairs]
        cost = self._rt.cost.tree_collective(self._nranks, payload_nbytes(value))
        self._sync_clocks(rank, cost, clocks)
        if rank != root:
            return None
        acc = pairs[0][1][1]
        for _, (_, v) in pairs[1:]:
            acc = fn(acc, v)
        return acc

    def allreduce(self, rank: int, value: Any, op="sum") -> Any:
        fn = _resolve_op(op)
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        pairs = self._live_pairs(contribs)
        clocks = [c for _, (c, _v) in pairs]
        cost = self._rt.cost.tree_collective(self._nranks, payload_nbytes(value))
        self._sync_clocks(rank, cost, clocks)
        acc = pairs[0][1][1]
        for _, (_, v) in pairs[1:]:
            acc = fn(acc, v)
        return acc

    def gather(self, rank: int, value: Any, root: int = 0) -> list | None:
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        pairs = self._live_pairs(contribs)
        clocks = [c for _, (c, _v) in pairs]
        cost = self._rt.cost.gather(self._nranks, payload_nbytes(value))
        self._sync_clocks(rank, cost, clocks)
        if rank != root:
            return None
        return [v for _, (_, v) in pairs]

    def allgather(self, rank: int, value: Any) -> list:
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        pairs = self._live_pairs(contribs)
        clocks = [c for _, (c, _v) in pairs]
        cost = self._rt.cost.gather(self._nranks, payload_nbytes(value))
        self._sync_clocks(rank, cost, clocks)
        return [v for _, (_, v) in pairs]

    def scatter(self, rank: int, values: Sequence | None, root: int = 0) -> Any:
        if rank == root:
            if values is None or len(values) != self._nranks:
                raise ValueError(
                    "scatter root must supply exactly one value per rank"
                )
        contribs = self._exchange(rank, (self._entry_clock(rank), values))
        if contribs[root] is _DEAD:
            self._raise_dead(f"scatter root {root} crashed mid-collective")
        clocks = [c for _, (c, _v) in self._live_pairs(contribs)]
        root_values = contribs[root][1]
        cost = self._rt.cost.tree_collective(
            self._nranks, payload_nbytes(root_values[rank])
        )
        self._sync_clocks(rank, cost, clocks)
        return root_values[rank]

    def alltoall(self, rank: int, values: Sequence) -> list:
        """Personalized exchange: ``values[j]`` is sent to rank ``j``.

        The returned list always has ``nranks`` entries; the slot of a
        crashed, excluded source is ``None`` (degraded mode only).
        """
        if len(values) != self._nranks:
            raise ValueError("alltoall requires exactly one value per peer")
        contribs = self._exchange(rank, (self._entry_clock(rank), list(values)))
        clocks = [c for _, (c, _v) in self._live_pairs(contribs)]
        per_pair = max(payload_nbytes(v) for v in values) if values else 0
        cost = self._rt.cost.alltoall(self._nranks, per_pair)
        self._sync_clocks(rank, cost, clocks)
        return [
            contribs[src][1][rank] if contribs[src] is not _DEAD else None
            for src in range(self._nranks)
        ]

    def scan(self, rank: int, value: Any, op="sum") -> Any:
        """Inclusive prefix reduction over live ranks in rank order."""
        fn = _resolve_op(op)
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        pairs = self._live_pairs(contribs)
        clocks = [c for _, (c, _v) in pairs]
        cost = self._rt.cost.tree_collective(self._nranks, payload_nbytes(value))
        self._sync_clocks(rank, cost, clocks)
        mine = [(i, v) for i, (_, v) in pairs if i <= rank]
        acc = mine[0][1]
        for _, v in mine[1:]:
            acc = fn(acc, v)
        return acc

    def exscan(self, rank: int, value: Any, op="sum", initial: Any = 0) -> Any:
        """Exclusive prefix reduction; the first live rank receives ``initial``."""
        fn = _resolve_op(op)
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        pairs = self._live_pairs(contribs)
        clocks = [c for _, (c, _v) in pairs]
        cost = self._rt.cost.tree_collective(self._nranks, payload_nbytes(value))
        self._sync_clocks(rank, cost, clocks)
        acc = initial
        for i, (_, v) in pairs:
            if i >= rank:
                break
            acc = fn(acc, v)
        return acc
