"""Collective communication for the simulated RMA substrate.

GDI prescribes collective routines with MPI semantics (paper Section 3.2);
GDI-RMA uses them for collective transactions, bulk ingestion, and global
reductions in OLAP queries.  This module provides barrier, bcast, reduce,
allreduce, gather, allgather, scatter, alltoall, and scan over the ranks of
one :class:`repro.rma.runtime.RmaRuntime`.

Implementation: rank threads rendezvous through a generation-numbered
exchange (every participant deposits a contribution, the last arrival
publishes the round, every participant then reads all contributions).  The
*simulated* cost charged to each rank follows the binomial-tree /
dissemination models in :mod:`repro.rma.costmodel`: collectives also act as
clock synchronization points, so after a collective every participant's
clock equals ``max(entry clocks) + collective cost`` — exactly the
semantics of a synchronizing MPI collective.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

__all__ = ["CollectiveEngine", "CollectiveAbort", "REDUCE_OPS", "payload_nbytes"]


class CollectiveAbort(RuntimeError):
    """Raised in every waiting rank when a peer dies mid-collective."""


def _sum(a, b):
    return a + b


def _max(a, b):
    return a if a >= b else b


def _min(a, b):
    return a if a <= b else b


def _prod(a, b):
    return a * b


def _land(a, b):
    return bool(a) and bool(b)


def _lor(a, b):
    return bool(a) or bool(b)


#: Named reduction operators accepted wherever an ``op`` is expected.
REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": _sum,
    "max": _max,
    "min": _min,
    "prod": _prod,
    "land": _land,
    "lor": _lor,
}


def payload_nbytes(value: Any) -> int:
    """Best-effort estimate of a contribution's wire size in bytes.

    Exact sizes matter only for the bandwidth term of the cost model;
    unknown Python objects are charged a flat 64 bytes.
    """
    if value is None:
        return 0
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, (int, float, bool)):
        return 8
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(value, (list, tuple)):
        return sum(payload_nbytes(v) for v in value) or 8
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in value.items()) or 8
    return 64


def _resolve_op(op) -> Callable[[Any, Any], Any]:
    if callable(op):
        return op
    try:
        return REDUCE_OPS[op]
    except KeyError:
        raise ValueError(f"unknown reduction op {op!r}") from None


class CollectiveEngine:
    """Rendezvous-based collective engine shared by all ranks of a runtime."""

    def __init__(self, runtime) -> None:
        self._rt = runtime
        self._nranks = runtime.nranks
        self._cond = threading.Condition()
        self._generation = 0
        self._arrived = 0
        self._slots: dict[int, list] = {}
        self._ready: set[int] = set()
        self._left: dict[int, int] = {}
        self._poisoned: BaseException | None = None

    # -- failure handling -------------------------------------------------
    def poison(self, exc: BaseException) -> None:
        """Wake every waiting rank with :class:`CollectiveAbort`.

        Called by the executor when any rank raises, so sibling ranks do
        not hang forever inside a half-entered collective.
        """
        with self._cond:
            self._poisoned = exc
            self._cond.notify_all()

    def _check_poison(self) -> None:
        if self._poisoned is not None:
            raise CollectiveAbort(
                f"collective aborted: peer rank failed ({self._poisoned!r})"
            )

    # -- core rendezvous ---------------------------------------------------
    def _exchange(self, rank: int, value: Any) -> list:
        """Deposit ``value`` and return the list of all contributions."""
        faults = getattr(self._rt, "faults", None)
        if faults is not None:
            # a crashed rank must not keep participating in collectives
            faults.check_alive(rank)
        with self._cond:
            self._check_poison()
            gen = self._generation
            slots = self._slots.setdefault(gen, [None] * self._nranks)
            slots[rank] = value
            self._arrived += 1
            if self._arrived == self._nranks:
                self._arrived = 0
                self._generation += 1
                self._ready.add(gen)
                self._cond.notify_all()
            else:
                while gen not in self._ready:
                    self._check_poison()
                    self._cond.wait(timeout=0.5)
            result = self._slots[gen]
            self._left[gen] = self._left.get(gen, 0) + 1
            if self._left[gen] == self._nranks:
                del self._slots[gen]
                del self._left[gen]
                self._ready.discard(gen)
            return result

    def _entry_clock(self, rank: int) -> float:
        """A rank enters a collective no earlier than its NIC is drained."""
        return self._rt.effective_clock(rank)

    def _sync_clocks(self, rank: int, cost: float, clocks: Sequence[float]) -> None:
        """Advance this rank's clock to ``max(entry clocks) + cost``.

        Entry clocks already include receiver-side NIC service, so the
        rank's service horizon is absorbed into the synchronized clock.
        """
        self._rt.clocks[rank] = max(clocks) + cost
        # The NIC-busy horizon was included in the entry clocks, so after
        # the synchronization the NIC is considered drained: advance the
        # horizon to the synced clock (future service extends from here).
        with self._rt._atomic_locks[rank]:
            self._rt.service[rank] = max(
                self._rt.service[rank], self._rt.clocks[rank]
            )
        self._rt.trace.record("collective", rank, rank, "-", 0, 0)

    # -- collectives -------------------------------------------------------
    def barrier(self, rank: int) -> None:
        contribs = self._exchange(rank, self._entry_clock(rank))
        self._sync_clocks(rank, self._rt.cost.barrier(self._nranks), contribs)

    def bcast(self, rank: int, value: Any, root: int = 0) -> Any:
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        clocks = [c for c, _ in contribs]
        result = contribs[root][1]
        cost = self._rt.cost.tree_collective(self._nranks, payload_nbytes(result))
        self._sync_clocks(rank, cost, clocks)
        return result

    def reduce(self, rank: int, value: Any, op="sum", root: int = 0) -> Any:
        fn = _resolve_op(op)
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        clocks = [c for c, _ in contribs]
        cost = self._rt.cost.tree_collective(self._nranks, payload_nbytes(value))
        self._sync_clocks(rank, cost, clocks)
        if rank != root:
            return None
        acc = contribs[0][1]
        for _, v in contribs[1:]:
            acc = fn(acc, v)
        return acc

    def allreduce(self, rank: int, value: Any, op="sum") -> Any:
        fn = _resolve_op(op)
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        clocks = [c for c, _ in contribs]
        cost = self._rt.cost.tree_collective(self._nranks, payload_nbytes(value))
        self._sync_clocks(rank, cost, clocks)
        acc = contribs[0][1]
        for _, v in contribs[1:]:
            acc = fn(acc, v)
        return acc

    def gather(self, rank: int, value: Any, root: int = 0) -> list | None:
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        clocks = [c for c, _ in contribs]
        cost = self._rt.cost.gather(self._nranks, payload_nbytes(value))
        self._sync_clocks(rank, cost, clocks)
        if rank != root:
            return None
        return [v for _, v in contribs]

    def allgather(self, rank: int, value: Any) -> list:
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        clocks = [c for c, _ in contribs]
        cost = self._rt.cost.gather(self._nranks, payload_nbytes(value))
        self._sync_clocks(rank, cost, clocks)
        return [v for _, v in contribs]

    def scatter(self, rank: int, values: Sequence | None, root: int = 0) -> Any:
        if rank == root:
            if values is None or len(values) != self._nranks:
                raise ValueError(
                    "scatter root must supply exactly one value per rank"
                )
        contribs = self._exchange(rank, (self._entry_clock(rank), values))
        clocks = [c for c, _ in contribs]
        root_values = contribs[root][1]
        cost = self._rt.cost.tree_collective(
            self._nranks, payload_nbytes(root_values[rank])
        )
        self._sync_clocks(rank, cost, clocks)
        return root_values[rank]

    def alltoall(self, rank: int, values: Sequence) -> list:
        """Personalized exchange: ``values[j]`` is sent to rank ``j``."""
        if len(values) != self._nranks:
            raise ValueError("alltoall requires exactly one value per peer")
        contribs = self._exchange(rank, (self._entry_clock(rank), list(values)))
        clocks = [c for c, _ in contribs]
        per_pair = max(payload_nbytes(v) for v in values) if values else 0
        cost = self._rt.cost.alltoall(self._nranks, per_pair)
        self._sync_clocks(rank, cost, clocks)
        return [contribs[src][1][rank] for src in range(self._nranks)]

    def scan(self, rank: int, value: Any, op="sum") -> Any:
        """Inclusive prefix reduction over rank order."""
        fn = _resolve_op(op)
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        clocks = [c for c, _ in contribs]
        cost = self._rt.cost.tree_collective(self._nranks, payload_nbytes(value))
        self._sync_clocks(rank, cost, clocks)
        acc = contribs[0][1]
        for _, v in contribs[1 : rank + 1]:
            acc = fn(acc, v)
        return acc

    def exscan(self, rank: int, value: Any, op="sum", initial: Any = 0) -> Any:
        """Exclusive prefix reduction; rank 0 receives ``initial``."""
        fn = _resolve_op(op)
        contribs = self._exchange(rank, (self._entry_clock(rank), value))
        clocks = [c for c, _ in contribs]
        cost = self._rt.cost.tree_collective(self._nranks, payload_nbytes(value))
        self._sync_clocks(rank, cost, clocks)
        acc = initial
        for _, v in contribs[:rank]:
            acc = fn(acc, v)
        return acc
