"""Network cost model for the simulated RMA substrate.

The paper evaluates GDI-RMA on Piz Daint (Cray XC40/XC50 servers, Aries
interconnect, Dragonfly topology).  We cannot run on that machine, so every
one-sided operation and collective in :mod:`repro.rma` charges *simulated*
time into per-rank clocks according to a LogGP-style model:

    T(one-sided, remote) = alpha + nbytes * beta
    T(one-sided, local)  = alpha_local + nbytes * beta_local
    T(remote atomic)     = alpha + gamma
    T(collective)        = ceil(log2 P) * (alpha + nbytes * beta) (tree-based)
    T(alltoall)          = (P - 1) * (alpha + nbytes * beta)

``alpha`` is the per-message network latency, ``beta`` the inverse
bandwidth, and ``gamma`` the extra cost of a network-accelerated atomic.
The constants for the XC40/XC50 profiles are calibrated to published Aries
measurements (~1-1.5 us one-sided latency, ~10 GB/s injection per node);
XC50 nodes have fewer cores sharing the NIC, hence more network bandwidth
per core, which is the paper's explanation (Section 6.4) for XC50
outperforming XC40 on read-mostly workloads.

The *shape* of every scaling experiment in the paper (who wins, slopes,
crossovers) is derived from operation counts and message sizes, which this
model preserves; absolute magnitudes are approximations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "MachineProfile",
    "XC40",
    "XC50",
    "UNIFORM",
    "ZERO_COST",
    "CostModel",
    "log2ceil",
]


def log2ceil(p: int) -> int:
    """Number of rounds of a binomial tree over ``p`` participants."""
    if p <= 1:
        return 0
    return int(math.ceil(math.log2(p)))


@dataclass(frozen=True)
class MachineProfile:
    """Hardware constants of one class of compute server.

    Attributes
    ----------
    name:
        Human-readable profile name (appears in benchmark reports).
    alpha:
        One-sided remote message latency in seconds.
    beta:
        Inverse network bandwidth in seconds per byte (per core share).
    gamma:
        Additional latency of a remote atomic (CAS/FAA) in seconds.
    alpha_local:
        Latency of an operation that stays within the local rank.
    beta_local:
        Inverse local memory bandwidth in seconds per byte.
    cores_per_server:
        Cores per physical server; used to convert rank counts into the
        server counts the paper reports.
    mem_per_server:
        Bytes of DRAM per server (64 GB on both Piz Daint partitions).
    o_target:
        Target-side NIC service time per incoming message in seconds.
        Models receiver congestion: a rank bombarded by remote accesses
        cannot proceed past a synchronization point until its NIC has
        served them, which is what makes load imbalance hurt.
    o_atomic:
        Per-additional-operation overhead of a *batched* atomic in
        seconds.  Aries pipelines back-to-back AMOs to the same NIC, so
        a doorbell batch of ``n`` same-target atomics costs one full
        ``alpha + gamma`` round plus ``(n - 1) * o_atomic`` issue slots
        instead of ``n`` full rounds.
    congestion_feedback:
        Fraction of the receiver NIC's queueing delay charged back to
        the *issuing* rank's clock (0.0 = legacy open-loop accounting,
        where receiver busy time only moves ``effective_clock``).  With
        feedback enabled the target NIC is a FIFO queue: an op arriving
        while the NIC's busy horizon is ahead of the issuer's clock
        waits its turn, and ``congestion_feedback`` of that wait lands
        on the issuer.  This is what makes a *hot shard* a genuinely
        shared bottleneck — every rank hammering the same NIC slows
        down — and what a rebalance that spreads the shard's vertices
        measurably repairs.  Opt-in so calibrated baselines keep their
        legacy numbers.
    """

    name: str
    alpha: float
    beta: float
    gamma: float
    alpha_local: float
    beta_local: float
    cores_per_server: int
    mem_per_server: int
    o_target: float = 0.4e-6
    o_atomic: float = 0.05e-6
    congestion_feedback: float = 0.0

    def servers(self, nranks: int) -> float:
        """Server count equivalent to ``nranks`` simulated ranks."""
        return nranks / self.cores_per_server


#: Cray XC40 partition of Piz Daint: 2x18-core Xeon E5-2695v4, 64 GB.
XC40 = MachineProfile(
    name="XC40",
    alpha=1.4e-6,
    beta=1.0 / 10e9 * 36,  # one Aries NIC shared by 36 cores
    gamma=0.7e-6,
    alpha_local=0.08e-6,
    beta_local=1.0 / 50e9,
    cores_per_server=36,
    mem_per_server=64 * 2**30,
)

#: Cray XC50 partition: single 12-core Xeon E5-2690 (HT), 64 GB.  Fewer
#: cores share the NIC, so the per-core beta is smaller (more bandwidth
#: per core), matching the paper's Section 6.4 observation.
XC50 = MachineProfile(
    name="XC50",
    alpha=1.3e-6,
    beta=1.0 / 10e9 * 12,
    gamma=0.7e-6,
    alpha_local=0.08e-6,
    beta_local=1.0 / 50e9,
    cores_per_server=12,
    mem_per_server=64 * 2**30,
)

#: Architecture-neutral profile used by unit tests and examples.
UNIFORM = MachineProfile(
    name="UNIFORM",
    alpha=1.0e-6,
    beta=1.0e-9,
    gamma=0.5e-6,
    alpha_local=0.05e-6,
    beta_local=0.02e-9,
    cores_per_server=16,
    mem_per_server=64 * 2**30,
)

#: Profile where everything is free; useful for pure-correctness tests.
ZERO_COST = MachineProfile(
    name="ZERO_COST",
    alpha=0.0,
    beta=0.0,
    gamma=0.0,
    alpha_local=0.0,
    beta_local=0.0,
    cores_per_server=1,
    mem_per_server=64 * 2**30,
    o_target=0.0,
    o_atomic=0.0,
)


@dataclass
class CostModel:
    """Charges simulated time for RMA operations under a machine profile.

    A single :class:`CostModel` is shared by all ranks of a runtime; the
    per-rank clocks themselves live in :class:`repro.rma.runtime.RmaRuntime`
    so that the model stays stateless and reusable.
    """

    profile: MachineProfile = field(default_factory=lambda: UNIFORM)

    # -- one-sided -------------------------------------------------------
    def onesided(self, origin: int, target: int, nbytes: int) -> float:
        """Cost of a put/get of ``nbytes`` from ``origin`` to ``target``."""
        p = self.profile
        if origin == target:
            return p.alpha_local + nbytes * p.beta_local
        return p.alpha + nbytes * p.beta

    def batched_onesided(
        self, origin: int, per_target: dict[int, int]
    ) -> float:
        """Cost of a batched put/get: one message per distinct target.

        ``per_target`` maps each target rank to the summed payload of the
        coalesced operations headed there; each distinct target costs one
        latency term plus the summed bandwidth term, so a batch of ``n``
        same-target operations pays ``alpha + total_bytes * beta`` instead
        of ``n * alpha + total_bytes * beta``.
        """
        return sum(
            self.onesided(origin, t, n) for t, n in per_target.items()
        )

    def atomic(self, origin: int, target: int) -> float:
        """Cost of an 8-byte remote atomic (CAS/FAA/APUT/AGET)."""
        p = self.profile
        if origin == target:
            return p.alpha_local
        return p.alpha + p.gamma

    def batched_atomic(self, origin: int, per_target: dict[int, int]) -> float:
        """Cost of a batched atomic: one full round per distinct target.

        ``per_target`` maps each target rank to the number of atomics
        headed there; the first atomic per target pays the full
        :meth:`atomic` latency and each additional one only the pipelined
        ``o_atomic`` issue slot.
        """
        p = self.profile
        total = 0.0
        for t, n in per_target.items():
            if n <= 0:
                continue
            total += self.atomic(origin, t) + (n - 1) * p.o_atomic
        return total

    def target_service(self, nbytes: int) -> float:
        """Receiver-side NIC busy time caused by one incoming message."""
        p = self.profile
        return p.o_target + nbytes * p.beta

    def flush(self, origin: int, target: int | None) -> float:
        """Cost of completing pending operations towards ``target``.

        Non-blocking operations overlap; a flush pays one round-trip.
        """
        p = self.profile
        if target is not None and origin == target:
            return p.alpha_local
        return p.alpha

    # -- collectives -----------------------------------------------------
    def tree_collective(self, nranks: int, nbytes: int) -> float:
        """Cost of a binomial-tree collective (bcast/reduce/allreduce)."""
        p = self.profile
        return log2ceil(nranks) * (p.alpha + nbytes * p.beta)

    def barrier(self, nranks: int) -> float:
        """Cost of a dissemination barrier."""
        return log2ceil(nranks) * self.profile.alpha

    def gather(self, nranks: int, nbytes_per_rank: int) -> float:
        """Cost of gather/allgather of ``nbytes_per_rank`` contributions.

        Modeled as a binomial tree whose payload doubles each round, i.e.
        latency log P plus bandwidth term for the full P * nbytes payload.
        """
        p = self.profile
        total = nranks * nbytes_per_rank
        return log2ceil(nranks) * p.alpha + total * p.beta

    def alltoall(self, nranks: int, nbytes_per_pair: int) -> float:
        """Cost of a personalized all-to-all exchange."""
        p = self.profile
        if nranks <= 1:
            return p.alpha_local
        return (nranks - 1) * (p.alpha + nbytes_per_pair * p.beta)

    # -- compute ---------------------------------------------------------
    def compute(self, nops: int, flops_per_second: float = 2.0e9) -> float:
        """Cost of ``nops`` local scalar operations.

        Workload drivers use this to charge for local work (e.g. filtering
        property values) so that compute-bound phases are represented in
        simulated time, not just communication.
        """
        return nops / flops_per_second
