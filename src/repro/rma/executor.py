"""SPMD executors for the simulated RMA substrate.

GDI-RMA code is written SPMD-style: one function, executed by every rank,
receiving its :class:`~repro.rma.runtime.RankContext`.  Two executors run
such programs:

* :class:`ThreadExecutor` — one OS thread per rank.  Concurrency (and thus
  contention on the lock-free structures) is real; this is the default for
  integration tests and benchmarks.
* :class:`InterleavingScheduler` + :func:`run_spmd` with a ``seed`` — rank
  threads additionally rendezvous with a seeded scheduler before every
  one-sided operation, which serializes operations in a pseudo-random but
  reproducible-in-distribution order.  Property-based tests use many seeds
  to explore interleavings of the lock-free DHT, block allocator, and
  reader-writer locks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .costmodel import UNIFORM, MachineProfile
from .faults import FaultInjector, FaultPlan
from .runtime import RankContext, RmaRuntime

__all__ = [
    "SpmdError",
    "ThreadExecutor",
    "InterleavingScheduler",
    "run_spmd",
]


class SpmdError(RuntimeError):
    """Wraps the first exception raised by any rank of an SPMD program."""

    def __init__(self, rank: int, original: BaseException) -> None:
        super().__init__(f"rank {rank} failed: {original!r}")
        self.rank = rank
        self.original = original


def _mix(seed: int, round_no: int, rank: int) -> int:
    """Cheap deterministic integer hash used for scheduler picks."""
    x = (seed * 0x9E3779B97F4A7C15 + round_no * 0xBF58476D1CE4E5B9 + rank + 1) & (
        (1 << 64) - 1
    )
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & ((1 << 64) - 1)
    x ^= x >> 29
    return x


class InterleavingScheduler:
    """Serializes one-sided operations in a seeded pseudo-random order.

    Each rank calls :meth:`step` (via the runtime hook) before every
    one-sided operation and blocks until picked.  A grant round closes
    only once every *runnable* registered rank is waiting — ranks parked
    in a collective (or dead, or done with their SPMD body) are marked
    blocked and excluded — and the pick among them is a deterministic
    hash of ``(seed, round)``.  Gating rounds on the full runnable set
    is what makes the interleaving a pure function of the seed: picking
    among whichever ranks happened to have arrived would let the OS
    scheduler (a late-woken thread misses a round) leak real-time
    nondeterminism into the serialization order.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._cond = threading.Condition()
        self._waiting: set[int] = set()
        self._active: set[int] = set()
        self._blocked: set[int] = set()
        self._round = 0
        self._stopped = False

    def register(self, rank: int) -> None:
        """Declare ``rank``'s thread live: rounds now wait for it."""
        with self._cond:
            self._active.add(rank)
            self._cond.notify_all()

    def deregister(self, rank: int) -> None:
        """Declare ``rank`` finished (or dead): stop waiting for it."""
        with self._cond:
            self._active.discard(rank)
            self._blocked.discard(rank)
            self._waiting.discard(rank)
            self._cond.notify_all()

    def block(self, rank: int) -> None:
        """Mark ``rank`` parked in a real wait (collective rendezvous):
        it cannot issue ops, so rounds must not stall on it."""
        with self._cond:
            self._blocked.add(rank)
            self._cond.notify_all()

    def unblock(self, rank: int) -> None:
        with self._cond:
            self._blocked.discard(rank)
            self._cond.notify_all()

    def step(self, rank: int) -> None:
        with self._cond:
            if self._stopped:
                return
            self._waiting.add(rank)
            self._cond.notify_all()
            while True:
                if self._stopped:
                    self._waiting.discard(rank)
                    return
                # unregistered callers (no executor) fall back to picking
                # among present waiters; under an executor every runnable
                # rank must have arrived before the round closes
                runnable = (self._active - self._blocked) or self._waiting
                if self._waiting >= runnable:
                    pick = min(
                        self._waiting,
                        key=lambda r: _mix(self.seed, self._round, r),
                    )
                    if pick == rank:
                        self._waiting.discard(rank)
                        self._round += 1
                        self._cond.notify_all()
                        return
                self._cond.wait(timeout=0.05)

    def stop(self) -> None:
        """Release all waiters unconditionally (used on failure)."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()

    def restart(self) -> None:
        """Re-arm a scheduler stopped by a failed phase (no waiters exist
        between phases, so flipping the flag back is safe)."""
        with self._cond:
            self._stopped = False


@dataclass
class ThreadExecutor:
    """Runs an SPMD function with one OS thread per rank.

    If any rank raises, the collective engine is poisoned (so peers blocked
    in a collective abort instead of hanging) and the first failure is
    re-raised as :class:`SpmdError`.
    """

    daemon: bool = True

    def run(
        self,
        runtime: RmaRuntime,
        fn: Callable[..., Any],
        args_per_rank: Sequence[tuple] | None = None,
    ) -> list:
        nranks = runtime.nranks
        results: list[Any] = [None] * nranks
        failures: list[tuple[int, BaseException]] = []
        failures_lock = threading.Lock()

        def body(rank: int) -> None:
            ctx = runtime.context(rank)
            args = args_per_rank[rank] if args_per_rank is not None else ()
            try:
                results[rank] = fn(ctx, *args)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                from .faults import RmaRankDead

                if (
                    isinstance(exc, RmaRankDead)
                    and getattr(runtime, "membership", None) is not None
                    and runtime.faults is not None
                    and rank in runtime.faults.dead
                ):
                    # degraded mode: the planned crash victim dies silently;
                    # survivors keep serving through the failover instead of
                    # the whole SPMD run aborting
                    results[rank] = None
                    return
                with failures_lock:
                    failures.append((rank, exc))
                runtime.collectives.poison(exc)
                if runtime.scheduler is not None:
                    runtime.scheduler.stop()
            finally:
                if runtime.scheduler is not None:
                    runtime.scheduler.deregister(rank)

        threads = [
            threading.Thread(target=body, args=(r,), daemon=self.daemon)
            for r in range(nranks)
        ]
        # every rank joins the runnable set before any thread starts:
        # registration racing the first grant rounds would let thread
        # start order (an OS artifact) decide which ranks those rounds
        # wait for, leaking real time into the serialization order
        if runtime.scheduler is not None:
            for r in range(nranks):
                runtime.scheduler.register(r)
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if failures:
            failures.sort(key=lambda f: f[0])
            rank, exc = failures[0]
            raise SpmdError(rank, exc) from exc
        return results


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *,
    profile: MachineProfile = UNIFORM,
    log_ops: bool = False,
    seed: int | None = None,
    args_per_rank: Sequence[tuple] | None = None,
    runtime: RmaRuntime | None = None,
    faults: "FaultPlan | FaultInjector | None" = None,
) -> tuple[RmaRuntime, list]:
    """Run ``fn(ctx, *args)`` on every rank and return (runtime, results).

    Parameters
    ----------
    seed:
        If given, operations are serialized by an
        :class:`InterleavingScheduler` with this seed (interleaving
        exploration mode); if ``None``, ranks run freely.
    runtime:
        Reuse an existing runtime (e.g. to run several phases against the
        same windows); otherwise a fresh one is created.
    faults:
        A :class:`~repro.rma.faults.FaultPlan` (wrapped into a fresh
        injector) or a ready :class:`~repro.rma.faults.FaultInjector`
        attached to the runtime before the program starts.  With a reused
        runtime this arms (or replaces) its injector for this phase.
    """
    if isinstance(faults, FaultPlan):
        faults = FaultInjector(faults)
    if runtime is None:
        scheduler = InterleavingScheduler(seed) if seed is not None else None
        runtime = RmaRuntime(
            nranks,
            profile=profile,
            log_ops=log_ops,
            scheduler=scheduler,
            faults=faults,
        )
    else:
        if runtime.nranks != nranks:
            raise ValueError(
                f"runtime has {runtime.nranks} ranks, requested {nranks}"
            )
        if faults is not None:
            runtime.faults = faults
        # a previous phase may have ended in an abort: clear the stale
        # poison / half-entered generations and revive the scheduler so
        # the next phase starts from a clean rendezvous
        runtime.collectives.reset_for_new_run()
        if runtime.scheduler is not None:
            runtime.scheduler.restart()
    results = ThreadExecutor().run(runtime, fn, args_per_rank)
    return runtime, results
