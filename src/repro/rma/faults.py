"""Deterministic fault injection for the simulated RMA substrate.

The paper's reliability story (failed transactions in Figure 4, the
transaction-critical error class of Section 3.3, checkpoint-based
durability) is only meaningful if the substrate can actually fail.  This
module provides a seeded fault model that the runtime consults before
every one-sided operation:

* **transient operation failures** — with probability ``transient_rate``
  an attempt fails; the substrate absorbs up to ``op_retry_limit``
  bounded retries per operation, charging each wasted attempt's modeled
  cost plus a seeded exponential backoff through the cost model.
  Exhausting the budget raises :class:`RmaTransientError` (retryable at
  the transaction layer).
* **stragglers** — designated ranks run slower: every operation they
  issue is charged ``factor`` times its modeled cost.
* **rank crashes** — once the global operation counter reaches
  ``crash_at_op``, ``crash_rank`` is marked dead; any subsequent
  operation issued by it raises :class:`RmaRankDead`.  What an op
  *targeting* the dead rank sees depends on whether the runtime carries
  a :class:`~repro.rma.membership.ClusterMembership`: without one the
  crash is fatal (:class:`RmaRankDead`; the run aborts and recovery must
  rebuild from a checkpoint plus the commit-log tail, see
  :mod:`repro.gda.recovery`).  With one, the dead rank's shard fails
  over to its backup, the membership epoch bumps, and stale operations
  are **fenced** with :class:`RmaStaleEpoch` — a *retryable* error the
  existing transaction retry machinery absorbs after the GDA layer heals
  the shard from its block mirrors (:mod:`repro.gda.replication`).
* **payload corruption** — once the counter reaches ``corrupt_at_op``,
  bits are flipped in ``corrupt_rank``'s segment of a window, proving
  that the per-block CRC32 checksums of the GDA layer detect silent
  corruption on read and on failover promotion.

Everything is a pure function of ``(FaultPlan.seed, global op number,
origin rank)``, so a storm replays identically under the
:class:`~repro.rma.executor.InterleavingScheduler`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping

from .membership import SHARD_NORMAL
from .runtime import RmaError

__all__ = [
    "RmaTransientError",
    "RmaStaleEpoch",
    "RmaRankDead",
    "FaultPlan",
    "FaultInjector",
    "backoff_delay",
]


class RmaTransientError(RmaError):
    """A one-sided operation failed after exhausting substrate retries.

    Retryable: the operation had no effect, so the caller (typically the
    transaction retry helper) may back off and restart its unit of work.
    """


class RmaStaleEpoch(RmaTransientError):
    """The operation carried a stale membership epoch and was fenced.

    Raised when an op targets a shard that failed over or was rehosted
    since the issuer last adopted an epoch, or a shard whose repair is
    still in flight.  Subclasses :class:`RmaTransientError` so the
    existing transaction retry machinery absorbs it: the aborted
    transaction heals the shard (``GdaDatabase.heal``), adopts the new
    epoch, and restarts against the reconfigured view.
    """


class RmaRankDead(RmaError):
    """A rank has crashed; the operation touched it and cannot complete.

    Fatal: no retry can succeed.  The surviving state must be recovered
    into a fresh runtime from the last checkpoint plus the commit log.
    (With a membership view and a live backup, ops targeting the dead
    rank's *shard* get the retryable :class:`RmaStaleEpoch` instead;
    RmaRankDead remains for the dead issuer itself and for the
    no-backup fallback.)
    """


def _mix64(seed: int, a: int, b: int) -> int:
    """Deterministic 64-bit hash (same construction as the scheduler's)."""
    x = (seed * 0x9E3779B97F4A7C15 + a * 0xBF58476D1CE4E5B9 + b + 1) & (
        (1 << 64) - 1
    )
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & ((1 << 64) - 1)
    x ^= x >> 29
    return x


def _uniform(seed: int, a: int, b: int) -> float:
    """Deterministic uniform draw in [0, 1) keyed by ``(seed, a, b)``."""
    return _mix64(seed, a, b) / float(1 << 64)


def backoff_delay(
    base: float,
    attempt: int,
    *,
    cap: float = 1e-3,
    factor: float = 2.0,
    seed: int = 0,
    token: int = 0,
) -> float:
    """Seeded exponential backoff with jitter, in simulated seconds.

    The ceiling doubles (``factor``) per attempt up to ``cap``; the
    returned delay is jittered into ``[ceiling/2, ceiling]`` by a
    deterministic hash of ``(seed, attempt, token)``, so concurrent
    contenders desynchronize without any shared random state.
    """
    if base <= 0.0:
        return 0.0
    ceiling = min(cap, base * (factor ** attempt))
    return ceiling * (0.5 + 0.5 * _uniform(seed, attempt, token))


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of one fault storm.

    Attributes
    ----------
    seed:
        Root of all fault/backoff randomness; same plan + same schedule
        seed = same storm.
    transient_rate:
        Per-attempt probability that a one-sided operation fails
        transiently (0 disables).  Draws are keyed on the issuing rank's
        own op index so the schedule replays identically regardless of
        cross-rank thread interleaving.
    op_retry_limit:
        Substrate-level retry budget per operation before the failure
        escalates to :class:`RmaTransientError`.
    op_backoff_base / op_backoff_cap:
        Exponential backoff window between substrate retries (seconds).
    stragglers:
        ``rank -> slowdown factor`` (>= 1.0); every op issued by a
        straggler is charged ``factor`` times its modeled cost.
    crash_rank / crash_at_op:
        When the global operation counter reaches ``crash_at_op``,
        ``crash_rank`` dies; ``None`` disables crashing.
    corrupt_rank / corrupt_at_op:
        When the counter reaches ``corrupt_at_op``, a byte in
        ``corrupt_rank``'s segment of a window is bit-flipped (once);
        ``None`` disables corruption.
    corrupt_window:
        Substring selecting which window to corrupt (e.g. ``".blocks.data"``);
        ``None`` picks the largest allocated window.
    corrupt_offset:
        Byte offset inside the chosen segment to flip; ``None`` draws a
        seeded offset.
    """

    seed: int = 0
    transient_rate: float = 0.0
    op_retry_limit: int = 12
    op_backoff_base: float = 1e-6
    op_backoff_cap: float = 100e-6
    stragglers: Mapping[int, float] = field(default_factory=dict)
    crash_rank: int | None = None
    crash_at_op: int | None = None
    corrupt_rank: int | None = None
    corrupt_at_op: int | None = None
    corrupt_window: str | None = None
    corrupt_offset: int | None = None


class FaultInjector:
    """Runtime hook evaluating a :class:`FaultPlan` before each operation.

    One injector serves all ranks of a runtime; the operation counter and
    the dead set are shared (a crash is a global event).  Pass it to
    :class:`~repro.rma.runtime.RmaRuntime` (or ``run_spmd(faults=...)``).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.dead: set[int] = set()
        self._n_ops = 0
        self._origin_ops: dict[int, int] = {}
        self._corrupt_done = False
        self._lock = threading.Lock()

    @property
    def op_count(self) -> int:
        """Global number of one-sided operations observed so far."""
        return self._n_ops

    # -- internals ---------------------------------------------------------
    def _tick(self, rt) -> int:
        """Advance the global op counter and trigger scheduled faults."""
        p = self.plan
        corrupt_now = False
        with self._lock:
            self._n_ops += 1
            n = self._n_ops
            if (
                p.crash_rank is not None
                and p.crash_at_op is not None
                and n >= p.crash_at_op
            ):
                self.dead.add(p.crash_rank)
            if (
                p.corrupt_rank is not None
                and p.corrupt_at_op is not None
                and n >= p.corrupt_at_op
                and not self._corrupt_done
            ):
                self._corrupt_done = True
                corrupt_now = True
        if corrupt_now:
            self._apply_corruption(rt)
        return n

    def _apply_corruption(self, rt) -> None:
        """Flip one byte in the victim rank's segment of a window."""
        p = self.plan
        with rt._windows_lock:
            wins = [w for w in rt._windows.values() if not w.freed]
        if p.corrupt_window is not None:
            wins = [w for w in wins if p.corrupt_window in w.name]
        if not wins:
            return  # nothing allocated yet; corruption is lost, not deferred
        win = max(wins, key=lambda w: w.size)
        if p.corrupt_offset is not None:
            off = p.corrupt_offset
        else:
            off = 1 + _mix64(p.seed, 0xC0FFEE, p.corrupt_rank) % max(
                1, win.size - 1
            )
        raw = win.read(p.corrupt_rank, off, 1)
        win.write(p.corrupt_rank, off, bytes([raw[0] ^ 0x5A]))
        rt.trace.record_corruption(p.corrupt_rank)

    def check_alive(self, *ranks: int) -> None:
        """Raise :class:`RmaRankDead` if any of ``ranks`` has crashed."""
        for r in ranks:
            if r in self.dead:
                raise RmaRankDead(f"rank {r} crashed")

    def _inject(self, rt, n: int, origin: int, opcost: float) -> None:
        p = self.plan
        factor = p.stragglers.get(origin)
        if factor is not None and factor > 1.0:
            extra = (factor - 1.0) * opcost
            rt._charge(origin, extra)
            rt.trace.record_straggler(origin, extra)
        if p.transient_rate <= 0.0:
            return
        # transient draws are keyed on the *issuer's own* op index, not the
        # global counter: the global numbering depends on how the OS
        # interleaves rank threads (even under the interleaving scheduler
        # the grant order follows the arrival pattern), which would make
        # the fault schedule — and thus terminal outcomes — irreproducible
        # across same-seed replays.  Crash/corruption stay on the global
        # counter: they model cluster-time events, not per-link noise.
        with self._lock:
            k = self._origin_ops.get(origin, 0) + 1
            self._origin_ops[origin] = k
        for attempt in range(p.op_retry_limit):
            if _uniform(p.seed, k, (origin << 16) ^ attempt) >= p.transient_rate:
                return  # this attempt goes through
            rt.trace.record_fault(origin)
            if attempt + 1 >= p.op_retry_limit:
                raise RmaTransientError(
                    f"op {k} from rank {origin} failed "
                    f"{p.op_retry_limit} attempts"
                )
            delay = backoff_delay(
                p.op_backoff_base,
                attempt,
                cap=p.op_backoff_cap,
                seed=p.seed,
                token=(k << 8) ^ origin,
            )
            # the wasted attempt costs the op itself plus the backoff
            rt._charge(origin, opcost + delay)
            rt.trace.record_retry(origin)
            rt.trace.record_backoff(origin, delay)

    # -- membership-aware liveness / fencing -------------------------------
    def _guard(self, rt, origin: int, targets) -> None:
        """Liveness + epoch-fence check for one op issue.

        Without a membership view this is the legacy behavior: any dead
        participant is fatal (:class:`RmaRankDead`).  With one, the
        issuer's epoch is checked against each target shard's
        reconfiguration history and a crash of the *target* becomes a
        fenced, retryable :class:`RmaStaleEpoch` whenever a live backup
        can take over.
        """
        if origin in self.dead:
            raise RmaRankDead(f"rank {origin} crashed")
        mem = getattr(rt, "membership", None)
        if mem is None:
            self.check_alive(*targets)
            return
        # every op heartbeats its issuer; stale heartbeats raise suspicion,
        # confirmed against the injector's ground truth (no false positives)
        mem.heartbeat(origin, rt.clocks[origin])
        for s in mem.suspects(rt.clocks[origin]):
            if s in self.dead:
                mem.note_failure(s)
        for t in targets:
            if t == origin:
                continue
            state = mem.shard_state(t)
            if state == SHARD_NORMAL:
                if t in self.dead:
                    # first op-failure evidence: initiate the failover
                    if mem.note_failure(t):
                        rt.trace.record_fence(origin)
                        raise RmaStaleEpoch(
                            f"shard {t} failed over to rank "
                            f"{mem.host_of(t)} (epoch {mem.epoch}); "
                            f"heal and retry"
                        )
                    raise RmaRankDead(
                        f"rank {t} crashed and its backup "
                        f"{mem.backup_of(t)} is dead too"
                    )
                continue
            if not mem.serviceable(t, origin):
                rt.trace.record_fence(origin)
                raise RmaStaleEpoch(
                    f"shard {t} is {state} (epoch {mem.epoch}); "
                    f"heal and retry"
                )
            if not mem.check_epoch(origin, t):
                rt.trace.record_fence(origin)
                raise RmaStaleEpoch(
                    f"op carried stale epoch for rehosted shard {t}; "
                    f"adopted epoch {mem.epoch}, retry"
                )

    def pending_fate(self, rt, origin: int, target: int) -> str | None:
        """Fate of a pending non-blocking op at completion time.

        Returns ``None`` (completes normally), ``"stale"`` (shard
        reconfigured under the op: fenced, retryable), or ``"dead"``
        (unreachable, fatal).
        """
        if target not in self.dead:
            return None
        mem = getattr(rt, "membership", None)
        if mem is None:
            return "dead"
        state = mem.shard_state(target)
        if state == SHARD_NORMAL:
            return "stale" if mem.note_failure(target) else "dead"
        if mem.serviceable(target, origin) and mem.check_epoch(origin, target):
            return None
        return "stale"

    # -- runtime hooks ------------------------------------------------------
    def before_op(self, rt, origin: int, target: int, opcost: float) -> None:
        """Called by the runtime before a scalar one-sided op or flush."""
        n = self._tick(rt)
        self._guard(rt, origin, (target,))
        self._inject(rt, n, origin, opcost)

    def before_batch(self, rt, origin: int, targets, opcost: float) -> None:
        """Called before a batched op: one doorbell, one fault draw."""
        n = self._tick(rt)
        self._guard(rt, origin, targets)
        self._inject(rt, n, origin, opcost)
