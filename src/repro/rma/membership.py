"""Cluster membership, failure detection, and epoch fencing.

The paper's RDMA substrate is explicitly non-fault-tolerant (Section 8
names fault-tolerance extensions as future work); production systems in
its related-work set (A1, Microsoft) survive machine failures with
replicated in-memory state and online failover.  This module supplies the
substrate half of that story:

* a **seeded heartbeat/timeout failure detector** — every one-sided
  operation doubles as a heartbeat of its issuing rank (there is no
  out-of-band messaging in an RMA-only machine), and a rank whose last
  heartbeat is older than ``heartbeat_timeout`` on an observer's
  simulated clock becomes *suspected*.  Suspicion alone never fences: in
  the simulation a suspect is only confirmed dead against the fault
  injector's ground truth, which models a perfect failure detector after
  the timeout (no false positives, matching the single-crash failure
  model documented in DESIGN.md).  Operation failure against a crashed
  rank is the second, immediate evidence channel.
* a **membership view with monotonically increasing epochs** — the view
  maps logical *shards* (the rank-indexed slices of every window) to the
  physical host currently serving them.  A crash moves the dead rank's
  shard to its deterministic backup ``(shard + 1) % nranks`` and bumps
  the epoch; finishing the repair bumps it again.  Every issuing rank
  carries an adopted epoch; an operation whose issuer epoch predates a
  shard's rehosting is **fenced** (the injector raises
  :class:`~repro.rma.faults.RmaStaleEpoch`) exactly once, after which the
  issuer adopts the current epoch and retries against the new view.

The membership object is pure shared state plus transitions; *raising*
fencing errors is the :class:`~repro.rma.faults.FaultInjector`'s job, and
*rebuilding* a failed shard's bytes is the GDA layer's
(:mod:`repro.gda.replication`).  Shard lifecycle::

    NORMAL --crash detected--> FAILED --begin_repair--> REPAIRING
           --finish_repair--> REHOSTED        (serviceable again)

While a shard is FAILED or REPAIRING, only the repairing rank may touch
it; everyone else is fenced and must call the database's ``heal`` hook
(single-flight) before retrying.
"""

from __future__ import annotations

import threading

__all__ = [
    "SHARD_NORMAL",
    "SHARD_FAILED",
    "SHARD_REPAIRING",
    "SHARD_REHOSTED",
    "ClusterMembership",
]

SHARD_NORMAL = "normal"
SHARD_FAILED = "failed"
SHARD_REPAIRING = "repairing"
SHARD_REHOSTED = "rehosted"


class ClusterMembership:
    """Shared membership view of one simulated machine.

    Parameters
    ----------
    nranks:
        Number of ranks (= number of logical shards).
    heartbeat_timeout:
        Simulated seconds without a heartbeat after which a rank becomes
        suspected (and, confirmed against the injector's ground truth,
        declared failed even if nobody ever targets its shard).
    """

    def __init__(self, nranks: int, heartbeat_timeout: float = 1e-3) -> None:
        self.nranks = nranks
        self.heartbeat_timeout = heartbeat_timeout
        self.epoch = 0
        self.live: set[int] = set(range(nranks))
        #: shard -> physical host rank (identity until a failover)
        self.host = list(range(nranks))
        self.state = [SHARD_NORMAL] * nranks
        #: epoch at which each shard was last rehosted (0 = never)
        self.rehosted_at = [0] * nranks
        #: shard -> rank currently repairing it (None outside repair)
        self.repairer: list[int | None] = [None] * nranks
        #: per-issuer adopted epoch ("the epoch every op carries")
        self.issuer_epoch = [0] * nranks
        self.last_heartbeat = [0.0] * nranks
        self._lock = threading.Lock()

    # -- failure detector --------------------------------------------------
    def heartbeat(self, rank: int, clock: float) -> None:
        """Record rank activity; every one-sided op is a heartbeat."""
        if clock > self.last_heartbeat[rank]:
            self.last_heartbeat[rank] = clock

    def suspects(self, now: float) -> list[int]:
        """Live ranks whose last heartbeat is older than the timeout."""
        return [
            r
            for r in range(self.nranks)
            if r in self.live
            and now - self.last_heartbeat[r] > self.heartbeat_timeout
        ]

    # -- view queries ------------------------------------------------------
    def backup_of(self, shard: int) -> int:
        """Deterministic backup host of ``shard``: ``(shard + 1) % P``."""
        return (shard + 1) % self.nranks

    def host_of(self, shard: int) -> int:
        """Physical rank currently serving ``shard`` (translation table)."""
        return self.host[shard]

    def shards_of(self, rank: int) -> list[int]:
        """All shards ``rank`` currently hosts (own shard + adopted wards)."""
        return [s for s in range(self.nranks) if self.host[s] == rank]

    def shard_state(self, shard: int) -> str:
        return self.state[shard]

    def serviceable(self, shard: int, origin: int) -> bool:
        """May ``origin`` issue operations against ``shard`` right now?"""
        st = self.state[shard]
        if st in (SHARD_NORMAL, SHARD_REHOSTED):
            return True
        if st == SHARD_REPAIRING:
            return self.repairer[shard] == origin
        return False  # FAILED: nobody until a repair begins

    # -- view transitions --------------------------------------------------
    def note_failure(self, rank: int) -> bool:
        """Declare ``rank`` dead and fail its shard over to the backup.

        Returns True if a failover was initiated (now or previously) —
        i.e. the shard has a live backup and degraded service is
        possible; False if the backup is dead too (concurrent
        primary+backup crash: availability is lost and callers fall back
        to checkpoint recovery).  Idempotent; the epoch bumps only on the
        first declaration.
        """
        with self._lock:
            if self.state[rank] != SHARD_NORMAL:
                return True  # already failed over / repaired
            backup = self.backup_of(rank)
            if backup not in self.live or backup == rank:
                return False
            self.live.discard(rank)
            self.state[rank] = SHARD_FAILED
            self.host[rank] = backup
            self.epoch += 1
            return True

    def begin_repair(self, shard: int, rank: int) -> bool:
        """Claim the repair of ``shard`` for ``rank`` (single-flight).

        Returns True if this rank won the claim (it must now rebuild the
        shard and call :meth:`finish_repair`); False if the shard is not
        in FAILED state (already repaired, being repaired, or healthy).
        """
        with self._lock:
            if self.state[shard] != SHARD_FAILED:
                return False
            self.state[shard] = SHARD_REPAIRING
            self.repairer[shard] = rank
            return True

    def abort_repair(self, shard: int) -> None:
        """Return a failed repair's shard to FAILED so another attempt (or
        a fallback to checkpoint recovery) can proceed."""
        with self._lock:
            if self.state[shard] == SHARD_REPAIRING:
                self.state[shard] = SHARD_FAILED
                self.repairer[shard] = None

    def finish_repair(self, shard: int) -> None:
        """Publish the rebuilt shard: serviceable again, epoch bumped."""
        with self._lock:
            self.state[shard] = SHARD_REHOSTED
            self.repairer[shard] = None
            self.epoch += 1
            self.rehosted_at[shard] = self.epoch

    # -- planned reconfiguration (rebalance) -------------------------------
    def bump_epoch(self, fence_all: bool = True) -> int:
        """Advance the epoch for a *planned* reconfiguration (rebalance).

        Unlike a crash failover, a rebalance changes where *vertices*
        live without moving any shard to a different host, so the
        translation table is untouched.  With ``fence_all`` every shard's
        ``rehosted_at`` is stamped with the new epoch: each issuer's next
        operation against *any* shard fails the :meth:`check_epoch` fence
        exactly once (:class:`~repro.rma.faults.RmaStaleEpoch`), forcing
        it through the database's heal hook where it drops stale DPTR
        caches and adopts the new placement.  Returns the new epoch.
        """
        with self._lock:
            self.epoch += 1
            if fence_all:
                for s in range(self.nranks):
                    self.rehosted_at[s] = self.epoch
            return self.epoch

    # -- epoch fencing -----------------------------------------------------
    def check_epoch(self, origin: int, shard: int) -> bool:
        """Fence check: is ``origin``'s adopted epoch current for ``shard``?

        Returns True if the op may proceed.  Returns False exactly once
        per (issuer, reconfiguration): the issuer's epoch is stale, it
        adopts the current epoch as a side effect, and the caller raises
        :class:`~repro.rma.faults.RmaStaleEpoch` so the retry machinery
        re-issues against the new view.
        """
        with self._lock:
            if self.issuer_epoch[origin] >= self.rehosted_at[shard]:
                return True
            self.issuer_epoch[origin] = self.epoch
            return False

    def adopt_epoch(self, origin: int) -> None:
        """Explicitly adopt the current epoch (after a heal)."""
        with self._lock:
            self.issuer_epoch[origin] = self.epoch

    def failed_shards(self) -> list[int]:
        """Shards awaiting repair (FAILED state)."""
        return [s for s in range(self.nranks) if self.state[s] == SHARD_FAILED]

    def degraded(self) -> bool:
        """True once any failover has happened (epoch ever bumped)."""
        return self.epoch > 0

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<ClusterMembership epoch={self.epoch} live={sorted(self.live)} "
            f"states={self.state}>"
        )
