"""The simulated RMA runtime: ranks, windows, and one-sided operations.

This is the repository's stand-in for foMPI / MPI-3 RMA on Cray hardware
(paper Section 5.1).  It provides the exact operation vocabulary the paper
builds GDI-RMA from::

    GET(local, remote)         PUT(local, remote)
    CAS(new, compare, result, remote)
    APUT / AGET                flush

Every operation charges simulated time into per-rank clocks via
:class:`repro.rma.costmodel.CostModel` and increments the counters in
:class:`repro.rma.trace.TraceRecorder`.  Remote atomics serialize through a
per-target lock, mimicking the NIC atomic unit of RDMA hardware, so the
lock-free algorithms layered on top (block allocator, DHT, RW locks)
experience genuine concurrency semantics when driven by threads.

Non-blocking operations: the paper issues non-blocking puts/gets and
completes them with flushes, overlapping communication with computation.
Two flavours exist here:

* blocking ``put``/``get`` — data moves and the full one-sided cost is
  charged at issue;
* non-blocking ``iput``/``iget`` — data moves immediately (remote memory
  is consistent right away, as it would be by completion time on real
  hardware), but only a small CPU injection overhead is charged at issue;
  the *network* cost is charged at the completing ``flush``, where
  messages to the same window overlap: one latency term plus the summed
  bandwidth term, instead of one latency per message.  ``Request.wait()``
  completes a single operation.

Batched operations: ``get_batch``/``put_batch`` and their non-blocking
siblings ``iget_batch``/``iput_batch`` take a whole vector of
``(target, offset, ...)`` elements at once and coalesce them doorbell
style, one network message per distinct ``(window, target)`` pair: the
cost model charges one latency term plus the summed bandwidth per
distinct target, the receiver NIC serves one coalesced message per
target, and a non-blocking batch pays a single injection overhead for
the whole vector.  This is the GDA-level analogue of the paper's
issue-many-then-flush pattern (Section 5.1) and the primary lever for
remote-traversal latency.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from .collectives import CollectiveEngine
from .costmodel import UNIFORM, CostModel, MachineProfile
from .trace import TraceRecorder
from .window import Window, WindowError

__all__ = ["RmaRuntime", "RankContext", "Request", "BatchRequest", "RmaError"]

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class RmaError(RuntimeError):
    """Raised on invalid use of the RMA runtime."""


def _wrap_i64(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's complement."""
    value &= (1 << 64) - 1
    if value > _I64_MAX:
        value -= 1 << 64
    return value


class _PendingOp:
    """A non-blocking operation awaiting its completing flush."""

    __slots__ = ("win_name", "target", "nbytes", "done", "failed")

    def __init__(self, win_name: str, target: int, nbytes: int) -> None:
        self.win_name = win_name
        self.target = target
        self.nbytes = nbytes
        self.done = False
        self.failed = False


class Request:
    """Handle of a non-blocking operation (MPI_Request analogue).

    ``wait()`` completes this single operation (charging its network cost
    unless a window flush already covered it); for ``iget`` the fetched
    bytes are available via :meth:`result` after completion.
    """

    __slots__ = ("_ctx", "_op", "_data")

    def __init__(self, ctx: "RankContext", op: _PendingOp, data: bytes | None) -> None:
        self._ctx = ctx
        self._op = op
        self._data = data

    @property
    def completed(self) -> bool:
        return self._op.done

    @property
    def failed(self) -> bool:
        return self._op.failed

    def wait(self) -> None:
        """Complete the operation; idempotent once completed or faulted."""
        if not self._op.done and not self._op.failed:
            self._ctx._complete_pending(
                lambda op: op is self._op
            )

    def result(self) -> bytes:
        """The data of an ``iget`` (only valid after completion)."""
        if self._op.failed:
            raise RmaError(
                "request faulted (target rank crashed); no data available"
            )
        if not self._op.done:
            raise RmaError("request not yet completed; call wait()/flush()")
        if self._data is None:
            raise RmaError("request carries no data (it was a put)")
        return self._data


class BatchRequest:
    """Handle of a batched non-blocking operation (one doorbell, many ops).

    A batch coalesces its elements into one pending message per distinct
    ``(window, target)`` pair; ``wait()`` completes whichever of those
    messages a window flush has not already covered.  For ``iget_batch``
    the fetched payloads are available via :meth:`results` (in the order
    the elements were issued) after completion.
    """

    __slots__ = ("_ctx", "_ops", "_data")

    def __init__(
        self,
        ctx: "RankContext",
        ops: list[_PendingOp],
        data: list[bytes] | None,
    ) -> None:
        self._ctx = ctx
        self._ops = ops
        self._data = data

    @property
    def completed(self) -> bool:
        return all(op.done for op in self._ops)

    @property
    def failed(self) -> bool:
        return any(op.failed for op in self._ops)

    def wait(self) -> None:
        """Complete the batch; idempotent once completed or faulted."""
        undone = {
            id(op) for op in self._ops if not op.done and not op.failed
        }
        if undone:
            self._ctx._complete_pending(lambda op: id(op) in undone)

    def results(self) -> list[bytes]:
        """The payloads of an ``iget_batch`` (only valid after completion)."""
        if self.failed:
            raise RmaError(
                "batch faulted (target rank crashed); no data available"
            )
        if not self.completed:
            raise RmaError("batch not yet completed; call wait()/flush()")
        if self._data is None:
            raise RmaError("batch carries no data (it was a put batch)")
        return list(self._data)

    def result(self, i: int) -> bytes:
        return self.results()[i]


class RmaRuntime:
    """Shared state of one simulated distributed-memory machine.

    Parameters
    ----------
    nranks:
        Number of simulated processes.
    profile:
        :class:`~repro.rma.costmodel.MachineProfile` for the cost model.
    log_ops:
        Record every individual operation in the trace (slow; tests only).
    scheduler:
        Optional interleaving scheduler hook (see
        :mod:`repro.rma.executor`); ``scheduler.step(rank)`` is invoked
        before every one-sided operation.
    faults:
        Optional :class:`~repro.rma.faults.FaultInjector` consulted
        before every one-sided operation (transient failures,
        stragglers, rank crashes).  May also be attached/armed later by
        assigning the ``faults`` attribute between SPMD phases.
    """

    def __init__(
        self,
        nranks: int,
        profile: MachineProfile = UNIFORM,
        log_ops: bool = False,
        scheduler=None,
        faults=None,
    ) -> None:
        if nranks <= 0:
            raise RmaError("nranks must be positive")
        self.nranks = nranks
        self.cost = CostModel(profile)
        self.trace = TraceRecorder(nranks, log_ops=log_ops)
        self.clocks = [0.0] * nranks
        self.scheduler = scheduler
        self.faults = faults
        #: optional :class:`~repro.rma.membership.ClusterMembership`; when
        #: set, rank crashes fail over to backups (epoch fencing) instead
        #: of being fatal, and collectives complete over the live view.
        self.membership = None
        self._windows: dict[str, Window] = {}
        self._windows_lock = threading.Lock()
        self._pending: list[list[_PendingOp]] = [[] for _ in range(nranks)]
        #: target-side NIC busy time accumulated by incoming remote ops
        self.service = [0.0] * nranks
        self._atomic_locks = [threading.Lock() for _ in range(nranks)]
        self.collectives = CollectiveEngine(self)

    # -- windows -----------------------------------------------------------
    def allocate_window(self, name: str, size: int) -> Window:
        """Allocate a window (driver-side; ranks use ``ctx.win_allocate``)."""
        with self._windows_lock:
            if name in self._windows and not self._windows[name].freed:
                raise RmaError(f"window {name!r} already allocated")
            win = Window(name, self.nranks, size)
            self._windows[name] = win
            return win

    def free_window(self, win: Window) -> None:
        with self._windows_lock:
            win.free()
            self._windows.pop(win.name, None)

    def window(self, name: str) -> Window:
        try:
            return self._windows[name]
        except KeyError:
            raise RmaError(f"no window named {name!r}") from None

    # -- rank contexts -------------------------------------------------------
    def context(self, rank: int) -> "RankContext":
        if not 0 <= rank < self.nranks:
            raise RmaError(f"bad rank {rank}")
        return RankContext(self, rank)

    def contexts(self) -> list["RankContext"]:
        return [self.context(r) for r in range(self.nranks)]

    # -- internals shared by contexts ----------------------------------------
    def _step(self, rank: int) -> None:
        if self.scheduler is not None:
            self.scheduler.step(rank)

    def _charge(self, rank: int, seconds: float) -> None:
        self.clocks[rank] += seconds

    def _serve(self, origin: int, target: int, nbytes: int) -> None:
        """Account receiver-side NIC service of one incoming message.

        With ``profile.congestion_feedback > 0`` the target NIC acts as
        a FIFO queue relative to the issuer's clock: the message starts
        at ``max(busy horizon, issuer now)`` and the issuer is charged
        ``congestion_feedback``x its queueing delay, so hot receivers
        slow every rank that touches them (the hot-shard signal).
        """
        if origin == target:
            return
        svc = self.cost.target_service(nbytes)
        fb = self.cost.profile.congestion_feedback
        wait = 0.0
        with self._atomic_locks[target]:
            if fb > 0.0:
                now = self.clocks[origin]
                start = self.service[target] if self.service[target] > now else now
                self.service[target] = start + svc
                wait = start + svc - now
            else:
                self.service[target] += svc
        if wait > 0.0:
            self._charge(origin, fb * wait)
            self.trace.record_congestion(origin, fb * wait)

    def effective_clock(self, rank: int) -> float:
        """A rank's progress bound: own clock or its NIC's busy horizon."""
        return max(self.clocks[rank], self.service[rank])

    def max_clock(self) -> float:
        """Makespan: the latest simulated per-rank clock."""
        return max(self.clocks)

    def reset_clocks(self) -> None:
        self.clocks = [0.0] * self.nranks


class RankContext:
    """Per-rank facade over the runtime: the SPMD programmer's API.

    One :class:`RankContext` corresponds to one MPI process.  All GDI-RMA
    code receives a context and never touches the runtime directly, which
    is what keeps the engine portable across executors.
    """

    __slots__ = ("rt", "rank", "nranks")

    def __init__(self, runtime: RmaRuntime, rank: int) -> None:
        self.rt = runtime
        self.rank = rank
        self.nranks = runtime.nranks

    # -- one-sided data movement ----------------------------------------------
    def put(self, win: Window, target: int, offset: int, data: bytes) -> None:
        """Non-blocking one-sided write of ``data`` into ``target``'s segment."""
        rt = self.rt
        rt._step(self.rank)
        if rt.faults is not None:
            rt.faults.before_op(
                rt, self.rank, target,
                rt.cost.onesided(self.rank, target, len(data)),
            )
        win.write(target, offset, data)
        rt.trace.record("put", self.rank, target, win.name, offset, len(data))
        rt._charge(self.rank, rt.cost.onesided(self.rank, target, len(data)))
        rt._serve(self.rank, target, len(data))

    def get(self, win: Window, target: int, offset: int, nbytes: int) -> bytes:
        """One-sided read of ``nbytes`` from ``target``'s segment."""
        rt = self.rt
        rt._step(self.rank)
        if rt.faults is not None:
            rt.faults.before_op(
                rt, self.rank, target,
                rt.cost.onesided(self.rank, target, nbytes),
            )
        data = win.read(target, offset, nbytes)
        rt.trace.record("get", self.rank, target, win.name, offset, nbytes)
        rt._charge(self.rank, rt.cost.onesided(self.rank, target, nbytes))
        rt._serve(self.rank, target, nbytes)
        return data

    # -- remote atomics (64-bit granules) ---------------------------------------
    def cas(
        self, win: Window, target: int, offset: int, compare: int, new: int
    ) -> int:
        """Remote compare-and-swap; returns the value found at the target."""
        rt = self.rt
        rt._step(self.rank)
        if rt.faults is not None:
            rt.faults.before_op(
                rt, self.rank, target, rt.cost.atomic(self.rank, target)
            )
        compare = _wrap_i64(compare)
        with rt._atomic_locks[target]:
            old = win.read_i64(target, offset)
            if old == compare:
                win.write_i64(target, offset, _wrap_i64(new))
        rt.trace.record("atomic", self.rank, target, win.name, offset, 8)
        rt._charge(self.rank, rt.cost.atomic(self.rank, target))
        rt._serve(self.rank, target, 8)
        return old

    def faa(self, win: Window, target: int, offset: int, delta: int) -> int:
        """Remote fetch-and-add; returns the pre-add value."""
        rt = self.rt
        rt._step(self.rank)
        if rt.faults is not None:
            rt.faults.before_op(
                rt, self.rank, target, rt.cost.atomic(self.rank, target)
            )
        with rt._atomic_locks[target]:
            old = win.read_i64(target, offset)
            win.write_i64(target, offset, _wrap_i64(old + delta))
        rt.trace.record("atomic", self.rank, target, win.name, offset, 8)
        rt._charge(self.rank, rt.cost.atomic(self.rank, target))
        rt._serve(self.rank, target, 8)
        return old

    def aget(self, win: Window, target: int, offset: int) -> int:
        """Atomic 64-bit read (AGET in the paper's notation)."""
        rt = self.rt
        rt._step(self.rank)
        if rt.faults is not None:
            rt.faults.before_op(
                rt, self.rank, target, rt.cost.atomic(self.rank, target)
            )
        with rt._atomic_locks[target]:
            value = win.read_i64(target, offset)
        rt.trace.record("atomic", self.rank, target, win.name, offset, 8)
        rt._charge(self.rank, rt.cost.atomic(self.rank, target))
        rt._serve(self.rank, target, 8)
        return value

    def aput(self, win: Window, target: int, offset: int, value: int) -> None:
        """Atomic 64-bit write (APUT)."""
        rt = self.rt
        rt._step(self.rank)
        if rt.faults is not None:
            rt.faults.before_op(
                rt, self.rank, target, rt.cost.atomic(self.rank, target)
            )
        with rt._atomic_locks[target]:
            win.write_i64(target, offset, _wrap_i64(value))
        rt.trace.record("atomic", self.rank, target, win.name, offset, 8)
        rt._charge(self.rank, rt.cost.atomic(self.rank, target))
        rt._serve(self.rank, target, 8)

    # -- batched remote atomics ---------------------------------------------------
    def faa_batch(
        self, win: Window, ops: Sequence[tuple[int, int, int]]
    ) -> list[int]:
        """Batched fetch-and-add: ``ops`` is ``(target, offset, delta)``.

        Returns the pre-add values in issue order.  Same-target atomics
        pipeline behind one full-latency round (doorbell batching), so a
        vector of ``n`` AMOs to one NIC costs ``atomic + (n-1) *
        o_atomic`` instead of ``n * atomic``.  Each element is still an
        individually-atomic 64-bit operation; the batch as a whole is
        *not* atomic.
        """
        if not ops:
            return []
        rt = self.rt
        rt._step(self.rank)
        per_t: dict[int, int] = {}
        for target, _, _ in ops:
            per_t[target] = per_t.get(target, 0) + 1
        if rt.faults is not None:
            rt.faults.before_batch(
                rt, self.rank,
                {t: 8 * n for t, n in per_t.items()},
                rt.cost.batched_atomic(self.rank, per_t),
            )
        out: list[int] = []
        for target, offset, delta in ops:
            with rt._atomic_locks[target]:
                old = win.read_i64(target, offset)
                win.write_i64(target, offset, _wrap_i64(old + delta))
            rt.trace.record("atomic", self.rank, target, win.name, offset, 8)
            out.append(old)
        for target, n in per_t.items():
            rt._serve(self.rank, target, 8 * n)
        rt._charge(self.rank, rt.cost.batched_atomic(self.rank, per_t))
        rt.trace.record_batch(self.rank, len(ops), len(per_t), 8 * len(ops))
        return out

    def cas_batch(
        self, win: Window, ops: Sequence[tuple[int, int, int, int]]
    ) -> list[int]:
        """Batched compare-and-swap: ``(target, offset, compare, new)``.

        Returns the found values in issue order; element ``i`` swapped
        iff ``result[i] == compare[i]``.  Cost model matches
        :meth:`faa_batch`.
        """
        if not ops:
            return []
        rt = self.rt
        rt._step(self.rank)
        per_t: dict[int, int] = {}
        for target, _, _, _ in ops:
            per_t[target] = per_t.get(target, 0) + 1
        if rt.faults is not None:
            rt.faults.before_batch(
                rt, self.rank,
                {t: 8 * n for t, n in per_t.items()},
                rt.cost.batched_atomic(self.rank, per_t),
            )
        out: list[int] = []
        for target, offset, compare, new in ops:
            compare = _wrap_i64(compare)
            with rt._atomic_locks[target]:
                old = win.read_i64(target, offset)
                if old == compare:
                    win.write_i64(target, offset, _wrap_i64(new))
            rt.trace.record("atomic", self.rank, target, win.name, offset, 8)
            out.append(old)
        for target, n in per_t.items():
            rt._serve(self.rank, target, 8 * n)
        rt._charge(self.rank, rt.cost.batched_atomic(self.rank, per_t))
        rt.trace.record_batch(self.rank, len(ops), len(per_t), 8 * len(ops))
        return out

    # -- batched data movement ----------------------------------------------------
    def put_batch(
        self, win: Window, ops: Sequence[tuple[int, int, bytes]]
    ) -> None:
        """Blocking batched put: ``ops`` is ``(target, offset, data)`` triples.

        All writes land immediately; the network charge is one latency
        term plus the summed bandwidth per *distinct* target (doorbell
        coalescing), and the receiver NIC serves one coalesced message
        per target instead of one per element.
        """
        if not ops:
            return
        rt = self.rt
        rt._step(self.rank)
        if rt.faults is not None:
            per_t: dict[int, int] = {}
            for target, _, data in ops:
                per_t[target] = per_t.get(target, 0) + len(data)
            rt.faults.before_batch(
                rt, self.rank, per_t,
                rt.cost.batched_onesided(self.rank, per_t),
            )
        per_target: dict[int, int] = {}
        for target, offset, data in ops:
            win.write(target, offset, data)
            rt.trace.record(
                "put", self.rank, target, win.name, offset, len(data)
            )
            per_target[target] = per_target.get(target, 0) + len(data)
        for target, nbytes in per_target.items():
            rt._serve(self.rank, target, nbytes)
        rt._charge(self.rank, rt.cost.batched_onesided(self.rank, per_target))
        rt.trace.record_batch(
            self.rank, len(ops), len(per_target), sum(per_target.values())
        )

    def get_batch(
        self, win: Window, ops: Sequence[tuple[int, int, int]]
    ) -> list[bytes]:
        """Blocking batched get: ``ops`` is ``(target, offset, nbytes)``.

        Returns the payloads in issue order.  Cost: one latency term plus
        the summed bandwidth per distinct target.
        """
        if not ops:
            return []
        rt = self.rt
        rt._step(self.rank)
        if rt.faults is not None:
            per_t: dict[int, int] = {}
            for target, _, nbytes in ops:
                per_t[target] = per_t.get(target, 0) + nbytes
            rt.faults.before_batch(
                rt, self.rank, per_t,
                rt.cost.batched_onesided(self.rank, per_t),
            )
        out: list[bytes] = []
        per_target: dict[int, int] = {}
        for target, offset, nbytes in ops:
            out.append(win.read(target, offset, nbytes))
            rt.trace.record(
                "get", self.rank, target, win.name, offset, nbytes
            )
            per_target[target] = per_target.get(target, 0) + nbytes
        for target, nbytes in per_target.items():
            rt._serve(self.rank, target, nbytes)
        rt._charge(self.rank, rt.cost.batched_onesided(self.rank, per_target))
        rt.trace.record_batch(
            self.rank, len(ops), len(per_target), sum(per_target.values())
        )
        return out

    def iput_batch(
        self, win: Window, ops: Sequence[tuple[int, int, bytes]]
    ) -> "BatchRequest":
        """Non-blocking batched put: one injection overhead for the vector.

        Elements coalesce into one pending message per distinct target;
        the network is paid at the completing flush/wait.
        """
        if not ops:
            return BatchRequest(self, [], None)
        rt = self.rt
        rt._step(self.rank)
        if rt.faults is not None:
            per_t: dict[int, int] = {}
            for target, _, data in ops:
                per_t[target] = per_t.get(target, 0) + len(data)
            rt.faults.before_batch(
                rt, self.rank, per_t, rt.cost.profile.alpha_local
            )
        per_target: dict[int, int] = {}
        for target, offset, data in ops:
            win.write(target, offset, data)
            rt.trace.record(
                "put", self.rank, target, win.name, offset, len(data)
            )
            per_target[target] = per_target.get(target, 0) + len(data)
        rt._charge(self.rank, rt.cost.profile.alpha_local)  # one doorbell
        pend: list[_PendingOp] = []
        for target, nbytes in per_target.items():
            rt._serve(self.rank, target, nbytes)
            op = _PendingOp(win.name, target, nbytes)
            rt._pending[self.rank].append(op)
            pend.append(op)
        rt.trace.record_batch(
            self.rank, len(ops), len(per_target), sum(per_target.values())
        )
        return BatchRequest(self, pend, None)

    def iget_batch(
        self, win: Window, ops: Sequence[tuple[int, int, int]]
    ) -> "BatchRequest":
        """Non-blocking batched get: data valid after wait()/flush.

        One injection overhead for the whole vector; one pending message
        per distinct target carries the summed payload.
        """
        if not ops:
            return BatchRequest(self, [], [])
        rt = self.rt
        rt._step(self.rank)
        if rt.faults is not None:
            per_t: dict[int, int] = {}
            for target, _, nbytes in ops:
                per_t[target] = per_t.get(target, 0) + nbytes
            rt.faults.before_batch(
                rt, self.rank, per_t, rt.cost.profile.alpha_local
            )
        out: list[bytes] = []
        per_target: dict[int, int] = {}
        for target, offset, nbytes in ops:
            out.append(win.read(target, offset, nbytes))
            rt.trace.record(
                "get", self.rank, target, win.name, offset, nbytes
            )
            per_target[target] = per_target.get(target, 0) + nbytes
        rt._charge(self.rank, rt.cost.profile.alpha_local)  # one doorbell
        pend: list[_PendingOp] = []
        for target, nbytes in per_target.items():
            rt._serve(self.rank, target, nbytes)
            op = _PendingOp(win.name, target, nbytes)
            rt._pending[self.rank].append(op)
            pend.append(op)
        rt.trace.record_batch(
            self.rank, len(ops), len(per_target), sum(per_target.values())
        )
        return BatchRequest(self, pend, out)

    # -- non-blocking data movement ---------------------------------------------
    def iput(self, win: Window, target: int, offset: int, data: bytes) -> "Request":
        """Non-blocking put: issue now, pay the network at the flush."""
        rt = self.rt
        rt._step(self.rank)
        if rt.faults is not None:
            rt.faults.before_op(
                rt, self.rank, target, rt.cost.profile.alpha_local
            )
        win.write(target, offset, data)
        rt.trace.record("put", self.rank, target, win.name, offset, len(data))
        rt._charge(self.rank, rt.cost.profile.alpha_local)  # injection CPU
        rt._serve(self.rank, target, len(data))
        op = _PendingOp(win.name, target, len(data))
        rt._pending[self.rank].append(op)
        return Request(self, op, None)

    def iget(self, win: Window, target: int, offset: int, nbytes: int) -> "Request":
        """Non-blocking get: data is valid after wait()/flush."""
        rt = self.rt
        rt._step(self.rank)
        if rt.faults is not None:
            rt.faults.before_op(
                rt, self.rank, target, rt.cost.profile.alpha_local
            )
        data = win.read(target, offset, nbytes)
        rt.trace.record("get", self.rank, target, win.name, offset, nbytes)
        rt._charge(self.rank, rt.cost.profile.alpha_local)
        rt._serve(self.rank, target, nbytes)
        op = _PendingOp(win.name, target, nbytes)
        rt._pending[self.rank].append(op)
        return Request(self, op, data)

    def _complete_pending(self, selector) -> None:
        """Charge and retire the pending ops matched by ``selector``.

        Overlap model: the selected messages are in flight concurrently,
        so completion costs one latency term (remote if any message is
        remote) plus the summed bandwidth terms.
        """
        rt = self.rt
        pending = rt._pending[self.rank]
        chosen = [op for op in pending if selector(op)]
        if not chosen:
            return
        inj = rt.faults
        if inj is not None and inj.dead:
            inj.check_alive(self.rank)
            fates = {
                id(op): inj.pending_fate(rt, self.rank, op.target)
                for op in chosen
            }
            bad = [op for op in chosen if fates[id(op)] is not None]
            if bad:
                # the message can never complete: fail the ops so waiters
                # see a clear error instead of stale data
                for op in bad:
                    op.failed = True
                rt._pending[self.rank] = [
                    op for op in pending if not (op.done or op.failed)
                ]
                from .faults import RmaRankDead, RmaStaleEpoch

                if any(fates[id(op)] == "dead" for op in bad):
                    raise RmaRankDead(
                        f"pending operation towards crashed rank "
                        f"{bad[0].target} cannot complete"
                    )
                raise RmaStaleEpoch(
                    f"pending operation towards reconfigured shard "
                    f"{bad[0].target} was fenced; heal and retry"
                )
        p = rt.cost.profile
        any_remote = any(op.target != self.rank for op in chosen)
        cost = p.alpha if any_remote else p.alpha_local
        for op in chosen:
            beta = p.beta if op.target != self.rank else p.beta_local
            cost += op.nbytes * beta
            op.done = True
        rt._charge(self.rank, cost)
        rt._pending[self.rank] = [op for op in pending if not op.done]

    def flush(self, win: Window, target: int | None = None) -> None:
        """Complete pending non-blocking operations towards ``target``.

        With ``target=None`` flushes the whole window.  A flush with no
        pending operations still costs one round trip (the hardware
        fence), as in MPI RMA.
        """
        rt = self.rt
        if rt.faults is not None:
            rt.faults.before_op(
                rt,
                self.rank,
                target if target is not None else self.rank,
                rt.cost.flush(self.rank, target),
            )
        rt.trace.record(
            "flush", self.rank, target if target is not None else self.rank,
            win.name, 0, 0,
        )
        pending = rt._pending[self.rank]
        has_pending = any(
            op.win_name == win.name
            and (target is None or op.target == target)
            for op in pending
        )
        if has_pending:
            self._complete_pending(
                lambda op: op.win_name == win.name
                and (target is None or op.target == target)
            )
        else:
            rt._charge(self.rank, rt.cost.flush(self.rank, target))

    # -- local compute cost -------------------------------------------------------
    def compute(self, nops: int) -> None:
        """Charge ``nops`` local scalar operations to this rank's clock."""
        self.rt._charge(self.rank, self.rt.cost.compute(nops))

    def charge(self, seconds: float) -> None:
        """Charge raw simulated seconds (used by workload drivers)."""
        self.rt._charge(self.rank, seconds)

    @property
    def clock(self) -> float:
        """This rank's simulated time in seconds."""
        return self.rt.clocks[self.rank]

    # -- collectives -----------------------------------------------------------------
    def barrier(self) -> None:
        self.rt.collectives.barrier(self.rank)

    def bcast(self, value: Any = None, root: int = 0) -> Any:
        return self.rt.collectives.bcast(self.rank, value, root)

    def reduce(self, value: Any, op="sum", root: int = 0) -> Any:
        return self.rt.collectives.reduce(self.rank, value, op, root)

    def allreduce(self, value: Any, op="sum") -> Any:
        return self.rt.collectives.allreduce(self.rank, value, op)

    def gather(self, value: Any, root: int = 0) -> list | None:
        return self.rt.collectives.gather(self.rank, value, root)

    def allgather(self, value: Any) -> list:
        return self.rt.collectives.allgather(self.rank, value)

    def scatter(self, values: Sequence | None = None, root: int = 0) -> Any:
        return self.rt.collectives.scatter(self.rank, values, root)

    def alltoall(self, values: Sequence) -> list:
        return self.rt.collectives.alltoall(self.rank, values)

    def scan(self, value: Any, op="sum") -> Any:
        return self.rt.collectives.scan(self.rank, value, op)

    def exscan(self, value: Any, op="sum", initial: Any = 0) -> Any:
        return self.rt.collectives.exscan(self.rank, value, op, initial)

    # -- collective window management -----------------------------------------------
    def win_allocate(self, name: str, size: int) -> Window:
        """Collectively allocate a window of ``size`` bytes per rank."""
        if self.rank == 0:
            win = self.rt.allocate_window(name, size)
        else:
            win = None
        win = self.bcast(win, root=0)
        self.charge(self.rt.cost.barrier(self.nranks))
        return win

    def win_free(self, win: Window) -> None:
        """Collectively free a window."""
        self.barrier()
        if self.rank == 0:
            self.rt.free_window(win)
        self.barrier()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<RankContext rank={self.rank}/{self.nranks}>"
