"""Operation counters and optional op-level tracing for the RMA substrate.

Every one-sided operation and collective increments per-rank counters.
Benchmarks use these to report message/byte volumes alongside simulated
time, and the work-depth tests in :mod:`repro.gda.workdepth` assert that
GDA routines issue the operation counts the paper's analysis promises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RankCounters", "TraceRecorder"]


@dataclass
class RankCounters:
    """Communication counters of a single rank."""

    puts: int = 0
    gets: int = 0
    atomics: int = 0
    flushes: int = 0
    collectives: int = 0
    bytes_put: int = 0
    bytes_got: int = 0
    remote_ops: int = 0
    local_ops: int = 0
    #: batched-operation accounting (doorbell coalescing): ``batches`` counts
    #: batch calls, ``batched_ops`` the logical operations inside them,
    #: ``msgs_saved`` how many network messages coalescing removed
    #: (ops minus distinct targets), ``bytes_batched`` the payload moved
    #: through batch calls.
    batches: int = 0
    batched_ops: int = 0
    msgs_saved: int = 0
    bytes_batched: int = 0
    #: fault-injection accounting (:mod:`repro.rma.faults`):
    #: ``faults_injected`` counts injected transient failures,
    #: ``op_retries`` the substrate-level retries that absorbed them,
    #: ``backoff_time`` the total seeded backoff charged (seconds — also
    #: fed by lock and transaction backoff), ``straggler_time`` the extra
    #: slowdown charged to straggler ranks (seconds).
    faults_injected: int = 0
    op_retries: int = 0
    backoff_time: float = 0.0
    straggler_time: float = 0.0
    #: availability-layer accounting (:mod:`repro.rma.membership`,
    #: :mod:`repro.gda.replication`): ``mirrored_blocks``/``mirrored_bytes``
    #: count primary-backup block replication traffic, ``epoch_fences`` the
    #: stale-epoch rejections, ``corruptions_injected``/``corruptions_detected``
    #: the bit-flip faults and their CRC32 detections, ``shard_repairs`` the
    #: failover reconstructions this rank performed.
    mirrored_blocks: int = 0
    mirrored_bytes: int = 0
    epoch_fences: int = 0
    corruptions_injected: int = 0
    corruptions_detected: int = 0
    shard_repairs: int = 0
    #: query-layer accounting (:mod:`repro.query.engine`): a cache *hit*
    #: re-executes a previously built physical plan, skipping parse+plan;
    #: ``replans`` counts mid-query adaptive re-planning events (observed
    #: cardinality diverged >=4x from the planner's estimate);
    #: ``plan_cache_evictions`` counts LRU evictions from the bounded
    #: plan cache.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    replans: int = 0
    plan_cache_evictions: int = 0
    #: serving-layer accounting (:mod:`repro.serve`): admission outcomes
    #: of the front-end — ``requests_admitted`` entered the bounded queue,
    #: ``requests_shed`` were rejected queue-full, ``requests_throttled``
    #: hit a per-tenant token bucket, ``requests_shed_analytics`` were
    #: shed by the open circuit breaker; ``deadline_misses`` counts
    #: requests that expired before or during execution,
    #: ``breaker_trips`` the closed->open transitions observed, and
    #: ``queue_depth_peak`` the deepest admission-queue occupancy seen
    #: (a max gauge, not a sum).
    requests_admitted: int = 0
    requests_shed: int = 0
    requests_throttled: int = 0
    requests_shed_analytics: int = 0
    deadline_misses: int = 0
    breaker_trips: int = 0
    queue_depth_peak: int = 0
    #: traffic-layer accounting (:mod:`repro.traffic`): ``congestion_time``
    #: is the receiver-queueing delay charged to this rank's one-sided ops
    #: when the profile enables ``congestion_feedback`` (a hot target NIC
    #: backs up its issuers); ``lock_conflicts`` counts failed lock
    #: acquisition attempts (the word was held), the per-origin side of the
    #: per-shard conflict accounting the hot-shard detector consumes.
    congestion_time: float = 0.0
    lock_conflicts: int = 0
    #: MVCC accounting (:mod:`repro.mvcc`): ``snapshot_reads`` counts
    #: holder reads served to snapshot transactions without touching lock
    #: words, ``versions_installed`` the pre-image chain entries written
    #: at commit write-back, ``versions_reclaimed`` the superseded
    #: entries freed by the watermark GC, and ``gc_watermark`` the
    #: highest reclamation floor the GC has advanced to (a max gauge,
    #: not a sum).
    snapshot_reads: int = 0
    versions_installed: int = 0
    versions_reclaimed: int = 0
    gc_watermark: int = 0

    @property
    def total_ops(self) -> int:
        return self.puts + self.gets + self.atomics

    def snapshot(self) -> dict[str, int]:
        return {
            "puts": self.puts,
            "gets": self.gets,
            "atomics": self.atomics,
            "flushes": self.flushes,
            "collectives": self.collectives,
            "bytes_put": self.bytes_put,
            "bytes_got": self.bytes_got,
            "remote_ops": self.remote_ops,
            "local_ops": self.local_ops,
            "batches": self.batches,
            "batched_ops": self.batched_ops,
            "msgs_saved": self.msgs_saved,
            "bytes_batched": self.bytes_batched,
            "faults_injected": self.faults_injected,
            "op_retries": self.op_retries,
            "backoff_time": self.backoff_time,
            "straggler_time": self.straggler_time,
            "mirrored_blocks": self.mirrored_blocks,
            "mirrored_bytes": self.mirrored_bytes,
            "epoch_fences": self.epoch_fences,
            "corruptions_injected": self.corruptions_injected,
            "corruptions_detected": self.corruptions_detected,
            "shard_repairs": self.shard_repairs,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "replans": self.replans,
            "plan_cache_evictions": self.plan_cache_evictions,
            "requests_admitted": self.requests_admitted,
            "requests_shed": self.requests_shed,
            "requests_throttled": self.requests_throttled,
            "requests_shed_analytics": self.requests_shed_analytics,
            "deadline_misses": self.deadline_misses,
            "breaker_trips": self.breaker_trips,
            "queue_depth_peak": self.queue_depth_peak,
            "congestion_time": self.congestion_time,
            "lock_conflicts": self.lock_conflicts,
            "snapshot_reads": self.snapshot_reads,
            "versions_installed": self.versions_installed,
            "versions_reclaimed": self.versions_reclaimed,
            "gc_watermark": self.gc_watermark,
        }

    def diff(self, earlier: dict[str, int]) -> dict[str, int]:
        """Counter deltas relative to an earlier :meth:`snapshot`."""
        now = self.snapshot()
        return {k: now[k] - earlier.get(k, 0) for k in now}


@dataclass
class TraceRecorder:
    """Aggregates counters for all ranks; optionally logs each operation.

    Keeping a full op log is expensive, so it is off by default and only
    enabled by tests that assert on exact operation sequences.
    """

    nranks: int
    log_ops: bool = False
    counters: list[RankCounters] = field(default_factory=list)
    ops: list[tuple] = field(default_factory=list)
    #: per-*target-shard* access accounting (hot-shard detection): how
    #: many one-sided operations, payload bytes, and lock-acquisition
    #: conflicts landed on each shard, regardless of which rank issued
    #: them.  Kept outside :class:`RankCounters` because they are indexed
    #: by target, not origin.
    shard_ops: list[int] = field(default_factory=list)
    shard_bytes: list[int] = field(default_factory=list)
    shard_conflicts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.counters:
            self.counters = [RankCounters() for _ in range(self.nranks)]
        if not self.shard_ops:
            self.shard_ops = [0] * self.nranks
            self.shard_bytes = [0] * self.nranks
            self.shard_conflicts = [0] * self.nranks

    def record(
        self,
        kind: str,
        origin: int,
        target: int,
        window: str,
        offset: int,
        nbytes: int,
    ) -> None:
        c = self.counters[origin]
        if kind == "put":
            c.puts += 1
            c.bytes_put += nbytes
        elif kind == "get":
            c.gets += 1
            c.bytes_got += nbytes
        elif kind == "atomic":
            c.atomics += 1
        elif kind == "flush":
            c.flushes += 1
        elif kind == "collective":
            c.collectives += 1
        if kind in ("put", "get", "atomic"):
            if origin == target:
                c.local_ops += 1
            else:
                c.remote_ops += 1
            self.shard_ops[target] += 1
            self.shard_bytes[target] += nbytes
        if self.log_ops:
            self.ops.append((kind, origin, target, window, offset, nbytes))

    def record_batch(
        self, origin: int, nops: int, nmsgs: int, nbytes: int
    ) -> None:
        """Account one batch call that coalesced ``nops`` logical operations
        into ``nmsgs`` network messages carrying ``nbytes`` total payload."""
        c = self.counters[origin]
        c.batches += 1
        c.batched_ops += nops
        c.msgs_saved += nops - nmsgs
        c.bytes_batched += nbytes

    # -- fault-injection accounting ---------------------------------------
    def record_fault(self, origin: int) -> None:
        """Account one injected transient failure at ``origin``."""
        self.counters[origin].faults_injected += 1

    def record_retry(self, origin: int) -> None:
        """Account one substrate-level retry of a faulted operation."""
        self.counters[origin].op_retries += 1

    def record_backoff(self, origin: int, seconds: float) -> None:
        """Account ``seconds`` of seeded backoff charged to ``origin``."""
        self.counters[origin].backoff_time += seconds

    def record_straggler(self, origin: int, seconds: float) -> None:
        """Account ``seconds`` of straggler slowdown charged to ``origin``."""
        self.counters[origin].straggler_time += seconds

    # -- availability-layer accounting -------------------------------------
    def record_mirror(self, origin: int, nblocks: int, nbytes: int) -> None:
        """Account ``nblocks`` blocks (``nbytes`` payload) mirrored to a backup."""
        c = self.counters[origin]
        c.mirrored_blocks += nblocks
        c.mirrored_bytes += nbytes

    def record_fence(self, origin: int) -> None:
        """Account one stale-epoch fence rejection at ``origin``."""
        self.counters[origin].epoch_fences += 1

    def record_corruption(self, rank: int) -> None:
        """Account one injected bit-flip in ``rank``'s memory."""
        self.counters[rank].corruptions_injected += 1

    def record_corruption_detected(self, origin: int) -> None:
        """Account one CRC32 checksum mismatch detected by ``origin``."""
        self.counters[origin].corruptions_detected += 1

    def record_repair(self, origin: int) -> None:
        """Account one failover shard reconstruction performed by ``origin``."""
        self.counters[origin].shard_repairs += 1

    # -- query-layer accounting --------------------------------------------
    def record_plan_cache(self, origin: int, hit: bool) -> None:
        """Account one plan-cache lookup by the query engine at ``origin``."""
        c = self.counters[origin]
        if hit:
            c.plan_cache_hits += 1
        else:
            c.plan_cache_misses += 1

    def record_replan(self, origin: int) -> None:
        """Account one adaptive mid-query re-planning event at ``origin``."""
        self.counters[origin].replans += 1

    def record_plan_cache_eviction(self, origin: int) -> None:
        """Account one LRU eviction from the bounded plan cache."""
        self.counters[origin].plan_cache_evictions += 1

    # -- serving-layer accounting ------------------------------------------
    #: admission outcome -> RankCounters field incremented by it
    _ADMISSION_FIELDS = {
        "admitted": "requests_admitted",
        "shed": "requests_shed",
        "throttled": "requests_throttled",
        "shed_analytics": "requests_shed_analytics",
    }

    def record_admission(self, origin: int, outcome: str) -> None:
        """Account one admission decision of the serving front-end."""
        try:
            fname = self._ADMISSION_FIELDS[outcome]
        except KeyError:
            raise ValueError(f"unknown admission outcome {outcome!r}") from None
        c = self.counters[origin]
        setattr(c, fname, getattr(c, fname) + 1)

    def record_queue_depth(self, origin: int, depth: int) -> None:
        """Track the deepest admission-queue occupancy seen (max gauge)."""
        c = self.counters[origin]
        if depth > c.queue_depth_peak:
            c.queue_depth_peak = depth

    def record_deadline_miss(self, origin: int) -> None:
        """Account one request that expired before or during execution."""
        self.counters[origin].deadline_misses += 1

    def record_breaker_trip(self, origin: int) -> None:
        """Account one circuit-breaker closed->open transition."""
        self.counters[origin].breaker_trips += 1

    # -- traffic-layer accounting ------------------------------------------
    def record_congestion(self, origin: int, seconds: float) -> None:
        """Account receiver-queueing delay charged to ``origin``'s op."""
        self.counters[origin].congestion_time += seconds

    def record_lock_conflict(self, origin: int, shard: int) -> None:
        """Account one failed lock attempt by ``origin`` on ``shard``."""
        self.counters[origin].lock_conflicts += 1
        self.shard_conflicts[shard] += 1

    # -- MVCC accounting ----------------------------------------------------
    def record_snapshot_read(self, origin: int, n: int = 1) -> None:
        """Account ``n`` holder reads served through a snapshot watermark."""
        self.counters[origin].snapshot_reads += n

    def record_versions_installed(self, origin: int, n: int = 1) -> None:
        """Account ``n`` pre-image versions installed at commit write-back."""
        self.counters[origin].versions_installed += n

    def record_versions_reclaimed(self, origin: int, n: int = 1) -> None:
        """Account ``n`` superseded versions freed by the watermark GC."""
        self.counters[origin].versions_reclaimed += n

    def record_gc_watermark(self, origin: int, watermark: int) -> None:
        """Track the highest GC reclamation floor reached (max gauge)."""
        c = self.counters[origin]
        if watermark > c.gc_watermark:
            c.gc_watermark = watermark

    def shard_snapshot(self) -> dict[str, list[int]]:
        """Copy of the per-target-shard access counters (detector input)."""
        return {
            "ops": list(self.shard_ops),
            "bytes": list(self.shard_bytes),
            "conflicts": list(self.shard_conflicts),
        }

    def shard_diff(
        self, earlier: dict[str, list[int]]
    ) -> dict[str, list[int]]:
        """Per-shard counter deltas relative to an earlier
        :meth:`shard_snapshot` (one detection window)."""
        now = self.shard_snapshot()
        return {
            k: [a - b for a, b in zip(now[k], earlier[k])] for k in now
        }

    # -- aggregation ------------------------------------------------------
    def total(self, field_name: str) -> int:
        return sum(getattr(c, field_name) for c in self.counters)

    def summary(self) -> dict[str, int]:
        keys = self.counters[0].snapshot().keys() if self.counters else []
        return {k: sum(c.snapshot()[k] for c in self.counters) for k in keys}

    def reset(self) -> None:
        self.counters = [RankCounters() for _ in range(self.nranks)]
        self.ops = []
        self.shard_ops = [0] * self.nranks
        self.shard_bytes = [0] * self.nranks
        self.shard_conflicts = [0] * self.nranks
