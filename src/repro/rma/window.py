"""Registered memory windows for the simulated RMA substrate.

A :class:`Window` mirrors an MPI-3 RMA window: a collectively allocated
region of memory, one segment per rank, that remote ranks may access with
one-sided operations.  GDI-RMA allocates three windows per database — the
*data*, *usage*, and *system* windows (paper Section 5.5) — plus windows
backing the distributed hash table.
"""

from __future__ import annotations

__all__ = ["Window", "WindowError"]


class WindowError(RuntimeError):
    """Raised on out-of-bounds or misaligned window accesses."""


class Window:
    """One collectively allocated RMA window.

    Parameters
    ----------
    name:
        Diagnostic name ("data", "usage", "system", ...).
    nranks:
        Number of ranks in the owning runtime.
    size:
        Size in bytes of the segment owned by *each* rank.

    Notes
    -----
    Segments are plain ``bytearray`` objects.  Bulk puts/gets use slice
    assignment; 8-byte atomics go through :meth:`read_i64`/:meth:`write_i64`
    under the owning runtime's per-target atomic lock, mimicking the NIC's
    atomic unit on RDMA hardware.
    """

    __slots__ = ("name", "nranks", "size", "_segments", "freed")

    def __init__(self, name: str, nranks: int, size: int) -> None:
        if nranks <= 0:
            raise WindowError(f"window {name!r}: nranks must be positive")
        if size < 0:
            raise WindowError(f"window {name!r}: negative size {size}")
        self.name = name
        self.nranks = nranks
        self.size = size
        self._segments = [bytearray(size) for _ in range(nranks)]
        self.freed = False

    # -- raw access (used only by the runtime) ---------------------------
    def _check(self, rank: int, offset: int, nbytes: int) -> None:
        if self.freed:
            raise WindowError(f"window {self.name!r} already freed")
        if not 0 <= rank < self.nranks:
            raise WindowError(f"window {self.name!r}: bad rank {rank}")
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise WindowError(
                f"window {self.name!r}: access [{offset}, {offset + nbytes})"
                f" outside segment of size {self.size}"
            )

    def read(self, rank: int, offset: int, nbytes: int) -> bytes:
        self._check(rank, offset, nbytes)
        return bytes(self._segments[rank][offset : offset + nbytes])

    def write(self, rank: int, offset: int, data: bytes) -> None:
        self._check(rank, offset, len(data))
        self._segments[rank][offset : offset + len(data)] = data

    def read_i64(self, rank: int, offset: int) -> int:
        """Read an aligned signed 64-bit integer (atomic granule)."""
        self._check(rank, offset, 8)
        if offset % 8 != 0:
            raise WindowError(
                f"window {self.name!r}: misaligned atomic at offset {offset}"
            )
        return int.from_bytes(
            self._segments[rank][offset : offset + 8], "little", signed=True
        )

    def write_i64(self, rank: int, offset: int, value: int) -> None:
        """Write an aligned signed 64-bit integer (atomic granule)."""
        self._check(rank, offset, 8)
        if offset % 8 != 0:
            raise WindowError(
                f"window {self.name!r}: misaligned atomic at offset {offset}"
            )
        self._segments[rank][offset : offset + 8] = value.to_bytes(
            8, "little", signed=True
        )

    def fill(self, rank: int, value: int = 0) -> None:
        """Reset a rank's whole segment (used by database bootstrap)."""
        self._check(rank, 0, self.size)
        seg = self._segments[rank]
        for i in range(0, self.size, 1 << 20):
            seg[i : min(i + (1 << 20), self.size)] = b"\x00" * (
                min(i + (1 << 20), self.size) - i
            )
        if value:
            seg[:] = bytes([value & 0xFF]) * self.size

    def free(self) -> None:
        """Release the window; subsequent accesses raise ``WindowError``."""
        self.freed = True
        self._segments = []

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "freed" if self.freed else f"{self.nranks}x{self.size}B"
        return f"<Window {self.name!r} {state}>"
