"""Concurrent serving front-end over the GDI query stack (ISSUE 7).

The paper's headline claim is *serving* OLTP+OLAP graph workloads at
extreme scale; this package adds the missing notion of clients.  Many
concurrent sessions submit Cypher-lite query text; the front-end
multiplexes them onto `QueryEngine`/`run_transaction` with:

* a **bounded admission queue** with explicit load shedding
  (:class:`~repro.serve.errors.ServerOverloaded` instead of unbounded
  buffering),
* a **thread-pooled worker loop** per serving rank
  (:meth:`GraphServer.serve`),
* **per-tenant token-bucket rate limiting**
  (:mod:`repro.serve.ratelimit`),
* **per-request deadlines** propagated into the transaction retry
  policy — a request that cannot finish in time aborts instead of
  retrying (:class:`~repro.gda.retry.RetryDeadlineExceeded`),
* a **circuit breaker** that sheds analytics-class queries first when
  p99 admission wait degrades (:mod:`repro.serve.breaker`): graceful
  degradation keeps OLTP live while BI is throttled.

Per-stage counters (admitted/shed/throttled/deadline-misses/breaker
trips/queue depth) land in the RMA :class:`~repro.rma.trace.TraceRecorder`
next to the substrate's own accounting.  The closed-loop load driver in
:mod:`repro.serve.workload` turns the whole thing into a measurable
system: ``benchmarks/test_serve_overload.py`` reports p50/p99/p999 and
goodput through the overload knee, with and without a rank crash.
"""

from .breaker import CircuitBreaker
from .errors import (
    AnalyticsShed,
    DeadlineExceeded,
    ServeError,
    ServerClosed,
    ServerOverloaded,
    TenantThrottled,
)
from .queue import BoundedQueue
from .ratelimit import TenantRateLimiter, TokenBucket
from .request import ANALYTICS, OLTP, Request
from .server import GraphServer, ServeConfig
from .session import ClientSession
from .workload import ClosedLoopLoad, ServeMix

__all__ = [
    "AnalyticsShed",
    "ANALYTICS",
    "BoundedQueue",
    "CircuitBreaker",
    "ClientSession",
    "ClosedLoopLoad",
    "DeadlineExceeded",
    "GraphServer",
    "OLTP",
    "Request",
    "ServeConfig",
    "ServeError",
    "ServeMix",
    "ServerClosed",
    "ServerOverloaded",
    "TenantRateLimiter",
    "TenantThrottled",
    "TokenBucket",
]
