"""Circuit breaker: shed analytics first when admission wait degrades.

Graceful degradation under overload (ISSUE 7): when the p99 of recent
admission waits crosses ``p99_threshold``, the breaker *opens* and
analytics-class (BI/OLAP) queries are shed at admission while OLTP
queries keep flowing — the cheap interactive traffic stays live, the
expensive scans are throttled.  After ``cooldown`` simulated seconds the
breaker goes *half-open* and admits a limited number of analytics probes;
if the waits they observe stay below the threshold it closes again,
while one bad wait re-opens it for another cooldown.

All timestamps and waits are simulated seconds on the serving clock.
The wait window is shared by every request class: OLTP waits opening the
breaker is exactly the point — analytics queries are shed to protect the
OLTP tail.

State machine::

    CLOSED --(p99 over window > threshold)--> OPEN      [trip]
    OPEN   --(cooldown elapsed)-------------> HALF_OPEN
    HALF_OPEN --(probe wait > threshold)----> OPEN      [trip]
    HALF_OPEN --(recovery_probes good waits)-> CLOSED
"""

from __future__ import annotations

import threading

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


def _p99(waits: list[float]) -> float:
    ordered = sorted(waits)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


class CircuitBreaker:
    """Sheds analytics-class admissions while p99 admission wait is high."""

    def __init__(
        self,
        p99_threshold: float,
        *,
        window: int = 128,
        min_samples: int = 16,
        cooldown: float = 5e-3,
        recovery_probes: int = 4,
    ) -> None:
        if p99_threshold <= 0.0:
            raise ValueError("p99_threshold must be positive")
        if min_samples < 1 or window < min_samples:
            raise ValueError("need window >= min_samples >= 1")
        self.p99_threshold = p99_threshold
        self.window = window
        self.min_samples = min_samples
        self.cooldown = cooldown
        self.recovery_probes = recovery_probes
        self._state = CLOSED
        self._waits: list[float] = []
        self._reopen_at = 0.0
        self._probes_left = 0
        self._good_probes = 0
        #: closed->open transitions (including half-open re-trips)
        self.trips = 0
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def p99(self) -> float | None:
        """Current windowed p99 admission wait (None below min_samples)."""
        with self._lock:
            if len(self._waits) < self.min_samples:
                return None
            return _p99(self._waits)

    def _trip(self, now: float) -> None:
        self._state = OPEN
        self._reopen_at = now + self.cooldown
        self._waits.clear()
        self.trips += 1

    def observe_wait(self, now: float, wait: float) -> bool:
        """Feed one dequeue's admission wait; True iff this tripped OPEN."""
        with self._lock:
            if self._state == OPEN:
                return False
            if self._state == HALF_OPEN:
                if wait > self.p99_threshold:
                    self._trip(now)
                    return True
                self._good_probes += 1
                if self._good_probes >= self.recovery_probes:
                    self._state = CLOSED
                    self._waits.clear()
                return False
            self._waits.append(wait)
            if len(self._waits) > self.window:
                del self._waits[0]
            if (
                len(self._waits) >= self.min_samples
                and _p99(self._waits) > self.p99_threshold
            ):
                self._trip(now)
                return True
            return False

    def allow_analytics(self, now: float) -> bool:
        """May an analytics-class request be admitted at ``now``?"""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if now < self._reopen_at:
                    return False
                self._state = HALF_OPEN
                self._probes_left = self.recovery_probes
                self._good_probes = 0
            # half-open: a bounded number of probes trickle through
            if self._probes_left > 0:
                self._probes_left -= 1
                return True
            return False

    def force_trip(self, now: float) -> None:
        """Open the breaker unconditionally (tests, operator override)."""
        with self._lock:
            self._trip(now)
