"""Error vocabulary of the serving front-end.

Rejections are *cheap by construction*: every error below is raised at
admission time, before the request consumes a worker or issues a single
one-sided operation, which is what makes explicit load shedding cheaper
than unbounded buffering.  Clients treat :class:`ServerOverloaded` (and
its subclasses) as backpressure — back off and resubmit — while
:class:`DeadlineExceeded` is terminal for that request.
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "ServerClosed",
    "ServerOverloaded",
    "TenantThrottled",
    "AnalyticsShed",
    "DeadlineExceeded",
]


class ServeError(RuntimeError):
    """Base class of all serving-front-end failures."""


class ServerClosed(ServeError):
    """The server is shut down; no further requests are accepted."""


class ServerOverloaded(ServeError):
    """The bounded admission queue is full; the request was shed.

    Backpressure, not failure: the request had no effect and the client
    should back off and resubmit.
    """


class TenantThrottled(ServerOverloaded):
    """The tenant's token bucket is empty; per-tenant rate limit hit."""


class AnalyticsShed(ServerOverloaded):
    """The circuit breaker is open: analytics-class queries are shed.

    Graceful degradation — OLTP traffic is still admitted while p99
    admission wait recovers below the breaker threshold.
    """


class DeadlineExceeded(ServeError):
    """The request cannot (or did not) finish before its deadline."""
