"""The bounded admission queue: explicit shedding, never unbounded buffering.

A classic bounded MPMC queue guarded by one condition variable.  The
front-end uses :meth:`BoundedQueue.try_put` — a full queue returns
``False`` (the caller sheds the request) instead of blocking, so queue
depth, and with it admission wait, stays bounded by construction.
Workers block in :meth:`BoundedQueue.get` until an item arrives or the
queue is closed *and* drained, which is the graceful-shutdown path.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from .errors import ServerClosed

__all__ = ["BoundedQueue"]


class BoundedQueue:
    """Bounded FIFO with non-blocking producers and blocking consumers."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._peak = 0

    @property
    def depth(self) -> int:
        """Current occupancy."""
        with self._cond:
            return len(self._items)

    @property
    def peak_depth(self) -> int:
        """Deepest occupancy ever observed (bounded by ``capacity``)."""
        with self._cond:
            return self._peak

    @property
    def closed(self) -> bool:
        return self._closed

    def try_put(self, item: Any) -> bool:
        """Enqueue ``item``; ``False`` (shed) when at capacity."""
        with self._cond:
            if self._closed:
                raise ServerClosed("admission queue is closed")
            if len(self._items) >= self.capacity:
                return False
            self._items.append(item)
            if len(self._items) > self._peak:
                self._peak = len(self._items)
            self._cond.notify()
            return True

    def requeue_front(self, item: Any) -> None:
        """Hand an already-admitted item back to the head of the queue.

        Used by a dying worker to return its in-flight request so a
        surviving worker picks it up; deliberately ignores the capacity
        bound (the item was admitted once — this never grows the queue
        beyond what admission allowed) and works on a closed queue, so a
        crash during drain still leaves no hung request behind.
        """
        with self._cond:
            self._items.appendleft(item)
            self._cond.notify()

    def get(self, poll_interval: float = 0.05) -> Any | None:
        """Dequeue the next item; ``None`` once closed and drained."""
        with self._cond:
            while True:
                if self._items:
                    return self._items.popleft()
                if self._closed:
                    return None
                self._cond.wait(poll_interval)

    def close(self) -> None:
        """Stop admitting; wake all consumers so they drain and return."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
