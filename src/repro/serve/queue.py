"""The bounded admission queue: explicit shedding, never unbounded buffering.

A classic bounded MPMC queue guarded by one condition variable.  The
front-end uses :meth:`BoundedQueue.try_put` — a full queue returns
``False`` (the caller sheds the request) instead of blocking, so queue
depth, and with it admission wait, stays bounded by construction.
Workers block in :meth:`BoundedQueue.get` until an item arrives or the
queue is closed *and* drained, which is the graceful-shutdown path.

Leases: capacity counts *admitted-but-incomplete* work, not just
waiting items.  :meth:`get` hands the worker a lease that
:meth:`task_done` releases; a worker that crashes mid-request returns
its item with :meth:`requeue_front` instead.  Two consequences fix the
multi-crash hazards:

* occupancy (waiting + leased) never exceeds ``capacity``, so a burst
  of crashed workers re-queuing their in-flight requests cannot grow
  the queue past what admission allowed;
* every item carries its admission sequence number and a re-queue
  inserts in sequence order, so simultaneous crashes hand requests back
  in *arrival order* regardless of which dying worker thread runs
  first.

Pause/resume: :meth:`pause` sheds new arrivals without closing the
queue (workers keep draining), which is the serving front-end's drain
point for quiesced maintenance such as a live rebalance;
:meth:`resume` re-opens admission.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from .errors import ServerClosed

__all__ = ["BoundedQueue"]


class BoundedQueue:
    """Bounded FIFO with non-blocking producers and blocking consumers."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: waiting items as (admission seq, item), ascending seq
        self._items: deque[tuple[int, Any]] = deque()
        #: id(item) -> admission seq of dequeued-but-unfinished items
        self._leases: dict[int, int] = {}
        self._seq = 0
        self._cond = threading.Condition()
        self._closed = False
        self._paused = False
        self._peak = 0

    @property
    def depth(self) -> int:
        """Current number of *waiting* items."""
        with self._cond:
            return len(self._items)

    @property
    def in_flight(self) -> int:
        """Leased items: dequeued but neither finished nor re-queued."""
        with self._cond:
            return len(self._leases)

    @property
    def peak_depth(self) -> int:
        """Deepest occupancy ever observed (bounded by ``capacity``)."""
        with self._cond:
            return self._peak

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def paused(self) -> bool:
        return self._paused

    def quiescent(self) -> bool:
        """No waiting items and no leases: safe for maintenance."""
        with self._cond:
            return not self._items and not self._leases

    def try_put(self, item: Any) -> bool:
        """Enqueue ``item``; ``False`` (shed) when occupancy is at capacity."""
        with self._cond:
            if self._closed:
                raise ServerClosed("admission queue is closed")
            if self._paused:
                return False
            occupancy = len(self._items) + len(self._leases)
            if occupancy >= self.capacity:
                return False
            self._items.append((self._seq, item))
            self._seq += 1
            if occupancy + 1 > self._peak:
                self._peak = occupancy + 1
            self._cond.notify()
            return True

    def requeue_front(self, item: Any) -> None:
        """Hand an already-admitted item back near the head of the queue.

        Used by a dying worker to return its in-flight request so a
        surviving worker picks it up.  The item's lease converts back
        into a waiting slot (occupancy is unchanged, so the capacity
        bound holds even when several workers crash at once) and the
        item is inserted in *admission order*: simultaneous crashes
        cannot invert the arrival order no matter which dying thread
        runs first.  Works on a closed or paused queue, so a crash
        during drain still leaves no hung request behind.
        """
        with self._cond:
            seq = self._leases.pop(id(item), -1)
            # ascending-seq insertion; re-queues cluster near the front
            # (their seqs predate everything still waiting)
            pos = 0
            for pos, (s, _) in enumerate(self._items):
                if s > seq:
                    break
            else:
                pos = len(self._items)
            self._items.insert(pos, (seq, item))
            self._cond.notify()

    def get(self, poll_interval: float = 0.05, on_pop=None) -> Any | None:
        """Dequeue the next item; ``None`` once closed and drained.

        The caller holds the item's lease until :meth:`task_done` (or
        :meth:`requeue_front`, if it cannot finish the work).

        ``on_pop`` runs on the dequeued item *under the queue lock*, so
        consumers can bind per-item state atomically with FIFO order —
        without it, a consumer preempted between dequeue and binding
        would let later items bind first, inverting the order.
        """
        with self._cond:
            while True:
                if self._items:
                    seq, item = self._items.popleft()
                    self._leases[id(item)] = seq
                    if on_pop is not None:
                        on_pop(item)
                    return item
                if self._closed:
                    return None
                self._cond.wait(poll_interval)

    def task_done(self, item: Any) -> None:
        """Release ``item``'s lease, freeing its capacity slot."""
        with self._cond:
            self._leases.pop(id(item), None)
            self._cond.notify()

    def pause(self) -> None:
        """Shed new arrivals (drain mode); waiting items still serve."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        """Re-open admission after a :meth:`pause`."""
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    def close(self) -> None:
        """Stop admitting; wake all consumers so they drain and return."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
