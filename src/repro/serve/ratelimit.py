"""Per-tenant token-bucket rate limiting in simulated time.

Buckets refill continuously at ``rate`` tokens per simulated second up
to ``burst``; an admission takes one token or is throttled.  Time is the
request's *arrival* timestamp on the serving clock, so the limiter is
deterministic for a fixed arrival schedule regardless of how OS threads
interleave.  Arrivals may reach the limiter slightly out of order (a
closed-loop client's next arrival depends on a completion served by
another worker); the bucket clamps negative elapsed time to zero, which
at worst briefly under-refills — it never mints tokens from reordering.
"""

from __future__ import annotations

import threading
from typing import Mapping

__all__ = ["TokenBucket", "TenantRateLimiter"]


class TokenBucket:
    """One tenant's bucket: ``rate`` tokens/second, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_lock")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0.0:
            raise ValueError("rate must be positive")
        if burst < 1.0:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._stamp = 0.0
        self._lock = threading.Lock()

    def try_take(self, now: float, tokens: float = 1.0) -> bool:
        """Take ``tokens`` at simulated time ``now``; ``False`` = throttle."""
        with self._lock:
            elapsed = now - self._stamp
            if elapsed > 0.0:
                self._tokens = min(
                    self.burst, self._tokens + elapsed * self.rate
                )
                self._stamp = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def tokens(self) -> float:
        """Tokens available at the last refill stamp (diagnostics)."""
        with self._lock:
            return self._tokens


class TenantRateLimiter:
    """Lazily-created per-tenant buckets with optional overrides.

    ``rate=None`` disables limiting entirely (every tenant admitted);
    ``overrides`` maps a tenant name to its own ``(rate, burst)`` — a
    premium tenant can run hotter, an abusive one can be clamped.
    Throttle decisions are counted per tenant in :attr:`throttles`.
    """

    def __init__(
        self,
        rate: float | None,
        burst: float = 8.0,
        overrides: Mapping[str, tuple[float, float]] | None = None,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self.overrides = dict(overrides or {})
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        #: tenant -> number of throttled admissions
        self.throttles: dict[str, int] = {}

    def bucket(self, tenant: str) -> TokenBucket | None:
        """The tenant's bucket (created on first use); None = unlimited."""
        rate, burst = self.overrides.get(tenant, (self.rate, self.burst))
        if rate is None:
            return None
        with self._lock:
            b = self._buckets.get(tenant)
            if b is None:
                b = self._buckets[tenant] = TokenBucket(rate, burst)
            return b

    def allow(self, tenant: str, now: float) -> bool:
        """Admit one request of ``tenant`` arriving at ``now``?"""
        b = self.bucket(tenant)
        if b is None or b.try_take(now):
            return True
        with self._lock:
            self.throttles[tenant] = self.throttles.get(tenant, 0) + 1
        return False
