"""One client request and its lifecycle.

A :class:`Request` carries the query text plus the serving metadata
(tenant, query class, arrival time, absolute deadline) and collects the
outcome: terminal status, result rows, and the latency decomposition
(admission wait + service time = completion - arrival), all in simulated
seconds.  Completion is signalled through a real :class:`threading.Event`
— the closed-loop load driver blocks on it — and an optional ``on_done``
callback invoked from the completing thread.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "Request",
    "OLTP",
    "ANALYTICS",
    "PENDING",
    "OK",
    "SHED",
    "THROTTLED",
    "SHED_ANALYTICS",
    "DEADLINE",
    "FAILED",
    "ERROR",
    "TERMINAL_STATUSES",
]

#: query classes — the breaker sheds ANALYTICS first under overload
OLTP = "oltp"
ANALYTICS = "analytics"

PENDING = "pending"
OK = "ok"
SHED = "shed"  # admission queue full
THROTTLED = "throttled"  # per-tenant token bucket empty
SHED_ANALYTICS = "shed_analytics"  # circuit breaker open
DEADLINE = "deadline"  # expired before or during execution
FAILED = "failed"  # retry budget exhausted on transaction errors
ERROR = "error"  # malformed query (syntax/plan error)

TERMINAL_STATUSES = frozenset(
    {OK, SHED, THROTTLED, SHED_ANALYTICS, DEADLINE, FAILED, ERROR}
)


@dataclass
class Request:
    """One query submitted to the serving front-end."""

    req_id: str
    text: str
    params: dict | None = None
    tenant: str = "default"
    qclass: str = OLTP
    #: arrival timestamp on the serving clock (simulated seconds)
    arrival: float = 0.0
    #: absolute deadline on the serving clock; None = no deadline
    deadline: float | None = None
    #: closed-loop user that issued this request (load-driver bookkeeping)
    user: int | None = None
    on_done: Callable[["Request"], None] | None = None

    # -- outcome (written exactly once by finish()) -----------------------
    status: str = PENDING
    rows: list[tuple] | None = None
    error: BaseException | None = None
    #: admission wait: service start - arrival
    queue_wait: float = 0.0
    #: execution time inside the worker (including retries/backoff)
    service: float = 0.0
    #: completion timestamp on the serving clock
    completion: float = 0.0
    #: transaction restarts burned by this request
    attempts: int = 0
    #: rank that served (or rejected) the request
    rank: int | None = None

    _done: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def latency(self) -> float:
        """End-to-end simulated latency (only meaningful once done)."""
        return self.completion - self.arrival

    def finish(
        self,
        status: str,
        *,
        completion: float,
        rank: int | None = None,
        rows: list[tuple] | None = None,
        error: BaseException | None = None,
        queue_wait: float = 0.0,
        service: float = 0.0,
        attempts: int = 0,
    ) -> None:
        """Move to a terminal status and wake all waiters (idempotent-safe:
        a second finish on a completed request is a programming error)."""
        if status not in TERMINAL_STATUSES:
            raise ValueError(f"non-terminal status {status!r}")
        if self._done.is_set():
            raise RuntimeError(f"request {self.req_id} finished twice")
        self.status = status
        self.completion = completion
        self.rank = rank
        self.rows = rows
        self.error = error
        self.queue_wait = queue_wait
        self.service = service
        self.attempts = attempts
        self._done.set()
        if self.on_done is not None:
            self.on_done(self)

    def wait_done(self, timeout: float | None = None) -> bool:
        """Block (real time) until the request reaches a terminal status."""
        return self._done.wait(timeout)
