"""The serving front-end: bounded admission, worker pool, degradation.

:class:`GraphServer` multiplexes many client sessions onto the
`QueryEngine`/`run_transaction` stack of one :class:`GdaDatabase`:

* **admission** (:meth:`GraphServer.submit`) — runs on the submitting
  thread and never blocks: an expired deadline, an open circuit breaker
  (analytics class only), an empty tenant token bucket, or a full
  bounded queue each reject the request *immediately* with the matching
  :mod:`repro.serve.errors` exception instead of buffering it.  Explicit
  load shedding keeps queue depth — and with it the admission wait of
  everything that *is* admitted — bounded by construction.
* **execution** (:meth:`GraphServer.serve`) — one worker loop per
  serving rank, thread-pooled by the SPMD executor: each worker pulls
  requests from the shared queue and drives them through
  :func:`repro.gda.retry.run_transaction` with the request's remaining
  deadline folded into the retry policy, so a retry storm can never
  overshoot a client's latency budget.
* **degradation** — every dequeue feeds its admission wait to the
  :class:`~repro.serve.breaker.CircuitBreaker`; when the windowed p99
  crosses the threshold the breaker opens and analytics-class queries
  are shed at admission while OLTP stays live.

Time model: request latency is accounted in *simulated* seconds.  The
workers' virtual clocks form a pool of interchangeable virtual servers:
a dequeuing worker checks out the *earliest* availability in the pool,
serves the request (advancing the slot by the simulated execution time
measured on the rank's RMA clock), and returns the slot, so ``service
start = max(slot, arrival)``, ``admission wait = start - arrival`` and
``completion = start + service`` compose into the same M/G/c queueing
behavior a real deployment would see.  Checking out the pool minimum —
rather than a per-thread clock — matters because OS threads race to pop
the queue in real time: a thread returning from a long analytics scan
would otherwise bill its inflated clock to the next request while other
workers sat virtually idle.  OS threads still provide genuine
concurrency on the underlying lock-free structures.

Worker crashes: a worker that dies mid-request (:class:`RmaRankDead`)
hands its in-flight request back to the head of the queue before
propagating the crash, so a surviving worker completes it — no session
ever hangs on a dead rank.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field, replace
from typing import Mapping

from ..gda.retry import RetryDeadlineExceeded, RetryPolicy, run_transaction
from ..gdi.errors import GdiTransactionCritical
from ..query import QueryEngine
from ..query.errors import QueryError
from ..rma.faults import RmaRankDead, RmaTransientError
from .breaker import CircuitBreaker
from .errors import (
    AnalyticsShed,
    DeadlineExceeded,
    ServerClosed,
    ServerOverloaded,
    TenantThrottled,
)
from .queue import BoundedQueue
from .ratelimit import TenantRateLimiter
from .request import (
    ANALYTICS,
    DEADLINE,
    ERROR,
    FAILED,
    OK,
    SHED,
    SHED_ANALYTICS,
    THROTTLED,
    Request,
)

__all__ = ["ServeConfig", "GraphServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one serving front-end."""

    #: bounded admission queue capacity (requests waiting for a worker)
    queue_capacity: int = 64
    #: default per-request latency budget in simulated seconds from
    #: arrival (None = no deadline unless the request carries one)
    default_deadline: float | None = None
    #: per-tenant token bucket: requests per simulated second
    #: (None = unlimited) and burst capacity
    tenant_rate: float | None = None
    tenant_burst: float = 8.0
    #: tenant -> (rate, burst) overrides
    tenant_overrides: Mapping[str, tuple[float | None, float]] = field(
        default_factory=dict
    )
    #: circuit breaker on p99 admission wait, simulated seconds
    #: (None disables the breaker: analytics always admitted)
    breaker_p99_threshold: float | None = None
    breaker_window: int = 128
    breaker_min_samples: int = 16
    breaker_cooldown: float = 5e-3
    breaker_recovery_probes: int = 4
    #: transaction retry/backoff; the per-request remaining deadline is
    #: folded in (min of both budgets) before each execution
    retry: RetryPolicy = field(default_factory=RetryPolicy)


class GraphServer:
    """Concurrent serving front-end over one GDA database."""

    def __init__(
        self, db, engine: QueryEngine | None = None, config: ServeConfig | None = None
    ) -> None:
        self.db = db
        self.engine = engine or QueryEngine(db)
        self.config = config or ServeConfig()
        self.queue = BoundedQueue(self.config.queue_capacity)
        self.limiter = TenantRateLimiter(
            self.config.tenant_rate,
            self.config.tenant_burst,
            self.config.tenant_overrides,
        )
        self.breaker: CircuitBreaker | None = None
        if self.config.breaker_p99_threshold is not None:
            self.breaker = CircuitBreaker(
                self.config.breaker_p99_threshold,
                window=self.config.breaker_window,
                min_samples=self.config.breaker_min_samples,
                cooldown=self.config.breaker_cooldown,
                recovery_probes=self.config.breaker_recovery_probes,
            )
        #: worker rank -> virtual serving clock (simulated seconds);
        #: diagnostic view of the server pool below
        self._vt: dict[int, float] = {}
        #: free virtual-server availability times (min-heap); each
        #: worker rank contributes one slot on its first dequeue and
        #: holds at most one checked-out slot at a time
        self._free: list[float] = []
        self._pool_ranks: set[int] = set()
        #: id(request) -> slot checked out for it at dequeue
        self._assigned: dict[int, float] = {}
        self._lock = threading.Lock()
        #: terminal status -> count, across admission + execution
        self.outcomes: dict[str, int] = {}
        self._n_submitted = 0

    # -- bookkeeping -------------------------------------------------------
    def _finish(self, req: Request, status: str, **kw) -> None:
        with self._lock:
            self.outcomes[status] = self.outcomes.get(status, 0) + 1
        req.finish(status, **kw)

    def virtual_now(self) -> float:
        """Latest worker virtual clock (phase chaining / diagnostics)."""
        with self._lock:
            return max(self._vt.values(), default=0.0)

    def _register_worker(self, rank: int) -> None:
        """Contribute one virtual-server slot when a worker enters its
        serve loop.  Registration is by *entry*, not by first dequeue:
        the pool must represent provisioned capacity even when the OS
        scheduler lets a few greedy threads win most of the real races
        to pop the queue — the others' slots still serve, virtually."""
        with self._lock:
            if rank not in self._pool_ranks:
                self._pool_ranks.add(rank)
                heapq.heappush(self._free, 0.0)

    def _checkout_slot(self, rank: int, req: Request) -> None:
        """FIFO dispatch to the earliest-available virtual server (see
        the module time-model note).  A popping worker always holds at
        most one slot between checkout and return, so with every worker
        registered the pool can never run dry.

        Runs as the queue's ``on_pop`` hook — under the queue lock — so
        slots are assigned in strict FIFO dequeue order: a worker
        preempted between dequeue and checkout cannot let later
        requests adopt an earlier availability than this one."""
        with self._lock:
            self._assigned[id(req)] = (
                heapq.heappop(self._free) if self._free else 0.0
            )

    def _return_slot(self, rank: int, vt: float) -> None:
        """Return a slot to the pool.  Not called on the worker-crash
        path: a dead worker's slot dies with it, shrinking the virtual
        pool in step with the real one."""
        with self._lock:
            heapq.heappush(self._free, vt)
            self._vt[rank] = vt

    def stats(self) -> dict:
        """Aggregate serving statistics (terminal counts + gauges)."""
        with self._lock:
            outcomes = dict(self.outcomes)
            submitted = self._n_submitted
        return {
            "submitted": submitted,
            "outcomes": outcomes,
            "queue_depth": self.queue.depth,
            "queue_in_flight": self.queue.in_flight,
            "queue_peak": self.queue.peak_depth,
            "breaker_state": self.breaker.state if self.breaker else None,
            "breaker_trips": self.breaker.trips if self.breaker else 0,
            "throttles_by_tenant": dict(self.limiter.throttles),
            "virtual_now": self.virtual_now(),
        }

    # -- admission ---------------------------------------------------------
    def submit(self, ctx, req: Request) -> Request:
        """Admit ``req`` (arriving at ``req.arrival``) or shed it.

        Rejections mark the request terminal (so closed-loop clients see
        a completion either way) and raise the matching
        :mod:`repro.serve.errors` exception; trace counters attribute the
        decision to the submitting rank ``ctx``.
        """
        trace = ctx.rt.trace
        now = req.arrival
        with self._lock:
            self._n_submitted += 1
        if req.deadline is None and self.config.default_deadline is not None:
            req.deadline = now + self.config.default_deadline
        if self.queue.closed:
            # still a terminal completion: a closed-loop client blocked on
            # this request must wake up rather than hang on shutdown
            trace.record_admission(ctx.rank, "shed")
            self._finish(req, SHED, completion=now, rank=ctx.rank)
            raise ServerClosed("server is shut down")
        if req.deadline is not None and now >= req.deadline:
            trace.record_deadline_miss(ctx.rank)
            self._finish(
                req, DEADLINE, completion=now, rank=ctx.rank
            )
            raise DeadlineExceeded(
                f"{req.req_id}: already past deadline at arrival"
            )
        if (
            self.breaker is not None
            and req.qclass == ANALYTICS
            and not self.breaker.allow_analytics(now)
        ):
            trace.record_admission(ctx.rank, "shed_analytics")
            self._finish(
                req, SHED_ANALYTICS, completion=now, rank=ctx.rank
            )
            raise AnalyticsShed(
                f"{req.req_id}: breaker open, analytics shed"
            )
        if not self.limiter.allow(req.tenant, now):
            trace.record_admission(ctx.rank, "throttled")
            self._finish(req, THROTTLED, completion=now, rank=ctx.rank)
            raise TenantThrottled(
                f"{req.req_id}: tenant {req.tenant!r} over rate limit"
            )
        if not self.queue.try_put(req):
            trace.record_admission(ctx.rank, "shed")
            self._finish(req, SHED, completion=now, rank=ctx.rank)
            raise ServerOverloaded(
                f"{req.req_id}: admission queue full "
                f"({self.config.queue_capacity})"
            )
        trace.record_admission(ctx.rank, "admitted")
        trace.record_queue_depth(ctx.rank, self.queue.depth)
        return req

    # -- execution ---------------------------------------------------------
    def serve(self, ctx) -> int:
        """Worker loop: serve queued requests on rank ``ctx`` until the
        server is closed and the queue drained.  Returns the number of
        requests this worker brought to a terminal state."""
        served = 0
        self._register_worker(ctx.rank)
        while True:
            req = self.queue.get(
                on_pop=lambda r: self._checkout_slot(ctx.rank, r)
            )
            if req is None:
                return served
            # the lease survives _execute's crash path: RmaRankDead
            # re-queues the request (converting the lease back into a
            # waiting slot) before the crash propagates past us
            self._execute(ctx, req)
            self.queue.task_done(req)
            served += 1

    def _execute(self, ctx, req: Request) -> None:
        trace = ctx.rt.trace
        with self._lock:
            vt = self._assigned.pop(id(req), 0.0)
        start = max(vt, req.arrival)
        wait = start - req.arrival
        if self.breaker is not None and self.breaker.observe_wait(start, wait):
            trace.record_breaker_trip(ctx.rank)
        if req.deadline is not None and start >= req.deadline:
            # doomed before it ran: shed the work, don't burn a worker
            self._return_slot(ctx.rank, vt)
            trace.record_deadline_miss(ctx.rank)
            self._finish(
                req,
                DEADLINE,
                completion=start,
                rank=ctx.rank,
                queue_wait=wait,
            )
            return
        policy = self.config.retry
        if req.deadline is not None:
            budget = req.deadline - start
            if policy.deadline is None or budget < policy.deadline:
                policy = replace(policy, deadline=budget)
        restarts0 = self.db.stats[ctx.rank].restarts
        c0 = ctx.clock
        try:
            plan = self.engine.prepare(ctx, req.text)
            result = run_transaction(
                ctx,
                self.db,
                lambda tx: self.engine.run(ctx, req.text, req.params, tx=tx),
                write=plan.query.writes,
                # read-only requests (the analytics class above all) run
                # lock-free on an MVCC snapshot when the database has one:
                # an OLAP scan then neither blocks nor aborts against the
                # concurrent OLTP write traffic
                snapshot=not plan.query.writes,
                policy=policy,
            )
        except RmaRankDead:
            # this worker just died: hand the request back so a survivor
            # serves it, then let the crash propagate to the executor
            self.queue.requeue_front(req)
            raise
        except RetryDeadlineExceeded as exc:
            completion = start + (ctx.clock - c0)
            self._return_slot(ctx.rank, completion)
            trace.record_deadline_miss(ctx.rank)
            self._finish(
                req,
                DEADLINE,
                completion=completion,
                rank=ctx.rank,
                error=exc,
                queue_wait=wait,
                service=ctx.clock - c0,
                attempts=self.db.stats[ctx.rank].restarts - restarts0,
            )
            return
        except (GdiTransactionCritical, RmaTransientError) as exc:
            completion = start + (ctx.clock - c0)
            self._return_slot(ctx.rank, completion)
            self._finish(
                req,
                FAILED,
                completion=completion,
                rank=ctx.rank,
                error=exc,
                queue_wait=wait,
                service=ctx.clock - c0,
                attempts=self.db.stats[ctx.rank].restarts - restarts0,
            )
            return
        except QueryError as exc:
            completion = start + (ctx.clock - c0)
            self._return_slot(ctx.rank, completion)
            self._finish(
                req,
                ERROR,
                completion=completion,
                rank=ctx.rank,
                error=exc,
                queue_wait=wait,
                service=ctx.clock - c0,
            )
            return
        service = ctx.clock - c0
        completion = start + service
        self._return_slot(ctx.rank, completion)
        self._finish(
            req,
            OK,
            completion=completion,
            rank=ctx.rank,
            rows=result.rows,
            queue_wait=wait,
            service=service,
            attempts=self.db.stats[ctx.rank].restarts - restarts0,
        )

    # -- drain / resume (quiesced maintenance windows) ---------------------
    def drain(self, timeout: float = 10.0) -> bool:
        """Pause admission and wait until the server is quiescent.

        New arrivals are shed (closed-loop clients back off and retry);
        workers finish the queued and in-flight requests.  Returns True
        once no request is waiting or leased — the safe point for
        maintenance that requires no open transactions, e.g. a live
        rebalance — or False if quiescence was not reached within
        ``timeout`` wall-clock seconds (admission stays paused so the
        caller can decide).
        """
        import time

        self.queue.pause()
        deadline = time.monotonic() + timeout
        while not self.queue.quiescent():
            if time.monotonic() > deadline:
                return False
            time.sleep(0.001)
        return True

    def resume(self) -> None:
        """Re-open admission after a :meth:`drain`."""
        self.queue.resume()

    # -- shutdown ----------------------------------------------------------
    def close(self) -> None:
        """Stop admission; workers drain the queue and return."""
        self.queue.close()
