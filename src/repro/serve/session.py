"""Client sessions: the connection objects the front-end multiplexes.

A :class:`ClientSession` is one logical connection of one tenant.  It
numbers its requests, stamps tenant/deadline metadata, and funnels them
into :meth:`GraphServer.submit`; each session maps onto GDI transactions
one request at a time (the worker opens/commits a transaction per
request — see GDI_SPEC.md, "Sessions onto GDI transactions").  Sessions
are deliberately thin: all policy (admission, throttling, shedding)
lives in the server, so thousands of sessions cost nothing but their
counters.
"""

from __future__ import annotations

import threading

from .errors import ServeError
from .request import OLTP, Request
from .server import GraphServer

__all__ = ["ClientSession"]


class ClientSession:
    """One client connection of ``tenant`` against ``server``."""

    def __init__(
        self,
        server: GraphServer,
        tenant: str = "default",
        session_id: int = 0,
    ) -> None:
        self.server = server
        self.tenant = tenant
        self.session_id = session_id
        self._seq = 0
        self._lock = threading.Lock()
        #: requests this session submitted / got rejected at admission
        self.n_submitted = 0
        self.n_rejected = 0

    def build(
        self,
        text: str,
        *,
        params: dict | None = None,
        qclass: str = OLTP,
        arrival: float = 0.0,
        deadline_in: float | None = None,
        user: int | None = None,
        on_done=None,
    ) -> Request:
        """Construct (but do not submit) this session's next request.

        ``deadline_in`` is relative to ``arrival``; the server applies
        its configured default when omitted.
        """
        with self._lock:
            seq = self._seq
            self._seq += 1
        return Request(
            req_id=f"{self.tenant}/{self.session_id}/{seq}",
            text=text,
            params=params,
            tenant=self.tenant,
            qclass=qclass,
            arrival=arrival,
            deadline=None if deadline_in is None else arrival + deadline_in,
            user=user,
            on_done=on_done,
        )

    def submit(self, ctx, text: str, **kw) -> tuple[Request, bool]:
        """Build and submit one request; returns ``(request, admitted)``.

        Admission rejections do not raise here — the request comes back
        finished with its shed/throttled/deadline status, which is what a
        closed-loop client needs to schedule its retry.
        """
        req = self.build(text, **kw)
        with self._lock:
            self.n_submitted += 1
        try:
            self.server.submit(ctx, req)
            return req, True
        except ServeError:
            with self._lock:
                self.n_rejected += 1
            return req, False
