"""Closed-loop load generation: many simulated users, bounded outstanding.

:class:`ClosedLoopLoad` drives U simulated users against a
:class:`~repro.serve.server.GraphServer`.  Each user has at most one
outstanding request: it issues, blocks until the request reaches a
terminal status, *thinks* for ``think`` simulated seconds, and issues
again — the textbook closed-loop client whose offered arrival rate is
``U / (think + latency)``.  Shed/throttled users back off
(``shed_backoff``) before retrying, which is what makes overload
self-limiting instead of a death spiral.

The driver runs on one front-end rank and keeps a heap of ``(next
arrival, user)``; completions (signalled by the workers through each
request's ``on_done``) re-arm their user.  Arrival timestamps are pure
simulated time — the driver never waits wall-clock between arrivals, so
a 10k-user storm runs as fast as the workers can execute.

:class:`ServeMix` supplies the request stream: a deterministic
per-(user, sequence) choice between OLTP point reads, OLTP one-hop
expansions, and analytics-class aggregates over the generated LPG
schema.
"""

from __future__ import annotations

import heapq
import random
import threading
from dataclasses import dataclass

from .request import ANALYTICS, OLTP, Request
from .server import GraphServer
from .session import ClientSession

__all__ = ["ServeMix", "ClosedLoopLoad"]

#: request templates — texts are reused verbatim so the engine's plan
#: cache absorbs parse+plan for the whole storm
POINT_READ = "MATCH (v {id = $src}) RETURN v.id"
ONE_HOP = "MATCH (a {id = $src})-[]->(b) RETURN b.id"
#: BI2-flavored aggregate over the default generated schema (VL*/EL*
#: labels, p_score property); override for other schemas
ANALYTICS_AGG = (
    "MATCH (per:VL0)-[:EL0]->(v) WHERE per.p_score > $minscore "
    "RETURN count(DISTINCT per)"
)


@dataclass(frozen=True)
class ServeMix:
    """Deterministic request mix over ``n_vertices`` application IDs."""

    n_vertices: int
    analytics_fraction: float = 0.05
    onehop_fraction: float = 0.25
    analytics_text: str = ANALYTICS_AGG
    seed: int = 0

    def make(self, user: int, seq: int) -> tuple[str, str, dict]:
        """The ``(qclass, text, params)`` of ``user``'s ``seq``-th request."""
        rng = random.Random(f"serve/{self.seed}/{user}/{seq}")
        draw = rng.random()
        if draw < self.analytics_fraction:
            return ANALYTICS, self.analytics_text, {"minscore": 50.0}
        src = rng.randrange(self.n_vertices)
        if draw < self.analytics_fraction + self.onehop_fraction:
            return OLTP, ONE_HOP, {"src": src}
        return OLTP, POINT_READ, {"src": src}


class ClosedLoopLoad:
    """Drive ``n_users`` closed-loop users until ``n_requests`` issued."""

    def __init__(
        self,
        server: GraphServer,
        sessions: list[ClientSession],
        mix: ServeMix,
        *,
        n_users: int,
        arrival_rate: float,
        n_requests: int,
        think: float | None = None,
        shed_backoff: float | None = None,
        deadline_in: float | None = None,
        start: float = 0.0,
        horizon: float | None = None,
    ) -> None:
        if n_users < 1 or n_requests < 1:
            raise ValueError("need n_users >= 1 and n_requests >= 1")
        if arrival_rate <= 0.0:
            raise ValueError("arrival_rate must be positive")
        self.server = server
        self.sessions = sessions
        self.mix = mix
        self.n_users = n_users
        self.arrival_rate = arrival_rate
        self.n_requests = n_requests
        #: think time keeping the closed-loop offered rate ~arrival_rate
        self.think = n_users / arrival_rate if think is None else think
        self.shed_backoff = (
            self.think / 2.0 if shed_backoff is None else shed_backoff
        )
        self.deadline_in = deadline_in
        #: virtual-time pacing window (simulated seconds).  With a
        #: horizon the driver never issues an arrival more than
        #: ``horizon`` ahead of the workers' virtual clocks, so the
        #: *real* admission-queue depth tracks the *simulated* backlog:
        #: an underloaded run keeps the queue shallow even though the
        #: submitting thread could outrun the workers in wall-clock
        #: terms, while an overloaded run genuinely fills it and sheds.
        #: ``None`` disables pacing (fire as fast as possible).
        self.horizon = horizon
        #: completed requests in completion order
        self.records: list[Request] = []
        self._seq: dict[int, int] = {}
        # users enter staggered at the target rate: user i's first
        # request arrives at start + i/rate
        self._ready: list[tuple[float, int]] = [
            (start + i / arrival_rate, i) for i in range(n_users)
        ]
        heapq.heapify(self._ready)
        self._cond = threading.Condition()
        self._issued = 0
        self._outstanding = 0

    # -- completion callback (runs on worker threads) ----------------------
    def _on_done(self, req: Request) -> None:
        with self._cond:
            self._outstanding -= 1
            self.records.append(req)
            if self._issued < self.n_requests and req.user is not None:
                if req.status in ("shed", "throttled", "shed_analytics"):
                    nxt = req.completion + self.shed_backoff
                else:
                    nxt = req.completion + self.think
                heapq.heappush(self._ready, (nxt, req.user))
            self._cond.notify_all()

    # -- driver loop (runs on the front-end rank) --------------------------
    def run(self, ctx) -> list[Request]:
        """Issue requests until the budget is spent and all completed.

        Returns every request issued (terminal, in completion order).
        Call from exactly one rank; workers must be serving concurrently
        or admitted requests would never complete.
        """
        while True:
            with self._cond:
                if self._issued >= self.n_requests:
                    if self._outstanding == 0:
                        break
                    self._cond.wait(0.05)
                    continue
                if not self._ready:
                    if self._outstanding == 0:
                        break  # users exhausted below the budget
                    self._cond.wait(0.05)
                    continue
                t = self._ready[0][0]
                if (
                    self.horizon is not None
                    and self._outstanding > 0
                    and t > self.server.virtual_now() + self.horizon
                ):
                    # stay within the pacing window; completions advance
                    # the workers' virtual clocks and notify us
                    self._cond.wait(0.05)
                    continue
                t, user = heapq.heappop(self._ready)
                self._issued += 1
                self._outstanding += 1
                seq = self._seq.get(user, 0)
                self._seq[user] = seq + 1
            qclass, text, params = self.mix.make(user, seq)
            session = self.sessions[user % len(self.sessions)]
            session.submit(
                ctx,
                text,
                params=params,
                qclass=qclass,
                arrival=t,
                deadline_in=self.deadline_in,
                user=user,
                on_done=self._on_done,
            )
        return list(self.records)
