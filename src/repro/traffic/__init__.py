"""Adversarial traffic generation and hot-shard detection.

The robustness counterpart to the paper's steady-state workloads:
seeded Zipfian skew aimed at one shard (:mod:`.zipf`), flash-crowd load
shapes and large-transaction mixes (:mod:`.generator`), mixed
ingest/query and mutation-during-OLAP interleavings (:mod:`.scenarios`),
and the EWMA detector (:mod:`.detector`) that closes the loop into
``gda.relocate`` live rebalancing.
"""

from .detector import HotShardDetector, HotShardReport
from .generator import (
    AdversarialMix,
    TrafficPhase,
    flash_crowd,
    large_txn_sizes,
    run_phases,
)
from .scenarios import ScenarioResult, mutation_during_olap, streaming_ingest
from .zipf import ShardColocatedKeys, ZipfSampler

__all__ = [
    "ZipfSampler",
    "ShardColocatedKeys",
    "HotShardDetector",
    "HotShardReport",
    "AdversarialMix",
    "TrafficPhase",
    "flash_crowd",
    "run_phases",
    "large_txn_sizes",
    "ScenarioResult",
    "streaming_ingest",
    "mutation_during_olap",
]
