"""Online hot-shard detection from the trace recorder's shard counters.

The RMA trace recorder accumulates per-target-shard access counts
(``shard_ops``/``shard_bytes``) and per-shard lock-conflict counts
(``shard_conflicts``).  A monitoring loop snapshots them
(:meth:`~repro.rma.trace.TraceRecorder.shard_snapshot`), computes the
window delta (:meth:`~repro.rma.trace.TraceRecorder.shard_diff`), and
feeds each window to :class:`HotShardDetector`.

The detector keeps one exponentially weighted moving average of *load*
per shard — ``ops + conflict_weight * lock_conflicts``, so a shard that
is not just popular but *contended* trips earlier — and reports a shard
hot when its EWMA exceeds ``threshold ×`` the mean across shards.  EWMA
smoothing means one bursty window does not trigger a (costly, drained)
rebalance, while a sustained flash crowd fires within a few windows;
``min_window_ops`` suppresses verdicts on idle or barely-warmed windows
where ratios are noise.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HotShardReport", "HotShardDetector"]


@dataclass(frozen=True)
class HotShardReport:
    """One monitoring window's verdict."""

    #: shards whose EWMA load exceeds ``threshold ×`` the mean
    hot: tuple[int, ...]
    #: per-shard EWMA load divided by the mean (1.0 = perfectly even)
    scores: tuple[float, ...]
    #: max score — the imbalance factor the paper's balancer targets
    skew: float
    #: raw RMA ops observed in this window (all shards)
    window_ops: int

    @property
    def fired(self) -> bool:
        return bool(self.hot)

    @property
    def hottest(self) -> int | None:
        if not self.hot:
            return None
        return max(self.hot, key=lambda s: self.scores[s])


class HotShardDetector:
    """EWMA skew detector over per-shard load windows."""

    def __init__(
        self,
        nranks: int,
        alpha: float = 0.3,
        threshold: float = 2.0,
        min_window_ops: int = 64,
        conflict_weight: float = 4.0,
    ) -> None:
        if nranks < 1:
            raise ValueError("need nranks >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if threshold <= 1.0:
            raise ValueError("threshold must exceed 1.0 (mean-relative)")
        self.nranks = nranks
        self.alpha = alpha
        self.threshold = threshold
        self.min_window_ops = min_window_ops
        self.conflict_weight = conflict_weight
        self._ewma: list[float] | None = None
        self.last: HotShardReport | None = None

    @property
    def ewma(self) -> tuple[float, ...]:
        """Current smoothed per-shard load (zeros before any window)."""
        if self._ewma is None:
            return tuple(0.0 for _ in range(self.nranks))
        return tuple(self._ewma)

    def observe(self, window: dict[str, list[int]]) -> HotShardReport:
        """Fold one ``shard_diff`` window; return the updated verdict.

        ``window`` is the dict produced by
        :meth:`~repro.rma.trace.TraceRecorder.shard_diff` (keys
        ``"ops"``, ``"bytes"``, ``"conflicts"``).
        """
        ops = window["ops"]
        conflicts = window.get("conflicts") or [0] * self.nranks
        if len(ops) != self.nranks:
            raise ValueError(
                f"window has {len(ops)} shards, detector expects {self.nranks}"
            )
        load = [
            float(o) + self.conflict_weight * float(c)
            for o, c in zip(ops, conflicts)
        ]
        if self._ewma is None:
            self._ewma = load
        else:
            a = self.alpha
            self._ewma = [
                a * new + (1.0 - a) * old
                for new, old in zip(load, self._ewma)
            ]
        window_ops = sum(ops)
        mean = sum(self._ewma) / self.nranks
        if mean > 0.0:
            scores = tuple(e / mean for e in self._ewma)
        else:
            scores = tuple(0.0 for _ in range(self.nranks))
        hot: tuple[int, ...] = ()
        if self.nranks > 1 and window_ops >= self.min_window_ops:
            hot = tuple(
                s for s, score in enumerate(scores) if score >= self.threshold
            )
        report = HotShardReport(
            hot=hot,
            scores=scores,
            skew=max(scores) if scores else 0.0,
            window_ops=window_ops,
        )
        self.last = report
        return report

    def reset(self) -> None:
        """Forget all history (e.g. right after a rebalance)."""
        self._ewma = None
        self.last = None
