"""Adversarial request-stream generation for the serving front-end.

:class:`AdversarialMix` is a drop-in replacement for
:class:`repro.serve.workload.ServeMix` (same ``make(user, seq)``
protocol, same deterministic per-(user, seq) seeding) whose point reads
and one-hop expansions draw their source vertex from a
shard-colocated Zipfian (:class:`repro.traffic.zipf.ShardColocatedKeys`)
instead of the uniform baseline — the celebrity keys all home to one
shard, turning key popularity skew into NIC/lock pressure on a single
rank.

:class:`TrafficPhase` + :func:`flash_crowd` describe multi-phase load
shapes (calm → ramp → peak), and :func:`run_phases` drives them through
:class:`~repro.serve.workload.ClosedLoopLoad` back to back in simulated
time, so a benchmark can measure per-phase latency before, during, and
after a storm.

For the Table 3 OLTP path, :meth:`AdversarialMix.key_sampler` plugs
straight into ``run_oltp_rank(key_sampler=...)`` and
:func:`large_txn_sizes` into ``run_oltp_rank(batch_sizes=...)`` — the
verbatim paper mixes, skewed keys, occasional jumbo transactions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property
from typing import Any, Callable

from ..serve.request import ANALYTICS, OLTP
from ..serve.workload import ANALYTICS_AGG, ONE_HOP, POINT_READ, ClosedLoopLoad
from .zipf import ShardColocatedKeys

__all__ = [
    "AdversarialMix",
    "TrafficPhase",
    "flash_crowd",
    "run_phases",
    "large_txn_sizes",
]


@dataclass(frozen=True)
class AdversarialMix:
    """Zipf-skewed, shard-colocated request mix (ServeMix-compatible)."""

    n_vertices: int
    nranks: int
    theta: float = 0.99
    hot_shard: int = 0
    n_hot: int = 8
    analytics_fraction: float = 0.0
    onehop_fraction: float = 0.25
    analytics_text: str = ANALYTICS_AGG
    seed: int = 0

    @cached_property
    def keys(self) -> ShardColocatedKeys:
        return ShardColocatedKeys(
            self.n_vertices,
            self.nranks,
            hot_shard=self.hot_shard,
            theta=self.theta,
            n_hot=self.n_hot,
        )

    def make(self, user: int, seq: int) -> tuple[str, str, dict]:
        """The ``(qclass, text, params)`` of ``user``'s ``seq``-th request."""
        rng = random.Random(f"traffic/{self.seed}/{user}/{seq}")
        draw = rng.random()
        if draw < self.analytics_fraction:
            return ANALYTICS, self.analytics_text, {"minscore": 50.0}
        src = self.keys.sample(rng)
        if draw < self.analytics_fraction + self.onehop_fraction:
            return OLTP, ONE_HOP, {"src": src}
        return OLTP, POINT_READ, {"src": src}

    def key_sampler(self) -> Callable[[random.Random], int]:
        """Sampler for ``run_oltp_rank(key_sampler=...)``."""
        return self.keys.sample


@dataclass(frozen=True)
class TrafficPhase:
    """One segment of a multi-phase load shape."""

    name: str
    arrival_rate: float
    n_requests: int
    n_users: int
    deadline_in: float | None = None
    horizon: float | None = None
    #: per-phase mix override (e.g. the storm phase goes Zipfian while
    #: the calm phases stay uniform); ``None`` uses the shared mix
    mix: Any | None = None


def flash_crowd(
    base_rate: float,
    peak_rate: float,
    *,
    n_users: int,
    base_requests: int,
    peak_requests: int,
    ramp_steps: int = 1,
    peak_mix: Any | None = None,
    deadline_in: float | None = None,
    horizon: float | None = None,
) -> list[TrafficPhase]:
    """A calm → geometric ramp → peak phase list.

    The ramp steps interpolate the arrival rate geometrically so each
    step multiplies load by the same factor — the shape of a real flash
    crowd (retweets beget retweets), and the shape that gives an EWMA
    detector a few windows of warning before the peak hits.
    """
    if base_rate <= 0.0 or peak_rate <= 0.0:
        raise ValueError("rates must be positive")
    if ramp_steps < 0:
        raise ValueError("ramp_steps must be >= 0")
    phases = [
        TrafficPhase(
            "base", base_rate, base_requests, n_users,
            deadline_in=deadline_in, horizon=horizon,
        )
    ]
    ratio = peak_rate / base_rate
    for i in range(1, ramp_steps + 1):
        rate = base_rate * ratio ** (i / (ramp_steps + 1))
        phases.append(
            TrafficPhase(
                f"ramp{i}", rate, max(1, base_requests // 2), n_users,
                deadline_in=deadline_in, horizon=horizon, mix=peak_mix,
            )
        )
    phases.append(
        TrafficPhase(
            "peak", peak_rate, peak_requests, n_users,
            deadline_in=deadline_in, horizon=horizon, mix=peak_mix,
        )
    )
    return phases


def run_phases(
    ctx,
    server,
    sessions,
    mix,
    phases: list[TrafficPhase],
    start: float = 0.0,
) -> dict[str, list]:
    """Drive ``phases`` back to back; returns per-phase request records.

    Each phase starts at the later of its predecessor's end and the
    workers' virtual clocks, so simulated arrival timestamps stay
    monotone across phases.  Call from the front-end rank only (the
    same contract as :meth:`ClosedLoopLoad.run`).
    """
    out: dict[str, list] = {}
    t = start
    for ph in phases:
        t = max(t, server.virtual_now())
        load = ClosedLoopLoad(
            server,
            sessions,
            ph.mix if ph.mix is not None else mix,
            n_users=ph.n_users,
            arrival_rate=ph.arrival_rate,
            n_requests=ph.n_requests,
            deadline_in=ph.deadline_in,
            start=t,
            horizon=ph.horizon,
        )
        out[ph.name] = load.run(ctx)
    return out


def large_txn_sizes(
    p_large: float = 0.1, small: int = 1, large: int = 16
) -> Callable[[random.Random], int]:
    """Batch-size sampler mixing occasional jumbo transactions.

    Plug into ``run_oltp_rank(batch_sizes=...)``: most transactions
    carry ``small`` operations, a ``p_large`` fraction carry ``large``
    — widening the abort blast radius and hold time of locks, which is
    exactly what makes skewed keys hurt.
    """
    if not 0.0 <= p_large <= 1.0:
        raise ValueError("p_large must be in [0, 1]")
    if small < 1 or large < 1:
        raise ValueError("batch sizes must be >= 1")

    def draw(rng: random.Random) -> int:
        return large if rng.random() < p_large else small

    return draw
