"""Adversarial concurrency scenarios: ingest-under-queries, OLAP-under-mutation.

Both scenarios are SPMD bodies (call from every rank inside
``run_spmd``) exercising the two mixed-workload interleavings the paper
calls out as the hard part of HTAP serving:

* :func:`streaming_ingest` — a subset of ranks streams edge batches
  into the live graph while the rest hammer point/one-hop reads.  The
  readers and writers share shards, locks, and NIC service queues; with
  a fault plan armed, transients and stragglers land mid-batch.
* :func:`mutation_during_olap` — every rank issues a single-process
  write burst and then *immediately* joins a collective OLAP kernel
  (BFS) with no intervening barrier.  A slow mutator's writes therefore
  overlap the fast ranks' collective adjacency reads — the exact
  interleaving GDI's collective-transaction contract must survive
  without deadlock or torn reads.

Results are plain per-rank dataclasses; allgather them to aggregate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..gdi import EdgeOrientation
from ..gdi.errors import GdiNotFound, GdiTransactionCritical
from ..generator.lpg import GeneratedGraph
from ..rma.faults import RmaTransientError
from ..rma.runtime import RankContext
from ..workloads.analytics import bfs

__all__ = ["ScenarioResult", "streaming_ingest", "mutation_during_olap"]


@dataclass
class ScenarioResult:
    """One rank's share of a scenario run."""

    rank: int
    role: str
    n_ok: int = 0  # committed transactions
    n_failed: int = 0  # aborted after exhausting their budget
    n_edges_added: int = 0  # edge creations inside committed batches
    n_reached: int = 0  # BFS-reached vertices (OLAP scenario only)
    sim_elapsed: float = 0.0


def _commit_guarded(ctx, db, write: bool, body, res: ScenarioResult) -> bool:
    """Run one transaction, counting the outcome; True on commit."""
    tx = db.start_transaction(ctx, write=write)
    try:
        body(tx)
        tx.commit()
        res.n_ok += 1
        return True
    except (GdiTransactionCritical, GdiNotFound, RmaTransientError):
        if tx.open:
            tx.abort()
        res.n_failed += 1
        return False


def streaming_ingest(
    ctx: RankContext,
    graph: GeneratedGraph,
    *,
    n_ingest_ranks: int = 1,
    n_edges: int = 64,
    n_queries: int = 64,
    batch: int = 8,
    seed: int = 0,
    key_sampler: Callable[[random.Random], int] | None = None,
) -> ScenarioResult:
    """Streaming edge ingest on some ranks, concurrent queries on the rest.

    Ranks ``< n_ingest_ranks`` append ``n_edges`` edges in write
    transactions of ``batch`` creations between sampled endpoints; the
    others run ``n_queries`` one-hop read transactions.  Pass a Zipfian
    ``key_sampler`` to aim both streams at the same celebrity keys.
    """
    if not 0 < n_ingest_ranks <= ctx.nranks:
        raise ValueError("n_ingest_ranks must be in [1, nranks]")
    db = graph.db
    n = graph.n_vertices
    role = "ingest" if ctx.rank < n_ingest_ranks else "query"
    rng = random.Random(f"traffic/ingest/{seed}/{ctx.rank}")
    draw = key_sampler if key_sampler is not None else (
        lambda r: r.randrange(n)
    )
    res = ScenarioResult(rank=ctx.rank, role=role)
    start = ctx.rt.effective_clock(ctx.rank)
    if role == "ingest":
        label = (
            graph.edge_label(0) if graph.schema.n_edge_labels else None
        )
        remaining = n_edges
        while remaining > 0:
            k = min(batch, remaining)
            remaining -= k
            pairs = [(draw(rng), draw(rng)) for _ in range(k)]
            added = [0]

            def body(tx, pairs=pairs, added=added):
                for a_id, b_id in pairs:
                    a = tx.find_vertex(a_id)
                    b = tx.find_vertex(b_id)
                    if a is not None and b is not None and a.vid != b.vid:
                        tx.create_edge(a, b, label=label)
                        added[0] += 1

            if _commit_guarded(ctx, db, True, body, res):
                res.n_edges_added += added[0]
    else:
        for _ in range(n_queries):
            app = draw(rng)

            def body(tx, app=app):
                v = tx.find_vertex(app)
                if v is not None:
                    for e in v.edges(EdgeOrientation.OUTGOING):
                        e.endpoints()

            _commit_guarded(ctx, db, False, body, res)
    res.sim_elapsed = ctx.rt.effective_clock(ctx.rank) - start
    return res


def mutation_during_olap(
    ctx: RankContext,
    graph: GeneratedGraph,
    *,
    n_rounds: int = 2,
    mutations_per_round: int = 8,
    root: int = 0,
    seed: int = 0,
    key_sampler: Callable[[random.Random], int] | None = None,
) -> ScenarioResult:
    """Interleave write bursts with collective OLAP rounds, barrier-free.

    Each round, every rank commits ``mutations_per_round`` property
    updates / edge insertions in single-process transactions, then joins
    a collective BFS.  Because nothing synchronizes the hand-off, ranks
    reach the collective at different simulated times and the laggards'
    writes run concurrently with the leaders' collective reads.  The
    kernel must terminate (collectives admit joiners in generation
    order) and each round's reached-count is recorded for the caller's
    sanity checks — mutation only ever *adds* reachability here.
    """
    db = graph.db
    n = graph.n_vertices
    rng = random.Random(f"traffic/olap/{seed}/{ctx.rank}")
    draw = key_sampler if key_sampler is not None else (
        lambda r: r.randrange(n)
    )
    p_ts = graph.ptypes.get("p_ts")
    label = graph.edge_label(0) if graph.schema.n_edge_labels else None
    res = ScenarioResult(rank=ctx.rank, role="mutate+olap")
    start = ctx.rt.effective_clock(ctx.rank)
    for _ in range(n_rounds):
        for _ in range(mutations_per_round):
            if rng.random() < 0.5 and p_ts is not None:
                app = draw(rng)
                stamp = rng.randrange(1 << 31)

                def body(tx, app=app, stamp=stamp):
                    v = tx.find_vertex(app)
                    if v is not None:
                        v.set_property(p_ts, stamp)

            else:
                a_id, b_id = draw(rng), draw(rng)

                def body(tx, a_id=a_id, b_id=b_id):
                    a = tx.find_vertex(a_id)
                    b = tx.find_vertex(b_id)
                    if a is not None and b is not None and a.vid != b.vid:
                        tx.create_edge(a, b, label=label)

            _commit_guarded(ctx, db, True, body, res)
        # straight into the collective: no barrier before the kernel
        depth = bfs(ctx, graph, root=root)
        res.n_reached = ctx.allreduce(len(depth))
    res.sim_elapsed = ctx.rt.effective_clock(ctx.rank) - start
    return res
