"""Seeded Zipfian key machinery for adversarial traffic.

:class:`ZipfSampler` draws key *ranks* ``0..n-1`` (rank 0 hottest) with
``P(k) ∝ 1/(k+1)**theta`` from a precomputed inverse CDF — sampling is
one ``rng.random()`` plus a bisect, so a storm of millions of draws
stays cheap and, given a seeded ``random.Random``, bit-for-bit
reproducible.

:class:`ShardColocatedKeys` turns Zipf ranks into *application IDs* in a
way that weaponizes the directory's placement function: vertices home to
``app_id % nranks``, so choosing the hottest ``n_hot`` celebrity keys
from the residue class of one target shard concentrates the skewed mass
on a single rank's NIC — the hot-shard pattern the detector
(:mod:`repro.traffic.detector`) must catch and the rebalancer must
dissolve.
"""

from __future__ import annotations

import bisect
import random

__all__ = ["ZipfSampler", "ShardColocatedKeys"]


class ZipfSampler:
    """Zipfian sampler over ranks ``0..n-1`` with configurable ``theta``.

    ``theta = 0`` degenerates to uniform; the YCSB-classic ``0.99``
    puts ~19% of the mass on the hottest 16 of 10k keys; ``theta > 1``
    is a genuine celebrity regime.
    """

    def __init__(self, n: int, theta: float = 0.99) -> None:
        if n < 1:
            raise ValueError("need n >= 1 keys")
        if theta < 0.0:
            raise ValueError("theta must be >= 0")
        self.n = n
        self.theta = theta
        acc = 0.0
        cdf: list[float] = []
        for k in range(n):
            acc += (k + 1) ** -theta
            cdf.append(acc)
        self._cdf = [c / acc for c in cdf]

    def pmf(self, k: int) -> float:
        """Probability of rank ``k``."""
        return self._cdf[k] - (self._cdf[k - 1] if k > 0 else 0.0)

    def head_mass(self, k: int) -> float:
        """Total probability of the hottest ``k`` ranks."""
        if k <= 0:
            return 0.0
        return self._cdf[min(k, self.n) - 1]

    def sample(self, rng: random.Random) -> int:
        """Draw one rank using the caller's seeded RNG."""
        i = bisect.bisect_right(self._cdf, rng.random())
        return i if i < self.n else self.n - 1


class ShardColocatedKeys:
    """A permutation of ``range(n_keys)`` colocating celebrities.

    Zipf rank ``k < n_hot`` maps to the ``k``-th application ID of the
    residue class ``hot_shard (mod nranks)`` — all celebrities home to
    one shard.  The tail ranks map to the remaining IDs in natural
    order, spreading residual traffic round-robin like the uniform
    baseline.  The map is a bijection, so any key remains reachable and
    full-scan oracles see the same vertex set as a uniform run.
    """

    def __init__(
        self,
        n_keys: int,
        nranks: int,
        hot_shard: int = 0,
        theta: float = 0.99,
        n_hot: int = 8,
    ) -> None:
        if nranks < 1:
            raise ValueError("need nranks >= 1")
        if not 0 <= hot_shard < nranks:
            raise ValueError(f"hot_shard {hot_shard} not in [0, {nranks})")
        if n_hot < 0:
            raise ValueError("n_hot must be >= 0")
        hot = list(range(hot_shard, n_keys, nranks))[:n_hot]
        hotset = set(hot)
        self._perm = hot + [i for i in range(n_keys) if i not in hotset]
        self.hot_ids: tuple[int, ...] = tuple(hot)
        self.hot_shard = hot_shard
        self.nranks = nranks
        self.sampler = ZipfSampler(n_keys, theta)

    @property
    def n_keys(self) -> int:
        return self.sampler.n

    @property
    def theta(self) -> float:
        return self.sampler.theta

    def app_id(self, zipf_rank: int) -> int:
        """The application ID behind Zipf rank ``zipf_rank``."""
        return self._perm[zipf_rank]

    def sample(self, rng: random.Random) -> int:
        """Draw one application ID (hot mass lands on ``hot_shard``)."""
        return self._perm[self.sampler.sample(rng)]

    def hot_mass(self) -> float:
        """Traffic fraction aimed at the colocated celebrity set."""
        return self.sampler.head_mass(len(self.hot_ids))
