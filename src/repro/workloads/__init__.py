"""Graph database workloads from the paper's Section 4 and evaluation.

OLTP interactive mixes (Table 3) in :mod:`.oltp`; OLAP analytics — BFS,
PageRank, CDLP, WCC, LCC, k-hop — in :mod:`.analytics`; the GNN workload
of Listing 2 in :mod:`.gnn`; OLSP/business-intelligence queries of
Listing 3 in :mod:`.bi`.
"""

from .analytics import (
    LocalAdjacency,
    bfs,
    cdlp,
    khop_count,
    lcc,
    load_local_adjacency,
    load_local_weighted_adjacency,
    pagerank,
    sssp,
    triangle_count,
    wcc,
)
from .bi import (
    aggregate_property_by_label,
    bi2_style_query,
    filtered_two_hop_count,
    group_count_by_label,
)
from .gnn import gcn_forward, gcn_train, random_gcn_weights, relu
from .interactive import friends_of_friends, transactional_path_search
from .oltp import (
    MIXES,
    OltpRankResult,
    OltpResult,
    OpType,
    WorkloadMix,
    aggregate_oltp,
    run_oltp_rank,
)

__all__ = [
    "LocalAdjacency",
    "bfs",
    "cdlp",
    "khop_count",
    "lcc",
    "load_local_adjacency",
    "pagerank",
    "wcc",
    "sssp",
    "triangle_count",
    "load_local_weighted_adjacency",
    "bi2_style_query",
    "aggregate_property_by_label",
    "group_count_by_label",
    "filtered_two_hop_count",
    "gcn_forward",
    "gcn_train",
    "random_gcn_weights",
    "relu",
    "friends_of_friends",
    "transactional_path_search",
    "MIXES",
    "OltpRankResult",
    "OltpResult",
    "OpType",
    "WorkloadMix",
    "aggregate_oltp",
    "run_oltp_rank",
]
