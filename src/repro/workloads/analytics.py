"""OLAP graph analytics over collective transactions (paper Section 6.5).

Implements the Graphalytics-style kernels the paper evaluates in Figure 6:
BFS, PageRank (PR), Community Detection by Label Propagation (CDLP),
Weakly Connected Components (WCC), Local Clustering Coefficient (LCC), and
k-hop counts.

Structure of every kernel (Table 2's recommendation): graph data is
accessed through *collective read transactions* — each rank walks its
local vertices with GDI handles and fetches adjacency once into a local
cache — and the iterative phases exchange values with collectives
(alltoall routed by the owning rank, allreduce for convergence).  All
communication and per-edge compute is charged to the simulated clocks, so
the Figure 6 scaling shapes emerge from the algorithms' real communication
structure.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..gdi import EdgeOrientation
from ..generator.lpg import GeneratedGraph
from ..rma.runtime import RankContext

__all__ = [
    "LocalAdjacency",
    "load_local_adjacency",
    "load_local_weighted_adjacency",
    "bfs",
    "khop_count",
    "pagerank",
    "wcc",
    "cdlp",
    "lcc",
    "sssp",
    "triangle_count",
]


@dataclass
class LocalAdjacency:
    """This rank's shard of the adjacency, in application-ID space."""

    neighbors: dict[int, list[int]]  # local app id -> neighbor app ids
    n_local_edges: int
    nranks: int
    #: application ID -> owning rank (vertices can spill off their
    #: round-robin home under memory pressure, Section 5.3)
    owner: dict[int, int] | None = None

    def home(self, app_id: int) -> int:
        if self.owner is not None:
            return self.owner.get(app_id, app_id % self.nranks)
        return app_id % self.nranks


def load_local_adjacency(
    ctx: RankContext,
    graph: GeneratedGraph,
    orientation: EdgeOrientation = EdgeOrientation.OUTGOING,
    dedup: bool = False,
) -> LocalAdjacency:
    """Fetch the local adjacency shard inside one collective transaction.

    The vid -> application-ID map is rebuilt from the live database (not
    from the generator's snapshot), so adjacency loads stay correct after
    OLTP mutations added or removed vertices.
    """
    db = graph.db
    # With MVCC enabled the whole load runs on one frozen watermark:
    # every rank reads the same committed prefix, so a concurrent OLTP
    # storm can neither tear the adjacency nor abort the collective.
    tx = db.start_collective_transaction(
        ctx, snapshot=db.mvcc is not None
    )
    local_vids = tx.visible_vertices(
        db.directory.local_vertices(ctx), ctx.rank
    )
    # One batched read pipelines every local holder fetch (coalesced
    # per home rank) instead of one round trip per vertex.
    handles = tx.associate_vertices(local_vids, missing_ok=True)
    pairs = [
        (vid, h) for vid, h in zip(local_vids, handles) if h is not None
    ]
    handles = [h for _, h in pairs]
    local_map: dict[int, int] = {vid: h.app_id for vid, h in pairs}
    app_of: dict[int, int] = {}
    owner: dict[int, int] = {}
    for rank, part in enumerate(ctx.allgather(local_map)):
        app_of.update(part)
        for app in part.values():
            owner[app] = rank
    neighbors: dict[int, list[int]] = {}
    n_edges = 0
    for v in handles:
        # Skip dangling slots whose target vanished mid-snapshot.
        nbrs = [
            app_of[nvid]
            for nvid in v.neighbors(orientation)
            if nvid in app_of
        ]
        if dedup:
            nbrs = sorted(set(nbrs))
        neighbors[v.app_id] = nbrs
        n_edges += len(nbrs)
    tx.commit()
    return LocalAdjacency(
        neighbors=neighbors,
        n_local_edges=n_edges,
        nranks=ctx.nranks,
        owner=owner,
    )


# ------------------------------------------------------------------- BFS --
def bfs(
    ctx: RankContext,
    graph: GeneratedGraph,
    root: int,
    orientation: EdgeOrientation = EdgeOrientation.ANY,
    adj: LocalAdjacency | None = None,
) -> dict[int, int]:
    """Level-synchronous distributed BFS from application ID ``root``.

    Returns this rank's local ``{app_id: depth}`` map (allgather to merge).
    """
    if adj is None:
        adj = load_local_adjacency(ctx, graph, orientation)
    depth: dict[int, int] = {}
    frontier: list[int] = []
    if adj.home(root) == ctx.rank and root in adj.neighbors:
        depth[root] = 0
        frontier = [root]
    level = 0
    while True:
        if not ctx.allreduce(len(frontier)):
            break
        outboxes: list[list[int]] = [[] for _ in range(ctx.nranks)]
        scanned = 0
        for u in frontier:
            for nbr in adj.neighbors.get(u, ()):
                outboxes[adj.home(nbr)].append(nbr)
                scanned += 1
        ctx.compute(scanned)
        # Vectorized per-destination dedup: a frontier reaching the same
        # remote vertex through many edges sends its ID once, shrinking
        # both the alltoall payload and the receiver-side scan.
        packed = [
            np.unique(np.asarray(box, dtype=np.int64)) for box in outboxes
        ]
        received = ctx.alltoall(packed)
        level += 1
        frontier = []
        for box in received:
            for v in box:
                v = int(v)
                if v not in depth:
                    depth[v] = level
                    frontier.append(v)
        ctx.compute(sum(len(b) for b in received))
    return depth


def khop_count(
    ctx: RankContext,
    graph: GeneratedGraph,
    root: int,
    k: int,
    orientation: EdgeOrientation = EdgeOrientation.ANY,
    adj: LocalAdjacency | None = None,
) -> int:
    """Number of vertices within ``k`` hops of ``root`` (global result)."""
    if adj is None:
        adj = load_local_adjacency(ctx, graph, orientation)
    depth: dict[int, int] = {}
    frontier: list[int] = []
    if adj.home(root) == ctx.rank and root in adj.neighbors:
        depth[root] = 0
        frontier = [root]
    for level in range(1, k + 1):
        if not ctx.allreduce(len(frontier)):
            break
        outboxes: list[list[int]] = [[] for _ in range(ctx.nranks)]
        for u in frontier:
            for nbr in adj.neighbors.get(u, ()):
                outboxes[adj.home(nbr)].append(nbr)
        ctx.compute(sum(len(b) for b in outboxes))
        packed = [
            np.unique(np.asarray(box, dtype=np.int64)) for box in outboxes
        ]
        received = ctx.alltoall(packed)
        frontier = []
        for box in received:
            for v in box:
                v = int(v)
                if v not in depth:
                    depth[v] = level
                    frontier.append(v)
    return ctx.allreduce(len(depth))


# -------------------------------------------------------------- PageRank --
def pagerank(
    ctx: RankContext,
    graph: GeneratedGraph,
    iterations: int = 20,
    damping: float = 0.85,
    adj: LocalAdjacency | None = None,
) -> dict[int, float]:
    """Classic iterative PageRank over out-edges; returns local ranks."""
    if adj is None:
        adj = load_local_adjacency(ctx, graph, EdgeOrientation.OUTGOING)
    # live global vertex count (mutations may have changed it since the
    # graph was generated), so the rank mass sums to exactly 1
    n = max(1, ctx.allreduce(len(adj.neighbors)))
    pr = {u: 1.0 / n for u in adj.neighbors}
    for _ in range(iterations):
        # Combiner aggregation: sum all shares headed for one destination
        # vertex locally, then ship (ids, sums) as packed numpy vectors —
        # the alltoall payload scales with distinct targets, not edges.
        outacc: list[dict[int, float]] = [{} for _ in range(ctx.nranks)]
        dangling = 0.0
        for u, nbrs in adj.neighbors.items():
            if not nbrs:
                dangling += pr[u]
                continue
            share = pr[u] / len(nbrs)
            for v in nbrs:
                acc = outacc[adj.home(v)]
                acc[v] = acc.get(v, 0.0) + share
        ctx.compute(adj.n_local_edges)
        packed = [
            (
                np.fromiter(acc.keys(), dtype=np.int64, count=len(acc)),
                np.fromiter(acc.values(), dtype=np.float64, count=len(acc)),
            )
            for acc in outacc
        ]
        received = ctx.alltoall(packed)
        dangling_total = ctx.allreduce(dangling)
        incoming: dict[int, float] = {u: 0.0 for u in adj.neighbors}
        for ids, sums in received:
            for v, share in zip(ids, sums):
                incoming[int(v)] += share
        base = (1.0 - damping) / n + damping * dangling_total / n
        pr = {u: base + damping * s for u, s in incoming.items()}
        ctx.compute(len(pr))
    return pr


# ------------------------------------------------------------------ WCC --
def wcc(
    ctx: RankContext,
    graph: GeneratedGraph,
    adj: LocalAdjacency | None = None,
) -> dict[int, int]:
    """Weakly connected components via hash-min label propagation.

    Returns ``{app_id: component_id}`` for local vertices; the component
    ID is the minimum application ID in the component.
    """
    if adj is None:
        adj = load_local_adjacency(ctx, graph, EdgeOrientation.ANY)
    comp = {u: u for u in adj.neighbors}
    while True:
        outboxes: list[list[tuple[int, int]]] = [[] for _ in range(ctx.nranks)]
        for u, nbrs in adj.neighbors.items():
            cu = comp[u]
            for v in nbrs:
                outboxes[adj.home(v)].append((v, cu))
        ctx.compute(adj.n_local_edges)
        received = ctx.alltoall(outboxes)
        changed = 0
        for box in received:
            for v, c in box:
                if c < comp[v]:
                    comp[v] = c
                    changed += 1
        ctx.compute(sum(len(b) for b in received))
        if not ctx.allreduce(changed):
            return comp


# ----------------------------------------------------------------- CDLP --
def cdlp(
    ctx: RankContext,
    graph: GeneratedGraph,
    iterations: int = 10,
    adj: LocalAdjacency | None = None,
) -> dict[int, int]:
    """Community detection by label propagation (Graphalytics CDLP).

    Synchronous updates; each vertex adopts the most frequent neighbor
    label, ties broken by the smallest label.  Returns local labels.
    """
    if adj is None:
        adj = load_local_adjacency(ctx, graph, EdgeOrientation.ANY)
    label = {u: u for u in adj.neighbors}
    for _ in range(iterations):
        # Every vertex sends its current label to each neighbor's owner.
        outboxes: list[list[tuple[int, int]]] = [[] for _ in range(ctx.nranks)]
        for u, nbrs in adj.neighbors.items():
            lu = label[u]
            for v in nbrs:
                outboxes[adj.home(v)].append((v, lu))
        ctx.compute(adj.n_local_edges)
        received = ctx.alltoall(outboxes)
        votes: dict[int, Counter] = {}
        for box in received:
            for v, l in box:
                votes.setdefault(v, Counter())[l] += 1
        new_label = {}
        for u in adj.neighbors:
            if u in votes:
                best = max(votes[u].items(), key=lambda kv: (kv[1], -kv[0]))
                new_label[u] = best[0]
            else:
                new_label[u] = label[u]
        ctx.compute(sum(len(c) for c in votes.values()))
        label = new_label
    return label


# ------------------------------------------------------------------ LCC --
def lcc(
    ctx: RankContext,
    graph: GeneratedGraph,
    adj: LocalAdjacency | None = None,
) -> dict[int, float]:
    """Local clustering coefficient of every local vertex.

    Undirected semantics over deduplicated neighborhoods (self-loops
    ignored).  The wedge-check exchange makes LCC the costliest kernel —
    O(n + m^(3/2))-class work, which is why the paper observes steeper
    weak-scaling slopes for it (Section 6.5).
    """
    if adj is None:
        adj = load_local_adjacency(ctx, graph, EdgeOrientation.ANY, dedup=True)
    nbr_sets = {
        u: {v for v in nbrs if v != u} for u, nbrs in adj.neighbors.items()
    }
    # round 1: ask each neighbor's owner to intersect neighborhoods
    outboxes: list[list[tuple[int, int, tuple[int, ...]]]] = [
        [] for _ in range(ctx.nranks)
    ]
    for u, nbrs in nbr_sets.items():
        frozen = tuple(sorted(nbrs))
        for v in nbrs:
            outboxes[adj.home(v)].append((v, u, frozen))
    ctx.compute(sum(len(b) for b in outboxes))
    received = ctx.alltoall(outboxes)
    # round 2: owners of v compute |N(v) ∩ N(u)| and reply to u's owner
    replies: list[list[tuple[int, int]]] = [[] for _ in range(ctx.nranks)]
    work = 0
    for box in received:
        for v, u, frozen in box:
            common = len(nbr_sets[v].intersection(frozen))
            work += min(len(nbr_sets[v]), len(frozen))
            replies[adj.home(u)].append((u, common))
    ctx.compute(work)
    received2 = ctx.alltoall(replies)
    triangles: dict[int, int] = {u: 0 for u in nbr_sets}
    for box in received2:
        for u, common in box:
            triangles[u] += common
    out: dict[int, float] = {}
    for u, nbrs in nbr_sets.items():
        d = len(nbrs)
        out[u] = triangles[u] / (d * (d - 1)) if d >= 2 else 0.0
    ctx.compute(len(out))
    return out


# ----------------------------------------------------------------- SSSP --
def load_local_weighted_adjacency(
    ctx: RankContext,
    graph: GeneratedGraph,
    weight_ptype,
    orientation: EdgeOrientation = EdgeOrientation.ANY,
    default_weight: float = 1.0,
) -> tuple[LocalAdjacency, dict[int, list[float]]]:
    """Adjacency plus per-edge weights read from an edge property.

    Lightweight edges (which carry no properties, Section 5.4.2) get
    ``default_weight``; heavyweight edges contribute their stored value.
    Returns ``(adjacency, weights)`` with parallel neighbor/weight lists.
    """
    db = graph.db
    tx = db.start_collective_transaction(
        ctx, snapshot=db.mvcc is not None
    )
    local_vids = tx.visible_vertices(
        db.directory.local_vertices(ctx), ctx.rank
    )
    handles = tx.associate_vertices(local_vids, missing_ok=True)
    pairs = [
        (vid, h) for vid, h in zip(local_vids, handles) if h is not None
    ]
    handles = [h for _, h in pairs]
    local_map = {vid: h.app_id for vid, h in pairs}
    app_of: dict[int, int] = {}
    owner: dict[int, int] = {}
    for rank, part in enumerate(ctx.allgather(local_map)):
        app_of.update(part)
        for app in part.values():
            owner[app] = rank
    neighbors: dict[int, list[int]] = {}
    weights: dict[int, list[float]] = {}
    n_edges = 0
    for v in handles:
        nbrs: list[int] = []
        wts: list[float] = []
        for e in v.edges(orientation):
            other = e.other_endpoint()
            if other not in app_of:
                continue
            w = default_weight
            if e.heavy and weight_ptype is not None:
                stored = e.property(weight_ptype)
                if stored is not None:
                    w = float(stored)
            nbrs.append(app_of[other])
            wts.append(w)
        neighbors[v.app_id] = nbrs
        weights[v.app_id] = wts
        n_edges += len(nbrs)
    tx.commit()
    adj = LocalAdjacency(
        neighbors=neighbors, n_local_edges=n_edges, nranks=ctx.nranks,
        owner=owner,
    )
    return adj, weights


def sssp(
    ctx: RankContext,
    graph: GeneratedGraph,
    root: int,
    weight_ptype=None,
    orientation: EdgeOrientation = EdgeOrientation.ANY,
    adj: LocalAdjacency | None = None,
    weights: dict[int, list[float]] | None = None,
) -> dict[int, float]:
    """Single-source shortest paths (distributed Bellman-Ford).

    Non-negative weights; unweighted edges count as 1.  Returns this
    rank's local ``{app_id: distance}`` map.  Level-synchronous relaxation
    rounds run until a global no-change round (allreduce), the standard
    frontier-driven Bellman-Ford used by Graphalytics reference codes.
    """
    if adj is None or weights is None:
        adj, weights = load_local_weighted_adjacency(
            ctx, graph, weight_ptype, orientation
        )
    INF = float("inf")
    dist: dict[int, float] = {u: INF for u in adj.neighbors}
    active: set[int] = set()
    if adj.home(root) == ctx.rank and root in dist:
        dist[root] = 0.0
        active.add(root)
    while True:
        if not ctx.allreduce(len(active)):
            return dist
        # Min-combine per destination: only the best tentative distance
        # for each remote vertex crosses the network, packed as numpy
        # (ids, dists) vectors.
        outacc: list[dict[int, float]] = [{} for _ in range(ctx.nranks)]
        relaxed = 0
        for u in active:
            du = dist[u]
            for v, w in zip(adj.neighbors[u], weights[u]):
                acc = outacc[adj.home(v)]
                cand = du + w
                if cand < acc.get(v, INF):
                    acc[v] = cand
                relaxed += 1
        ctx.compute(relaxed)
        packed = [
            (
                np.fromiter(acc.keys(), dtype=np.int64, count=len(acc)),
                np.fromiter(acc.values(), dtype=np.float64, count=len(acc)),
            )
            for acc in outacc
        ]
        received = ctx.alltoall(packed)
        active = set()
        for ids, cands in received:
            for v, cand in zip(ids, cands):
                v = int(v)
                if cand < dist[v]:
                    dist[v] = float(cand)
                    active.add(v)
        ctx.compute(sum(len(ids) for ids, _ in received))


# ------------------------------------------------------------ triangles --
def triangle_count(
    ctx: RankContext,
    graph: GeneratedGraph,
    adj: LocalAdjacency | None = None,
) -> int:
    """Global triangle count (undirected, simple-graph semantics).

    Uses the same two-round wedge-check exchange as :func:`lcc`:
    ``sum_v sum_{u in N(v)} |N(v) ∩ N(u)|`` counts each triangle six
    times.  Returns the global total on every rank.
    """
    if adj is None:
        adj = load_local_adjacency(ctx, graph, EdgeOrientation.ANY, dedup=True)
    nbr_sets = {
        u: {v for v in nbrs if v != u} for u, nbrs in adj.neighbors.items()
    }
    outboxes: list[list[tuple[int, tuple[int, ...]]]] = [
        [] for _ in range(ctx.nranks)
    ]
    for u, nbrs in nbr_sets.items():
        frozen = tuple(sorted(nbrs))
        for v in nbrs:
            outboxes[adj.home(v)].append((v, frozen))
    ctx.compute(sum(len(b) for b in outboxes))
    received = ctx.alltoall(outboxes)
    local_sum = 0
    work = 0
    for box in received:
        for v, frozen in box:
            local_sum += len(nbr_sets[v].intersection(frozen))
            work += min(len(nbr_sets[v]), len(frozen))
    ctx.compute(work)
    total = ctx.allreduce(local_sum)
    return total // 6
