"""Business-intelligence (OLSP) workloads (paper Listing 3, Section 6.5).

The paper's BI example is the Cypher query

    MATCH (per:Person) WHERE per.age > 30
      AND per-[:OWN]->vehicle(:Car) AND vehicle.color = red
    RETURN count(per)

implemented with a collective transaction: fetch the label-indexed vertex
set, filter by a property predicate, traverse constraint-filtered edges,
check the neighbor's label and property, and reduce the count globally.

:func:`filtered_two_hop_count` is that exact shape, parameterized over the
generated schema, and :func:`bi2_style_query` instantiates it the way the
evaluation uses "BI2" — a group-by-free aggregate over a filtered two-hop
pattern, which is the communication-relevant core of LDBC SNB BI query 2.

Every function also has a declarative path: with ``use_engine=True`` the
query runs through :mod:`repro.query` on rank 0 (the engine executes
single-process plans) and the result is broadcast, preserving each
function's return contract.  ``tests/workloads`` asserts both paths
produce identical answers.
"""

from __future__ import annotations

from typing import Any

from ..gdi import Constraint, EdgeOrientation
from ..gda.index_impl import ExplicitIndex
from ..gda.metadata import Label, PropertyType
from ..generator.lpg import GeneratedGraph
from ..rma.runtime import RankContext

#: workload comparison ops -> Cypher-lite comparison ops
_OP_TEXT = {"==": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _engine_for(graph: GeneratedGraph, engine):
    if engine is not None:
        return engine
    from ..query import QueryEngine

    return QueryEngine(graph.db)

__all__ = [
    "filtered_two_hop_count",
    "bi2_style_query",
    "group_count_by_label",
    "aggregate_property_by_label",
]


def filtered_two_hop_count(
    ctx: RankContext,
    graph: GeneratedGraph,
    *,
    src_label: Label,
    src_ptype: PropertyType | None = None,
    src_op: str = ">",
    src_value: Any = None,
    edge_label: Label | None = None,
    dst_label: Label | None = None,
    dst_ptype: PropertyType | None = None,
    dst_op: str = "==",
    dst_value: Any = None,
    index: ExplicitIndex | None = None,
    orientation: EdgeOrientation = EdgeOrientation.OUTGOING,
    use_engine: bool = False,
    engine=None,
) -> int:
    """Count source vertices matching a filtered two-hop pattern.

    Follows Listing 3: every rank scans its local shard of the source set
    (via the explicit ``index`` when provided, else the vertex directory),
    applies the source property predicate, traverses edges optionally
    constrained by ``edge_label``, checks the neighbor's label and
    property, and the per-rank counts are combined with a global reduce.

    With ``use_engine=True`` rank 0 runs the equivalent declarative
    query (``MATCH (per:SRC)-[:EL]->(v:DST) WHERE ... RETURN
    count(DISTINCT per)``) — the planner routes the anchor through the
    explicit index automatically when one covers the source label.
    Returns the total on rank 0 and ``0`` elsewhere, like the
    hand-coded path.
    """
    db = graph.db
    if use_engine:
        total = 0
        if ctx.rank == 0:
            from .interactive import _rel_pattern

            engine = _engine_for(graph, engine)
            rel = _rel_pattern(edge_label, orientation)
            where = []
            params: dict[str, Any] = {}
            if src_ptype is not None:
                where.append(f"per.{src_ptype.name} {_OP_TEXT[src_op]} $sv")
                params["sv"] = src_value
            if dst_ptype is not None:
                where.append(f"v.{dst_ptype.name} {_OP_TEXT[dst_op]} $dv")
                params["dv"] = dst_value
            text = (
                f"MATCH (per:{src_label.name}){rel}"
                f"(v{':' + dst_label.name if dst_label else ''})"
            )
            if where:
                text += " WHERE " + " AND ".join(where)
            text += " RETURN count(DISTINCT per)"
            total = engine.run(ctx, text, params=params).scalar()
        ctx.barrier()
        return total if ctx.rank == 0 else 0
    # BI traversals run on one frozen watermark when MVCC is enabled:
    # lock-free, abort-free, and consistent under concurrent OLTP
    tx = db.start_collective_transaction(
        ctx, snapshot=db.mvcc is not None
    )
    if index is not None:
        candidates = index.local_vertices(ctx)
    else:
        candidates = tx.visible_vertices(
            db.directory.local_vertices(ctx), ctx.rank
        )
    edge_constraint = (
        Constraint.has_label(edge_label.int_id) if edge_label else None
    )
    local_count = 0
    sources: list[tuple[object, list[int]]] = []
    frontier: list[int] = []
    for v in tx.associate_vertices(candidates, missing_ok=True):
        if v is None:
            continue
        if index is None and not v.has_label(src_label):
            continue
        if src_ptype is not None:
            value = v.property(src_ptype)
            if value is None or not _compare(src_op, value, src_value):
                continue
        nvids = v.neighbors(orientation, constraint=edge_constraint)
        sources.append((v, nvids))
        frontier.extend(nvids)
    # Batched second hop: every surviving source's neighborhood is
    # pipelined in one read; the check loop below hits the cache.  A
    # neighbor can be absent at the snapshot's watermark (created after
    # it, or adjacency observed ahead of the frozen vertex state) — those
    # simply don't match.
    hop2 = dict(zip(frontier, tx.associate_vertices(frontier, missing_ok=True)))
    for v, nvids in sources:
        matched = False
        for nvid in nvids:
            n = hop2.get(nvid)
            if n is None:
                continue
            if dst_label is not None and not n.has_label(dst_label):
                continue
            if dst_ptype is not None:
                nvalue = n.property(dst_ptype)
                if nvalue is None or not _compare(dst_op, nvalue, dst_value):
                    continue
            matched = True
            break
        if matched:
            local_count += 1
    tx.commit()
    total = ctx.reduce(local_count, op="sum", root=0)
    return total if ctx.rank == 0 else 0


def _compare(op: str, a: Any, b: Any) -> bool:
    if op == "==":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise ValueError(f"unknown operator {op!r}")


def bi2_style_query(
    ctx: RankContext,
    graph: GeneratedGraph,
    *,
    min_score: float = 50.0,
    index: ExplicitIndex | None = None,
    use_engine: bool = False,
    engine=None,
) -> int:
    """The evaluation's BI2-shaped aggregate over the generated schema.

    "How many VL0-labelled vertices with p_score > ``min_score`` have an
    EL0-labelled edge to a VL1-labelled neighbor with p_active = true?" —
    the same index-scan + filter + constrained-traversal + neighbor-check
    + global-reduce pipeline as the paper's red-car query.

    Returns the global count on every rank.
    """
    schema = graph.schema
    src_label = graph.vertex_label(0)
    dst_label = graph.vertex_label(1 % max(1, schema.n_vertex_labels))
    edge_label = graph.edge_label(0) if schema.n_edge_labels else None
    count = filtered_two_hop_count(
        ctx,
        graph,
        src_label=src_label,
        src_ptype=graph.ptypes.get("p_score"),
        src_op=">",
        src_value=min_score,
        edge_label=edge_label,
        dst_label=dst_label,
        dst_ptype=graph.ptypes.get("p_active"),
        dst_op="==",
        dst_value=True,
        index=index,
        use_engine=use_engine,
        engine=engine,
    )
    # broadcast the root's total so every rank returns the global answer
    return ctx.bcast(count, root=0)


def _merge_dicts(a: dict, b: dict) -> dict:
    out = dict(a)
    for k, v in b.items():
        if k in out:
            out[k] = tuple(x + y for x, y in zip(out[k], v))
        else:
            out[k] = v
    return out


def group_count_by_label(
    ctx: RankContext,
    graph: GeneratedGraph,
    *,
    use_engine: bool = False,
    engine=None,
) -> dict[str, int]:
    """OLSP summarization: vertex counts grouped by label.

    The "data summarization and aggregation" class of business
    intelligence queries (Section 2): each rank scans its local shard in
    a collective transaction, builds a partial group-by, and the partials
    merge in a dict-valued allreduce.  Returns the same result on every
    rank.

    With ``use_engine=True`` rank 0 issues one ``MATCH (v:L) RETURN
    count(*)`` per known label and the result dict is broadcast.
    """
    db = graph.db
    if use_engine:
        counts: dict[str, int] | None = None
        if ctx.rank == 0:
            engine = _engine_for(graph, engine)
            counts = {}
            for label in db.all_labels(ctx):
                n = engine.run(
                    ctx, f"MATCH (v:{label.name}) RETURN count(*)"
                ).scalar()
                if n:
                    counts[label.name] = n
        return ctx.bcast(counts, root=0)
    replica = db.replica(ctx)
    tx = db.start_collective_transaction(ctx, snapshot=db.mvcc is not None)
    local_vids = tx.visible_vertices(db.directory.local_vertices(ctx), ctx.rank)
    partial: dict[str, tuple[int]] = {}
    for v in tx.associate_vertices(local_vids, missing_ok=True):
        if v is None:
            continue
        for label in v.labels():
            key = label.name
            partial[key] = (partial.get(key, (0,))[0] + 1,)
    tx.commit()
    merged = ctx.allreduce(partial, op=_merge_dicts)
    del replica
    return {k: v[0] for k, v in merged.items()}


def aggregate_property_by_label(
    ctx: RankContext,
    graph: GeneratedGraph,
    ptype: PropertyType,
    group_label: Label | None = None,
    *,
    use_engine: bool = False,
    engine=None,
) -> dict[str, dict[str, float]]:
    """OLSP aggregate: count/sum/min/max/mean of a numeric property,
    grouped by vertex label (or one ``group_label`` only).

    Returns ``{label_name: {"count", "sum", "min", "max", "mean"}}`` on
    every rank.

    With ``use_engine=True`` rank 0 issues one aggregate query per
    label and the result dict is broadcast.
    """
    db = graph.db
    if use_engine:
        stats: dict[str, dict[str, float]] | None = None
        if ctx.rank == 0:
            engine = _engine_for(graph, engine)
            stats = {}
            labels = (
                [group_label]
                if group_label is not None
                else db.all_labels(ctx)
            )
            p = ptype.name
            for label in labels:
                row = engine.run(
                    ctx,
                    f"MATCH (v:{label.name}) RETURN count(v.{p}), "
                    f"sum(v.{p}), min(v.{p}), max(v.{p})",
                ).rows[0]
                c, s, mn, mx = row
                if c:
                    stats[label.name] = {
                        "count": c,
                        "sum": s,
                        "min": mn,
                        "max": mx,
                        "mean": s / c,
                    }
        return ctx.bcast(stats, root=0)
    tx = db.start_collective_transaction(ctx, snapshot=db.mvcc is not None)
    local_vids = tx.visible_vertices(db.directory.local_vertices(ctx), ctx.rank)
    partial: dict[str, tuple] = {}
    for v in tx.associate_vertices(local_vids, missing_ok=True):
        if v is None:
            continue
        value = v.property(ptype)
        if value is None:
            continue
        for label in v.labels():
            if group_label is not None and label.int_id != group_label.int_id:
                continue
            key = label.name
            if key in partial:
                c, s, mn, mx = partial[key]
                partial[key] = (
                    c + 1,
                    s + value,
                    min(mn, value),
                    max(mx, value),
                )
            else:
                partial[key] = (1, value, value, value)
    tx.commit()

    def merge(a: dict, b: dict) -> dict:
        out = dict(a)
        for k, (c, s, mn, mx) in b.items():
            if k in out:
                c0, s0, mn0, mx0 = out[k]
                out[k] = (c0 + c, s0 + s, min(mn0, mn), max(mx0, mx))
            else:
                out[k] = (c, s, mn, mx)
        return out

    merged = ctx.allreduce(partial, op=merge)
    return {
        k: {
            "count": c,
            "sum": s,
            "min": mn,
            "max": mx,
            "mean": s / c,
        }
        for k, (c, s, mn, mx) in merged.items()
    }
