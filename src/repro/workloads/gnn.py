"""Graph Neural Network workload over GDI (paper Listing 2, Section 6.5).

Implements training-style forward passes of a graph convolution network
(GCN, Kipf & Welling) directly against the database, following the paper's
Listing 2 line by line: per layer, a collective transaction in which every
rank (1) reads each local vertex's feature-vector property, (2) fetches the
feature vectors of its neighbors — *including remote vertices, read with
one-sided accesses through vertex handles* — (3) aggregates by summation,
(4) applies a user-supplied MLP and non-linearity, and (5) writes the
updated feature vector back.

Because neighbor features are read while local features are updated only
at commit (transaction-local visibility), the synchronous-GCN semantics
"aggregate layer-l features, then write layer-l+1" fall out of GDI's
transaction model for free — a nice consequence the paper alludes to.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..gdi import EdgeOrientation
from ..generator.lpg import GeneratedGraph
from ..rma.runtime import RankContext

__all__ = ["relu", "gcn_forward", "gcn_train", "random_gcn_weights"]


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def random_gcn_weights(
    layers: int, dim: int, seed: int = 0, scale: float = 0.5
) -> list[np.ndarray]:
    """Square per-layer weight matrices (feature dimension is preserved
    because features live in a FIXED-size property, Section 3.7)."""
    rng = np.random.default_rng(seed)
    return [
        scale * rng.standard_normal((dim, dim)) / np.sqrt(dim)
        for _ in range(layers)
    ]


def gcn_forward(
    ctx: RankContext,
    graph: GeneratedGraph,
    weights: Sequence[np.ndarray],
    *,
    feature_ptype_name: str = "p_feature",
    orientation: EdgeOrientation = EdgeOrientation.OUTGOING,
    sigma: Callable[[np.ndarray], np.ndarray] = relu,
    normalize: bool = True,
) -> dict[int, np.ndarray]:
    """Run ``len(weights)`` GCN layers; returns local final features.

    One collective write transaction per layer (the paper's Listing 2
    structure): reads may touch remote vertices, writes touch only local
    vertices, so the lock-free collective write transaction is safe.
    """
    db = graph.db
    ptype = graph.ptype(feature_ptype_name)
    for W in weights:
        tx = db.start_collective_transaction(ctx, write=True)
        updates: list[tuple[object, np.ndarray]] = []
        handles = tx.associate_vertices(db.directory.local_vertices(ctx))
        work: list[tuple[object, object, list[int]]] = []
        frontier: list[int] = []
        for v in handles:
            feature = v.property(ptype)
            if feature is None:
                continue
            nbr_vids = v.neighbors(orientation)
            work.append((v, feature, nbr_vids))
            frontier.extend(nbr_vids)
        # One batched read pipelines the whole layer's neighborhood —
        # subsequent associate_vertex calls are transaction-cache hits.
        tx.associate_vertices(frontier)
        for v, feature, nbr_vids in work:
            agg = np.array(feature, dtype=np.float64)
            for nvid in nbr_vids:
                nf = tx.associate_vertex(nvid).property(ptype)
                if nf is not None:
                    agg += nf
            if normalize and nbr_vids:
                agg /= len(nbr_vids) + 1
            new_feature = sigma(W @ agg)
            ctx.compute(W.size + agg.size)
            updates.append((v, new_feature))
        # Apply updates after all reads: layer semantics are synchronous.
        for v, new_feature in updates:
            v.set_property(ptype, new_feature)
        tx.commit()
    # Collect final local features.
    tx = db.start_collective_transaction(ctx)
    out: dict[int, np.ndarray] = {}
    for v in tx.associate_vertices(db.directory.local_vertices(ctx)):
        f = v.property(ptype)
        if f is not None:
            out[v.app_id] = f
    tx.commit()
    return out


def gcn_train(
    ctx: RankContext,
    graph: GeneratedGraph,
    weights: list[np.ndarray],
    targets: dict[int, np.ndarray],
    *,
    epochs: int = 5,
    learning_rate: float = 0.05,
    feature_ptype_name: str = "p_feature",
    orientation: EdgeOrientation = EdgeOrientation.OUTGOING,
) -> list[float]:
    """Distributed GCN *training* (the paper evaluates "training of the
    graph convolution model").

    A two-phase loop per epoch: the forward pass reads features through
    GDI exactly as Listing 2 (collective transaction, remote neighbor
    fetches) while caching the per-layer activations; the backward pass
    computes mean-squared-error gradients against ``targets`` (a map of
    local application IDs to target vectors), aggregates the weight
    gradients with an allreduce (data-parallel training), and applies a
    synchronous SGD step identically on every rank.  Input features in
    the database are left untouched — only the replicated weights learn.

    Returns the per-epoch global losses (must be non-increasing on a
    well-conditioned problem; asserted by the tests).
    """
    db = graph.db
    ptype = graph.ptype(feature_ptype_name)
    losses: list[float] = []
    n_total = max(1, ctx.allreduce(len(targets)))
    for _ in range(epochs):
        # ---- forward (Listing 2 structure, activations cached) --------
        tx = db.start_collective_transaction(ctx)
        agg0: dict[int, np.ndarray] = {}
        handles = tx.associate_vertices(db.directory.local_vertices(ctx))
        work: list[tuple[object, object, list[int]]] = []
        frontier: list[int] = []
        for v in handles:
            feature = v.property(ptype)
            if feature is None:
                continue
            nbr_vids = v.neighbors(orientation)
            work.append((v, feature, nbr_vids))
            frontier.extend(nbr_vids)
        tx.associate_vertices(frontier)  # batched neighborhood prefetch
        for v, feature, nbr_vids in work:
            acc = np.array(feature, dtype=np.float64)
            for nvid in nbr_vids:
                nf = tx.associate_vertex(nvid).property(ptype)
                if nf is not None:
                    acc += nf
            if nbr_vids:
                acc /= len(nbr_vids) + 1
            agg0[v.app_id] = acc
        tx.commit()

        # local layer stack (aggregation happens once, at the input —
        # a simplified SGC-style model that keeps gradients exact)
        activations = [agg0]
        for W in weights:
            prev = activations[-1]
            activations.append(
                {u: relu(W @ x) for u, x in prev.items()}
            )
        out = activations[-1]

        # ---- loss + backward ------------------------------------------
        local_loss = 0.0
        grad_out: dict[int, np.ndarray] = {}
        for u, y in targets.items():
            if u not in out:
                continue
            diff = out[u] - y
            local_loss += float(diff @ diff)
            grad_out[u] = 2.0 * diff / n_total
        losses.append(ctx.allreduce(local_loss) / n_total)

        grads = [np.zeros_like(W) for W in weights]
        delta = grad_out
        for li in reversed(range(len(weights))):
            W = weights[li]
            inp = activations[li]
            new_delta: dict[int, np.ndarray] = {}
            for u, d in delta.items():
                pre = W @ inp[u]
                d_pre = d * (pre > 0)  # relu'
                grads[li] += np.outer(d_pre, inp[u])
                new_delta[u] = W.T @ d_pre
            delta = new_delta
        ctx.compute(sum(g.size for g in grads) * max(1, len(grad_out)))

        # ---- synchronous data-parallel step ----------------------------
        for li in range(len(weights)):
            total_grad = ctx.allreduce(grads[li], op=lambda a, b: a + b)
            weights[li] -= learning_rate * total_grad
    return losses
