"""Interactive *complex* read-only queries (paper Table 2, row 2).

The LDBC SNB interactive workload distinguishes *short* reads (one vertex
and its neighborhood — implemented by the Table 3 mixes in
:mod:`.oltp`) from *complex* reads: multi-hop traversals that still run
as single-process transactions because they touch a bounded region of the
graph.  This module implements the two canonical shapes:

* :func:`friends_of_friends` — the k-hop neighborhood of one vertex with
  optional label filtering and deduplication (LDBC IC-style);
* :func:`transactional_path_search` — bidirectional BFS between two
  vertices inside one read transaction (LDBC IC13 "shortest path").

Both use only GDI handle operations (translate/associate/neighbors), so
every hop is a real one-sided fetch with the corresponding charge.

Each function is also expressible through the declarative query engine
(:mod:`repro.query`): pass ``use_engine=True`` (and optionally a shared
:class:`~repro.query.QueryEngine` to reuse its plan cache) to run the
equivalent Cypher-lite query instead of the hand-coded traversal.  The
results are identical; ``tests/workloads`` asserts so.
"""

from __future__ import annotations

from ..gda.metadata import Label
from ..gdi import Constraint, EdgeOrientation
from ..gdi.errors import GdiNotFound
from ..generator.lpg import GeneratedGraph
from ..rma.runtime import RankContext

__all__ = ["friends_of_friends", "transactional_path_search"]

# relationship-pattern arrows per traversal orientation
_ARROWS = {
    EdgeOrientation.OUTGOING: ("-", "->"),
    EdgeOrientation.INCOMING: ("<-", "-"),
    EdgeOrientation.ANY: ("-", "-"),
}


def _rel_pattern(
    edge_label: Label | None,
    orientation: EdgeOrientation,
    hops: tuple[int, int | None] | None = None,
) -> str:
    """Render ``-[:LBL*lo..hi]->`` for the given label/orientation/hops."""
    left, right = _ARROWS[orientation]
    inner = f":{edge_label.name}" if edge_label is not None else ""
    if hops is not None:
        lo, hi = hops
        inner += f"*{lo}..{hi}" if hi is not None else f"*{lo}.."
    return f"{left}[{inner}]{right}" if inner else f"{left}{right}"


def friends_of_friends(
    ctx: RankContext,
    graph: GeneratedGraph,
    app_id: int,
    hops: int = 2,
    *,
    edge_label: Label | None = None,
    orientation: EdgeOrientation = EdgeOrientation.ANY,
    use_engine: bool = False,
    engine=None,
) -> set[int]:
    """Application IDs within ``hops`` hops of ``app_id`` (excluding it).

    One single-process read transaction; BFS over handle fetches.
    Returns an empty set if the start vertex does not exist.

    With ``use_engine=True`` the same k-hop neighborhood runs as one
    variable-length-expand query through the declarative engine.
    """
    db = graph.db
    if use_engine:
        from ..query import QueryEngine

        engine = engine or QueryEngine(db)
        rel = _rel_pattern(edge_label, orientation, hops=(1, hops))
        result = engine.run(
            ctx,
            f"MATCH (a {{id = $src}}){rel}(b) RETURN b.id",
            params={"src": app_id},
        )
        return {row[0] for row in result.rows}
    constraint = (
        Constraint.has_label(edge_label.int_id) if edge_label else None
    )
    tx = db.start_transaction(ctx)
    try:
        try:
            start = tx.translate_vertex_id(app_id)
        except GdiNotFound:
            return set()
        seen_vids = {start}
        frontier = [start]
        result: set[int] = set()
        for _ in range(hops):
            next_frontier = []
            # The whole frontier is fetched with one pipelined read; a
            # concurrently deleted vertex simply drops out (missing_ok).
            for v in tx.associate_vertices(frontier, missing_ok=True):
                if v is None:
                    continue
                for nvid in v.neighbors(orientation, constraint=constraint):
                    if nvid not in seen_vids:
                        seen_vids.add(nvid)
                        next_frontier.append(nvid)
            frontier = next_frontier
            for v in tx.associate_vertices(frontier, missing_ok=True):
                if v is not None:
                    result.add(v.app_id)
        return result
    finally:
        if tx.open:
            tx.commit()


def transactional_path_search(
    ctx: RankContext,
    graph: GeneratedGraph,
    src_app: int,
    dst_app: int,
    max_depth: int = 6,
    orientation: EdgeOrientation = EdgeOrientation.ANY,
    *,
    use_engine: bool = False,
    engine=None,
) -> int | None:
    """Length of a shortest path between two vertices, or ``None``.

    Bidirectional BFS inside one read transaction (the structure of LDBC
    IC13): expand the smaller frontier each round, stop when the
    frontiers meet or the combined depth exceeds ``max_depth``.

    With ``use_engine=True`` the search runs as a ladder of exact-depth
    variable-length queries (``*d..d`` has shortest-path-distance
    semantics, so the first depth with a hit is the answer).
    """
    db = graph.db
    if use_engine:
        from ..query import QueryEngine

        engine = engine or QueryEngine(db)
        params = {"s": src_app, "t": dst_app}
        if src_app == dst_app:
            result = engine.run(
                ctx, "MATCH (a {id = $s}) RETURN count(*)", params=params
            )
            return 0 if result.scalar() else None
        for depth in range(1, max_depth + 1):
            rel = _rel_pattern(None, orientation, hops=(depth, depth))
            result = engine.run(
                ctx,
                f"MATCH (a {{id = $s}}){rel}(b {{id = $t}}) RETURN count(b)",
                params=params,
            )
            if result.scalar():
                return depth
        return None
    tx = db.start_transaction(ctx)
    try:
        try:
            src = tx.translate_vertex_id(src_app)
            dst = tx.translate_vertex_id(dst_app)
        except GdiNotFound:
            return None
        if src == dst:
            return 0

        def expand(
            frontier: set[int], dist: dict[int, int], level: int
        ) -> set[int]:
            out: set[int] = set()
            handles = tx.associate_vertices(sorted(frontier), missing_ok=True)
            for v in handles:
                if v is None:
                    continue
                for nvid in v.neighbors(orientation):
                    if nvid not in dist:
                        dist[nvid] = level
                        out.add(nvid)
            return out

        dist_f: dict[int, int] = {src: 0}
        dist_b: dict[int, int] = {dst: 0}
        fwd, bwd = {src}, {dst}
        df = db_ = 0
        while fwd and bwd and df + db_ < max_depth:
            if len(fwd) <= len(bwd):
                df += 1
                fwd = expand(fwd, dist_f, df)
                meeting = fwd & dist_b.keys()
            else:
                db_ += 1
                bwd = expand(bwd, dist_b, db_)
                meeting = bwd & dist_f.keys()
            if meeting:
                best = min(dist_f[v] + dist_b[v] for v in meeting)
                return min(best, max_depth) if best <= max_depth else None
        return None
    finally:
        if tx.open:
            tx.commit()
