"""Interactive *complex* read-only queries (paper Table 2, row 2).

The LDBC SNB interactive workload distinguishes *short* reads (one vertex
and its neighborhood — implemented by the Table 3 mixes in
:mod:`.oltp`) from *complex* reads: multi-hop traversals that still run
as single-process transactions because they touch a bounded region of the
graph.  This module implements the two canonical shapes:

* :func:`friends_of_friends` — the k-hop neighborhood of one vertex with
  optional label filtering and deduplication (LDBC IC-style);
* :func:`transactional_path_search` — bidirectional BFS between two
  vertices inside one read transaction (LDBC IC13 "shortest path").

Both use only GDI handle operations (translate/associate/neighbors), so
every hop is a real one-sided fetch with the corresponding charge.
"""

from __future__ import annotations

from ..gda.metadata import Label
from ..gdi import Constraint, EdgeOrientation
from ..gdi.errors import GdiNotFound
from ..generator.lpg import GeneratedGraph
from ..rma.runtime import RankContext

__all__ = ["friends_of_friends", "transactional_path_search"]


def friends_of_friends(
    ctx: RankContext,
    graph: GeneratedGraph,
    app_id: int,
    hops: int = 2,
    *,
    edge_label: Label | None = None,
    orientation: EdgeOrientation = EdgeOrientation.ANY,
) -> set[int]:
    """Application IDs within ``hops`` hops of ``app_id`` (excluding it).

    One single-process read transaction; BFS over handle fetches.
    Returns an empty set if the start vertex does not exist.
    """
    db = graph.db
    constraint = (
        Constraint.has_label(edge_label.int_id) if edge_label else None
    )
    tx = db.start_transaction(ctx)
    try:
        try:
            start = tx.translate_vertex_id(app_id)
        except GdiNotFound:
            return set()
        seen_vids = {start}
        frontier = [start]
        result: set[int] = set()
        for _ in range(hops):
            next_frontier = []
            # The whole frontier is fetched with one pipelined read; a
            # concurrently deleted vertex simply drops out (missing_ok).
            for v in tx.associate_vertices(frontier, missing_ok=True):
                if v is None:
                    continue
                for nvid in v.neighbors(orientation, constraint=constraint):
                    if nvid not in seen_vids:
                        seen_vids.add(nvid)
                        next_frontier.append(nvid)
            frontier = next_frontier
            for v in tx.associate_vertices(frontier, missing_ok=True):
                if v is not None:
                    result.add(v.app_id)
        return result
    finally:
        if tx.open:
            tx.commit()


def transactional_path_search(
    ctx: RankContext,
    graph: GeneratedGraph,
    src_app: int,
    dst_app: int,
    max_depth: int = 6,
    orientation: EdgeOrientation = EdgeOrientation.ANY,
) -> int | None:
    """Length of a shortest path between two vertices, or ``None``.

    Bidirectional BFS inside one read transaction (the structure of LDBC
    IC13): expand the smaller frontier each round, stop when the
    frontiers meet or the combined depth exceeds ``max_depth``.
    """
    db = graph.db
    tx = db.start_transaction(ctx)
    try:
        try:
            src = tx.translate_vertex_id(src_app)
            dst = tx.translate_vertex_id(dst_app)
        except GdiNotFound:
            return None
        if src == dst:
            return 0

        def expand(
            frontier: set[int], dist: dict[int, int], level: int
        ) -> set[int]:
            out: set[int] = set()
            handles = tx.associate_vertices(sorted(frontier), missing_ok=True)
            for v in handles:
                if v is None:
                    continue
                for nvid in v.neighbors(orientation):
                    if nvid not in dist:
                        dist[nvid] = level
                        out.add(nvid)
            return out

        dist_f: dict[int, int] = {src: 0}
        dist_b: dict[int, int] = {dst: 0}
        fwd, bwd = {src}, {dst}
        df = db_ = 0
        while fwd and bwd and df + db_ < max_depth:
            if len(fwd) <= len(bwd):
                df += 1
                fwd = expand(fwd, dist_f, df)
                meeting = fwd & dist_b.keys()
            else:
                db_ += 1
                bwd = expand(bwd, dist_b, db_)
                meeting = bwd & dist_f.keys()
            if meeting:
                best = min(dist_f[v] + dist_b[v] for v in meeting)
                return min(best, max_depth) if best <= max_depth else None
        return None
    finally:
        if tx.open:
            tx.commit()
