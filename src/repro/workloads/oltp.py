"""OLTP interactive workloads (paper Section 6.4, Table 3).

Four operation mixes drive the OLTP evaluation, taken from LinkBench and
earlier GDB studies:

===================  ========  ========  ========  ========
operation            RM        RI        WI        LB
===================  ========  ========  ========  ========
get vertex props     28.8%     21.7%      9.1%     12.9%
count edges          11.7%      8.8%      0%        4.9%
get edges            59.3%     44.5%     10.9%     51.2%
add vertex            0%        0%       20%        2.6%
delete vertex         0%        0%        6.7%      1%
update property       0%        0%       13.3%      7.4%
add edge              0.2%     25%       40%       20%
===================  ========  ========  ========  ========

Every operation is one single-process GDI transaction (Table 2's
recommendation for interactive workloads).  The driver measures each
operation's *simulated* latency (the rank clock delta across the
transaction) and counts transaction-critical failures — the same
failed-transaction percentages the paper annotates in Figure 4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from ..gda.retry import RetryPolicy, run_transaction
from ..gdi import EdgeOrientation
from ..gdi.errors import GdiNotFound, GdiTransactionCritical
from ..generator.lpg import GeneratedGraph
from ..rma.faults import RmaTransientError
from ..rma.runtime import RankContext

__all__ = ["OpType", "WorkloadMix", "MIXES", "OltpRankResult", "OltpResult", "run_oltp_rank", "aggregate_oltp"]


class OpType(Enum):
    GET_PROPS = "get_vertex_properties"
    COUNT_EDGES = "count_edges"
    GET_EDGES = "get_edges"
    ADD_VERTEX = "add_vertex"
    DEL_VERTEX = "delete_vertex"
    UPD_PROP = "update_property"
    ADD_EDGE = "add_edge"

    @property
    def is_update(self) -> bool:
        return self in (
            OpType.ADD_VERTEX,
            OpType.DEL_VERTEX,
            OpType.UPD_PROP,
            OpType.ADD_EDGE,
        )


@dataclass(frozen=True)
class WorkloadMix:
    """One Table 3 column: operation fractions summing to 1."""

    name: str
    fractions: dict[OpType, float]

    def __post_init__(self) -> None:
        total = sum(self.fractions.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"mix {self.name!r} fractions sum to {total}")

    @property
    def read_fraction(self) -> float:
        return sum(
            f for op, f in self.fractions.items() if not op.is_update
        )

    def sample(self, rng: random.Random) -> OpType:
        x = rng.random()
        acc = 0.0
        for op, f in self.fractions.items():
            acc += f
            if x < acc:
                return op
        return next(reversed(self.fractions))


#: The paper's Table 3, verbatim.
MIXES: dict[str, WorkloadMix] = {
    "RM": WorkloadMix(
        "RM",
        {
            OpType.GET_PROPS: 0.288,
            OpType.COUNT_EDGES: 0.117,
            OpType.GET_EDGES: 0.593,
            OpType.ADD_EDGE: 0.002,
        },
    ),
    "RI": WorkloadMix(
        "RI",
        {
            OpType.GET_PROPS: 0.217,
            OpType.COUNT_EDGES: 0.088,
            OpType.GET_EDGES: 0.445,
            OpType.ADD_EDGE: 0.25,
        },
    ),
    "WI": WorkloadMix(
        "WI",
        {
            OpType.GET_PROPS: 0.091,
            OpType.GET_EDGES: 0.109,
            OpType.ADD_VERTEX: 0.20,
            OpType.DEL_VERTEX: 0.067,
            OpType.UPD_PROP: 0.133,
            OpType.ADD_EDGE: 0.40,
        },
    ),
    "LB": WorkloadMix(
        "LB",
        {
            OpType.GET_PROPS: 0.129,
            OpType.COUNT_EDGES: 0.049,
            OpType.GET_EDGES: 0.512,
            OpType.ADD_VERTEX: 0.026,
            OpType.DEL_VERTEX: 0.01,
            OpType.UPD_PROP: 0.074,
            OpType.ADD_EDGE: 0.20,
        },
    ),
}


@dataclass
class OltpRankResult:
    """One rank's share of an OLTP run."""

    rank: int
    n_ops: int = 0
    n_failed: int = 0
    latencies: dict[OpType, list[float]] = field(default_factory=dict)
    sim_elapsed: float = 0.0
    n_retries: int = 0  # automatic transaction restarts (retry policy)
    n_commits: int = 0  # committed transactions (batches)

    def record(self, op: OpType, latency: float) -> None:
        self.latencies.setdefault(op, []).append(latency)
        self.n_ops += 1


@dataclass
class OltpResult:
    """Aggregated OLTP metrics across all ranks."""

    mix: str
    nranks: int
    n_ops: int
    n_failed: int
    makespan: float  # max simulated elapsed time over ranks
    latencies: dict[OpType, list[float]]
    n_retries: int = 0
    n_commits: int = 0

    @property
    def throughput(self) -> float:
        """Committed operations per simulated second."""
        done = self.n_ops - self.n_failed
        return done / self.makespan if self.makespan > 0 else 0.0

    @property
    def failed_fraction(self) -> float:
        return self.n_failed / self.n_ops if self.n_ops else 0.0

    @property
    def retries_per_commit(self) -> float:
        """Mean automatic restarts per committed transaction."""
        return self.n_retries / self.n_commits if self.n_commits else 0.0


def run_oltp_rank(
    ctx: RankContext,
    graph: GeneratedGraph,
    mix: WorkloadMix,
    n_ops: int,
    seed: int = 0,
    ops_per_txn: int = 1,
    retry: RetryPolicy | None = None,
    key_sampler: Callable[[random.Random], int] | None = None,
    batch_sizes: Callable[[random.Random], int] | None = None,
) -> OltpRankResult:
    """Execute ``n_ops`` operations of ``mix`` on this rank.

    Call from every rank concurrently (contention is part of the
    workload); aggregate the per-rank results with :func:`aggregate_oltp`.

    ``ops_per_txn`` batches several operations into one transaction
    (amortizing start/commit overhead at the cost of a larger failure
    blast radius — a batch aborts as a unit).  The recorded latency of a
    batched operation is the batch latency divided by the batch size.

    With a ``retry`` policy, aborted batches are automatically restarted
    through :func:`repro.gda.retry.run_transaction`; a batch only counts
    as failed when the whole retry budget is exhausted.  All random
    choices of a batch are drawn *before* its transaction starts, so a
    restarted batch replays the identical logical operations.

    ``key_sampler`` overrides the uniform application-ID draw — this is
    how an adversarial traffic profile (e.g. a Zipfian celebrity skew
    from :mod:`repro.traffic`) reuses the verbatim Table 3 mixes.
    ``batch_sizes`` draws a per-transaction batch size instead of the
    fixed ``ops_per_txn`` (large-transaction mixes); both samplers see
    the rank's seeded RNG, so runs stay reproducible.
    """
    if ops_per_txn < 1:
        raise ValueError("ops_per_txn must be >= 1")
    db = graph.db
    rng = random.Random(f"{seed}/{ctx.rank}/{mix.name}")
    res = OltpRankResult(rank=ctx.rank)
    n = graph.n_vertices
    label = None
    if graph.schema.n_edge_labels:
        label = graph.edge_label(0)
    p_ts = graph.ptypes.get("p_ts")
    next_new_id = graph.n_vertices + ctx.rank * 10_000_000
    my_created: list[int] = []
    deleted: set[int] = set()
    restarts_before = db.stats[ctx.rank].restarts

    def random_app_id() -> int:
        if my_created and rng.random() < 0.1:
            return rng.choice(my_created)
        if key_sampler is not None:
            return key_sampler(rng)
        return rng.randrange(n)

    def draw_op(op: OpType) -> tuple:
        """Pre-draw all randomness so retried batches replay identically."""
        nonlocal next_new_id
        if op is OpType.ADD_VERTEX:
            app_id = next_new_id
            next_new_id += 1
            return (op, app_id)
        if op is OpType.ADD_EDGE:
            return (op, random_app_id(), random_app_id())
        if op is OpType.UPD_PROP:
            return (op, random_app_id(), rng.randrange(1 << 31))
        return (op, random_app_id())

    def execute_op(tx, desc: tuple) -> None:
        op = desc[0]
        if op is OpType.GET_PROPS:
            v = tx.find_vertex(desc[1])
            if v is not None and p_ts is not None:
                v.property(p_ts)
        elif op is OpType.COUNT_EDGES:
            v = tx.find_vertex(desc[1])
            if v is not None:
                v.degree()
        elif op is OpType.GET_EDGES:
            v = tx.find_vertex(desc[1])
            if v is not None:
                for e in v.edges(EdgeOrientation.OUTGOING):
                    e.endpoints()
        elif op is OpType.ADD_VERTEX:
            props = [(p_ts, 0)] if p_ts is not None else []
            tx.create_vertex(desc[1], properties=props)
        elif op is OpType.DEL_VERTEX:
            v = tx.find_vertex(desc[1])
            if v is not None:
                tx.delete_vertex(v)
        elif op is OpType.UPD_PROP:
            v = tx.find_vertex(desc[1])
            if v is not None and p_ts is not None:
                v.set_property(p_ts, desc[2])
        elif op is OpType.ADD_EDGE:
            a = tx.find_vertex(desc[1])
            b = tx.find_vertex(desc[2])
            if a is not None and b is not None and a.vid != b.vid:
                tx.create_edge(a, b, label=label)

    def apply_side_effects(descs: list[tuple]) -> None:
        """Record committed creations/deletions (drives later ID draws)."""
        for desc in descs:
            if desc[0] is OpType.ADD_VERTEX:
                my_created.append(desc[1])
            elif desc[0] is OpType.DEL_VERTEX:
                deleted.add(desc[1])

    # Effective time includes receiver-side NIC service: a rank that is
    # hammered by remote accesses finishes later than its own op stream.
    start = ctx.rt.effective_clock(ctx.rank)
    remaining = n_ops
    while remaining > 0:
        size = ops_per_txn if batch_sizes is None else max(1, batch_sizes(rng))
        batch = [mix.sample(rng) for _ in range(min(size, remaining))]
        remaining -= len(batch)
        descs = [draw_op(op) for op in batch]
        write = any(op.is_update for op in batch)
        t0 = ctx.clock
        failed = False

        def body(tx):
            for desc in descs:
                try:
                    execute_op(tx, desc)
                except GdiNotFound:
                    pass  # a read miss inside the batch is an OK outcome

        if retry is None:
            tx = db.start_transaction(ctx, write=write)
            try:
                body(tx)
                tx.commit()
            except GdiTransactionCritical:
                if tx.open:
                    tx.abort()
                failed = True
            except GdiNotFound:
                if tx.open:
                    tx.abort()
        else:
            try:
                run_transaction(
                    ctx, db, body, write=write, policy=retry
                )
            except (GdiTransactionCritical, RmaTransientError):
                failed = True
        latency = (ctx.clock - t0) / len(batch)
        for op in batch:
            res.record(op, latency)
        if failed:
            res.n_failed += len(batch)
        else:
            res.n_commits += 1
            apply_side_effects(descs)
    res.sim_elapsed = ctx.rt.effective_clock(ctx.rank) - start
    res.n_retries = db.stats[ctx.rank].restarts - restarts_before
    return res


def aggregate_oltp(
    mix: WorkloadMix, rank_results: list[OltpRankResult]
) -> OltpResult:
    """Combine per-rank results into the paper's Figure 4/5 metrics."""
    latencies: dict[OpType, list[float]] = {}
    for r in rank_results:
        for op, vals in r.latencies.items():
            latencies.setdefault(op, []).extend(vals)
    return OltpResult(
        mix=mix.name,
        nranks=len(rank_results),
        n_ops=sum(r.n_ops for r in rank_results),
        n_failed=sum(r.n_failed for r in rank_results),
        makespan=max(r.sim_elapsed for r in rank_results),
        latencies=latencies,
        n_retries=sum(r.n_retries for r in rank_results),
        n_commits=sum(r.n_commits for r in rank_results),
    )
